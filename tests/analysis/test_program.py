"""Seeded-defect tests: one per program-analyzer rule PR001-PR009."""

from repro.analysis import AnalysisOptions, MemoryMap, analyze_program
from repro.isa.assembler import assemble


def run(source, **options):
    program = assemble(source)
    return analyze_program(program, "probe", AnalysisOptions(**options))


def rule_ids(report):
    return [d.rule_id for d in report.diagnostics]


CLEAN = """
.text
start:
    addiu $t0, $0, 5
    addiu $t1, $0, 7
    addu  $t2, $t0, $t1
    sw    $t2, 0x100($0)
halt:
    j halt
    nop
"""


def test_clean_program_has_no_diagnostics():
    report = run(CLEAN)
    assert report.ok
    assert report.diagnostics == []


def test_pr001_use_before_def():
    report = run(
        """
.text
    addu $t2, $t0, $t1   # $t0/$t1 never written
halt:
    j halt
    nop
"""
    )
    assert report.ok  # warning only
    diags = [d for d in report.diagnostics if d.rule_id == "PR001"]
    assert len(diags) == 2
    assert {d.address for d in diags} == {0x0}


def test_pr001_respects_assume_initialized():
    source = """
.text
    addu $t2, $t0, $t1
halt:
    j halt
    nop
"""
    report = run(source, assume_initialized=frozenset({"$t0", "$t1"}))
    assert "PR001" not in rule_ids(report)


def test_pr002_control_in_delay_slot():
    report = run(
        """
.text
start:
    beq $0, $0, done
    j start              # control transfer in the delay slot
done:
    j done
    nop
"""
    )
    assert not report.ok
    assert "PR002" in rule_ids(report)


def test_pr002_split_branch_pair_not_flagged():
    # A branch whose delay slot is itself a branch *target* splits the
    # pair across blocks; the linear next word is still the slot.
    report = run(
        """
.text
start:
    beq $0, $0, done
    nop
done:
    j done
    nop
"""
    )
    assert "PR002" not in rule_ids(report)


def test_pr003_load_use_hazard():
    report = run(
        """
.text
    lw   $t0, 0x100($0)
    addu $t1, $t0, $t0   # consumes the load result immediately
halt:
    j halt
    nop
"""
    )
    assert report.ok  # Plasma interlocks loads -> warning
    assert "PR003" in rule_ids(report)


def test_pr004_unreachable_block():
    report = run(
        """
.text
    j halt
    nop
    addiu $t0, $0, 1     # unreachable
halt:
    j halt
    nop
"""
    )
    assert "PR004" in rule_ids(report)


def test_pr005_signature_clobber():
    report = run(
        """
.text
    addiu $s0, $0, 1     # dead store: overwritten before any read
    addiu $s0, $0, 2
    sw    $s0, 0x100($0)
halt:
    j halt
    nop
""",
        signature_registers=("$s0",),
    )
    assert not report.ok
    diags = [d for d in report.diagnostics if d.rule_id == "PR005"]
    assert len(diags) == 1
    assert diags[0].address == 0x0


def test_pr005_silent_without_signature_registers():
    report = run(
        """
.text
    addiu $s0, $0, 1
    addiu $s0, $0, 2
    sw    $s0, 0x100($0)
halt:
    j halt
    nop
"""
    )
    assert "PR005" not in rule_ids(report)


def test_pr006_misaligned_store():
    report = run(
        """
.text
    addiu $t0, $0, 3
    sw    $t0, 2($0)     # word store to address 2
halt:
    j halt
    nop
"""
    )
    assert not report.ok
    assert "PR006" in rule_ids(report)


def test_pr007_out_of_range_access():
    report = run(
        """
.text
    lui  $t1, 4          # 0x40000: beyond the 64 KiB RAM window
    sw   $t1, 0($t1)
halt:
    j halt
    nop
"""
    )
    assert not report.ok
    assert "PR007" in rule_ids(report)


def test_pr007_respects_memory_map():
    source = """
.text
    lui  $t1, 4
    sw   $t1, 0($t1)
halt:
    j halt
    nop
"""
    report = run(source, memory_map=MemoryMap(ram_base=0, ram_limit=0x80000))
    assert "PR007" not in rule_ids(report)


def test_pr008_fallthrough_off_end():
    report = run(
        """
.text
    addiu $t0, $0, 1
    addiu $t1, $0, 2
"""
    )
    assert "PR008" in rule_ids(report)


def test_pr009_non_instruction_word():
    report = run(
        """
.text
    addiu $t0, $0, 1
    .word 0xffffffff
halt:
    j halt
    nop
"""
    )
    assert "PR009" in rule_ids(report)
