"""Experiment C3 — technology independence of the methodology.

The paper reports "very similar fault coverage results when the processor
was synthesized in a different technology library": the self-test program
is derived from the RT level / ISA only, so it keeps working when the gate
implementation changes.  We re-grade the same Phase A traces against every
(cheaply gradable) component remapped into a {NAND2, NOT} library.
"""

from conftest import cached_campaign, run_once, write_result

from repro.core.campaign import run_campaign
from repro.netlist.remap import remap_to_nand

COMPONENTS = ("ALU", "BSH", "CTRL", "BMUX")


def test_technology_remap(benchmark):
    remapped = run_once(
        benchmark,
        lambda: run_campaign(
            "A", components=list(COMPONENTS), netlist_transform=remap_to_nand
        ),
    )
    plain = cached_campaign("A", COMPONENTS)

    lines = [f"{'component':>10s} {'orig FC%':>9s} {'NAND FC%':>9s} "
             f"{'orig faults':>12s} {'NAND faults':>12s}"]
    for name in COMPONENTS:
        p = plain.results[name]
        r = remapped.results[name]
        lines.append(
            f"{name:>10s} {p.fault_coverage:>9.2f} {r.fault_coverage:>9.2f} "
            f"{p.n_faults:>12,} {r.n_faults:>12,}"
        )
    text = "\n".join(lines)
    write_result("claim_c3_tech_remap.txt", text)
    print("\n" + text)

    # The paper compares overall figures: aggregate (fault-weighted)
    # coverage must be very similar; individual small components may move
    # more because their fault universes change shape under remapping.
    def aggregate(outcome):
        faults = sum(outcome.results[n].n_faults for n in COMPONENTS)
        detected = sum(outcome.results[n].n_detected for n in COMPONENTS)
        return 100.0 * detected / faults

    assert abs(aggregate(plain) - aggregate(remapped)) < 5.0
    for name in COMPONENTS:
        delta = abs(
            plain.results[name].fault_coverage
            - remapped.results[name].fault_coverage
        )
        assert delta < 15.0, (name, delta)
    # The implementation genuinely changed: a different gate population
    # (fault-class counts can coincide for mux-heavy blocks, so compare
    # the gate inventories instead).
    from repro.netlist.stats import gate_count
    from repro.plasma.components import build_component

    for name in COMPONENTS:
        original = build_component(name)
        assert gate_count(remap_to_nand(original)).n_gates > gate_count(
            original
        ).n_gates
