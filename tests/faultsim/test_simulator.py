"""Unit tests for the pattern-parallel logic simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.faultsim.simulator import LogicSimulator
from repro.library.adders import incrementer
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType
from repro.netlist.netlist import DFF
from repro.utils.lanes import LaneSet


def all_gates_circuit():
    b = NetlistBuilder("allgates")
    x = b.input("x", 3)
    a, c, s = x
    b.output("and_", b.and_(a, c))
    b.output("nand_", b.nand(a, c))
    b.output("or_", b.or_(a, c))
    b.output("nor_", b.nor(a, c))
    b.output("xor_", b.xor(a, c))
    b.output("xnor_", b.xnor(a, c))
    b.output("not_", b.not_(a))
    b.output("buf_", b.gate(GateType.BUF, a))
    b.output("mux_", b.gate(GateType.MUX2, a, c, s))
    b.output("aoi_", b.gate(GateType.AOI21, a, c, s))
    return b.build()


class TestCombinational:
    def test_all_gate_types_exhaustive(self):
        sim = LogicSimulator(all_gates_circuit())
        pats = [dict(x=v) for v in range(8)]
        out = sim.run_combinational(pats)
        for i, v in enumerate(range(8)):
            a, c, s = v & 1, (v >> 1) & 1, (v >> 2) & 1
            assert out["and_"][i] == (a & c)
            assert out["nand_"][i] == 1 - (a & c)
            assert out["or_"][i] == (a | c)
            assert out["nor_"][i] == 1 - (a | c)
            assert out["xor_"][i] == (a ^ c)
            assert out["xnor_"][i] == 1 - (a ^ c)
            assert out["not_"][i] == 1 - a
            assert out["buf_"][i] == a
            assert out["mux_"][i] == (c if s else a)
            assert out["aoi_"][i] == 1 - ((a & c) | s)

    @settings(deadline=None, max_examples=20)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=200))
    def test_parallel_matches_serial(self, values):
        """Many lanes at once == one lane at a time (the core invariant)."""
        sim = LogicSimulator(all_gates_circuit())
        batch = sim.run_combinational([dict(x=v) for v in values])
        for i, v in enumerate(values):
            single = sim.run_combinational([dict(x=v)])
            for port in batch:
                assert batch[port][i] == single[port][0]

    def test_missing_input_port_rejected(self):
        # pack_inputs defaults missing pattern keys to 0, but evaluate()
        # requires every declared input port to be present.
        sim = LogicSimulator(all_gates_circuit())
        lanes = LaneSet(1)
        with pytest.raises(SimulationError):
            sim.evaluate({}, sim.initial_state(lanes), lanes)

    def test_sequential_circuit_rejected_in_combinational_mode(self):
        b = NetlistBuilder("seq")
        x = b.input("x", 1)
        b.output("q", b.dff(x[0]))
        sim = LogicSimulator(b.build())
        with pytest.raises(SimulationError):
            sim.run_combinational([dict(x=1)])


class TestSequential:
    def _counter(self, bits=3):
        """Free-running counter: q' = q + 1."""
        b = NetlistBuilder("ctr")
        b.input("tick", 1)
        q = [b.netlist.new_net() for _ in range(bits)]
        inc = incrementer(b, q)
        for i in range(bits):
            b.netlist.dffs.append(DFF(i, inc[i], q[i], 0))
        b.output("count", q)
        return LogicSimulator(b.build())

    def test_counter_counts(self):
        sim = self._counter()
        outs, _ = sim.run_sequence([dict(tick=0)] * 10)
        assert [o["count"] for o in outs] == [i % 8 for i in range(10)]

    def test_initial_state_respects_init(self):
        b = NetlistBuilder("init")
        x = b.input("x", 1)
        b.output("q", b.dff(x[0], init=1))
        sim = LogicSimulator(b.build())
        outs, _ = sim.run_sequence([dict(x=0)])
        assert outs[0]["q"] == 1

    def test_record_produces_trace(self):
        sim = self._counter()
        outs, trace = sim.run_sequence([dict(tick=0)] * 4, record=True)
        assert trace is not None
        assert trace.n_cycles == 4
        assert len(trace.states) == 5

    def test_parallel_sessions_lockstep(self):
        b = NetlistBuilder("acc")
        x = b.input("x", 4)
        q = [b.netlist.new_net() for _ in range(4)]
        xor = b.xor_word(list(x), q)
        for i in range(4):
            b.netlist.dffs.append(DFF(i, xor[i], q[i], 0))
        b.output("acc", q)
        sim = LogicSimulator(b.build())
        sessions = [
            [dict(x=1), dict(x=2)],
            [dict(x=15), dict(x=15)],
        ]
        trace = sim.run_parallel_sessions(sessions)
        assert trace.lanes.count == 2
        # Final DFF state per lane must match a serial run of that session.
        for lane, session in enumerate(sessions):
            _, serial = sim.run_sequence(session, record=True)
            assert serial is not None
            for dff_index in range(4):
                parallel_bit = (trace.states[-1].q[dff_index] >> lane) & 1
                assert parallel_bit == serial.states[-1].q[dff_index]

    def test_sessions_must_be_same_length(self):
        sim = self._counter()
        with pytest.raises(SimulationError):
            sim.run_parallel_sessions([[dict(tick=0)], []])

    def test_empty_sessions_rejected(self):
        sim = self._counter()
        with pytest.raises(SimulationError):
            sim.run_parallel_sessions([])
