"""Unit tests for the resilient JobRunner (retry, checkpoint, events)."""

import os
import time

import pytest

from repro.errors import ReproRuntimeError
from repro.runtime import JobRunner, RetryPolicy, RuntimeConfig


def _ok():
    return {"answer": 42}


def _boom():
    raise ValueError("boom")


def _hangs():
    time.sleep(60)


def _flaky(counter_path, succeed_on):
    """Fail until the file-backed attempt counter reaches ``succeed_on``.

    File-backed because each attempt may run in a fresh worker process.
    """
    count = 1
    if os.path.exists(counter_path):
        with open(counter_path) as handle:
            count = int(handle.read()) + 1
    with open(counter_path, "w") as handle:
        handle.write(str(count))
    if count < succeed_on:
        raise RuntimeError(f"flaking on attempt {count}")
    return count


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_seconds=1.0, backoff_multiplier=2.0,
            max_backoff_seconds=5.0,
        )
        delays = [policy.delay_before_retry(a) for a in (1, 2, 3, 4)]
        assert delays == [1.0, 2.0, 4.0, 5.0]  # clamped at max

    def test_validation(self):
        with pytest.raises(ReproRuntimeError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproRuntimeError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ReproRuntimeError):
            RuntimeConfig(timeout_seconds=-1)
        with pytest.raises(ReproRuntimeError):
            RuntimeConfig(resume=True)  # needs checkpoint_dir
        with pytest.raises(ReproRuntimeError):
            RuntimeConfig(timeout_seconds=5, isolate=False)


class TestRunnerSuccess:
    def test_simple_success(self):
        runner = JobRunner(RuntimeConfig(sleep=lambda s: None))
        outcome = runner.run("j", _ok)
        assert outcome.status == "ok"
        assert outcome.value == {"answer": 42}
        assert outcome.attempts == 1
        assert runner.events.kinds("j") == ["start", "success"]

    def test_in_process_success(self):
        runner = JobRunner(RuntimeConfig(isolate=False, sleep=lambda s: None))
        assert runner.run("j", _ok).value == {"answer": 42}


class TestRunnerRetry:
    def test_retry_until_success(self, tmp_path):
        counter = str(tmp_path / "count")
        runner = JobRunner(
            RuntimeConfig(
                retry=RetryPolicy(max_attempts=3, backoff_seconds=0),
                sleep=lambda s: None,
            )
        )
        outcome = runner.run("flaky", _flaky, (counter, 3))
        assert outcome.status == "ok"
        assert outcome.value == 3
        assert outcome.attempts == 3
        assert runner.events.kinds("flaky") == [
            "start", "failure", "retry",
            "start", "failure", "retry",
            "start", "success",
        ]

    def test_backoff_delays_passed_to_sleep(self):
        slept = []
        runner = JobRunner(
            RuntimeConfig(
                retry=RetryPolicy(
                    max_attempts=3, backoff_seconds=0.5,
                    backoff_multiplier=2.0,
                ),
                sleep=slept.append,
            )
        )
        outcome = runner.run("j", _boom)
        assert outcome.failed
        assert slept == [0.5, 1.0]

    def test_permanent_failure_degrades(self):
        runner = JobRunner(
            RuntimeConfig(
                retry=RetryPolicy(max_attempts=2, backoff_seconds=0),
                sleep=lambda s: None,
            )
        )
        outcome = runner.run("j", _boom)
        assert outcome.failed
        assert outcome.attempts == 2
        assert "boom" in outcome.error
        assert runner.events.kinds("j")[-1] == "degraded"

    def test_timeout_then_degraded(self):
        runner = JobRunner(
            RuntimeConfig(
                timeout_seconds=0.3,
                retry=RetryPolicy(max_attempts=2, backoff_seconds=0),
                sleep=lambda s: None,
            )
        )
        outcome = runner.run("slow", _hangs)
        assert outcome.failed
        assert runner.events.kinds("slow") == [
            "start", "timeout", "retry", "start", "timeout", "degraded",
        ]

    def test_in_process_exception_wrapped(self):
        runner = JobRunner(
            RuntimeConfig(
                isolate=False,
                retry=RetryPolicy(max_attempts=1),
                sleep=lambda s: None,
            )
        )
        outcome = runner.run("j", _boom)
        assert outcome.failed
        assert "ValueError" in outcome.error


class TestRunnerCheckpoint:
    def _config(self, tmp_path, resume=False):
        return RuntimeConfig(
            checkpoint_dir=tmp_path, resume=resume,
            retry=RetryPolicy(max_attempts=1), sleep=lambda s: None,
        )

    def test_success_is_journaled_and_reused(self, tmp_path):
        runner = JobRunner(self._config(tmp_path))
        first = runner.run("j", _ok, fingerprint="fp", serialize=dict)
        assert first.status == "ok"

        resumed = JobRunner(self._config(tmp_path, resume=True))
        cached = resumed.run("j", _boom, fingerprint="fp")  # fn not re-run
        assert cached.status == "cached"
        assert cached.record == {"answer": 42}
        assert resumed.events.kinds("j") == ["cached"]

    def test_fingerprint_mismatch_reruns(self, tmp_path):
        runner = JobRunner(self._config(tmp_path))
        runner.run("j", _ok, fingerprint="old", serialize=dict)

        resumed = JobRunner(self._config(tmp_path, resume=True))
        outcome = resumed.run("j", _ok, fingerprint="new", serialize=dict)
        assert outcome.status == "ok"  # stale journal entry not trusted

    def test_no_resume_resets_journal(self, tmp_path):
        JobRunner(self._config(tmp_path)).run("j", _ok, serialize=dict)
        fresh = JobRunner(self._config(tmp_path, resume=False))
        assert fresh.resumed_keys == set()
        assert fresh.run("j", _ok, serialize=dict).status == "ok"

    def test_invalidate_forces_rerun(self, tmp_path):
        JobRunner(self._config(tmp_path)).run(
            "j", _ok, fingerprint="fp", serialize=dict
        )
        resumed = JobRunner(self._config(tmp_path, resume=True))
        resumed.invalidate("j")
        assert resumed.run("j", _ok, fingerprint="fp").status == "ok"

    def test_events_written_to_jsonl(self, tmp_path):
        runner = JobRunner(self._config(tmp_path))
        runner.run("j", _ok, serialize=dict)
        lines = runner.events.path.read_text().splitlines()
        assert len(lines) == 2  # start + success
        assert runner.events.summary()["success"] == 1
