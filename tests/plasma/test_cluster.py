"""Unit tests for the composed execute-stage cluster."""

import random

import pytest

from repro.faultsim.simulator import LogicSimulator
from repro.isa.encoding import decode, encode
from repro.isa.instruction import INSTRUCTION_SET
from repro.library.alu import alu_reference
from repro.library.shifter import shifter_reference
from repro.netlist.verify import lint
from repro.plasma.busmux import busmux_reference
from repro.plasma.cluster import EXPOSED_CONTROLS, build_execute_cluster
from repro.plasma.controls import WbSource, decode_controls

_SIM = LogicSimulator(build_execute_cluster())


def reference_wb(word, rs, rt, pc4, memd, lo, hi):
    d = decode(word)
    bundle = decode_controls(d)
    a_bus, b_bus, _ = busmux_reference(
        int(bundle.a_source), int(bundle.b_source), 0, rs, rt, d.imm, pc4
    )
    alu_r = alu_reference(bundle.alu_func, a_bus, b_bus)
    shamt = (rs & 31) if bundle.shift_variable else d.shamt
    sh = shifter_reference(rt, shamt, bundle.shift_left, bundle.shift_arith)
    table = {
        WbSource.ALU: alu_r, WbSource.SHIFT: sh, WbSource.MEM: memd,
        WbSource.LO: lo, WbSource.HI: hi,
    }
    return table[bundle.wb_source], alu_r, bundle


class TestCluster:
    def test_lints_clean(self):
        lint(build_execute_cluster())

    @pytest.mark.parametrize("mnemonic", sorted(INSTRUCTION_SET))
    def test_every_instruction_matches_reference(self, mnemonic):
        rng = random.Random(hash(mnemonic) & 0xFFFF)
        pats, refs = [], []
        for _ in range(3):
            word = encode(
                mnemonic, rs=rng.randrange(32), rt=rng.randrange(32),
                rd=rng.randrange(32), shamt=rng.randrange(32),
                imm=rng.getrandbits(16), target=rng.getrandbits(26),
            )
            rs, rt = rng.getrandbits(32), rng.getrandbits(32)
            pc4, memd = rng.getrandbits(32), rng.getrandbits(32)
            lo, hi = rng.getrandbits(32), rng.getrandbits(32)
            pats.append(dict(instr=word, rs_data=rs, rt_data=rt,
                             pc_plus4=pc4, mem_data=memd, lo=lo, hi=hi))
            refs.append(reference_wb(word, rs, rt, pc4, memd, lo, hi))
        out = _SIM.run_combinational(pats)
        for i, (wb, alu_r, bundle) in enumerate(refs):
            assert out["wb_data"][i] == wb
            assert out["alu_result"][i] == alu_r
            fields = bundle.to_fields()
            for port in EXPOSED_CONTROLS:
                assert out[port][i] == fields[port], port

    def test_size_is_sum_of_parts(self):
        from repro.netlist.stats import gate_count
        from repro.library import build_alu, build_barrel_shifter
        from repro.plasma.busmux import build_busmux
        from repro.plasma.control_unit import build_control

        parts = sum(
            gate_count(b()).n_gates
            for b in (build_alu, build_barrel_shifter, build_busmux,
                      build_control)
        )
        cluster = gate_count(build_execute_cluster()).n_gates
        # The cluster adds only the shamt-select muxes on top of the parts.
        assert parts <= cluster <= parts + 16
