"""Properties of the fault-universe shard planner."""

import random

import pytest

from repro.errors import ReproRuntimeError
from repro.runtime.sharding import (
    DEFAULT_OVERSUBSCRIPTION,
    MIN_SHARD_SIZE,
    plan_shards,
)


def _assert_partition(ranges, n_items):
    """Shards must tile [0, n_items) exactly, in order, without gaps."""
    assert ranges[0][0] == 0
    assert ranges[-1][1] == n_items
    for (lo, hi), (nlo, _nhi) in zip(ranges, ranges[1:], strict=False):
        assert hi == nlo
    for lo, hi in ranges:
        assert lo < hi


class TestPlanShards:
    def test_single_worker_single_shard(self):
        assert plan_shards(1000, 1) == [(0, 1000)]

    def test_small_universe_stays_whole(self):
        assert plan_shards(MIN_SHARD_SIZE, 8) == [(0, MIN_SHARD_SIZE)]
        assert plan_shards(10, 8) == [(0, 10)]

    def test_empty_universe(self):
        assert plan_shards(0, 4) == []

    def test_oversubscription_target(self):
        ranges = plan_shards(10_000, 4)
        assert len(ranges) == 4 * DEFAULT_OVERSUBSCRIPTION
        _assert_partition(ranges, 10_000)

    def test_min_size_floor_caps_shard_count(self):
        # 300 items at the default 64-class floor: at most 4 shards, no
        # matter how many workers ask for slices.
        ranges = plan_shards(300, 16)
        assert len(ranges) == 300 // MIN_SHARD_SIZE
        _assert_partition(ranges, 300)
        assert all(hi - lo >= MIN_SHARD_SIZE for lo, hi in ranges)

    def test_balanced_within_one(self):
        ranges = plan_shards(1003, 4)
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        assert plan_shards(5231, 8) == plan_shards(5231, 8)

    @pytest.mark.parametrize("seed", range(20))
    def test_random_partitions_are_exact(self, seed):
        rng = random.Random(seed)
        n_items = rng.randrange(1, 20_000)
        jobs = rng.randrange(1, 33)
        over = rng.randrange(1, 6)
        floor = rng.randrange(1, 200)
        ranges = plan_shards(n_items, jobs, over, floor)
        _assert_partition(ranges, n_items)
        if n_items > floor:
            assert len(ranges) <= max(1, jobs * over)

    def test_invalid_params(self):
        with pytest.raises(ReproRuntimeError):
            plan_shards(100, 0)
        with pytest.raises(ReproRuntimeError):
            plan_shards(100, 2, oversubscription=0)
        with pytest.raises(ReproRuntimeError):
            plan_shards(100, 2, min_shard_size=0)
        with pytest.raises(ReproRuntimeError):
            plan_shards(100, 2, lane_align=0)


class TestLaneAlignment:
    def test_interior_boundaries_snap_to_multiples(self):
        ranges = plan_shards(10_000, 4, lane_align=63)
        _assert_partition(ranges, 10_000)
        for _lo, hi in ranges[:-1]:
            assert hi % 63 == 0
        # Only the tail shard may carry a partial final word.

    def test_align_one_is_the_identity(self):
        assert plan_shards(1003, 4, lane_align=1) == plan_shards(1003, 4)

    def test_single_shard_never_splits(self):
        assert plan_shards(50, 8, lane_align=63) == [(0, 50)]

    def test_colliding_boundaries_merge_shards(self):
        # With an alignment close to the shard size, neighbouring
        # boundaries can snap to the same multiple; the duplicates must
        # merge instead of emitting empty shards.
        ranges = plan_shards(400, 4, min_shard_size=16, lane_align=255)
        _assert_partition(ranges, 400)
        assert all(hi > lo for lo, hi in ranges)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_aligned_partitions_are_exact(self, seed):
        rng = random.Random(seed)
        n_items = rng.randrange(1, 20_000)
        jobs = rng.randrange(1, 17)
        align = rng.choice((1, 7, 15, 63, 255, 1023))
        ranges = plan_shards(n_items, jobs, lane_align=align)
        _assert_partition(ranges, n_items)
        for _lo, hi in ranges[:-1]:
            assert hi % align == 0
