"""Unit tests for the delay-slot-aware CFG builder."""

from repro.analysis.cfg import (
    REG_HI,
    REG_LO,
    build_cfg,
    instruction_effects,
)
from repro.isa.assembler import assemble
from repro.isa.encoding import decode, encode


def effects(mnemonic, **fields):
    return instruction_effects(decode(encode(mnemonic, **fields)))


class TestInstructionEffects:
    def test_rtype(self):
        reads, writes = effects("addu", rd=3, rs=1, rt=2)
        assert reads == {1, 2}
        assert writes == {3}

    def test_zero_register_is_neither_read_nor_written(self):
        reads, writes = effects("addu", rd=0, rs=0, rt=2)
        assert reads == {2}
        assert writes == set()

    def test_mult_writes_hi_lo(self):
        _, writes = effects("mult", rs=1, rt=2)
        assert writes == {REG_HI, REG_LO}

    def test_mflo_reads_lo(self):
        reads, writes = effects("mflo", rd=4)
        assert reads == {REG_LO}
        assert writes == {4}

    def test_mfhi_reads_hi(self):
        reads, _ = effects("mfhi", rd=4)
        assert reads == {REG_HI}

    def test_store_reads_both(self):
        reads, writes = effects("sw", rt=5, rs=6, imm=0)
        assert reads == {5, 6}
        assert writes == set()

    def test_load_writes_rt(self):
        reads, writes = effects("lw", rt=5, rs=6, imm=0)
        assert reads == {6}
        assert writes == {5}

    def test_jal_writes_ra(self):
        _, writes = effects("jal", target=4)
        assert writes == {31}


class TestBuildCfg:
    def test_block_includes_delay_slot(self):
        program = assemble(
            """
.text
start:
    addu $t0, $0, $0
    beq $t0, $0, done
    addiu $t1, $0, 1    # delay slot: same block as the branch
    addiu $t2, $0, 2
done:
    j done
    nop
"""
        )
        cfg = build_cfg(program)
        first = cfg.blocks[0]
        # addu, beq, delay slot -> 3 instructions in the entry block.
        assert len(first.instrs) == 3
        ct = first.control_transfer()
        assert ct is not None and ct.decoded.mnemonic == "beq"
        # Conditional: falls through and branches.
        assert len(first.successors) == 2

    def test_unconditional_b_has_single_target_edge(self):
        program = assemble(
            """
.text
    b skip
    nop
    addiu $t0, $0, 1    # unreachable
skip:
    j skip
    nop
"""
        )
        cfg = build_cfg(program)
        entry = cfg.blocks[cfg.entry]
        assert len(entry.successors) == 1
        reachable = cfg.reachable()
        dead = [b for b in cfg.blocks if b.index not in reachable]
        assert len(dead) == 1
        assert dead[0].instrs[0].decoded.mnemonic == "addiu"

    def test_jr_is_an_exit(self):
        program = assemble(
            """
.text
    jr $ra
    nop
"""
        )
        cfg = build_cfg(program)
        assert cfg.blocks[cfg.entry].successors == []

    def test_jal_has_call_and_return_edges(self):
        program = assemble(
            """
.text
    jal sub
    nop
    j end
    nop
sub:
    jr $ra
    nop
end:
    j end
    nop
"""
        )
        cfg = build_cfg(program)
        entry = cfg.blocks[cfg.entry]
        targets = {cfg.blocks[s].start for s in entry.successors}
        assert program.symbols["sub"] in targets  # call edge
        assert 0x8 in targets  # return/fallthrough edge

    def test_line_map_populated_by_assembler(self):
        program = assemble(".text\n    addu $t0, $0, $0\nhalt: j halt\n    nop\n")
        cfg = build_cfg(program)
        lines = [i.line for i in cfg.instructions()]
        assert lines == [2, 3, 4]
