"""Unit tests for hierarchical netlist composition."""

import pytest

from repro.errors import NetlistError
from repro.faultsim.simulator import LogicSimulator
from repro.library import build_alu
from repro.library.alu import AluOp, alu_reference
from repro.netlist.builder import NetlistBuilder
from repro.netlist.compose import instantiate
from repro.netlist.verify import lint


def half_adder():
    b = NetlistBuilder("HA")
    a = b.input("a", 1)
    x = b.input("x", 1)
    b.output("sum", b.xor(a[0], x[0]))
    b.output("carry", b.and_(a[0], x[0]))
    return b.build()


class TestInstantiate:
    def test_two_instances_compose_full_adder(self):
        b = NetlistBuilder("FA")
        a = b.input("a", 1)
        x = b.input("x", 1)
        cin = b.input("cin", 1)
        ha1 = instantiate(b, half_adder(), {"a": a, "x": x}, name="ha1")
        ha2 = instantiate(
            b, half_adder(), {"a": ha1["sum"], "x": cin}, name="ha2"
        )
        b.output("sum", ha2["sum"])
        b.output("cout", b.or_(ha1["carry"][0], ha2["carry"][0]))
        nl = b.build()
        lint(nl)
        sim = LogicSimulator(nl)
        pats = [dict(a=av, x=xv, cin=cv)
                for av in (0, 1) for xv in (0, 1) for cv in (0, 1)]
        out = sim.run_combinational(pats)
        for i, p in enumerate(pats):
            total = p["a"] + p["x"] + p["cin"]
            assert out["sum"][i] == total & 1
            assert out["cout"][i] == total >> 1

    def test_instantiated_component_equivalent(self):
        b = NetlistBuilder("wrap")
        a = b.input("a", 8)
        x = b.input("x", 8)
        func = b.input("func", 4)
        out = instantiate(
            b, build_alu(width=8), {"a": a, "b": x, "func": func}
        )
        b.output("result", out["result"])
        nl = b.build()
        lint(nl)
        sim = LogicSimulator(nl)
        pats = [dict(a=0xF0, x=0x0F, func=int(op)) for op in AluOp]
        res = sim.run_combinational(pats)
        for p, r in zip(pats, res["result"], strict=True):
            assert r == alu_reference(AluOp(p["func"]), 0xF0, 0x0F, width=8)

    def test_output_binding_feedback(self):
        # Pre-allocate a net, bind it as one instance's output and read it
        # in the parent.
        b = NetlistBuilder("fb")
        a = b.input("a", 1)
        x = b.input("x", 1)
        pre = [b.netlist.new_net("pre")]
        instantiate(b, half_adder(), {"a": a, "x": x, "sum": pre})
        b.output("y", b.not_(pre[0]))
        nl = b.build()
        lint(nl)
        sim = LogicSimulator(nl)
        out = sim.run_combinational([dict(a=1, x=0)])
        assert out["y"][0] == 0  # not(1 xor 0)

    def test_sequential_child(self):
        child = NetlistBuilder("reg")
        d = child.input("d", 4)
        child.output("q", child.register_word(d, init=0x5))
        b = NetlistBuilder("top")
        data = b.input("data", 4)
        out = instantiate(b, child.build(), {"d": data})
        b.output("q", out["q"])
        sim = LogicSimulator(b.build())
        outs, _ = sim.run_sequence([dict(data=0xF), dict(data=0x0)])
        assert [o["q"] for o in outs] == [0x5, 0xF]

    def test_missing_input_rejected(self):
        b = NetlistBuilder("t")
        a = b.input("a", 1)
        with pytest.raises(NetlistError):
            instantiate(b, half_adder(), {"a": a})

    def test_unknown_port_rejected(self):
        b = NetlistBuilder("t")
        a = b.input("a", 1)
        with pytest.raises(NetlistError):
            instantiate(b, half_adder(), {"a": a, "x": a, "bogus": a})

    def test_width_mismatch_rejected(self):
        b = NetlistBuilder("t")
        a = b.input("a", 2)
        with pytest.raises(NetlistError):
            instantiate(b, half_adder(), {"a": a, "x": a})

    def test_net_names_prefixed(self):
        b = NetlistBuilder("t")
        a = b.input("a", 1)
        x = b.input("x", 1)
        instantiate(b, half_adder(), {"a": a, "x": x}, name="inst7")
        assert any(
            name.startswith("inst7/") for name in b.netlist.net_names.values()
        )
