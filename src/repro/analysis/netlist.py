"""Netlist testability analysis: structural lint + SCOAP screening.

:func:`analyze_netlist` folds the structural lint findings from
:mod:`repro.netlist.verify` (rules ``NL001``–``NL004``) and the SCOAP
testability findings (rules ``NL101``–``NL103``) into one diagnostic
:class:`~repro.analysis.diagnostics.Report`.  The testability rules are
only evaluated on structurally sound netlists — SCOAP over an undriven
or multiply-driven net would report nonsense.

Kept out of ``repro.analysis.__init__`` on purpose: this module imports
``repro.netlist.verify``, which itself uses the diagnostic model, and
the one-way import chain (verify -> diagnostics, this -> verify) must
not close into a cycle through the package init.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Report
from repro.analysis.scoap import (
    ScoapAnalysis,
    compute_scoap,
    untestable_fault_classes,
)
from repro.faultsim.faults import FaultList, build_fault_list
from repro.netlist.netlist import Netlist
from repro.netlist.verify import lint


def analyze_netlist(
    netlist: Netlist,
    fault_list: FaultList | None = None,
    analysis: ScoapAnalysis | None = None,
) -> Report:
    """Analyze one netlist: structural lint, then testability screening.

    Args:
        netlist: circuit to analyze.
        fault_list: reuse an existing fault universe (built when omitted).
        analysis: reuse precomputed SCOAP metrics (computed when omitted).

    Returns:
        A report whose ``ok`` reflects structural soundness; testability
        findings (``NL1xx``) are warnings/info and never gate.
    """
    report = Report(netlist.name, "netlist")
    lint_report = lint(netlist, strict=False)
    report.extend(lint_report.diagnostics)
    if not lint_report.ok:
        return report

    if analysis is None:
        analysis = compute_scoap(netlist)
    # Only driven nets can meaningfully be "constant" and only nets that
    # actually feed logic are worth an unobservability warning (unread
    # gate outputs are already NL004).
    driven = {g.output for g in netlist.gates}
    driven.update(d.q for d in netlist.dffs)
    driven.update(n for p in netlist.input_ports() for n in p.nets)
    read = {n for g in netlist.gates for n in g.inputs}
    read.update(d.d for d in netlist.dffs)
    read.update(n for p in netlist.output_ports() for n in p.nets)

    for net in sorted(driven):
        value = analysis.constant_value(net)
        if value is None or net < 2:
            continue
        name = netlist.net_names.get(net, f"n{net}")
        report.add(
            "NL101",
            f"net {name} is structurally constant {value} "
            f"(s-a-{value} on it is untestable)",
            net=net,
        )
    for net in sorted(read - analysis.observable):
        if net < 2:
            continue
        name = netlist.net_names.get(net, f"n{net}")
        report.add(
            "NL102",
            f"net {name} has no structural path to any output port",
            net=net,
        )

    if fault_list is None:
        fault_list = build_fault_list(netlist)
    untestable = untestable_fault_classes(fault_list, analysis)
    report.add(
        "NL103",
        f"{len(untestable)} of {fault_list.n_collapsed} collapsed "
        "stuck-at fault classes are structurally untestable",
    )
    return report
