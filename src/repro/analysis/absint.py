"""Abstract interpretation of assembled SBST programs.

A worklist fixpoint over the delay-slot-aware CFG (:mod:`repro.analysis.
cfg`) propagates one :class:`AbsState` — 34 abstract registers
(HI/LO as pseudo-registers, matching :data:`~repro.analysis.cfg.REG_HI`)
plus an abstract memory map — through every reachable basic block.  The
per-instruction transfer function mirrors the behavioural CPU
(:mod:`repro.plasma.cpu`) *exactly* on every value the component tracer
records, because the reach screen (:mod:`repro.analysis.reach`) derives
its abstract stimulus patterns from these facts and its soundness
argument is "every traced concrete stimulus entry is covered by some
derived abstract pattern" (DESIGN.md §15).

Soundness policies for the hard cases:

* **indirect control** (``jr``/``jalr`` reachable): every block becomes
  reachable and a fully havocked state (all registers, HI/LO and data
  memory unknown) is joined into every block entry.  Instruction words,
  PCs and control bundles stay exact — they do not depend on state.
* **calls** (``jal``/``jalr``): the fall-through (return) edge carries
  the havocked state — the callee may have changed anything.
* **split branch/delay-slot pairs** (a leader lands on a delay slot):
  the target edge carries the block's out-state with the slot
  instruction's effects havocked.
* **stores**: the screen's soundness target is the *traced good-machine
  run* (fault grading replays the trace of the one concrete execution of
  the program — there is no faulty-machine program run).  That run is
  deterministic and cheap, so :func:`observe_stores` executes it once
  behaviourally and records the exact set of stored word addresses.  If
  none lies in a code segment the static instruction image is valid for
  the traced run, and a store at an abstractly-imprecise address merely
  havocs the observed write set.  Without that dynamic evidence (program
  did not halt, or the caller opted out) a store that cannot be proven
  outside every code segment degrades the whole analysis — a
  non-relational domain cannot bound response pointers advanced inside
  counted loops, so the dynamic pass is what keeps shipped phase
  programs precise.
* **undecodable reachable words** degrade the analysis the same way.

A degraded analysis is still *sound*: it simply proves nothing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.analysis.absword import (
    TOP,
    AbstractWord,
    const,
)
from repro.analysis.cfg import (
    REG_HI,
    REG_LO,
    BasicBlock,
    ControlFlowGraph,
    Instr,
    build_cfg,
)
from repro.isa.program import Program
from repro.library.alu import AluOp
from repro.library.multiplier import MulDivOp, muldiv_reference
from repro.plasma.controls import (
    ASource,
    BranchType,
    BSource,
    ControlBundle,
    MemSize,
    RegDest,
    WbSource,
    decode_controls,
)

#: Joins at a block entry before interval bounds are widened.
_WIDEN_AFTER = 2

_ZERO = const(0)


class AnalysisDegraded(Exception):
    """The abstraction cannot certify the static program image; raised
    internally and converted into a degraded :class:`ProgramAbstraction`."""


# ------------------------------------------------------------------ memory


class AbsMemory:
    """Abstract data-memory map over the program's initial image.

    The initial image is exact (the sparse behavioural memory reads 0
    for untouched words); stores at exactly-known addresses update a
    write overlay; a store at an imprecise address havocs the whole map
    (every later load reads ⊤).  The image mapping is shared, never
    copied.
    """

    __slots__ = ("image", "writes", "havoc")

    def __init__(
        self,
        image: Mapping[int, int],
        writes: dict[int, AbstractWord] | None = None,
        havoc: bool = False,
    ) -> None:
        self.image = image
        self.writes: dict[int, AbstractWord] = writes if writes is not None else {}
        self.havoc = havoc

    def copy(self) -> "AbsMemory":
        return AbsMemory(self.image, dict(self.writes), self.havoc)

    def load_word(self, addr: int) -> AbstractWord:
        """Abstract value of the aligned word at a known byte address."""
        if self.havoc:
            return TOP
        addr &= ~3
        hit = self.writes.get(addr)
        if hit is not None:
            return hit
        return const(self.image.get(addr, 0))

    def store_word(self, addr: int, value: AbstractWord) -> None:
        """Strong update at a known aligned address (flow-sensitive)."""
        if not self.havoc:
            self.writes[addr & ~3] = value

    def havocked(self) -> "AbsMemory":
        return AbsMemory(self.image, None, True)

    def havoc_words(self, words: frozenset[int]) -> "AbsMemory":
        """Forget the value of every word in the observed write set.

        Used instead of a full havoc when the concrete run's store
        addresses are known: any store — wherever its abstract address
        points — can only have written words in this set.
        """
        if self.havoc:
            return AbsMemory(self.image, None, True)
        writes = dict(self.writes)
        for addr in words:
            writes[addr] = TOP
        return AbsMemory(self.image, writes)

    def join(self, other: "AbsMemory") -> "AbsMemory":
        if self.havoc or other.havoc:
            return AbsMemory(self.image, None, True)
        writes: dict[int, AbstractWord] = {}
        for addr in self.writes.keys() | other.writes.keys():
            writes[addr] = self.load_word(addr).join(other.load_word(addr))
        return AbsMemory(self.image, writes)

    def widen(self, new: "AbsMemory") -> "AbsMemory":
        if self.havoc or new.havoc:
            return AbsMemory(self.image, None, True)
        writes: dict[int, AbstractWord] = {}
        for addr in self.writes.keys() | new.writes.keys():
            writes[addr] = self.load_word(addr).widen(new.load_word(addr))
        return AbsMemory(self.image, writes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbsMemory):
            return NotImplemented
        return self.havoc == other.havoc and self.writes == other.writes

    def __hash__(self) -> int:  # pragma: no cover - never hashed
        raise TypeError("AbsMemory is unhashable")


# ------------------------------------------------------------------- state


@dataclass
class AbsState:
    """Abstract machine state at a program point: 34 registers + memory."""

    regs: list[AbstractWord]
    mem: AbsMemory

    def copy(self) -> "AbsState":
        return AbsState(list(self.regs), self.mem.copy())

    def join(self, other: "AbsState") -> "AbsState":
        return AbsState(
            [a.join(b) for a, b in zip(self.regs, other.regs)],
            self.mem.join(other.mem),
        )

    def widen(self, new: "AbsState") -> "AbsState":
        return AbsState(
            [a.widen(b) for a, b in zip(self.regs, new.regs)],
            self.mem.widen(new.mem),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbsState):
            return NotImplemented
        return self.regs == other.regs and self.mem == other.mem

    def havoc_all(self, written: frozenset[int] | None = None) -> "AbsState":
        regs = [TOP] * len(self.regs)
        regs[0] = _ZERO
        if written is None:
            return AbsState(regs, self.mem.havocked())
        return AbsState(regs, self.mem.havoc_words(written))


# ------------------------------------------------------------------- facts


@dataclass(frozen=True)
class InstrFacts:
    """Everything the tracer records about one static instruction, as
    abstract values covering every dynamic execution of it."""

    instr: Instr
    bundle: ControlBundle
    rs_val: AbstractWord
    rt_val: AbstractWord
    a_bus: AbstractWord
    b_bus: AbstractWord
    alu_result: AbstractWord
    shift_result: AbstractWord
    mem_value: AbstractWord
    mem_word: AbstractWord
    mem_steered: AbstractWord
    lo: AbstractWord
    hi: AbstractWord
    wb_value: AbstractWord
    wb_dest: int
    uses_alu_result: bool
    uses_shifter: bool
    is_muldiv_write: bool
    is_branch: bool
    needs_muldiv: bool
    has_mem_access: bool
    branch_target: AbstractWord
    branch_taken: AbstractWord

    @property
    def pc_plus4(self) -> int:
        return (self.instr.address + 4) & 0xFFFF_FFFF


@dataclass
class ProgramAbstraction:
    """Result of abstractly interpreting one assembled program.

    ``facts`` holds one :class:`InstrFacts` per *reachable* instruction
    address; unreachable instructions never trace and derive no
    patterns.  A ``degraded`` abstraction proves nothing (the reach
    screen marks every fault class unknown).
    """

    digest: str
    entry: int
    entry_word: int
    facts: dict[int, InstrFacts] = field(default_factory=dict)
    degraded: bool = False
    degrade_reason: str = ""
    indirect_control: bool = False
    n_blocks_reachable: int = 0


def program_digest(program: Program) -> str:
    """Content digest of an assembled program (identity for reach caching)."""
    h = hashlib.sha256()
    h.update(f"entry:{program.entry}".encode())
    for seg in sorted(program.segments, key=lambda s: (s.base, s.is_code)):
        h.update(f"seg:{seg.base}:{int(seg.is_code)}".encode())
        for word in seg.words:
            h.update(word.to_bytes(4, "little"))
    return h.hexdigest()[:16]


# ---------------------------------------------------------------- transfer


def _abs_alu(op: AluOp, a: AbstractWord, b: AbstractWord) -> AbstractWord:
    """Abstract mirror of :func:`repro.library.alu.alu_reference`."""
    if op is AluOp.PASS_A:
        return _ZERO  # idle encoding: no pass-through path exists
    if op is AluOp.PASS_B:
        return b
    if op is AluOp.ADD:
        return a.add(b)
    if op is AluOp.SUB:
        return a.sub(b)
    if op is AluOp.AND:
        return a.band(b)
    if op is AluOp.OR:
        return a.bor(b)
    if op is AluOp.XOR:
        return a.bxor(b)
    if op is AluOp.NOR:
        return a.bnor(b)
    if op is AluOp.SLT:
        return a.slt(b)
    if op is AluOp.SLTU:
        return a.sltu(b)
    raise AssertionError(f"unhandled op {op}")  # pragma: no cover


def _abs_busmux_b(
    b_source: BSource, rt_val: AbstractWord, imm: int
) -> AbstractWord:
    """Abstract b-bus; every non-``RT`` choice is a pure function of the
    (constant) immediate, so it delegates to the bit-true reference."""
    from repro.plasma.busmux import busmux_reference

    if b_source is BSource.RT:
        return rt_val
    _, b_bus, _ = busmux_reference(0, int(b_source), 0, 0, 0, imm, 0)
    return const(b_bus)


def _abs_shift(
    value: AbstractWord, shamt: int | None, left: bool, arith: bool
) -> AbstractWord:
    """Abstract mirror of :func:`repro.library.shifter.shifter_reference`."""
    if shamt is None:
        return TOP
    if left:
        return value.shl(shamt)
    if arith:
        return value.sar(shamt)
    return value.shr(shamt)


def _abs_branch_taken(
    bt: BranchType, rs: AbstractWord, rt: AbstractWord
) -> AbstractWord:
    """Abstract mirror of the branch-condition reference (result 0/1)."""
    from repro.analysis.absword import BOOL_UNKNOWN

    if bt is BranchType.NONE:
        return _ZERO
    if bt is BranchType.ALWAYS:
        return const(1)
    if bt in (BranchType.EQ, BranchType.NE):
        eq = rs.decide_eq(rt)
        if eq is None:
            return BOOL_UNKNOWN
        taken = eq if bt is BranchType.EQ else not eq
        return const(int(taken))
    s_lo, s_hi = rs.signed_bounds()
    if bt is BranchType.LTZ:
        taken = None if s_lo < 0 <= s_hi else s_hi < 0
    elif bt is BranchType.GEZ:
        taken = None if s_lo < 0 <= s_hi else s_lo >= 0
    elif bt is BranchType.LEZ:
        taken = None if s_lo <= 0 <= s_hi and s_hi > 0 else s_hi <= 0
    else:  # GTZ
        taken = None if s_lo <= 0 <= s_hi and s_hi > 0 else s_lo > 0
    if taken is None:
        return BOOL_UNKNOWN
    return const(int(taken))


class _Interpreter:
    """One fixpoint run over one program."""

    def __init__(
        self,
        program: Program,
        written_words: frozenset[int] | None = None,
    ) -> None:
        self.program = program
        self.cfg: ControlFlowGraph = build_cfg(program)
        self.image = program.to_image()
        self.code_ranges: list[tuple[int, int]] = [
            (seg.base, seg.end)
            for seg in program.segments
            if seg.is_code and seg.words
        ]
        #: Word addresses the concrete run stored to (None = unobserved).
        #: When present, interpret_program has already checked that none
        #: lies in a code segment, so the static image is trusted and
        #: imprecise stores havoc only this set.
        self.written_words = written_words
        self.indirect = False

    # ------------------------------------------------------------ helpers

    def _hits_code(self, lo: int, hi: int) -> bool:
        """Could a byte access in ``[lo, hi]`` touch a code segment?"""
        return any(lo < end and base <= hi for base, end in self.code_ranges)

    def _degrade(self, instr: Instr, why: str) -> None:
        raise AnalysisDegraded(f"@{instr.address:#010x}: {why}")

    # ----------------------------------------------------------- transfer

    def transfer(
        self, instr: Instr, state: AbsState
    ) -> tuple[InstrFacts, AbsState]:
        """Execute one instruction abstractly; mirrors ``PlasmaCPU.step``."""
        decoded = instr.decoded
        if decoded is None:
            self._degrade(instr, "reachable word is not decodable")
            raise AssertionError  # pragma: no cover - _degrade raises
        bundle = decode_controls(decoded)
        state = state.copy()

        rs_val = state.regs[decoded.rs]
        rt_val = state.regs[decoded.rt]
        pc_plus4 = (instr.address + 4) & 0xFFFF_FFFF

        uses_alu_result = (
            bundle.mem_read
            or bundle.mem_write
            or (bundle.reg_write and bundle.wb_source is WbSource.ALU)
            or (bundle.branch_type is not BranchType.NONE
                and not bundle.jump_reg and not bundle.jump_abs)
        )
        uses_shifter = bundle.reg_write and bundle.wb_source is WbSource.SHIFT
        is_muldiv_write = bundle.muldiv_op is not MulDivOp.IDLE
        is_branch = bundle.branch_type is not BranchType.NONE
        needs_muldiv = (
            is_muldiv_write
            or bundle.wb_source in (WbSource.LO, WbSource.HI)
        )

        # ----------------------------------------------------- datapath
        a_bus = (
            const(pc_plus4)
            if bundle.a_source is ASource.PC_PLUS4 else rs_val
        )
        b_bus = _abs_busmux_b(bundle.b_source, rt_val, decoded.imm)
        alu_result = _abs_alu(bundle.alu_func, a_bus, b_bus)

        shift_result = _ZERO
        if uses_shifter:
            if bundle.shift_variable:
                masked = rs_val.band(const(31))
                shamt = masked.as_const()
            else:
                shamt = decoded.shamt
            shift_result = _abs_shift(
                rt_val, shamt, bundle.shift_left, bundle.shift_arith
            )

        # ------------------------------------------------- memory access
        mem_value = _ZERO
        mem_word = _ZERO
        mem_steered = _ZERO
        if bundle.mem_read:
            mem_value, mem_word = self._load(instr, bundle, alu_result, state)
        elif bundle.mem_write:
            mem_steered = self._store(instr, bundle, alu_result, rt_val, state)

        # ------------------------------------------------- mul/div issue
        if bundle.muldiv_op is MulDivOp.MTHI:
            state.regs[REG_HI] = rs_val
        elif bundle.muldiv_op is MulDivOp.MTLO:
            state.regs[REG_LO] = rs_val
        elif is_muldiv_write:
            rs_c, rt_c = rs_val.as_const(), rt_val.as_const()
            if rs_c is not None and rt_c is not None:
                hi_c, lo_c = muldiv_reference(bundle.muldiv_op, rs_c, rt_c)
                state.regs[REG_HI] = const(hi_c)
                state.regs[REG_LO] = const(lo_c)
            else:
                state.regs[REG_HI] = TOP
                state.regs[REG_LO] = TOP
        lo_val = state.regs[REG_LO]
        hi_val = state.regs[REG_HI]

        # --------------------------------------------------- write-back
        wb_value = _ZERO
        wb_dest = 0
        if bundle.reg_write:
            if bundle.reg_dest is RegDest.RD:
                wb_dest = decoded.rd
            elif bundle.reg_dest is RegDest.RT:
                wb_dest = decoded.rt
            else:
                wb_dest = 31
            if bundle.wb_source is WbSource.ALU:
                wb_value = alu_result
            elif bundle.wb_source is WbSource.SHIFT:
                wb_value = shift_result
            elif bundle.wb_source is WbSource.MEM:
                wb_value = mem_value
            elif bundle.wb_source is WbSource.LO:
                wb_value = lo_val
            else:
                wb_value = hi_val
            if wb_dest != 0:
                state.regs[wb_dest] = wb_value

        # ----------------------------------------------------- branches
        branch_target: AbstractWord = _ZERO
        branch_taken: AbstractWord = _ZERO
        if is_branch:
            if bundle.jump_abs:
                branch_target = const(
                    (pc_plus4 & 0xF000_0000) | (decoded.target << 2)
                )
            elif bundle.jump_reg:
                branch_target = rs_val
            else:
                branch_target = alu_result
            branch_taken = _abs_branch_taken(
                bundle.branch_type, rs_val, rt_val
            )

        facts = InstrFacts(
            instr=instr,
            bundle=bundle,
            rs_val=rs_val,
            rt_val=rt_val,
            a_bus=a_bus,
            b_bus=b_bus,
            alu_result=alu_result,
            shift_result=shift_result,
            mem_value=mem_value,
            mem_word=mem_word,
            mem_steered=mem_steered,
            lo=lo_val,
            hi=hi_val,
            wb_value=wb_value,
            wb_dest=wb_dest,
            uses_alu_result=uses_alu_result,
            uses_shifter=uses_shifter,
            is_muldiv_write=is_muldiv_write,
            is_branch=is_branch,
            needs_muldiv=needs_muldiv,
            has_mem_access=bundle.mem_read or bundle.mem_write,
            branch_target=branch_target,
            branch_taken=branch_taken,
        )
        return facts, state

    def _load(
        self,
        instr: Instr,
        bundle: ControlBundle,
        addr: AbstractWord,
        state: AbsState,
    ) -> tuple[AbstractWord, AbstractWord]:
        """Abstract ``_do_load``: (extracted value, full aligned word)."""
        addr_c = addr.as_const()
        if addr_c is None:
            return TOP, TOP
        if bundle.mem_size is MemSize.WORD and addr_c % 4:
            self._degrade(instr, f"unaligned word load at {addr_c:#010x}")
        if bundle.mem_size is MemSize.HALF and addr_c % 2:
            self._degrade(instr, f"unaligned halfword load at {addr_c:#010x}")
        word = state.mem.load_word(addr_c & ~3)
        if bundle.mem_size is MemSize.BYTE:
            value = word.extract_byte(addr_c & 3, bundle.mem_signed)
        elif bundle.mem_size is MemSize.HALF:
            value = word.extract_half(addr_c & 2, bundle.mem_signed)
        else:
            value = word
        return value, word

    def _store(
        self,
        instr: Instr,
        bundle: ControlBundle,
        addr: AbstractWord,
        data: AbstractWord,
        state: AbsState,
    ) -> AbstractWord:
        """Abstract ``_do_store``; returns the steered bus word."""
        # Steered word, mirroring mctrl_store_reference.
        if bundle.mem_size is MemSize.BYTE:
            byte = data.band(const(0xFF))
            steered = (
                byte.bor(byte.shl(8)).bor(byte.shl(16)).bor(byte.shl(24))
            )
        elif bundle.mem_size is MemSize.HALF:
            half = data.band(const(0xFFFF))
            steered = half.bor(half.shl(16))
        else:
            steered = data

        addr_c = addr.as_const()
        if addr_c is None:
            if self.written_words is not None:
                # Concrete run validated: no store touched code, and every
                # stored word is in the observed set.
                state.mem = state.mem.havoc_words(self.written_words)
                return steered
            if self._hits_code(addr.lo, addr.hi):
                self._degrade(
                    instr,
                    "store address cannot be proven outside every code "
                    "segment (possible self-modifying code)",
                )
            state.mem = state.mem.havocked()
            return steered

        if bundle.mem_size is MemSize.HALF and addr_c % 2:
            self._degrade(instr, f"unaligned halfword store at {addr_c:#010x}")
        if bundle.mem_size is MemSize.WORD and addr_c % 4:
            self._degrade(instr, f"unaligned word store at {addr_c:#010x}")
        if self.written_words is None and self._hits_code(addr_c, addr_c + 3):
            self._degrade(
                instr, f"store into a code segment at {addr_c:#010x}"
            )

        base = addr_c & ~3
        if bundle.mem_size is MemSize.WORD:
            state.mem.store_word(base, data)
        else:
            old = state.mem.load_word(base)
            if bundle.mem_size is MemSize.BYTE:
                shift = 8 * (addr_c & 3)
                keep = const(~(0xFF << shift))
                new = old.band(keep).bor(
                    data.band(const(0xFF)).shl(shift)
                )
            else:
                shift = 8 * (addr_c & 2)
                keep = const(~(0xFFFF << shift))
                new = old.band(keep).bor(
                    data.band(const(0xFFFF)).shl(shift)
                )
            state.mem.store_word(base, new)
        return steered

    # ----------------------------------------------------------- the run

    def _block_edges(
        self, block: BasicBlock, out_state: AbsState
    ) -> list[tuple[int, AbsState]]:
        """Successor edges with call/split-pair havoc policies applied."""
        ct = block.control_transfer()
        edges: list[tuple[int, AbsState]] = []
        fall_idx = self.cfg.block_at.get(block.end)
        havoc = out_state.havoc_all(self.written_words)

        if ct is not None and ct is block.instrs[-1]:
            # Split pair: the delay slot is the first instruction of the
            # fall-through block.  The target edge must over-approximate
            # "slot executed first": havoc the slot's effects.
            target = ct.branch_target()
            if fall_idx is not None:
                slot = self.cfg.blocks[fall_idx].instrs[0]
                if slot.decoded is None or slot.is_control:
                    self._degrade(
                        slot, "control transfer or undecodable word in a "
                        "branch delay slot"
                    )
                edges.append((fall_idx, out_state))
                if target is not None:
                    tgt_idx = self.cfg.block_at.get(target)
                    if tgt_idx is not None:
                        slot_state = self._havoc_instr_effects(
                            slot, out_state
                        )
                        edges.append((tgt_idx, slot_state))
            d = ct.decoded
            if d is not None and d.mnemonic in ("jr", "jalr"):
                self.indirect = True
            return edges

        mnem = ""
        if ct is not None and ct.decoded is not None:
            mnem = ct.decoded.mnemonic
        for succ in block.successors:
            succ_start = self.cfg.blocks[succ].start
            is_fall = succ_start == block.end
            if mnem in ("jal", "jalr") and is_fall:
                edges.append((succ, havoc))  # callee ran in between
            else:
                edges.append((succ, out_state))
        if mnem in ("jr", "jalr"):
            self.indirect = True
        return edges

    def _havoc_instr_effects(
        self, instr: Instr, state: AbsState
    ) -> AbsState:
        """Out-state with one instruction's possible effects havocked."""
        from repro.analysis.cfg import instruction_effects

        result = state.copy()
        assert instr.decoded is not None
        _reads, writes = instruction_effects(instr.decoded)
        for reg in writes:
            result.regs[reg] = TOP
        if instr.decoded.spec.kind.name == "STORE":
            if self.written_words is not None:
                result.mem = result.mem.havoc_words(self.written_words)
            else:
                result.mem = result.mem.havocked()
        return result

    def run(self) -> ProgramAbstraction:
        digest = program_digest(self.program)
        entry_word = self.image.get(self.program.entry, 0)
        result = ProgramAbstraction(
            digest=digest, entry=self.program.entry, entry_word=entry_word
        )
        if self.cfg.entry is None:
            return result
        try:
            facts, indirect, n_reach = self._fixpoint()
        except AnalysisDegraded as exc:
            result.degraded = True
            result.degrade_reason = str(exc)
            return result
        result.facts = facts
        result.indirect_control = indirect
        result.n_blocks_reachable = n_reach
        return result

    def _initial_state(self) -> AbsState:
        regs = [_ZERO] * 34
        return AbsState(regs, AbsMemory(self.image))

    def _fixpoint(self) -> tuple[dict[int, InstrFacts], bool, int]:
        assert self.cfg.entry is not None
        # Pre-scan: any CFG-reachable jr/jalr forces the indirect
        # fallback (all blocks reachable, havoc joined everywhere).
        reachable = self.cfg.reachable()
        for bi in reachable:
            for instr in self.cfg.blocks[bi].instrs:
                d = instr.decoded
                if d is not None and d.mnemonic in ("jr", "jalr"):
                    self.indirect = True

        initial = self._initial_state()
        in_states: dict[int, AbsState] = {}
        if self.indirect:
            havoc = initial.havoc_all(self.written_words)
            for block in self.cfg.blocks:
                in_states[block.index] = havoc.copy()
            in_states[self.cfg.entry] = (
                in_states[self.cfg.entry].join(initial)
            )
            worklist = [b.index for b in self.cfg.blocks]
        else:
            in_states[self.cfg.entry] = initial
            worklist = [self.cfg.entry]

        joins: dict[int, int] = {}
        pending = set(worklist)
        while worklist:
            bi = worklist.pop()
            pending.discard(bi)
            block = self.cfg.blocks[bi]
            state = in_states[bi].copy()
            for instr in block.instrs:
                _facts, state = self.transfer(instr, state)
            for succ, edge_state in self._block_edges(block, state):
                seen = in_states.get(succ)
                if seen is None:
                    in_states[succ] = edge_state.copy()
                else:
                    joins[succ] = joins.get(succ, 0) + 1
                    if joins[succ] > _WIDEN_AFTER:
                        merged = seen.widen(edge_state)
                    else:
                        merged = seen.join(edge_state)
                    if merged == seen:
                        continue
                    in_states[succ] = merged
                if succ not in pending:
                    pending.add(succ)
                    worklist.append(succ)

        # Final pass: converged in-states -> per-instruction facts.
        facts: dict[int, InstrFacts] = {}
        for bi, in_state in in_states.items():
            state = in_state.copy()
            block = self.cfg.blocks[bi]
            for instr in block.instrs:
                fact, state = self.transfer(instr, state)
                facts[instr.address] = fact
            # Re-run the edge policy so split-pair/delay-slot degrade
            # checks fire deterministically in this pass too.
            self._block_edges(block, state)
        return facts, self.indirect, len(in_states)


class _RecordingMemory:
    """Memory wrapper that records the word address of every store."""

    def __init__(self, inner: object) -> None:
        self._inner = inner
        self.stored_words: set[int] = set()

    def __getattr__(self, name: str) -> object:
        return getattr(self._inner, name)

    def write_word(self, addr: int, value: int) -> None:
        self.stored_words.add(addr & ~3)
        self._inner.write_word(addr, value)  # type: ignore[attr-defined]

    def write_half(self, addr: int, value: int) -> None:
        self.stored_words.add(addr & ~3)
        self._inner.write_half(addr, value)  # type: ignore[attr-defined]

    def write_byte(self, addr: int, value: int) -> None:
        self.stored_words.add(addr & ~3)
        self._inner.write_byte(addr, value)  # type: ignore[attr-defined]


def observe_stores(
    program: Program, max_instructions: int = 2_000_000
) -> frozenset[int] | None:
    """Run the program behaviourally once; return its stored word set.

    The reach screen's soundness target is the traced good-machine run,
    which is deterministic — one cheap instruction-level execution
    yields the *exact* set of word addresses the program ever stores to.
    Returns None when the run fails (no halt within the budget, or a
    simulation error), in which case the interpreter falls back to its
    conservative static store policy.
    """
    from repro.errors import SimulationError
    from repro.plasma.cpu import PlasmaCPU
    from repro.plasma.memory import Memory

    memory = Memory()
    recorder = _RecordingMemory(memory)
    cpu = PlasmaCPU(memory=recorder)  # type: ignore[arg-type]
    cpu.load_program(program)
    try:
        cpu.run(max_instructions=max_instructions)
    except SimulationError:
        return None
    return frozenset(recorder.stored_words)


def interpret_program(
    program: Program, max_instructions: int = 2_000_000
) -> ProgramAbstraction:
    """Abstractly interpret one assembled program (the public entry).

    Runs the program behaviourally first (:func:`observe_stores`); a
    store into a code segment during that run invalidates the static
    instruction image and degrades the whole abstraction.
    """
    written = observe_stores(program, max_instructions)
    if written is not None:
        code_words = {
            seg.base + 4 * i
            for seg in program.segments
            if seg.is_code
            for i in range(len(seg.words))
        }
        hits = written & code_words
        if hits:
            return ProgramAbstraction(
                digest=program_digest(program),
                entry=program.entry,
                entry_word=program.to_image().get(program.entry, 0),
                degraded=True,
                degrade_reason=(
                    "program stores into its own code segment at "
                    f"{min(hits):#010x} (self-modifying code)"
                ),
            )
    return _Interpreter(program, written).run()
