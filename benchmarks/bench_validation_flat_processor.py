"""Experiment V3 — flat whole-processor fault grading (the FlexTest setup).

The paper graded its self-test programs by fault-simulating the *entire
processor netlist* executing them, observing the primary outputs.  This
bench does exactly that on the composed gate-level core: the Phase A+B
self-test runs inside the parallel-fault simulator with the memory bus
observed every cycle.

Grading all ~30k collapsed fault classes flat costs hours in pure Python,
so a uniform random sample provides an unbiased coverage estimate with a
95% confidence interval; the hierarchical Table 5 figure must fall inside
it (plus a small allowance for the universes' boundary differences).
"""

from conftest import cached_campaign, run_once, write_result

from repro.core.methodology import SelfTestMethodology
from repro.plasma.flatsim import flat_campaign

SAMPLE = 600


def run_flat():
    self_test = SelfTestMethodology().build_program("AB")
    return flat_campaign(self_test.program, sample=SAMPLE, seed=7)


def test_flat_processor_validates_table5(benchmark):
    flat = run_once(benchmark, run_flat)
    hier = cached_campaign("AB")
    hier_fc = hier.summary.overall_coverage

    lines = [
        f"flat fault universe : {flat.n_faults_total:,} collapsed classes",
        f"sampled             : {flat.n_sampled:,} classes over "
        f"{flat.cycles:,} cycles",
        f"flat coverage       : {flat.coverage:.2f}% "
        f"(95% CI ±{flat.confidence_95:.2f})",
        f"hierarchical (T5)   : {hier_fc:.2f}%",
    ]
    text = "\n".join(lines)
    write_result("validation_v3_flat_processor.txt", text)
    print("\n" + text)

    # The hierarchical figure must sit inside the sampling CI plus a small
    # systematic allowance (boundary fault bookkeeping, bus-level vs
    # component-level observability).
    assert abs(flat.coverage - hier_fc) < flat.confidence_95 + 4.0
