"""Gate-level netlist substrate.

A :class:`~repro.netlist.netlist.Netlist` is a flat structural circuit:
nets (integer ids), combinational gates, D flip-flops and named ports.  The
:class:`~repro.netlist.builder.NetlistBuilder` layers a word-level (bus)
construction API on top, :mod:`~repro.netlist.levelize` orders gates for
single-pass evaluation, :mod:`~repro.netlist.stats` reports NAND2-equivalent
gate counts (the paper's Table 3 area unit) and :mod:`~repro.netlist.verify`
lints a finished netlist.
"""

from repro.netlist.gates import GATE_COSTS, GateType, eval_gate
from repro.netlist.netlist import DFF, Gate, Netlist, Port, PortDirection
from repro.netlist.builder import NetlistBuilder
from repro.netlist.levelize import levelize
from repro.netlist.stats import NetlistStats, gate_count, nand2_equivalents
from repro.netlist.verify import lint

__all__ = [
    "GATE_COSTS",
    "GateType",
    "eval_gate",
    "DFF",
    "Gate",
    "Netlist",
    "Port",
    "PortDirection",
    "NetlistBuilder",
    "levelize",
    "NetlistStats",
    "gate_count",
    "nand2_equivalents",
    "lint",
]
