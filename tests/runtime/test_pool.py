"""Unit tests for the persistent worker pool and the shard scheduler."""

import os
import time

import pytest

from repro.errors import CheckpointCorrupt
from repro.runtime import RetryPolicy, RuntimeConfig
from repro.runtime.pool import ShardScheduler, WorkerPool
from repro.runtime.sharding import ShardTask


def _config(tmp_path=None, resume=False, attempts=2, timeout=None, jobs=2):
    return RuntimeConfig(
        timeout_seconds=timeout,
        retry=RetryPolicy(max_attempts=attempts, backoff_seconds=0),
        checkpoint_dir=tmp_path,
        resume=resume,
        isolate=True,
        jobs=jobs,
        sleep=lambda s: None,
    )


# Task functions must be module-level: they travel to workers by pickle
# reference over the dispatch pipe.

def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _die(_x):
    os._exit(9)


def _hang(_x):
    time.sleep(60)


def _die_once(flag_path):
    """Crash the worker on the first attempt, succeed on the second."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as handle:
            handle.write("seen")
            handle.flush()
            os.fsync(handle.fileno())
        os._exit(9)
    return "recovered"


_INIT_VALUE = None


def _install(value):
    global _INIT_VALUE
    _INIT_VALUE = value


def _read_init(_x):
    return _INIT_VALUE


def _tasks(fn, n=6, size=10):
    return [
        ShardTask(key=f"t{i:02d}", fn=fn, args=(i,), size=size)
        for i in range(n)
    ]


class TestWorkerPool:
    def test_lifecycle(self):
        with WorkerPool(2) as pool:
            assert len(pool.workers) == 2
            assert all(w.proc.is_alive() for w in pool.workers)
            first = pool.workers[0]
            fresh = pool.replace(first)
            assert fresh is pool.workers[0]
            assert not first.proc.is_alive()
            assert fresh.proc.is_alive()
        assert pool.workers == []

    def test_rejects_zero_workers(self):
        from repro.errors import ReproRuntimeError

        with pytest.raises(ReproRuntimeError):
            WorkerPool(0)


class TestShardScheduler:
    def test_executes_all_tasks(self):
        scheduler = ShardScheduler(_config(), jobs=2)
        outcomes = scheduler.run(_tasks(_square))
        assert len(outcomes) == 6
        assert all(o.status == "ok" for o in outcomes.values())
        assert outcomes["t03"].value == 9
        successes = [e for e in scheduler.events.events if e.kind == "success"]
        assert len(successes) == 6
        assert all(
            e.throughput is None or e.throughput > 0 for e in successes
        )

    def test_worker_initializer(self):
        scheduler = ShardScheduler(
            _config(), jobs=2, initializer=_install, initargs=("hello",)
        )
        outcomes = scheduler.run(_tasks(_read_init, n=4))
        assert all(o.value == "hello" for o in outcomes.values())

    def test_duplicate_keys_rejected(self):
        scheduler = ShardScheduler(_config(), jobs=2)
        dup = [
            ShardTask(key="same", fn=_square, args=(1,)),
            ShardTask(key="same", fn=_square, args=(2,)),
        ]
        with pytest.raises(CheckpointCorrupt) as excinfo:
            scheduler.run(dup)
        assert excinfo.value.key == "same"

    def test_job_error_retries_then_degrades(self):
        scheduler = ShardScheduler(_config(attempts=2), jobs=2)
        outcomes = scheduler.run(_tasks(_boom, n=2))
        assert all(o.status == "failed" for o in outcomes.values())
        assert all(o.attempts == 2 for o in outcomes.values())
        assert "boom" in outcomes["t00"].error
        kinds = [e.kind for e in scheduler.events.events if e.job == "t00"]
        assert kinds == [
            "start", "failure", "retry", "start", "failure", "degraded",
        ]

    def test_crash_affects_only_its_shard(self):
        tasks = _tasks(_square, n=5) + [
            ShardTask(key="killer", fn=_die, args=(0,))
        ]
        scheduler = ShardScheduler(_config(attempts=2), jobs=2)
        outcomes = scheduler.run(tasks)
        assert outcomes["killer"].status == "failed"
        for i in range(5):
            assert outcomes[f"t{i:02d}"].status == "ok"
        crash_kinds = [
            e.kind for e in scheduler.events.events if e.job == "killer"
        ]
        assert crash_kinds == [
            "start", "crash", "retry", "start", "crash", "degraded",
        ]

    def test_crashed_worker_is_replaced_and_recovers(self, tmp_path):
        flag = str(tmp_path / "seen")
        tasks = [ShardTask(key="flaky", fn=_die_once, args=(flag,))]
        scheduler = ShardScheduler(_config(attempts=3, jobs=1), jobs=1)
        outcomes = scheduler.run(tasks)
        assert outcomes["flaky"].status == "ok"
        assert outcomes["flaky"].value == "recovered"
        assert outcomes["flaky"].attempts == 2

    def test_timeout_kills_only_the_slow_shard(self):
        tasks = [ShardTask(key="slow", fn=_hang, args=(0,))] + _tasks(
            _square, n=3
        )
        scheduler = ShardScheduler(
            _config(attempts=1, timeout=0.5), jobs=2
        )
        outcomes = scheduler.run(tasks)
        assert outcomes["slow"].status == "failed"
        assert "budget" in outcomes["slow"].error
        for i in range(3):
            assert outcomes[f"t{i:02d}"].status == "ok"
        kinds = [e.kind for e in scheduler.events.events if e.job == "slow"]
        assert kinds == ["start", "timeout", "degraded"]

    def test_checkpoint_reuse(self, tmp_path):
        tasks = [
            ShardTask(key=f"t{i}", fn=_square, args=(i,), fingerprint="fp")
            for i in range(4)
        ]
        first = ShardScheduler(_config(tmp_path), jobs=2)
        first.run(tasks, serialize=lambda v: {"value": v})
        second = ShardScheduler(_config(tmp_path, resume=True), jobs=2)
        outcomes = second.run(tasks, serialize=lambda v: {"value": v})
        assert all(o.status == "cached" for o in outcomes.values())
        assert outcomes["t3"].record == {"value": 9}
        assert [e.kind for e in second.events.events] == ["cached"] * 4

    def test_stale_fingerprint_regrades(self, tmp_path):
        tasks = [
            ShardTask(key="t0", fn=_square, args=(3,), fingerprint="old")
        ]
        ShardScheduler(_config(tmp_path), jobs=1).run(
            tasks, serialize=lambda v: {"value": v}
        )
        fresh = [
            ShardTask(key="t0", fn=_square, args=(4,), fingerprint="new")
        ]
        outcomes = ShardScheduler(
            _config(tmp_path, resume=True), jobs=1
        ).run(fresh, serialize=lambda v: {"value": v})
        assert outcomes["t0"].status == "ok"
        assert outcomes["t0"].value == 16
