"""Renderers that regenerate the paper's tables from live data."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.campaign import CampaignOutcome
from repro.plasma.components import component_table

#: Paper Table 3 reference values (NAND2 equivalents) for side-by-side
#: reporting.  The total is the paper's 17,459.
PAPER_GATE_COUNTS: dict[str, int] = {
    "RegF": 9906,
    "MulD": 3044,
    "ALU": 491,
    "BSH": 682,
    "MCTRL": 1112,
    "PCL": 444,
    "CTRL": 223,
    "BMUX": 453,
    "PLN": 885,
    "GL": 219,
}

#: Paper Table 4 reference values.
PAPER_PROGRAM_STATS: dict[str, dict[str, int]] = {
    "A": {"clock_cycles": 3393},
    "AB": {"clock_cycles": 3552},
}


def _rule(widths: Sequence[int]) -> str:
    return "-+-".join("-" * w for w in widths)


def _row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths, strict=True))


def render_table2(rows: Sequence[Mapping] | None = None) -> str:
    """Table 2: component classification."""
    if rows is None:
        rows = component_table()
    widths = (24, 12)
    out = [_row(("Component Name", "Class"), widths), _rule(widths)]
    for r in rows:
        out.append(_row((r["full_name"], r["class"]), widths))
    return "\n".join(out)


def render_table3(rows: Sequence[Mapping] | None = None) -> str:
    """Table 3: gate counts, measured vs paper."""
    if rows is None:
        rows = component_table()
    widths = (24, 10, 10)
    out = [
        _row(("Component Name", "Measured", "Paper"), widths),
        _rule(widths),
    ]
    total = 0
    for r in rows:
        total += r["nand2"]
        out.append(
            _row(
                (r["full_name"], f"{r['nand2']:,}",
                 f"{PAPER_GATE_COUNTS.get(r['name'], 0):,}"),
                widths,
            )
        )
    out.append(_rule(widths))
    out.append(
        _row(("Plasma/MIPS Processor", f"{total:,}",
              f"{sum(PAPER_GATE_COUNTS.values()):,}"), widths)
    )
    return "\n".join(out)


def render_table4(outcomes: Mapping[str, CampaignOutcome]) -> str:
    """Table 4: self-test program statistics per phase configuration.

    Args:
        outcomes: phase spec (e.g. ``"A"``, ``"AB"``) -> campaign outcome.
    """
    widths = (22,) + (12,) * len(outcomes)
    header = ["", *(f"Phase {k}" for k in outcomes)]
    out = [_row(header, widths), _rule(widths)]
    rows = [
        ("Test Program (words)", "code_words"),
        ("Test Data (words)", "data_words"),
        ("Total download (words)", "total_words"),
        ("Clock Cycles", "clock_cycles"),
    ]
    for label, key in rows:
        cells = [label]
        for outcome in outcomes.values():
            cells.append(f"{outcome.table4()[key]:,}")
        out.append(_row(cells, widths))
    cells = ["Paper cycles"]
    for spec in outcomes:
        paper = PAPER_PROGRAM_STATS.get(spec.replace("+", ""), {})
        cells.append(f"{paper.get('clock_cycles', 0):,}" if paper else "-")
    out.append(_row(cells, widths))
    return "\n".join(out)


def render_table5(outcomes: Mapping[str, CampaignOutcome]) -> str:
    """Table 5: per-component FC / MOFC for successive phases.

    A component whose grading permanently failed (resilient campaign
    degradation) is marked with ``*``: all of its faults are counted as
    undetected, so its FC — and the overall Plasma FC — are lower bounds.
    """
    specs = list(outcomes)
    widths = (10,) + (8, 8) * len(specs)
    header = ["Component"]
    for spec in specs:
        header += [f"{spec} FC%", f"{spec} MOFC"]
    out = [_row(header, widths), _rule(widths)]
    any_degraded = False
    names = [c.name for c in outcomes[specs[0]].summary.components]
    for name in names:
        cells = [name]
        for spec in specs:
            summary = outcomes[spec].summary
            cov = summary.component(name)
            mark = "*" if cov.degraded else ""
            any_degraded = any_degraded or cov.degraded
            cells += [
                f"{cov.fault_coverage:.2f}{mark}",
                f"{summary.mofc(name):.2f}",
            ]
        out.append(_row(cells, widths))
    out.append(_rule(widths))
    cells = ["Plasma"]
    for spec in specs:
        summary = outcomes[spec].summary
        mark = "*" if summary.degraded else ""
        cells += [f"{summary.overall_coverage:.2f}{mark}",
                  f"{100 - summary.overall_coverage:.2f}"]
    out.append(_row(cells, widths))
    if any_degraded:
        out.append(
            "* degraded: component not fully graded; FC is a lower bound"
        )
    return "\n".join(out)


def coverage_tables_json(
    outcomes: Mapping[str, CampaignOutcome]
) -> dict[str, dict]:
    """Tables 4 and 5 as one JSON-safe payload.

    The machine-readable twin of :func:`render_table4` /
    :func:`render_table5`, built from the same `CampaignOutcome.table4()`
    / ``table5()`` data, so a campaign graded through the HTTP service
    serializes to exactly the numbers the CLI prints — the service smoke
    test asserts byte equality of this payload against a direct
    :func:`~repro.core.campaign.run_campaign` of the same request.
    """
    return {
        "table4": {
            phases: outcome.table4() for phases, outcome in outcomes.items()
        },
        "table5": {
            phases: outcome.table5() for phases, outcome in outcomes.items()
        },
    }
