"""SAT proofs of fault untestability (redundancy) and test witnesses.

A single stuck-at fault is *untestable* exactly when the good/faulty
miter is unsatisfiable: no input (and, for sequential cuts, no state)
assignment makes any output port or any DFF D input differ.  This is a
complete criterion for the combinational cut — contrast the structural
SCOAP screen of :func:`repro.analysis.scoap.untestable_fault_classes`,
which is sound but incomplete.

:class:`FaultMiterSession` holds one incrementally-usable solver per
netlist: the good copy is encoded once, each queried fault encodes only
its own fanout cone (the strash table collapses everything else onto
the good copy's literals), and the per-fault miter output is passed to
the solver as an *assumption*, so learned clauses carry over between
faults.

Sequential cuts and soundness.  The cut leaves the state free, which
over-approximates the reachable state set: an UNSAT miter therefore
proves the fault undetectable from *every* state, which is sound.  The
one refinement applied: any DFF whose Q net the SCOAP analysis proves
structurally constant is pinned to that constant in both copies.  This
is still sound by induction — the reset state satisfies the invariant,
and SCOAP's constant proof covers every value the D cone can produce —
and it is exactly what makes the SAT screen a *superset* of the
structural screen (the FV202 soundness gate in
:mod:`repro.analysis.formal` depends on this).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.scoap import (
    ScoapAnalysis,
    compute_scoap,
    untestable_fault_classes,
)
from repro.faultsim.faults import Fault, FaultList, build_fault_list
from repro.formal.cec import FormalInternalError
from repro.formal.encode import LogicEncoder, encode_circuit, miter_lit
from repro.formal.evaluate import eval_cut
from repro.formal.sat import SatSolver
from repro.netlist.levelize import levelize
from repro.netlist.netlist import Gate, Netlist


@dataclass(frozen=True)
class Witness:
    """A confirmed input/state assignment that detects a fault."""

    inputs: dict[str, int]
    state: tuple[int, ...]


@dataclass(frozen=True)
class FaultVerdict:
    """SAT answer for one fault: a redundancy proof or a test witness."""

    rep: int
    fault: Fault
    redundant: bool
    witness: Witness | None
    conflicts: int


@dataclass(frozen=True)
class UntestabilityScreen:
    """Cross-checked untestability screen for one component.

    Attributes:
        component: netlist name.
        n_classes: collapsed fault classes in the full list.
        structural: class representatives screened by the SCOAP
            structural argument.
        proven: representatives whose good/faulty miter is UNSAT — the
            SAT-*proven* redundant set.  Only these may be excluded
            from coverage denominators.
        witnessed: candidate representatives the SAT solver found a
            detecting assignment for (testable after all).
        unconfirmed: ``structural - proven`` — structurally screened
            classes the SAT layer could *not* confirm.  Non-empty means
            the structural screen is unsound (FV202 fires).
    """

    component: str
    n_classes: int
    structural: frozenset[int]
    proven: frozenset[int]
    witnessed: frozenset[int]
    conflicts: int

    @property
    def unconfirmed(self) -> frozenset[int]:
        return self.structural - self.proven


class FaultMiterSession:
    """Incremental good/faulty miter queries over one netlist."""

    def __init__(
        self,
        netlist: Netlist,
        *,
        analysis: ScoapAnalysis | None = None,
        constrain_constant_state: bool = True,
    ) -> None:
        self.netlist = netlist
        self.order: list[Gate] = levelize(netlist)
        self.solver = SatSolver()
        self.logic = LogicEncoder(self.solver)
        self.good = encode_circuit(self.logic, netlist, order=self.order)
        self._inputs = {
            net: lit
            for port in netlist.input_ports()
            for net, lit in zip(
                port.nets, self.good.input_lits(port.name), strict=True
            )
        }
        self._state = self.good.state_lits()
        self._good_compared = self.good.compared_lits()
        if constrain_constant_state and netlist.dffs:
            if analysis is None:
                analysis = compute_scoap(netlist)
            for lit, dff in zip(self._state, netlist.dffs, strict=True):
                value = analysis.constant_value(dff.q)
                if value == 1:
                    self.solver.add_clause([lit])
                elif value == 0:
                    self.solver.add_clause([-lit])
        self.analysis = analysis

    def query(
        self, fault: Fault, rep: int = -1, *, confirm: bool = True
    ) -> FaultVerdict:
        """Prove ``fault`` redundant or extract a detecting witness.

        With ``confirm`` (the default) a witness is replayed through
        :func:`~repro.formal.evaluate.eval_cut` on the good and faulty
        circuit and must show a difference, otherwise
        :class:`FormalInternalError` is raised.
        """
        faulty = encode_circuit(
            self.logic,
            self.netlist,
            inputs=self._inputs,
            state=self._state,
            fault=fault,
            order=self.order,
        )
        miter = miter_lit(
            self.logic, self._good_compared, faulty.compared_lits()
        )
        before = self.solver.stats.conflicts
        sat = self.solver.solve([miter])
        conflicts = self.solver.stats.conflicts - before
        if not sat:
            return FaultVerdict(rep, fault, True, None, conflicts)
        witness = self._extract_witness()
        if confirm:
            self._confirm(fault, witness)
        return FaultVerdict(rep, fault, False, witness, conflicts)

    def _faulty_compared(self, fault: Fault) -> list[int]:
        """Compared-cut literals of a faulty copy sharing inputs/state."""
        faulty = encode_circuit(
            self.logic,
            self.netlist,
            inputs=self._inputs,
            state=self._state,
            fault=fault,
            order=self.order,
        )
        return faulty.compared_lits()

    def check_equivalent_pair(self, a: Fault, b: Fault) -> bool:
        """Are the two faulty machines identical at the combinational cut?

        True when the difference miter between the two faulty copies is
        UNSAT over all inputs and (free) states — the SAT ground truth
        the static equivalence claims of
        :mod:`repro.analysis.collapse` are spot-checked against.  Note
        this is a *per-cut* identity: temporal equivalences (the
        ``dff-init`` family) are genuinely equivalent yet fail this
        check, so the caller must not sample them.
        """
        miter = miter_lit(
            self.logic, self._faulty_compared(a), self._faulty_compared(b)
        )
        return not self.solver.solve([miter])

    def check_dominance_pair(self, child: Fault, dominator: Fault) -> bool:
        """SAT-check the per-cut dominance identity.

        True when ``child differs from good ⇒ child and dominator
        machines agree`` holds at the combinational cut for every input
        and free state — i.e. the conjunction of the child/good
        difference miter and the child/dominator difference miter is
        UNSAT.  This is *stronger* than the detection implication
        ``detected(child) ⇒ detected(dominator)``: whenever the child
        is visible anywhere compared, the dominator's machine is
        indistinguishable from the child's, so it is detected at the
        very same outputs.
        """
        child_compared = self._faulty_compared(child)
        differs = miter_lit(self.logic, self._good_compared, child_compared)
        disagree = miter_lit(
            self.logic, child_compared, self._faulty_compared(dominator)
        )
        return not self.solver.solve([differs, disagree])

    def _extract_witness(self) -> Witness:
        def bit(lit: int) -> int:
            return 1 if self.solver.lit_value(lit) else 0

        inputs = {
            port.name: sum(
                bit(lit) << i
                for i, lit in enumerate(self.good.input_lits(port.name))
            )
            for port in self.netlist.input_ports()
        }
        return Witness(inputs, tuple(bit(lit) for lit in self._state))

    def _confirm(self, fault: Fault, witness: Witness) -> None:
        good_out, good_next = eval_cut(
            self.netlist, witness.inputs, witness.state, order=self.order
        )
        bad_out, bad_next = eval_cut(
            self.netlist,
            witness.inputs,
            witness.state,
            fault=fault,
            order=self.order,
        )
        if good_out == bad_out and good_next == bad_next:
            raise FormalInternalError(
                f"witness for {fault.describe(self.netlist)} on "
                f"{self.netlist.name!r} does not replay: SAT model shows "
                "a difference but direct evaluation does not"
            )


def prove_untestable(
    netlist: Netlist,
    fault_list: FaultList | None = None,
    *,
    candidates: frozenset[int] | set[int] | None = None,
    analysis: ScoapAnalysis | None = None,
    component: str | None = None,
) -> UntestabilityScreen:
    """SAT-screen candidate fault classes of one netlist.

    Args:
        fault_list: collapsed fault list (built on demand).
        candidates: class representatives to screen.  ``None`` screens
            the SCOAP structural candidates — the default used by the
            ``--prune-untestable`` grading path.  Pass
            ``set(fault_list.classes)`` for a complete sweep.
        analysis: pre-computed SCOAP analysis to reuse.

    Returns:
        The screen; ``proven`` holds the SAT-certified redundant
        classes and is the only set safe to drop from denominators.
    """
    if fault_list is None:
        fault_list = build_fault_list(netlist)
    if analysis is None:
        analysis = compute_scoap(netlist)
    structural = frozenset(untestable_fault_classes(fault_list, analysis))
    if candidates is None:
        screened: frozenset[int] = structural
    else:
        screened = frozenset(candidates)

    session = FaultMiterSession(netlist, analysis=analysis)
    proven: set[int] = set()
    witnessed: set[int] = set()
    conflicts = 0
    for rep in sorted(screened):
        verdict = session.query(fault_list.fault(rep), rep)
        conflicts += verdict.conflicts
        if verdict.redundant:
            proven.add(rep)
        else:
            witnessed.add(rep)
    return UntestabilityScreen(
        component=component or netlist.name,
        n_classes=fault_list.n_collapsed,
        structural=structural,
        proven=frozenset(proven),
        witnessed=frozenset(witnessed),
        conflicts=conflicts,
    )


def proven_untestable_classes(
    netlist: Netlist,
    fault_list: FaultList | None = None,
    *,
    analysis: ScoapAnalysis | None = None,
) -> frozenset[int]:
    """The SAT-proven-redundant class representatives (grading hook).

    This is the set the fault-grading ``prune_untestable`` path may
    exclude from coverage denominators: every member carries an UNSAT
    certificate, not just a structural argument.
    """
    return prove_untestable(
        netlist, fault_list, analysis=analysis
    ).proven
