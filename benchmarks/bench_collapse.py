"""Gate G1 — structural fault collapsing: correctness and payoff.

Collapsed grading (``grade(collapse=True)``) must be *invisible* in the
results — identical detected sets, excitation flags and Table 5 numbers —
while simulating measurably fewer fault classes.  This bench grades the
gate components both ways with the same traced stimulus and enforces:

* **verdict equality (hard gate)** — any per-class difference between
  the collapsed and the plain run fails the bench;
* **workload shrink (hard gate)** — the measured ratio (classes the
  plain run simulates / classes the collapsed run simulates) must be
  >= 1.0; anything less means the collapse pass *added* work;
* **steady-state speedup (soft gate)** — cache-warm collapsed grading
  should be >= 1.3x the plain run.  Components whose structure simply
  does not collapse that far (the ratio bounds the attainable speedup)
  are reported as SKIP with the measured ratio rather than pretending to
  pass — the paper's methodology shrinks what it can and says so.

Runs two ways:

* ``PYTHONPATH=src python benchmarks/bench_collapse.py [--quick]`` —
  standalone; exit 1 only on a hard-gate failure.  ``--quick`` (the CI
  gate) restricts to the fast components and one timing repetition.
* via the tier-2 pytest-benchmark suite (full mode).

A JSON artifact with the per-component measurements lands in
``benchmarks/results/collapse_gate.json`` for trend tracking.
"""

import argparse
import json
import sys
import time

from repro.analysis.collapse import compute_collapse
from repro.core.campaign import execute_self_test
from repro.core.methodology import SelfTestMethodology
from repro.faultsim import GradeOptions, build_fault_list, grade
from repro.plasma.components import build_component

#: Soft-gate floor: steady-state (cache-warm) speedup from collapsing.
SPEEDUP_FLOOR = 1.3

#: Quick mode: components that grade in a few seconds each.
QUICK_COMPONENTS = ("CTRL", "BMUX", "GL")

#: Full mode adds the remaining fast-enough components (RegF and MulD
#: grade for minutes and collapse by < 3% — reported by ``repro analyze
#: collapse``, not re-measured here).
FULL_COMPONENTS = (
    "ALU", "BSH", "CTRL", "BMUX", "GL", "PCL", "PLN", "MCTRL"
)


def traced_specs():
    self_test = SelfTestMethodology().build_program("A")
    _, tracer, _ = execute_self_test(self_test)
    return tracer.finalize()


def _verdicts(result):
    return {
        rep: (det.detected, det.excited)
        for rep, det in result.detections.items()
    }


def _timed(repeats, fn):
    """Best-of-N wall time (seconds) and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _bench_component(name, stimulus, observe, repeats, lines, failures,
                     records):
    netlist = build_component(name)
    fault_list = build_fault_list(netlist)
    cmap = compute_collapse(netlist, fault_list)

    def plain():
        return grade(netlist, stimulus, fault_list,
                     GradeOptions(observe=observe, name=name))

    def collapsed():
        return grade(netlist, stimulus, fault_list,
                     GradeOptions(observe=observe, name=name, collapse=cmap))

    # Warm every cache (good trace, compiled program) outside the timing:
    # the gate measures steady-state campaign behaviour, not build costs.
    plain()
    collapsed()
    base_seconds, base = _timed(repeats, plain)
    coll_seconds, coll = _timed(repeats, collapsed)

    speedup = base_seconds / coll_seconds if coll_seconds else 0.0
    ratio = (
        base.n_simulated / coll.n_simulated if coll.n_simulated else 0.0
    )

    # --- hard gates ------------------------------------------------------
    if _verdicts(coll) != _verdicts(base) or coll.detected != base.detected:
        failures.append(
            f"{name}: collapsed verdicts differ from the plain run"
        )
    if coll.fault_coverage != base.fault_coverage:
        failures.append(f"{name}: FC differs with collapsing on")
    if ratio < 1.0:
        failures.append(
            f"{name}: collapsing *increased* simulated classes "
            f"({coll.n_simulated} vs {base.n_simulated})"
        )

    # --- soft gate -------------------------------------------------------
    if speedup >= SPEEDUP_FLOOR:
        status = "PASS"
    else:
        status = "SKIP"
    records.append({
        "component": name,
        "n_classes": fault_list.n_collapsed,
        "n_supers": cmap.n_supers,
        "static_ratio": round(cmap.ratio, 4),
        "n_simulated_plain": base.n_simulated,
        "n_simulated_collapsed": coll.n_simulated,
        "n_inferred": coll.n_inferred,
        "measured_ratio": round(ratio, 4),
        "base_seconds": round(base_seconds, 4),
        "collapsed_seconds": round(coll_seconds, 4),
        "speedup": round(speedup, 4),
        "status": status,
        "collapse_hash": cmap.collapse_hash,
    })
    lines.append(
        f"{name:6s} {fault_list.n_collapsed:7,} classes -> "
        f"{coll.n_simulated:7,} simulated (+{coll.n_inferred:,} inferred, "
        f"ratio {ratio:.2f}x)  {base_seconds:6.2f}s -> {coll_seconds:6.2f}s "
        f"({speedup:.2f}x)  {status}"
        + (
            f" (structure collapses {ratio:.2f}x; below the "
            f"{SPEEDUP_FLOOR:.1f}x floor)"
            if status == "SKIP" else ""
        )
    )


def run_bench(quick: bool) -> tuple[str, list[str], list[dict]]:
    """Grade the gate components collapsed and plain, compare, time.

    Returns:
        ``(report text, hard failures, per-component records)``.
    """
    components = QUICK_COMPONENTS if quick else FULL_COMPONENTS
    repeats = 1 if quick else 3
    specs = traced_specs()
    lines: list[str] = []
    failures: list[str] = []
    records: list[dict] = []
    for name in components:
        stimulus, observe = specs[name]
        _bench_component(
            name, stimulus, observe, repeats, lines, failures, records
        )
    passed = sum(1 for r in records if r["status"] == "PASS")
    lines.append(
        f"{passed}/{len(records)} component(s) beat the "
        f"{SPEEDUP_FLOOR:.1f}x steady-state floor; "
        f"{len(failures)} hard failure(s)"
    )
    return "\n".join(lines), failures, records


def _write_artifact(quick, records, failures) -> str:
    import os

    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "collapse_gate.json")
    with open(path, "w") as handle:
        json.dump(
            {
                "bench": "collapse_gate",
                "quick": quick,
                "speedup_floor": SPEEDUP_FLOOR,
                "components": records,
                "failures": failures,
                "ok": not failures,
            },
            handle, indent=2, sort_keys=True,
        )
        handle.write("\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: fast components only, single timing repetition",
    )
    args = parser.parse_args(argv)
    text, failures, records = run_bench(quick=args.quick)
    print(text)
    print(f"artifact: {_write_artifact(args.quick, records, failures)}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_collapse_gate(benchmark):
    from conftest import write_result

    text, failures, records = benchmark.pedantic(
        lambda: run_bench(quick=False), rounds=1, iterations=1
    )
    write_result("collapse_gate.txt", text)
    _write_artifact(False, records, failures)
    print("\n" + text)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    sys.exit(main())
