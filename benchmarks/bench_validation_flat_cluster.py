"""Experiment V1 — validating the hierarchical fault-grading decomposition.

The paper's flow (and this reproduction's) grades every component in
isolation against its traced boundary stimulus.  A standard objection is
that component-level grading might mis-count faults at the boundaries
(a CTRL fault masked by the downstream mux, or detected only through a
path the sensitivity model ignores).

This bench composes CTRL+BMUX+ALU+BSH into one *flat* execute-stage
netlist (`repro.plasma.cluster`), replays the same traced per-instruction
stimulus through it with the same architectural observability, and compares
flat coverage against the fault-weighted aggregate of the four components'
hierarchical results.

Anchor: the two figures agree closely (within a few percent) — the
decomposition is sound.
"""

from conftest import cached_campaign, run_once, write_result

from repro.core.campaign import execute_self_test
from repro.core.methodology import SelfTestMethodology
from repro.faultsim.harness import CombinationalCampaign
from repro.isa.encoding import decode
from repro.plasma.cluster import EXPOSED_CONTROLS, build_execute_cluster
from repro.plasma.controls import decode_controls
from repro.plasma.tracer import ctrl_sensitive_ports

HIER_COMPONENTS = ("CTRL", "BMUX", "ALU", "BSH")


def flat_cluster_campaign():
    """Grade the composed execute stage with the Phase A trace."""
    self_test = SelfTestMethodology().build_program("A")
    _, tracer, _ = execute_self_test(self_test)
    specs = tracer.finalize()
    bmux_patterns, bmux_observe = specs["BMUX"]
    ctrl_patterns, ctrl_observe = specs["CTRL"]
    assert len(bmux_patterns) == len(ctrl_patterns)

    patterns = []
    observe = []
    for bmux_pat, ctrl_pat, bmux_ports, ctrl_ports in zip(
        bmux_patterns, ctrl_patterns, bmux_observe, ctrl_observe,
        strict=True,
    ):
        word = ctrl_pat["instr"]
        patterns.append(
            {
                "instr": word,
                "rs_data": bmux_pat["rs_data"],
                "rt_data": bmux_pat["rt_data"],
                "pc_plus4": bmux_pat["pc_plus4"],
                "mem_data": bmux_pat["mem_data"],
                "lo": bmux_pat["lo"],
                "hi": bmux_pat["hi"],
            }
        )
        ports: list[str] = []
        observed = bool(bmux_ports) or bool(ctrl_ports)
        if observed:
            bundle = decode_controls(decode(word))
            if "wb_data" in bmux_ports:
                ports.append("wb_data")
            if "a_bus" in bmux_ports or "b_bus" in bmux_ports:
                # The ALU result is the architectural consumer of a/b.
                ports.append("alu_result")
            ports += [
                p for p in ctrl_sensitive_ports(bundle)
                if p in EXPOSED_CONTROLS
            ]
        observe.append(tuple(dict.fromkeys(ports)))

    campaign = CombinationalCampaign(
        build_execute_cluster(), patterns, observe, name="EXEC-flat"
    )
    return campaign.run()


def test_flat_cluster_validates_hierarchy(benchmark):
    flat = run_once(benchmark, flat_cluster_campaign)
    hier = cached_campaign("A", HIER_COMPONENTS)

    hier_faults = sum(hier.results[n].n_faults for n in HIER_COMPONENTS)
    hier_detected = sum(hier.results[n].n_detected for n in HIER_COMPONENTS)
    hier_fc = 100.0 * hier_detected / hier_faults

    lines = [
        f"{'grading':>14s} {'faults':>8s} {'detected':>9s} {'FC %':>7s}",
        f"{'hierarchical':>14s} {hier_faults:>8,} {hier_detected:>9,} "
        f"{hier_fc:>7.2f}",
        f"{'flat cluster':>14s} {flat.n_faults:>8,} {flat.n_detected:>9,} "
        f"{flat.fault_coverage:>7.2f}",
    ]
    text = "\n".join(lines)
    write_result("validation_v1_flat_cluster.txt", text)
    print("\n" + text)

    # The flat universe merges boundary stem/branch pairs, so counts are
    # close but not identical.
    assert 0.8 * hier_faults < flat.n_faults < 1.1 * hier_faults
    # Coverage agreement: the decomposition neither loses nor invents
    # detections beyond boundary bookkeeping.
    assert abs(flat.fault_coverage - hier_fc) < 4.0
