"""The complete gate-level Plasma processor: all ten components composed.

This is the structural top a synthesis flow would see — PCL, CTRL, BMUX,
ALU, BSH, MulD, RegF, MCTRL, PLN and GL instantiated from their generators
and wired together, plus a few dozen gates of top-level glue (destination-
register select, jump-target paste-up, interlock gating).

Micro-architecture (a faithful 2-stage expression of Plasma's pipeline):

* **fetch** — ``imem_addr`` carries the PC; the fetched word is latched
  into the pipeline's instruction register at the end of the cycle, so an
  instruction executes one cycle after its fetch.  Branches resolve during
  their execute cycle, after the next fetch has already been issued —
  which *is* the MIPS architectural branch delay slot.
* **execute** — CTRL decodes the instruction register; BMUX routes
  operands; ALU/BSH/MulD compute; RegF writes back; MCTRL runs its
  two-cycle data-memory handshake (its pause freezes fetch and the
  pipeline and suppresses write-back until the data arrives).
* **interlocks** — HI/LO reads and new mul/div issues stall while the
  MulD iterator is busy; the op strobe is gated off during stalls so the
  sequencer starts exactly once per instruction.

External ports: instruction-memory read port (``imem_addr`` out /
``imem_data`` in), the data-memory bus (MCTRL's registered interface) and
the interrupt lines into GL.  :mod:`repro.plasma.cosim` closes the memory
loop and co-simulates against the behavioural CPU.
"""

from __future__ import annotations

from repro.library import (
    build_alu,
    build_barrel_shifter,
    build_muldiv,
    build_register_file,
)
from repro.netlist.builder import NetlistBuilder
from repro.netlist.compose import instantiate
from repro.netlist.gates import GateType
from repro.netlist.netlist import CONST0, Netlist
from repro.plasma.busmux import build_busmux
from repro.plasma.control_unit import build_control
from repro.plasma.controls import WbSource
from repro.plasma.glue import build_glue
from repro.plasma.mctrl import build_mctrl
from repro.plasma.pclogic import build_pclogic
from repro.plasma.pipeline import build_pipeline


def build_plasma_top(name: str = "PlasmaTop") -> Netlist:
    """Compose the full processor netlist.

    Ports:
        * in: ``imem_data`` (32), ``mem_rdata`` (32), ``irq`` (8).
        * out: ``imem_addr`` (32), ``mem_addr`` (32), ``mem_wdata`` (32),
          ``byte_en`` (4), ``mem_we`` (1), ``debug_pc`` (32),
          ``debug_wb`` (32).
    """
    b = NetlistBuilder(name)
    imem_data = b.input("imem_data", 32)
    mem_rdata = b.input("mem_rdata", 32)
    irq = b.input("irq", 8)

    # Pre-allocated buses for cross-instance feedback; each is later bound
    # as exactly one instance's output (or driven by a BUF for top-level
    # pass-through slices).
    pause_cpu = b.netlist.new_net("pause_cpu")
    rs_data = b.netlist.new_bus(32, "rs_data")
    rt_data = b.netlist.new_bus(32, "rt_data")
    alu_result = b.netlist.new_bus(32, "alu_result")
    shift_result = b.netlist.new_bus(32, "shift_result")
    wb_data = b.netlist.new_bus(32, "wb_data")
    pc_plus4 = b.netlist.new_bus(32, "pc_plus4")
    muldiv_busy = b.netlist.new_net("muldiv_busy")
    wb_dest_pre = b.netlist.new_bus(5, "wb_dest_r")
    ctrl8_pre = b.netlist.new_bus(8, "ctrl8_r")

    # --------------------------------------------------------- pipeline
    pln = instantiate(
        b,
        build_pipeline(),
        {
            "instr_in": imem_data,
            "pc_snapshot_in": pc_plus4,  # executing instruction's PC+4
            "wb_value_in": wb_data,
            "wb_dest_in": wb_dest_pre,
            "ctrl_in": ctrl8_pre,
            "pause": [pause_cpu],
            "flush": [CONST0],
        },
        name="pln",
    )
    instr = pln["instr_q"]
    snapshot_pc4 = pln["pc_snapshot_q"]

    # ----------------------------------------------------------- decode
    ctrl = instantiate(b, build_control(), {"instr": instr}, name="ctrl")
    not_pause = b.not_(pause_cpu)

    # ------------------------------------------------------- registers
    wb_dest = b.mux_tree(
        ctrl["reg_dest"], [instr[11:16], instr[16:21], b.constant(31, 5)]
    )
    wr_en = b.and_(ctrl["reg_write"][0], not_pause)
    instantiate(
        b,
        build_register_file(),
        {
            "wr_addr": wb_dest,
            "wr_data": wb_data,
            "wr_en": [wr_en],
            "rd_addr_a": instr[21:26],
            "rd_addr_b": instr[16:21],
            "rd_data_a": rs_data,
            "rd_data_b": rt_data,
        },
        name="regf",
    )

    # ---------------------------------------------------------- mul/div
    reads_hilo = b.or_(
        b.equals_const(ctrl["wb_source"], int(WbSource.LO)),
        b.equals_const(ctrl["wb_source"], int(WbSource.HI)),
    )
    issues_muldiv = b.reduce_or(ctrl["muldiv_op"])
    muldiv_wait = b.and_(muldiv_busy, b.or_(reads_hilo, issues_muldiv))
    op_gated = [b.and_(bit, not_pause) for bit in ctrl["muldiv_op"]]
    muld = instantiate(
        b,
        build_muldiv(),
        {"a": rs_data, "b": rt_data, "op": op_gated, "busy": [muldiv_busy]},
        name="muld",
    )

    # ------------------------------------------------------------ memory
    mctrl = instantiate(
        b,
        build_mctrl(),
        {
            "addr": alu_result,
            "size": ctrl["mem_size"],
            "signed": ctrl["mem_signed"],
            "re": ctrl["mem_read"],
            "we": ctrl["mem_write"],
            "wr_data": rt_data,
            "mem_rdata": mem_rdata,
        },
        name="mctrl",
    )

    # ---------------------------------------------------------- execute
    bmux = instantiate(
        b,
        build_busmux(),
        {
            "rs_data": rs_data,
            "rt_data": rt_data,
            "imm": instr[0:16],
            "pc_plus4": snapshot_pc4,
            "alu_result": alu_result,
            "shift_result": shift_result,
            "mem_data": mctrl["load_result"],
            "lo": muld["lo"],
            "hi": muld["hi"],
            "a_source": ctrl["a_source"],
            "b_source": ctrl["b_source"],
            "wb_source": ctrl["wb_source"],
            "wb_data": wb_data,
        },
        name="bmux",
    )
    instantiate(
        b,
        build_alu(),
        {
            "a": bmux["a_bus"],
            "b": bmux["b_bus"],
            "func": ctrl["alu_func"],
            "result": alu_result,
        },
        name="alu",
    )
    shamt = b.mux_word(ctrl["shift_variable"][0], instr[6:11], rs_data[0:5])
    instantiate(
        b,
        build_barrel_shifter(),
        {
            "value": rt_data,
            "shamt": shamt,
            "left": ctrl["shift_left"],
            "arith": ctrl["shift_arith"],
            "result": shift_result,
        },
        name="bsh",
    )

    # --------------------------------------------------------- branches
    # Jump-target paste-up: (snapshot PC+4)[31:28] . index . 00
    j_target = (
        [CONST0, CONST0] + list(instr[0:26]) + list(snapshot_pc4[28:32])
    )
    reg_or_alu = b.mux_word(ctrl["jump_reg"][0], alu_result, rs_data)
    branch_target = b.mux_word(ctrl["jump_abs"][0], reg_or_alu, j_target)

    pcl = instantiate(
        b,
        build_pclogic(),
        {
            "rs_data": rs_data,
            "rt_data": rt_data,
            "branch_type": ctrl["branch_type"],
            "branch_target": branch_target,
            "pause": [pause_cpu],
            "pc_plus4": pc_plus4,
        },
        name="pcl",
    )

    # -------------------------------------------------------------- glue
    instantiate(
        b,
        build_glue(),
        {
            "irq": irq,
            "irq_mask_data": b.constant(0, 8),
            "irq_mask_we": [CONST0],
            "pause_mem": mctrl["pause"],
            "pause_muldiv": [muldiv_wait],
            "branch_taken": pcl["take_branch"],
            "pause_cpu": [pause_cpu],
        },
        name="gl",
    )

    # ------------------------------- top-level pass-through observability
    ctrl8 = (
        list(ctrl["alu_func"])
        + list(ctrl["reg_write"])
        + list(ctrl["mem_read"])
        + list(ctrl["mem_write"])
        + list(ctrl["use_shifter"])
    )
    for pre, real in zip(ctrl8_pre, ctrl8, strict=True):
        b.netlist.add_gate(GateType.BUF, [real], output=pre)
    for pre, real in zip(wb_dest_pre, wb_dest, strict=True):
        b.netlist.add_gate(GateType.BUF, [real], output=pre)

    # -------------------------------------------------------------- ports
    b.output("imem_addr", pcl["pc"])
    b.output("mem_addr", mctrl["mem_addr"])
    b.output("mem_wdata", mctrl["mem_wdata"])
    b.output("byte_en", mctrl["byte_en"])
    b.output("mem_we", mctrl["mem_we"])
    b.output("debug_pc", pcl["pc"])
    b.output("debug_wb", pln["wb_value_q"])
    b.output("debug_pause", [pause_cpu])
    return b.build()
