"""Combinational/sequential equivalence checking tests.

Three layers of evidence:

* the fast shipped components prove equivalent to their golden models
  (the two big ones, RegF and MulD, run in the F1 bench and the slow
  marker here);
* an injected netlist mutant must produce a replay-confirmed
  counterexample (CEC answers are falsifiable, not vacuous);
* on random ``<= 10``-input circuits the CEC verdict agrees with
  *exhaustive* simulation of all input/state assignments — the property
  the whole formal layer rests on, checked where enumeration is
  feasible.
"""

import dataclasses
import itertools
import random

import pytest

from repro.formal.cec import check_component, check_equivalence
from repro.formal.evaluate import eval_cut
from repro.formal.golden import golden_model
from repro.netlist.gates import GateType
from repro.plasma.components import build_component

from tests.formal.test_encode import random_circuit

FAST_COMPONENTS = ("ALU", "BSH", "MCTRL", "PCL", "CTRL", "BMUX", "PLN", "GL")
SLOW_COMPONENTS = ("RegF", "MulD")

_MUTATIONS = {
    GateType.AND: GateType.OR,
    GateType.OR: GateType.AND,
    GateType.NAND: GateType.NOR,
    GateType.NOR: GateType.NAND,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
}


def mutate_first_gate(netlist, start=0):
    """Flip the first swappable gate's type in place; return its index."""
    for i in range(start, len(netlist.gates)):
        gate = netlist.gates[i]
        swapped = _MUTATIONS.get(gate.gtype)
        if swapped is not None:
            netlist.gates[i] = dataclasses.replace(gate, gtype=swapped)
            return i
    return -1


def exhaustively_equivalent(left, right) -> bool:
    """Ground truth by enumerating every input and cut-state assignment."""
    in_bits = sum(p.width for p in left.input_ports())
    n_state = len(left.dffs)
    for word in range(1 << in_bits):
        inputs = {}
        offset = 0
        for port in left.input_ports():
            inputs[port.name] = (word >> offset) & ((1 << port.width) - 1)
            offset += port.width
        for bits in itertools.product((0, 1), repeat=n_state):
            if eval_cut(left, inputs, bits) != eval_cut(right, inputs, bits):
                return False
    return True


class TestShippedComponents:
    @pytest.mark.parametrize("name", FAST_COMPONENTS)
    def test_component_equivalent_to_golden_model(self, name):
        result = check_component(name)
        assert result.equivalent, name
        assert result.counterexample is None
        assert result.n_vars > 0 and result.n_clauses > 0

    @pytest.mark.slow
    @pytest.mark.parametrize("name", SLOW_COMPONENTS)
    def test_large_component_equivalent_to_golden_model(self, name):
        assert check_component(name).equivalent, name


class TestMutantDetection:
    @pytest.mark.parametrize("name", ("GL", "CTRL", "BMUX"))
    def test_injected_mutant_yields_confirmed_counterexample(self, name):
        spec = golden_model(name)
        start = 0
        while True:
            mutant = build_component(name)
            index = mutate_first_gate(mutant, start)
            assert index >= 0, f"no mutable gate produced a mismatch ({name})"
            result = check_equivalence(mutant, spec, component=name)
            if not result.equivalent:
                break
            start = index + 1  # functionally masked flip: try the next gate
        cex = result.counterexample
        # check_equivalence replays every witness through eval_cut before
        # returning, so reaching here means the counterexample is real;
        # re-verify explicitly anyway.
        assert cex is not None and cex.mismatched
        good_out, good_next = eval_cut(
            build_component(name), cex.inputs, cex.state
        )
        bad_out, bad_next = eval_cut(mutant, cex.inputs, cex.state)
        assert (good_out, good_next) != (bad_out, bad_next)


class TestExhaustiveProperty:
    def test_cec_verdict_matches_exhaustive_simulation(self):
        rng = random.Random(0xFEED)
        checked_inequivalent = 0
        for trial in range(30):
            # Netlist-vs-netlist CEC follows the combinational-cut spec
            # convention (a stateful spec carries _state ports), so the
            # random pairs stay DFF-free; the sequential path is covered
            # by the golden-model and mutant tests above.
            n_inputs = rng.randint(1, 10)
            left = random_circuit(rng, n_inputs, rng.randint(2, 18))
            if rng.random() < 0.5:
                right = left  # identical structure: must be equivalent
            else:
                # random_circuit emits identical port shapes for equal
                # n_inputs, so CEC accepts the pair; functional
                # agreement is up to chance.
                right = random_circuit(rng, n_inputs, rng.randint(2, 18))
            want = exhaustively_equivalent(left, right)
            got = check_equivalence(left, right)
            assert got.equivalent == want, f"trial {trial}"
            if not want:
                checked_inequivalent += 1
                assert got.counterexample is not None
        assert checked_inequivalent >= 5  # the fuzz actually exercised SAT

    def test_mutants_of_small_circuits_match_exhaustive(self):
        rng = random.Random(0xBEEF)
        for trial in range(15):
            circuit = random_circuit(rng, rng.randint(2, 6),
                                     rng.randint(3, 15))
            mutant = build_mutant_copy(circuit, rng)
            if mutant is None:
                continue
            want = exhaustively_equivalent(circuit, mutant)
            got = check_equivalence(circuit, mutant)
            assert got.equivalent == want, f"trial {trial}"


def build_mutant_copy(circuit, rng):
    """A structural copy of ``circuit`` with one random gate flipped."""
    import copy

    mutant = copy.deepcopy(circuit)
    swappable = [
        i for i, g in enumerate(mutant.gates) if g.gtype in _MUTATIONS
    ]
    if not swappable:
        return None
    i = rng.choice(swappable)
    gate = mutant.gates[i]
    mutant.gates[i] = dataclasses.replace(
        gate, gtype=_MUTATIONS[gate.gtype]
    )
    return mutant
