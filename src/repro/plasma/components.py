"""Component registry: the Plasma RT-level component inventory.

One entry per row of the paper's Table 2/3, carrying the classification,
the gate-level netlist generator and descriptive metadata.  Everything that
consumes "the set of processor components" (the methodology's
classification/priority steps, the fault-grading campaign, the table
renderers) reads this registry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Callable

from repro.library import (
    build_alu,
    build_barrel_shifter,
    build_muldiv,
    build_register_file,
)
from repro.netlist.netlist import Netlist
from repro.netlist.stats import gate_count
from repro.plasma.busmux import build_busmux
from repro.plasma.control_unit import build_control
from repro.plasma.glue import build_glue
from repro.plasma.mctrl import build_mctrl
from repro.plasma.pclogic import build_pclogic
from repro.plasma.pipeline import build_pipeline


class ComponentClass(enum.Enum):
    """The paper's three component classes (Section 2.1)."""

    FUNCTIONAL = "functional"
    CONTROL = "control"
    HIDDEN = "hidden"
    GLUE = "glue"  # residual gates, outside the three named classes


@dataclass(frozen=True)
class ComponentInfo:
    """Registry entry for one processor component.

    Attributes:
        name: short name used across tables (RegF, MulD, ...).
        full_name: descriptive name as printed in the paper's Table 2.
        component_class: functional / control / hidden / glue.
        builder: zero-argument netlist generator.
        sequential: True if the component holds state (graded with a
            cycle-accurate trace instead of an unordered pattern set).
        description: one-line role summary.
    """

    name: str
    full_name: str
    component_class: ComponentClass
    builder: Callable[[], Netlist]
    sequential: bool
    description: str


COMPONENTS: tuple[ComponentInfo, ...] = (
    ComponentInfo(
        "RegF", "Register File", ComponentClass.FUNCTIONAL,
        build_register_file, True,
        "31 writable 32-bit registers, 1 write / 2 read ports",
    ),
    ComponentInfo(
        "MulD", "Multiplier/Divider", ComponentClass.FUNCTIONAL,
        build_muldiv, True,
        "32-cycle shift-add multiplier and restoring divider with HI/LO",
    ),
    ComponentInfo(
        "ALU", "Arithmetic-Logic Unit", ComponentClass.FUNCTIONAL,
        build_alu, False,
        "shared adder/subtractor, bitwise ops, set-less-than",
    ),
    ComponentInfo(
        "BSH", "Barrel Shifter", ComponentClass.FUNCTIONAL,
        build_barrel_shifter, False,
        "5-stage logarithmic shifter, left/right/arithmetic",
    ),
    ComponentInfo(
        "MCTRL", "Memory Control", ComponentClass.CONTROL,
        build_mctrl, True,
        "byte-lane steering, load extraction, bus registers, pause FSM",
    ),
    ComponentInfo(
        "PCL", "Program Counter Logic", ComponentClass.CONTROL,
        build_pclogic, True,
        "PC register, +4 incrementer, branch-condition evaluation",
    ),
    ComponentInfo(
        "CTRL", "Control Logic", ComponentClass.CONTROL,
        build_control, False,
        "opcode/funct decoder producing the control bundle",
    ),
    ComponentInfo(
        "BMUX", "Bus Multiplexer", ComponentClass.CONTROL,
        build_busmux, False,
        "operand-source and write-back bus multiplexers",
    ),
    ComponentInfo(
        "PLN", "Pipeline", ComponentClass.HIDDEN,
        build_pipeline, True,
        "pipeline registers with pause/flush gating",
    ),
    ComponentInfo(
        "GL", "Glue Logic", ComponentClass.GLUE,
        build_glue, True,
        "interrupt synchronisers/mask, reset synchroniser, pause combiner",
    ),
)

_BY_NAME = {c.name: c for c in COMPONENTS}


def component(name: str) -> ComponentInfo:
    """Look a component up by short name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown component {name!r}; have {sorted(_BY_NAME)}"
        ) from None


def build_component(name: str) -> Netlist:
    """Build a fresh netlist for one component."""
    return component(name).builder()


def component_table() -> list[dict]:
    """Classification + measured gate counts (Tables 2 and 3 in one).

    Returns:
        One dict per component: name, full_name, class, nand2, n_dffs.
    """
    rows = []
    for info in COMPONENTS:
        stats = gate_count(info.builder())
        rows.append(
            {
                "name": info.name,
                "full_name": info.full_name,
                "class": info.component_class.value,
                "nand2": stats.nand2,
                "n_dffs": stats.n_dffs,
                "sequential": info.sequential,
            }
        )
    return rows
