"""Retry and runtime configuration for the resilient job runner."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable

from repro.errors import ReproRuntimeError
from repro.runtime.events import EventLog


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently a failed job is re-attempted.

    Attributes:
        max_attempts: total tries per job (1 = no retries).
        backoff_seconds: delay before the first retry.
        backoff_multiplier: growth factor per subsequent retry.
        max_backoff_seconds: upper clamp on any single delay.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.5
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproRuntimeError("max_attempts must be at least 1")
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ReproRuntimeError("backoff delays must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ReproRuntimeError("backoff_multiplier must be >= 1")

    def delay_before_retry(self, failed_attempt: int) -> float:
        """Backoff delay after attempt ``failed_attempt`` (1-based) failed."""
        if failed_attempt < 1:
            raise ReproRuntimeError("attempt numbers are 1-based")
        delay = self.backoff_seconds * (
            self.backoff_multiplier ** (failed_attempt - 1)
        )
        return min(delay, self.max_backoff_seconds)


@dataclass
class RuntimeConfig:
    """Knobs for one resilient campaign run.

    Attributes:
        timeout_seconds: wall-clock budget per job attempt (None = no
            limit).  Enforced only for isolated jobs — an in-process job
            cannot be interrupted from the outside.
        retry: the retry/backoff policy.
        checkpoint_dir: directory for the crash-safe JSONL journal (and
            the event log); None disables checkpointing.
        resume: reuse journaled results from ``checkpoint_dir`` instead
            of starting the journal afresh.
        isolate: run each job in its own worker process.
        sleep: injectable sleep function (tests replace it to avoid
            real backoff waits).
        engine: fault-sim engine used by campaign jobs — ``"auto"`` or a
            name registered with :mod:`repro.faultsim.engine`.  Validated
            lazily by the facade so this module stays independent of the
            fault simulator.
        jobs: worker-process count for the sharded parallel scheduler.
            ``1`` (the default) keeps the historical behaviour: grading
            jobs run one component at a time.  ``jobs > 1`` shards each
            component's fault universe over a persistent worker pool
            (see :mod:`repro.runtime.pool`); merged results are
            bit-identical to a sequential run.  With a timeout, the
            budget applies per *shard* attempt rather than per component.
        cancel: cooperative cancellation hook — a zero-argument callable
            polled by :class:`~repro.runtime.runner.JobRunner` before
            every job attempt and by
            :class:`~repro.runtime.pool.ShardScheduler` on every
            scheduler iteration.  Once it returns True the run raises
            :class:`~repro.errors.JobCancelled`; busy pool workers are
            killed, and everything journaled up to that point remains
            valid for ``resume``.  ``None`` (the default) never cancels.
            The hook is parent-side only: it is dropped when the config
            is pickled into a worker.
        events: an externally owned :class:`EventLog` the runner and
            scheduler emit into, so a caller (the campaign service) can
            :meth:`~EventLog.subscribe` *before* the campaign starts and
            stream every transition live.  ``None`` lets the runner
            create its own log as before.  Dropped on pickling, like
            ``cancel``.
    """

    timeout_seconds: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint_dir: str | Path | None = None
    resume: bool = False
    isolate: bool = True
    sleep: Callable[[float], None] = time.sleep
    engine: str = "auto"
    jobs: int = 1
    cancel: Callable[[], bool] | None = None
    events: EventLog | None = None

    def cancelled(self) -> bool:
        """True once the ``cancel`` hook reports cancellation."""
        return self.cancel is not None and bool(self.cancel())

    def __getstate__(self) -> dict:
        """Pickle without the parent-side hooks.

        Worker processes receive the config inside ``GradeOptions`` /
        shard contexts; cancellation and event observation are driven by
        the parent, so closures and live logs must not (and often could
        not) cross the process boundary.
        """
        state = self.__dict__.copy()
        state["cancel"] = None
        state["events"] = None
        return state

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ReproRuntimeError("timeout_seconds must be positive")
        if not self.engine or not isinstance(self.engine, str):
            raise ReproRuntimeError("engine must be a non-empty string")
        if self.resume and self.checkpoint_dir is None:
            raise ReproRuntimeError("resume requires a checkpoint_dir")
        if self.timeout_seconds is not None and not self.isolate:
            raise ReproRuntimeError(
                "timeouts require process isolation (isolate=True)"
            )
        if self.jobs < 1:
            raise ReproRuntimeError("jobs must be at least 1")
        if self.jobs > 1 and not self.isolate:
            raise ReproRuntimeError(
                "parallel grading (jobs > 1) requires process isolation "
                "(isolate=True): shards execute in pool workers"
            )
