#!/usr/bin/env python3
"""Fail CI on broken relative links in README.md and docs/.

Every markdown link whose target is not an external URL or a same-page
anchor must resolve to an existing file relative to the page it appears
on.  ``tests/test_docs.py`` runs the same check in the tier-1 suite;
this entry point exists so the CI docs job fails with a readable list.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` — target may carry a ``#fragment``.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

EXTERNAL = ("http://", "https://", "mailto:")


def markdown_pages(root: Path) -> list[Path]:
    pages = [root / "README.md"]
    pages.extend(sorted((root / "docs").rglob("*.md")))
    return [page for page in pages if page.exists()]


def broken_links(root: Path) -> list[tuple[Path, str]]:
    """Every (page, target) whose relative target does not exist."""
    problems = []
    for page in markdown_pages(root):
        for target in LINK.findall(page.read_text()):
            if target.startswith(EXTERNAL):
                continue
            path, _, _fragment = target.partition("#")
            if not path:
                continue  # same-page anchor
            if not (page.parent / path).resolve().exists():
                problems.append((page.relative_to(root), target))
    return problems


def main() -> int:
    root = Path(__file__).resolve().parents[1]
    pages = markdown_pages(root)
    problems = broken_links(root)
    for page, target in problems:
        print(f"{page}: broken link -> {target}")
    print(f"checked {len(pages)} pages: "
          f"{len(problems)} broken relative links")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
