"""End-to-end fault-grading campaign (produces Tables 4 and 5).

The pipeline (DESIGN.md Section 4):

1. build the self-test program for the requested phases;
2. execute it on the traced behavioural CPU (cycle accounting = Table 4);
3. replay every component's traced stimulus against its gate netlist with
   the stuck-at fault simulator, honouring the taint-derived observability;
4. aggregate per-component FC / MOFC and the overall processor coverage
   (= Table 5).

Step 3 is by far the longest-running part, so it is expressed as one *job*
per component.  By default the jobs run serially in-process (identical to
the historical behaviour); passing a :class:`~repro.runtime.RuntimeConfig`
routes them through the resilient :class:`~repro.runtime.JobRunner`
instead — worker-process isolation, wall-clock timeouts, retries with
backoff, crash-safe JSONL checkpointing with resume, and graceful
degradation (a permanently failing component is reported as ungraded with
lower-bound coverage rather than aborting the whole campaign).
"""

from __future__ import annotations

import hashlib
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import CheckpointCorrupt, FaultSimError, ReproRuntimeError
from repro.core.methodology import SelfTestMethodology, SelfTestProgram
from repro.faultsim.coverage import CoverageSummary
from repro.faultsim.differential import Detection
from repro.faultsim.engine import Stimulus, grade, prune_sets
from repro.faultsim.faults import FaultList, build_fault_list
from repro.faultsim.harness import CampaignResult
from repro.faultsim.observe import ObservePlan, ObserveSpec
from repro.faultsim.options import GradeOptions
from repro.faultsim.store import (
    result_from_payload,
    verdict_key_for,
    verdicts_payload,
)
from repro.netlist.netlist import Netlist
from repro.netlist.stats import gate_count
from repro.plasma.components import COMPONENTS, ComponentInfo, component
from repro.plasma.cpu import CPUResult, PlasmaCPU
from repro.plasma.memory import Memory
from repro.plasma.tracer import ComponentTracer
from repro.runtime.events import JobEvent
from repro.runtime.policy import RuntimeConfig
from repro.runtime.runner import JobRunner

if TYPE_CHECKING:
    from repro.analysis.collapse import CollapseMap
    from repro.analysis.reach import Pattern, ReachReport
    from repro.core.sharded import ShardVerdict
    from repro.runtime.sharding import ShardTask

#: Optional netlist -> netlist rewrite applied before grading.
NetlistTransform = Callable[[Netlist], Netlist]


@dataclass
class CampaignOutcome:
    """Everything a table renderer or benchmark needs from one campaign."""

    phases: str
    self_test: SelfTestProgram
    cpu_result: CPUResult
    results: dict[str, CampaignResult] = field(default_factory=dict)
    summary: CoverageSummary = field(default_factory=CoverageSummary)
    grading_seconds: dict[str, float] = field(default_factory=dict)
    #: Components whose grading permanently failed; their coverage rows
    #: are lower bounds (all faults counted undetected).
    degraded_components: list[str] = field(default_factory=list)
    #: Components whose verdicts were replayed from the persistent store
    #: (``GradeOptions.cache``) instead of being re-simulated.
    cached_components: list[str] = field(default_factory=list)
    #: Structured per-job runtime events (empty for the in-process path).
    events: list[JobEvent] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True if any component's grading permanently failed."""
        return bool(self.degraded_components)

    # ------------------------------------------------------------ tables

    def table4(self) -> dict[str, int]:
        """Self-test program statistics (paper Table 4)."""
        return {
            "code_words": self.self_test.code_words,
            "data_words": self.self_test.data_words,
            "total_words": self.self_test.total_words,
            "clock_cycles": self.cpu_result.cycles,
        }

    def table5(self) -> list[dict[str, object]]:
        """Per-component FC and MOFC rows plus the overall row."""
        rows: list[dict[str, object]] = []
        for cov in self.summary.components:
            rows.append(
                {
                    "name": cov.name,
                    "faults": cov.n_faults,
                    "detected": cov.n_detected,
                    "fc": cov.fault_coverage,
                    "mofc": self.summary.mofc(cov.name),
                    "degraded": cov.degraded,
                    "proven": cov.n_proven,
                }
            )
        rows.append(
            {
                "name": "Plasma",
                "faults": self.summary.total_faults,
                "detected": self.summary.total_detected,
                "fc": self.summary.overall_coverage,
                "mofc": 100.0 - self.summary.overall_coverage,
                "degraded": self.summary.degraded,
                "proven": sum(c.n_proven for c in self.summary.components),
            }
        )
        return rows


def _campaign_options(
    options: GradeOptions | None,
    runtime: RuntimeConfig | None = None,
    prune_untestable: bool | str = False,
    engine: str = "auto",
    collapse: bool = False,
) -> GradeOptions:
    """One :class:`GradeOptions` per campaign, from either convention.

    Campaign entry points accept both the options object and the legacy
    per-feature keywords; unlike :func:`repro.faultsim.grade` the legacy
    spellings stay silent here (the CLI and benchmarks still route
    through them), they are simply folded into one object.  A passed
    ``options`` wins outright.
    """
    if options is None:
        return GradeOptions(
            engine=engine,
            prune_untestable=prune_untestable,
            collapse=collapse,
            runtime=runtime,
        )
    if options.collapse_map is not None:
        raise FaultSimError(
            "campaign-level options must use collapse=True/False; a "
            "precomputed CollapseMap is bound to a single netlist"
        )
    if options.runtime is None and runtime is not None:
        return options.replace(runtime=runtime)
    return options


def _program_reach(
    self_test: SelfTestProgram,
) -> tuple[str, dict[str, list[Pattern]]] | None:
    """Abstract-interpret the self-test program once for the reach screen.

    Returns ``(program_digest, patterns)`` — the per-component derived
    abstract pattern sets (:func:`repro.analysis.reach.derive_patterns`)
    — or ``None`` when the abstraction degrades, in which case the
    screen is silently disabled and grading proceeds exactly as with
    ``reach=False``.
    """
    # Local import: repro.analysis.reach imports the fault model, so
    # the load-time dependency stays one-way.
    from repro.analysis.absint import interpret_program
    from repro.analysis.reach import derive_patterns

    abstraction = interpret_program(self_test.program)
    patterns = derive_patterns(abstraction)
    if not patterns:
        return None
    return abstraction.digest, patterns


def _component_reach(
    digest: str,
    patterns: dict[str, list[Pattern]],
    info: ComponentInfo,
    netlist: Netlist,
    fault_list: FaultList | None = None,
) -> ReachReport | None:
    """One component's reach report against its (transformed) netlist."""
    from repro.analysis.reach import build_reach_report

    if info.name not in patterns:
        return None
    if fault_list is None:
        fault_list = build_fault_list(netlist)
    return build_reach_report(
        netlist, fault_list, patterns[info.name],
        component=info.name, program_digest=digest,
    )


def grade_component(
    info: ComponentInfo,
    stimulus: Stimulus,
    observe: ObserveSpec,
    netlist_transform: NetlistTransform | None = None,
    netlist: Netlist | None = None,
    prune_untestable: bool | str = False,
    engine: str = "auto",
    collapse: bool = False,
    options: GradeOptions | None = None,
) -> CampaignResult:
    """Fault-grade one component against its traced stimulus.

    Args:
        netlist_transform: optional netlist -> netlist rewrite applied
            before grading (e.g. a technology remap for experiment C3).
        netlist: pre-built (and pre-transformed) netlist to grade; when
            given, ``netlist_transform`` is not applied again.
        prune_untestable: pruning mode as accepted by
            :func:`repro.faultsim.grade` — ``True``/``"structural"``
            skips (doesn't simulate) the SCOAP-screened classes with
            coverage unchanged; ``"proven"`` additionally SAT-certifies
            them and excludes the proven-redundant subset from the FC
            denominator.
        engine: fault-sim engine name or ``"auto"`` (see
            :func:`repro.faultsim.engine.engine_names`).
        collapse: grade through the structural collapse map
            (:mod:`repro.analysis.collapse`) — fewer classes simulated,
            identical coverage.
        options: consolidated grading options; wins over the individual
            keywords above.  The component's traced ``observe`` spec and
            name are stamped on internally.
    """
    if netlist is None:
        netlist = info.builder()
        if netlist_transform is not None:
            netlist = netlist_transform(netlist)
    if not stimulus:
        # The program never excited this component (e.g. a prefix program
        # without its routine): everything stays undetected.
        return CampaignResult(info.name, build_fault_list(netlist))
    base = _campaign_options(
        options, prune_untestable=prune_untestable, engine=engine,
        collapse=collapse,
    )
    opts = base.replace(observe=observe, name=info.name, subset=None)
    return grade(netlist, stimulus, options=opts)


def execute_self_test(
    self_test: SelfTestProgram,
) -> tuple[CPUResult, ComponentTracer, Memory]:
    """Run a self-test program on the traced CPU."""
    tracer = ComponentTracer()
    cpu = PlasmaCPU(tracer=tracer)
    cpu.load_program(self_test.program)
    result = cpu.run()
    return result, tracer, cpu.memory


# ------------------------------------------------------------------- jobs
#
# One fault-grading job per component.  The function is module-level so a
# worker process can execute it, and it returns ``(result, nand2)`` from a
# *single* netlist build (the area is measured pre-transform, matching the
# historical Table 3 semantics).


def _grading_job(
    name: str,
    stimulus: Stimulus,
    observe: ObserveSpec,
    netlist_transform: NetlistTransform | None = None,
    options: GradeOptions | None = None,
) -> tuple[CampaignResult, int]:
    """Build one component once, measure its area, fault-grade it."""
    info = component(name)
    netlist = info.builder()
    nand2 = gate_count(netlist).nand2
    if netlist_transform is not None:
        netlist = netlist_transform(netlist)
    result = grade_component(
        info, stimulus, observe, netlist=netlist, options=options
    )
    return result, nand2


def _job_fingerprint(
    self_test: SelfTestProgram,
    info: ComponentInfo,
    netlist_transform: NetlistTransform | None = None,
    options: GradeOptions | None = None,
) -> str:
    """Configuration hash guarding checkpoint reuse.

    The traced stimulus is a deterministic function of the program source,
    so hashing the source (plus the component and transform identities)
    is enough to detect a journal written by a different campaign.  The
    verdict-shaping options (prune mode, fault-ordering epoch) enter via
    :meth:`GradeOptions.fingerprint` — engine, lane and cache choices
    deliberately do not, because verdicts are invariant under them.
    """
    digest = hashlib.sha256()
    digest.update(self_test.phases.encode())
    digest.update(self_test.source.encode())
    digest.update(info.name.encode())
    transform_id = (
        "" if netlist_transform is None
        else getattr(netlist_transform, "__qualname__", repr(netlist_transform))
    )
    digest.update(transform_id.encode())
    digest.update((options or GradeOptions()).fingerprint().encode())
    return digest.hexdigest()[:16]


def _result_to_record(
    value: tuple[CampaignResult, int], elapsed: float = 0.0
) -> dict[str, object]:
    """Serialize a grading result to a JSON-safe checkpoint record."""
    result, nand2 = value
    return {
        "name": result.name,
        "n_faults": result.n_faults,
        "detected": sorted(result.detected),
        "n_patterns": result.n_patterns,
        "nand2": nand2,
        "elapsed": elapsed,
        "pruned": sorted(result.pruned),
        "proven": sorted(result.proven),
        "n_simulated": result.n_simulated,
        "n_inferred": result.n_inferred,
        "n_reach_skipped": result.n_reach_skipped,
        "collapse_hash": result.collapse_hash,
    }


def _record_to_result(
    record: dict[str, Any],
    info: ComponentInfo,
    netlist_transform: NetlistTransform | None = None,
) -> tuple[CampaignResult, int]:
    """Rebuild a :class:`CampaignResult` from a journaled record.

    The fault universe is regenerated deterministically from the netlist
    builder; only the detected set comes from the journal.  Per-fault
    Detection records are not journaled, so a resumed result has an empty
    ``detections`` map (coverage numbers are unaffected).
    """
    netlist = info.builder()
    if netlist_transform is not None:
        netlist = netlist_transform(netlist)
    fault_list = build_fault_list(netlist)
    if fault_list.n_collapsed != record["n_faults"]:
        raise CheckpointCorrupt(
            f"journaled record for {info.name!r} has {record['n_faults']} "
            f"fault classes but the netlist yields "
            f"{fault_list.n_collapsed}"
        )
    result = CampaignResult(
        info.name,
        fault_list,
        detected=set(record["detected"]),
        n_patterns=record["n_patterns"],
        pruned=set(record.get("pruned", ())),
        proven=set(record.get("proven", ())),
    )
    result.n_simulated = int(record.get("n_simulated", 0))
    result.n_inferred = int(record.get("n_inferred", 0))
    result.n_reach_skipped = int(record.get("n_reach_skipped", 0))
    result.collapse_hash = str(record.get("collapse_hash", ""))
    return result, record["nand2"]


def _ungraded_result(
    info: ComponentInfo, netlist_transform: NetlistTransform | None = None
) -> tuple[CampaignResult, int]:
    """Fallback for a permanently failed job: full fault universe, nothing
    detected, so the component contributes a coverage *lower bound*."""
    try:
        netlist = info.builder()
        nand2 = gate_count(netlist).nand2
        if netlist_transform is not None:
            netlist = netlist_transform(netlist)
        fault_list = build_fault_list(netlist)
    except Exception:
        # Even the builder is broken (that may be *why* the job failed);
        # report an empty universe rather than crash the degraded path.
        fault_list = build_fault_list(Netlist(info.name))
        nand2 = 0
    return CampaignResult(info.name, fault_list), nand2


def grade_traced(
    self_test: SelfTestProgram,
    cpu_result: CPUResult,
    specs: dict[str, tuple[Stimulus, ObserveSpec]],
    components: list[str] | None = None,
    verbose: bool = False,
    netlist_transform: NetlistTransform | None = None,
    runtime: RuntimeConfig | None = None,
    prune_untestable: bool | str = False,
    engine: str = "auto",
    jobs: int | None = None,
    collapse: bool = False,
    options: GradeOptions | None = None,
) -> CampaignOutcome:
    """Fault-grade already-traced stimulus (the grading stage alone).

    :func:`grade_program` = :func:`execute_self_test` + this function.
    Split out so callers that already hold a CPU trace (benchmarks, the
    parallel-scaling harness) can time or re-run the grading stage
    without re-executing the program.

    Args:
        specs: ``tracer.finalize()`` output — per component name, the
            ``(stimulus, observe)`` pair captured during execution.
        jobs: number of parallel grading workers.  ``None`` defers to
            ``runtime.jobs`` (default 1 = serial).  With more than one
            worker, each component's collapsed fault universe is sharded
            (:func:`repro.runtime.sharding.plan_shards`) and fanned over
            a persistent pool; the merged outcome is bit-identical to the
            serial run (DESIGN.md Section 11).
        collapse: grade through the structural collapse map
            (:mod:`repro.analysis.collapse`): only super-class
            representatives are simulated and dominated verdicts are
            inferred.  Coverage and detected sets are bit-identical to
            ``collapse=False`` (only ``n_simulated``/``n_inferred``
            accounting differs), so journaled component records remain
            reusable across the flag; sharded runs stamp the collapse
            hash into shard fingerprints because shard bounds then index
            a different universe.
        options: consolidated grading options (engine, pruning,
            collapsing, persistent cache, packed lanes); wins over the
            individual legacy keywords.
    """
    opts = _campaign_options(
        options, runtime=runtime, prune_untestable=prune_untestable,
        engine=engine, collapse=collapse,
    )
    if opts.reach_report is not None:
        raise FaultSimError(
            "campaign-level options must use reach=True/False; a "
            "precomputed ReachReport is bound to a single "
            "(program, component) pair"
        )
    effective_jobs = jobs
    if effective_jobs is None:
        effective_jobs = runtime.jobs if runtime is not None else 1
    if effective_jobs < 1:
        raise ReproRuntimeError(f"jobs must be >= 1, got {effective_jobs}")

    reach_info = _program_reach(self_test) if opts.reach_requested else None
    outcome = CampaignOutcome(
        phases=self_test.phases, self_test=self_test, cpu_result=cpu_result
    )
    wanted = set(components) if components is not None else None
    if effective_jobs > 1:
        _grade_traced_parallel(
            outcome, self_test, specs, wanted, verbose, netlist_transform,
            runtime, opts, effective_jobs, reach_info,
        )
        return outcome
    runner = JobRunner(runtime) if runtime is not None else None
    for info in COMPONENTS:
        if wanted is not None and info.name not in wanted:
            continue
        stimulus, observe = specs[info.name]
        degraded = False
        copts = opts
        if reach_info is not None and stimulus:
            # Stamp the component's reach report onto the options the
            # job grades with; the job fingerprint is unchanged (the
            # screen never changes verdicts, so journaled records stay
            # reusable across the flag).
            rnetlist = info.builder()
            if netlist_transform is not None:
                rnetlist = netlist_transform(rnetlist)
            report = _component_reach(
                reach_info[0], reach_info[1], info, rnetlist
            )
            copts = opts.replace(
                reach=report if report is not None else False
            )
        elif opts.reach_requested:
            copts = opts.replace(reach=False)
        if runner is None:
            started = time.perf_counter()
            result, nand2 = _grading_job(
                info.name, stimulus, observe, netlist_transform, copts
            )
            elapsed = time.perf_counter() - started
        else:
            key = f"{self_test.phases}:{info.name}"
            fingerprint = _job_fingerprint(
                self_test, info, netlist_transform, copts
            )
            job_args = (info.name, stimulus, observe, netlist_transform,
                        copts)
            job = runner.run(
                key=key, fn=_grading_job, args=job_args,
                fingerprint=fingerprint, serialize=_result_to_record,
            )
            if job.status == "cached":
                try:
                    result, nand2 = _record_to_result(
                        job.record, info, netlist_transform
                    )
                    elapsed = float(job.record.get("elapsed", 0.0))
                except (CheckpointCorrupt, KeyError, TypeError):
                    # Journal disagrees with the current netlist (or the
                    # record is malformed): distrust it and re-grade from
                    # scratch, still resiliently.  The fresh result is
                    # appended under the same key and wins next resume.
                    runner.invalidate(key)
                    job = runner.run(
                        key=key, fn=_grading_job, args=job_args,
                        fingerprint=fingerprint, serialize=_result_to_record,
                    )
            if job.status != "cached":
                if job.failed:
                    result, nand2 = _ungraded_result(info, netlist_transform)
                    elapsed = 0.0
                    degraded = True
                else:
                    result, nand2 = job.value
                    elapsed = job.elapsed
        outcome.results[info.name] = result
        outcome.grading_seconds[info.name] = elapsed
        if degraded:
            outcome.degraded_components.append(info.name)
        if result.cache_hit:
            outcome.cached_components.append(info.name)
        outcome.summary.add(
            result.to_component_coverage(nand2, degraded=degraded)
        )
        if verbose:
            marker = " DEGRADED (lower bound)" if degraded else ""
            pruned = (
                f", {result.n_pruned} pruned" if result.pruned else ""
            )
            inferred = (
                f", {result.n_inferred} inferred" if result.n_inferred else ""
            )
            screened = (
                f", {result.n_reach_skipped} reach-screened"
                if result.n_reach_skipped else ""
            )
            cached = ", store hit" if result.cache_hit else ""
            print(
                f"  {info.name:6s} FC={result.fault_coverage:6.2f}% "
                f"({result.n_detected}/{result.n_faults} faults, "
                f"{len(stimulus)} stimulus entries, {elapsed:.1f}s"
                f"{pruned}{inferred}{screened}{cached}){marker}"
            )
    if runner is not None:
        outcome.events = runner.events.events
    return outcome


# --------------------------------------------------------- parallel path


def _grade_traced_parallel(
    outcome: CampaignOutcome,
    self_test: SelfTestProgram,
    specs: dict[str, tuple[Stimulus, ObserveSpec]],
    wanted: set[str] | None,
    verbose: bool,
    netlist_transform: NetlistTransform | None,
    runtime: RuntimeConfig | None,
    options: GradeOptions,
    jobs: int,
    reach_info: tuple[str, dict[str, list[Pattern]]] | None = None,
) -> None:
    """Shard every component's fault universe over a persistent pool.

    Determinism: stuck-at verdicts are per-fault properties, independent
    of which other faults are co-graded, so the merged outcome (detected
    sets, coverage percentages, Table 5) is bit-identical to the serial
    run regardless of worker count, shard boundaries or completion order.
    Resilience composes at shard granularity: each shard gets the
    runtime's timeout/retry budget, a worker crash degrades only the
    shards it was executing, and the journal records completed shards so
    ``--resume`` re-grades exactly the missing ones.

    Persistent store: with ``options.cache`` set, the parent checks each
    component's verdict record *before* planning its shards — a hit
    replays the whole component with zero shard tasks — and writes the
    merged record back after a clean (non-degraded) merge, so the next
    unchanged campaign re-simulates nothing.
    """
    from repro.core.sharded import (
        ShardContext,
        grade_shard,
        install_shard_context,
        merge_shard_results,
        record_to_verdict,
        shard_record,
    )
    from repro.faultsim.trace_cache import set_active_store
    from repro.runtime.pool import ShardScheduler
    from repro.runtime.sharding import ShardTask, plan_shards

    config = runtime if runtime is not None else RuntimeConfig(jobs=jobs)
    if not config.isolate:
        raise ReproRuntimeError(
            "parallel sharded grading requires worker isolation; "
            "jobs > 1 cannot be combined with isolate=False"
        )

    context = ShardContext(
        stimulus={name: spec[0] for name, spec in specs.items()},
        observe={name: spec[1] for name, spec in specs.items()},
        netlist_transform=netlist_transform,
        options=options,
    )
    # Install in the parent *before* the pool starts: fork-started
    # workers inherit the traces by memory; the initializer below covers
    # spawn-started (and replacement) workers.  The install activates
    # the persistent store globally, so restore the parent afterwards.
    previous_store = set_active_store(None)
    install_shard_context(context)
    store = options.store
    # Packed words carry ``lanes - 1`` fault classes; aligning shard
    # bounds keeps every word fully occupied (verdicts are identical
    # for any partition — this is purely a throughput knob).
    lane_align = (
        options.lanes - 1 if options.effective_engine() == "packed" else 1
    )

    try:
        # plan: (info, fault_list, nand2, n_patterns, comp_tasks,
        #        cached_result, store_key, reach_members)
        plan: list[tuple[
            ComponentInfo, FaultList, int, int, list[ShardTask],
            CampaignResult | None, str, tuple[int, ...],
        ]] = []
        tasks: list[ShardTask] = []
        for info in COMPONENTS:
            if wanted is not None and info.name not in wanted:
                continue
            netlist = info.builder()
            nand2 = gate_count(netlist).nand2
            if netlist_transform is not None:
                netlist = netlist_transform(netlist)
            fault_list = build_fault_list(netlist)
            stimulus, observe = specs[info.name]
            if not stimulus:
                # Never excited: all faults stay undetected.  Handled in
                # the parent — no grading work to shard.
                plan.append((info, fault_list, nand2, 0, [], None, "", ()))
                continue
            # Shard bounds index the universe the workers will grade:
            # base class representatives uncollapsed, super-class
            # simulation units collapsed.  The collapse hash goes into
            # the fingerprint so a resumed run never reuses shard bounds
            # from the other universe.
            universe_size = fault_list.n_collapsed
            chash = ""
            cmap: CollapseMap | None = None
            if options.collapse_requested:
                from repro.analysis.collapse import compute_collapse

                cmap = compute_collapse(netlist, fault_list)
                universe_size = len(cmap.simulation_order())
                chash = cmap.collapse_hash
            # Reach screen: drop proven-unexercised classes from the
            # sharded universe.  Workers recompute the identical
            # reduction from the context's report; the parent
            # synthesises the dropped classes' verdicts after the
            # merge.  The reach hash joins the shard fingerprint
            # because shard bounds then index the reduced universe.
            reach_members: tuple[int, ...] = ()
            rsuffix = ""
            if reach_info is not None:
                report = _component_reach(
                    reach_info[0], reach_info[1], info, netlist,
                    fault_list,
                )
                if report is not None and report.proven:
                    from repro.analysis.reach import reach_reduction

                    context.reach[info.name] = report
                    pskip, _ = prune_sets(
                        netlist, fault_list, options.prune_mode
                    )
                    rdrop = reach_reduction(
                        report, fault_list, cmap, pskip
                    )
                    if rdrop:
                        universe_size -= len(rdrop)
                        rsuffix = f":r{report.reach_hash}"
                        if cmap is None:
                            reach_members = tuple(sorted(rdrop))
                        else:
                            reach_members = tuple(
                                m
                                for s in sorted(rdrop)
                                for m in cmap.members(s)
                                if m not in pskip
                            )
            store_key = ""
            if store is not None:
                plan_obs = ObservePlan.from_spec(
                    observe, len(stimulus), netlist
                )
                store_key = verdict_key_for(
                    store, netlist, stimulus, plan_obs, fault_list,
                    prune_mode=options.prune_mode, collapse_hash=chash,
                )
                payload = store.load_verdicts(store_key)
                if payload is not None:
                    cached: CampaignResult | None
                    try:
                        if int(payload["n_classes"]) != fault_list.n_collapsed:
                            raise ValueError("universe size mismatch")
                        cached = result_from_payload(
                            payload, info.name, fault_list
                        )
                    except (KeyError, TypeError, ValueError):
                        cached = None  # malformed: re-grade from scratch
                    if cached is not None:
                        plan.append((
                            info, fault_list, nand2, len(stimulus), [],
                            cached, store_key, (),
                        ))
                        continue
            comp_tasks: list[ShardTask] = []
            if universe_size > 0:
                shards = plan_shards(
                    universe_size, jobs, lane_align=lane_align
                )
                base = _job_fingerprint(
                    self_test, info, netlist_transform, options
                )
                suffix = (f":c{chash}" if chash else "") + rsuffix
                n = len(shards)
                comp_tasks = [
                    ShardTask(
                        key=(
                            f"{self_test.phases}:{info.name}"
                            f"#{i + 1:02d}/{n:02d}"
                        ),
                        fn=grade_shard,
                        args=(info.name, lo, hi),
                        fingerprint=(
                            f"{base}:{lo}-{hi}/{universe_size}{suffix}"
                        ),
                        size=hi - lo,
                    )
                    for i, (lo, hi) in enumerate(shards)
                ]
            tasks.extend(comp_tasks)
            plan.append((
                info, fault_list, nand2, len(stimulus), comp_tasks,
                None, store_key, reach_members,
            ))

        scheduler = ShardScheduler(
            config, jobs=jobs,
            initializer=install_shard_context, initargs=(context,),
        )
        shard_outcomes = scheduler.run(tasks, serialize=shard_record)
    finally:
        set_active_store(previous_store)

    journal_path = getattr(scheduler.runner.checkpoint, "path", None)
    for (info, fault_list, nand2, n_patterns, comp_tasks, cached_result,
         store_key, reach_members) in plan:
        degraded = False
        elapsed = 0.0
        if cached_result is not None:
            result = cached_result
        else:
            verdicts: list[ShardVerdict] = []
            for task in comp_tasks:
                shard = shard_outcomes[task.key]
                if shard.status == "ok":
                    verdict = shard.value
                    elapsed += shard.elapsed
                elif shard.status == "cached":
                    try:
                        verdict = record_to_verdict(
                            shard.record, journal_path
                        )
                    except CheckpointCorrupt:
                        degraded = True
                        continue
                else:  # failed: attempts exhausted — this shard is lost
                    degraded = True
                    continue
                if verdict.n_classes != fault_list.n_collapsed:
                    # Stale journal that somehow passed the fingerprint
                    # guard: distrust the shard rather than abort.
                    degraded = True
                    continue
                verdicts.append(verdict)
            result = merge_shard_results(
                info.name, fault_list, n_patterns, verdicts
            )
            # Reach-screened classes were dropped from every shard;
            # synthesise the verdict any engine would report for an
            # unexercised fault so the merged record (and any stored
            # payload) matches a reach-off run field for field.
            for member in reach_members:
                result.detections[member] = Detection(
                    False, excited=False
                )
            result.n_reach_skipped = len(reach_members)
            if store is not None and store_key and not degraded:
                store.save_verdicts(store_key, verdicts_payload(result))
        outcome.results[info.name] = result
        outcome.grading_seconds[info.name] = elapsed
        if degraded:
            outcome.degraded_components.append(info.name)
        if result.cache_hit:
            outcome.cached_components.append(info.name)
        outcome.summary.add(
            result.to_component_coverage(nand2, degraded=degraded)
        )
        if verbose:
            marker = " DEGRADED (lower bound)" if degraded else ""
            pruned = f", {result.n_pruned} pruned" if result.pruned else ""
            inferred = (
                f", {result.n_inferred} inferred" if result.n_inferred else ""
            )
            screened = (
                f", {result.n_reach_skipped} reach-screened"
                if result.n_reach_skipped else ""
            )
            cached = ", store hit" if result.cache_hit else ""
            print(
                f"  {info.name:6s} FC={result.fault_coverage:6.2f}% "
                f"({result.n_detected}/{result.n_faults} faults, "
                f"{len(comp_tasks)} shards, {elapsed:.1f}s compute"
                f"{pruned}{inferred}{screened}{cached}){marker}"
            )
    outcome.events = scheduler.events.events


def grade_program(
    self_test: SelfTestProgram,
    components: list[str] | None = None,
    verbose: bool = False,
    netlist_transform: NetlistTransform | None = None,
    runtime: RuntimeConfig | None = None,
    prune_untestable: bool | str = False,
    engine: str = "auto",
    jobs: int | None = None,
    collapse: bool = False,
    options: GradeOptions | None = None,
) -> CampaignOutcome:
    """Execute any program on the traced CPU and fault-grade components.

    This is the shared back half of :func:`run_campaign`; the baselines
    (pseudorandom / Chen&Dey programs) are graded through it too, so every
    comparison uses identical machinery.

    Args:
        runtime: route the per-component jobs through the resilient
            :class:`~repro.runtime.JobRunner` (isolation, timeout, retry,
            checkpoint/resume, graceful degradation).  None keeps the
            historical serial in-process path.
        prune_untestable: skip simulation of structurally untestable
            fault classes (SCOAP screener); coverage is unchanged, only
            simulation time is saved.
        engine: fault-sim engine name or ``"auto"``.  An explicit
            ``runtime.engine`` takes over when this stays ``"auto"``.
            Engine choice is *not* part of the checkpoint fingerprint:
            verdicts are engine-invariant, so a resumed campaign may
            freely switch engines and still reuse journaled results.
        jobs: parallel grading workers (see :func:`grade_traced`).
        collapse: grade through the structural collapse map; verdicts
            and coverage are bit-identical either way (see
            :func:`grade_traced`).
        options: consolidated :class:`GradeOptions`; wins over the
            individual legacy keywords (see :func:`grade_traced`).
    """
    cpu_result, tracer, _memory = execute_self_test(self_test)
    specs = tracer.finalize()
    return grade_traced(
        self_test,
        cpu_result,
        specs,
        components=components,
        verbose=verbose,
        netlist_transform=netlist_transform,
        runtime=runtime,
        prune_untestable=prune_untestable,
        engine=engine,
        jobs=jobs,
        collapse=collapse,
        options=options,
    )


def run_campaign(
    phases: str = "A",
    components: list[str] | None = None,
    methodology: SelfTestMethodology | None = None,
    verbose: bool = False,
    netlist_transform: NetlistTransform | None = None,
    runtime: RuntimeConfig | None = None,
    prune_untestable: bool | str = False,
    engine: str = "auto",
    jobs: int | None = None,
    collapse: bool = False,
    options: GradeOptions | None = None,
) -> CampaignOutcome:
    """Full pipeline for one phase configuration.

    Args:
        phases: ``"A"``, ``"AB"`` or ``"ABC"``.
        components: short names to grade (default: all ten).  Components
            outside the subset are skipped entirely (useful for fast tests);
            the summary then only aggregates the graded subset.
        methodology: custom methodology instance (for ablations).
        verbose: print per-component progress with timings.
        runtime: resilient-runner configuration (see
            :func:`grade_program`); None = serial in-process grading.
        engine: fault-sim engine name or ``"auto"`` (see
            :func:`grade_program`).
        jobs: parallel grading workers; the merged outcome is
            bit-identical to ``jobs=1`` (see :func:`grade_traced`).
        collapse: simulate only super-class representatives of the
            structural collapse map and infer dominated verdicts;
            Table 4/5 numbers are bit-identical either way (see
            :func:`grade_traced`).
        options: consolidated :class:`GradeOptions` (engine, pruning,
            collapsing, persistent cache, packed lanes); wins over the
            individual legacy keywords.

    Returns:
        The campaign outcome with Table 4/5 data attached.
    """
    methodology = methodology or SelfTestMethodology()
    self_test = methodology.build_program(phases)
    return grade_program(
        self_test,
        components=components,
        verbose=verbose,
        netlist_transform=netlist_transform,
        runtime=runtime,
        prune_untestable=prune_untestable,
        engine=engine,
        jobs=jobs,
        collapse=collapse,
        options=options,
    )
