"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  Subpackages raise
the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AssemblyError(ReproError):
    """An assembly-language source could not be assembled.

    Carries the offending source line number (1-based) when known.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """An instruction could not be encoded or decoded."""


class NetlistError(ReproError):
    """A gate-level netlist is malformed or an operation on it is invalid."""


class SimulationError(ReproError):
    """The CPU or logic simulator reached an invalid state."""


class FaultSimError(ReproError):
    """The fault simulator was misused or reached an invalid state."""


class MethodologyError(ReproError):
    """The SBST methodology was applied to an unsupported configuration."""
