"""A dependency-free CDCL SAT solver (the classic MiniSat recipe).

The solver implements the standard conflict-driven clause-learning
loop over DIMACS-signed integer literals:

* **two-watched-literal** unit propagation — only clauses whose watched
  literal just became false are visited, and backtracking never touches
  the watch lists;
* **1UIP conflict analysis** with local (self-subsumption) clause
  minimisation — every conflict learns one asserting clause and jumps
  back to the second-highest level in it;
* **VSIDS** branching — variable activities are bumped on every
  conflict and decay geometrically, implemented with a lazy max-heap;
* **phase saving** — a variable is re-tried at its last assigned
  polarity, which keeps the solver inside the satisfying prefix it has
  already built;
* **Luby restarts** — the conflict budget between restarts follows the
  Luby sequence times :data:`RESTART_BASE`;
* an **assumption interface** — :meth:`SatSolver.solve` takes a list of
  literals that are placed as the first decisions; the answer is then
  "satisfiable *under these assumptions*", which the formal layer uses
  to query one miter under different constraint sets without
  re-encoding.

The implementation is pure Python on purpose (the repo has a no-
dependency rule) and tuned for the shapes the formal layer produces:
structurally-hashed miters whose solving is dominated by unit
propagation, not by search.  DESIGN.md §12 gives the background.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from heapq import heappop, heappush

#: Conflicts allowed before the first restart (scaled by the Luby sequence).
RESTART_BASE = 128

#: Geometric decay applied to variable activities after each conflict.
ACTIVITY_DECAY = 0.95

#: Rescale threshold that keeps activities inside float range.
ACTIVITY_RESCALE = 1e100


@dataclass
class SolverStats:
    """Search statistics for reporting and the ``bench_sat`` benchmark."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned: int = 0
    restarts: int = 0
    max_learned_len: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "learned": self.learned,
            "restarts": self.restarts,
            "max_learned_len": self.max_learned_len,
        }


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


@dataclass
class _ClauseDB:
    """Clause storage: problem clauses first, learned clauses appended."""

    clauses: list[list[int]] = field(default_factory=list)

    def add(self, lits: list[int]) -> int:
        self.clauses.append(lits)
        return len(self.clauses) - 1


class SatSolver:
    """CDCL solver over DIMACS-signed literals.

    Typical use::

        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a])
        assert solver.solve()
        assert solver.value(b) is True

    Variables may also be declared implicitly by adding clauses that
    mention them.  ``solve`` may be called repeatedly with different
    assumptions; clauses may be added between calls (incremental use).
    """

    def __init__(self) -> None:
        self._db = _ClauseDB()
        self._n_vars = 0
        # Indexed by literal code (2*v for +v, 2*v+1 for -v): the clause
        # ids currently watching that literal.
        self._watches: list[list[int]] = [[], []]
        # Indexed by variable: 0 unassigned, +1 true, -1 false.
        self._assign: list[int] = [0]
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]
        self._activity: list[float] = [0.0]
        self._saved_phase: list[bool] = [False]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._heap: list[tuple[float, int]] = []
        self._var_inc = 1.0
        self._ok = True
        self.stats = SolverStats()

    # ------------------------------------------------------------ setup

    def new_var(self) -> int:
        self._n_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._saved_phase.append(False)
        self._watches.append([])
        self._watches.append([])
        heappush(self._heap, (0.0, self._n_vars))
        return self._n_vars

    @property
    def n_vars(self) -> int:
        return self._n_vars

    def _ensure_var(self, var: int) -> None:
        while self._n_vars < var:
            self.new_var()

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause; performs top-level simplification.

        Must be called with the solver at decision level 0 (it always is
        between ``solve`` calls — ``solve`` backtracks fully on entry
        and exit).
        """
        if not self._ok:
            return
        seen: set[int] = set()
        clause: list[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._ensure_var(abs(lit))
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            value = self._value(lit)
            if value == 1 and self._level[abs(lit)] == 0:
                return  # satisfied at top level
            if value == -1 and self._level[abs(lit)] == 0:
                continue  # falsified at top level: drop the literal
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self._ok = False
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], -1):
                self._ok = False
            return
        cid = self._db.add(clause)
        self._watch(clause[0], cid)
        self._watch(clause[1], cid)

    def _watch(self, lit: int, cid: int) -> None:
        self._watches[self._code(lit)].append(cid)

    @staticmethod
    def _code(lit: int) -> int:
        return 2 * lit if lit > 0 else -2 * lit + 1

    # ------------------------------------------------------- assignment

    def _value(self, lit: int) -> int:
        """+1 if the literal is true, -1 if false, 0 if unassigned."""
        value = self._assign[abs(lit)]
        return value if lit > 0 else -value

    def value(self, var: int) -> bool | None:
        """Model value of a variable after a satisfiable ``solve``."""
        value = self._assign[var]
        return None if value == 0 else value > 0

    def lit_value(self, lit: int) -> bool | None:
        """Model value of a literal after a satisfiable ``solve``."""
        value = self._value(lit)
        return None if value == 0 else value > 0

    @property
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: int) -> bool:
        value = self._value(lit)
        if value != 0:
            return value > 0
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = self._decision_level
        self._reason[var] = reason
        self._saved_phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _backtrack(self, level: int) -> None:
        if self._decision_level <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._assign[var] = 0
            self._reason[var] = -1
            heappush(self._heap, (-self._activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------ propagation

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause id or -1."""
        watches = self._watches
        clauses = self._db.clauses
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = -lit
            code = self._code(false_lit)
            watch_list = watches[code]
            keep: list[int] = []
            i = 0
            n = len(watch_list)
            while i < n:
                cid = watch_list[i]
                i += 1
                clause = clauses[cid]
                # Normalise: the false literal sits at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    keep.append(cid)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        watches[self._code(clause[1])].append(cid)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(cid)
                if not self._enqueue(first, cid):
                    # Conflict: keep the remaining watchers intact.
                    keep.extend(watch_list[i:n])
                    watches[code] = keep
                    self._qhead = len(self._trail)
                    return cid
            watches[code] = keep
        return -1

    # --------------------------------------------------------- analysis

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > ACTIVITY_RESCALE:
            inverse = 1.0 / ACTIVITY_RESCALE
            for v in range(1, self._n_vars + 1):
                self._activity[v] *= inverse
            self._var_inc *= inverse

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """1UIP learning: returns (learned clause, backjump level).

        The asserting literal is placed first in the learned clause.
        """
        learned: list[int] = [0]  # slot 0 holds the asserting literal
        seen = [False] * (self._n_vars + 1)
        counter = 0  # literals of the current level still to resolve
        lit = 0
        index = len(self._trail)
        cid = conflict
        level = self._decision_level
        while True:
            clause = self._db.clauses[cid]
            start = 1 if lit != 0 else 0
            for other in clause[start:]:
                var = abs(other)
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] >= level:
                    counter += 1
                else:
                    learned.append(other)
            # Walk the trail back to the next marked literal.
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[abs(lit)]:
                    break
            counter -= 1
            if counter == 0:
                break
            cid = self._reason[abs(lit)]
            seen[abs(lit)] = False
        learned[0] = -lit

        # Local minimisation: drop literals whose reason clause is fully
        # subsumed by the rest of the learned clause.
        minimised = [learned[0]]
        for other in learned[1:]:
            reason = self._reason[abs(other)]
            if reason == -1:
                minimised.append(other)
                continue
            if any(
                abs(ante) != abs(other)
                and not seen[abs(ante)]
                and self._level[abs(ante)] > 0
                for ante in self._db.clauses[reason]
            ):
                minimised.append(other)
        learned = minimised

        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest decision level in the clause.
        max_i = 1
        for i in range(2, len(learned)):
            if self._level[abs(learned[i])] > self._level[abs(learned[max_i])]:
                max_i = i
        learned[1], learned[max_i] = learned[max_i], learned[1]
        return learned, self._level[abs(learned[1])]

    def _record_learned(self, learned: list[int]) -> None:
        self.stats.learned += 1
        self.stats.max_learned_len = max(
            self.stats.max_learned_len, len(learned)
        )
        if len(learned) == 1:
            self._enqueue(learned[0], -1)
            return
        cid = self._db.add(learned)
        self._watch(learned[0], cid)
        self._watch(learned[1], cid)
        self._enqueue(learned[0], cid)

    # ----------------------------------------------------------- search

    def _decide(self) -> int:
        """Pop the most active unassigned variable (0 when none left)."""
        heap = self._heap
        while heap:
            activity, var = heappop(heap)
            if self._assign[var] == 0 and -activity == self._activity[var]:
                return var
        # The heap may be stale (activities bumped since push); rebuild.
        for var in range(1, self._n_vars + 1):
            if self._assign[var] == 0:
                heappush(heap, (-self._activity[var], var))
        if heap:
            _, var = heappop(heap)
            if self._assign[var] == 0:
                return var
        return 0

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability under ``assumptions``.

        Returns True and leaves a full model queryable through
        :meth:`value` / :meth:`lit_value`, or returns False when the
        clause set is unsatisfiable with every assumption literal held
        true.  The solver state stays valid for further ``solve`` and
        ``add_clause`` calls.
        """
        for lit in assumptions:
            self._ensure_var(abs(lit))
        self._backtrack(0)
        if not self._ok:
            return False
        if self._propagate() != -1:
            self._ok = False
            return False

        conflicts_at_restart = 0
        budget = RESTART_BASE * luby(self.stats.restarts + 1)
        while True:
            conflict = self._propagate()
            if conflict != -1:
                self.stats.conflicts += 1
                conflicts_at_restart += 1
                if self._decision_level == 0:
                    self._ok = False
                    return False
                learned, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                self._record_learned(learned)
                self._var_inc /= ACTIVITY_DECAY
                continue
            if conflicts_at_restart >= budget:
                self.stats.restarts += 1
                conflicts_at_restart = 0
                budget = RESTART_BASE * luby(self.stats.restarts + 1)
                self._backtrack(0)
                continue
            # Place pending assumptions as the next decisions.
            if self._decision_level < len(assumptions):
                lit = assumptions[self._decision_level]
                value = self._value(lit)
                if value == -1:
                    self._backtrack(0)
                    return False
                self._new_decision_level()
                if value == 0:
                    self._enqueue(lit, -1)
                continue
            var = self._decide()
            if var == 0:
                return True  # full assignment: satisfiable
            self.stats.decisions += 1
            self._new_decision_level()
            lit = var if self._saved_phase[var] else -var
            self._enqueue(lit, -1)


def solve_cnf(
    clauses: Iterable[Iterable[int]], assumptions: Sequence[int] = ()
) -> tuple[bool, SatSolver]:
    """One-shot convenience: build a solver, load clauses, solve."""
    solver = SatSolver()
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve(assumptions), solver
