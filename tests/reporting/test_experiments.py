"""Unit tests for the experiment registry."""

import os

import pytest

from repro.reporting.experiments import EXPERIMENTS, by_id


class TestRegistry:
    def test_all_paper_tables_covered(self):
        artifacts = {e.paper_artifact for e in EXPERIMENTS}
        for table in ("Table 2", "Table 3", "Table 4", "Table 5"):
            assert any(table in a for a in artifacts), table

    def test_comparison_claims_covered(self):
        ids = {e.exp_id for e in EXPERIMENTS}
        assert {"C1", "C2", "C3"} <= ids

    def test_ablations_present(self):
        ids = {e.exp_id for e in EXPERIMENTS}
        assert {"A1", "A2"} <= ids

    def test_ids_unique(self):
        ids = [e.exp_id for e in EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_lookup(self):
        assert by_id("T5").paper_artifact == "Table 5"
        with pytest.raises(KeyError):
            by_id("T99")

    def test_bench_files_exist(self):
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        for exp in EXPERIMENTS:
            path = os.path.join(root, exp.bench)
            assert os.path.exists(path), exp.bench

    def test_modules_importable(self):
        import importlib

        for exp in EXPERIMENTS:
            for module in exp.modules:
                importlib.import_module(module)
