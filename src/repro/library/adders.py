"""Adder family: ripple-carry adder, adder/subtractor, incrementer,
equality comparator.

The ripple-carry structure is deliberate: it is the regular, semi-iterative
array structure the paper's deterministic test-set library exploits (a small
pattern set propagates carries through every stage).
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder, Word
from repro.netlist.netlist import CONST0, CONST1


def ripple_carry_adder(
    b: NetlistBuilder, a: Word, x: Word, cin: int = CONST0
) -> tuple[Word, int]:
    """Classic ripple-carry adder.

    Args:
        b: builder to emit gates into.
        a, x: addend words (equal width, LSB first).
        cin: carry-in net.

    Returns:
        ``(sum word, carry-out net)``.
    """
    if len(a) != len(x):
        raise NetlistError(f"adder width mismatch: {len(a)} vs {len(x)}")
    total: Word = []
    carry = cin
    for ai, xi in zip(a, x, strict=True):
        axb = b.xor(ai, xi)
        total.append(b.xor(axb, carry))
        # carry-out = ai*xi + (ai^xi)*carry
        carry = b.or_(b.and_(ai, xi), b.and_(axb, carry))
    return total, carry


def adder_subtractor(
    b: NetlistBuilder, a: Word, x: Word, subtract: int
) -> tuple[Word, int]:
    """Adder/subtractor: computes ``a + x`` or ``a - x`` (two's complement).

    Args:
        subtract: control net; 1 selects subtraction.

    Returns:
        ``(result word, carry-out net)``.  For subtraction the carry-out is
        the *not-borrow* flag (1 when ``a >= x`` unsigned).
    """
    x_conditioned = [b.xor(xi, subtract) for xi in x]
    return ripple_carry_adder(b, a, x_conditioned, cin=subtract)


def incrementer(b: NetlistBuilder, a: Word, step_bit: int = 0) -> Word:
    """Add the constant ``1 << step_bit`` using a half-adder chain.

    Used by the PC logic (+4 increment with ``step_bit=2``); bits below
    ``step_bit`` pass through.
    """
    if not 0 <= step_bit < len(a):
        raise NetlistError(f"step_bit {step_bit} out of range for width {len(a)}")
    out: Word = list(a[:step_bit])
    carry = CONST1
    for ai in a[step_bit:]:
        out.append(b.xor(ai, carry))
        carry = b.and_(ai, carry)
    return out


def equality_comparator(b: NetlistBuilder, a: Word, x: Word) -> int:
    """1 when the two words are equal (XNOR reduce)."""
    if len(a) != len(x):
        raise NetlistError(f"comparator width mismatch: {len(a)} vs {len(x)}")
    bits = [b.xnor(ai, xi) for ai, xi in zip(a, x, strict=True)]
    return b.reduce_and(bits)
