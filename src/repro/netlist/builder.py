"""Word-level construction API over :class:`~repro.netlist.netlist.Netlist`.

A *word* is a list of net ids, LSB first.  The builder provides bitwise bus
operators, mux trees, decoders and registered words; arithmetic circuits
(adders, shifters, multipliers) live in :mod:`repro.library` and are built on
these primitives.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import NetlistError
from repro.netlist.gates import GateType
from repro.netlist.netlist import CONST0, CONST1, DFF, Netlist

Word = list[int]


class NetlistBuilder:
    """Fluent word-level builder bound to one netlist."""

    def __init__(self, name: str):
        self.netlist = Netlist(name)

    # ------------------------------------------------------------ ports

    def input(self, name: str, width: int = 1) -> Word:
        return self.netlist.add_input(name, width)

    def output(self, name: str, word: Word | int) -> None:
        if isinstance(word, int):
            word = [word]
        self.netlist.add_output(name, list(word))

    def constant(self, value: int, width: int) -> Word:
        """A word of constant nets encoding ``value``."""
        return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]

    # ------------------------------------------------------- bit helpers
    #
    # The helpers fold constants the way synthesis would (AND with 0 is 0,
    # a mux with a constant select is a wire, ...), so generated circuits
    # carry no dead logic — which would otherwise show up as structurally
    # untestable faults in every coverage figure.

    def gate(self, gtype: GateType, *inputs: int) -> int:
        """Emit a raw gate with no folding (used for exact structures)."""
        return self.netlist.add_gate(gtype, list(inputs))

    def not_(self, a: int) -> int:
        if a == CONST0:
            return CONST1
        if a == CONST1:
            return CONST0
        return self.gate(GateType.NOT, a)

    def _fold_and_or(self, ins, dominant: int, neutral: int):
        """Shared constant folding for AND (dominant 0) / OR (dominant 1).

        Returns (folded scalar or None, remaining variable nets).
        """
        remaining = []
        for net in ins:
            if net == dominant:
                return dominant, []
            if net != neutral:
                remaining.append(net)
        if not remaining:
            return neutral, []
        return None, remaining

    def and_(self, *ins: int) -> int:
        folded, rest = self._fold_and_or(ins, CONST0, CONST1)
        if folded is not None:
            return folded
        if len(rest) == 1:
            return rest[0]
        return self.gate(GateType.AND, *rest)

    def nand(self, *ins: int) -> int:
        folded, rest = self._fold_and_or(ins, CONST0, CONST1)
        if folded is not None:
            return self.not_(folded)
        if len(rest) == 1:
            return self.not_(rest[0])
        return self.gate(GateType.NAND, *rest)

    def or_(self, *ins: int) -> int:
        folded, rest = self._fold_and_or(ins, CONST1, CONST0)
        if folded is not None:
            return folded
        if len(rest) == 1:
            return rest[0]
        return self.gate(GateType.OR, *rest)

    def nor(self, *ins: int) -> int:
        folded, rest = self._fold_and_or(ins, CONST1, CONST0)
        if folded is not None:
            return self.not_(folded)
        if len(rest) == 1:
            return self.not_(rest[0])
        return self.gate(GateType.NOR, *rest)

    def _fold_xor(self, ins):
        """Returns (parity of constant inputs, remaining variable nets)."""
        parity = 0
        remaining = []
        for net in ins:
            if net == CONST1:
                parity ^= 1
            elif net != CONST0:
                remaining.append(net)
        return parity, remaining

    def xor(self, *ins: int) -> int:
        parity, rest = self._fold_xor(ins)
        if not rest:
            return CONST1 if parity else CONST0
        if len(rest) == 1:
            return self.not_(rest[0]) if parity else rest[0]
        out = self.gate(GateType.XOR, *rest)
        return self.not_(out) if parity else out

    def xnor(self, *ins: int) -> int:
        parity, rest = self._fold_xor(ins)
        if not rest:
            return CONST0 if parity else CONST1
        if len(rest) == 1:
            return rest[0] if parity else self.not_(rest[0])
        out = self.gate(GateType.XNOR, *rest)
        return self.not_(out) if parity else out

    def mux(self, sel: int, a: int, b: int) -> int:
        """2:1 bit mux: returns ``b`` when ``sel`` is 1, else ``a``."""
        if sel == CONST0:
            return a
        if sel == CONST1:
            return b
        if a == b:
            return a
        if a == CONST0 and b == CONST1:
            return sel
        if a == CONST1 and b == CONST0:
            return self.not_(sel)
        if a == CONST0:
            return self.and_(sel, b)
        if b == CONST0:
            return self.and_(self.not_(sel), a)
        if a == CONST1:
            return self.or_(self.not_(sel), b)
        if b == CONST1:
            return self.or_(sel, a)
        return self.gate(GateType.MUX2, a, b, sel)

    def dff(self, d: int, init: int = 0, enable: int | None = None) -> int:
        """Registered bit; with ``enable`` the DFF holds when enable is 0."""
        if enable is None:
            return self.netlist.add_dff(d, init)
        q = self.netlist.new_net()
        mux_out = self.gate(GateType.MUX2, q, d, enable)
        # Wire the DFF manually so its Q is the pre-allocated feedback net.
        self.netlist.dffs.append(DFF(len(self.netlist.dffs), mux_out, q, init))
        return q

    # ------------------------------------------------------- word helpers

    @staticmethod
    def _check_same_width(a: Word, b: Word) -> None:
        if len(a) != len(b):
            raise NetlistError(f"width mismatch: {len(a)} vs {len(b)}")

    def not_word(self, a: Word) -> Word:
        return [self.not_(bit) for bit in a]

    def and_word(self, a: Word, b: Word) -> Word:
        self._check_same_width(a, b)
        return [self.and_(x, y) for x, y in zip(a, b, strict=True)]

    def or_word(self, a: Word, b: Word) -> Word:
        self._check_same_width(a, b)
        return [self.or_(x, y) for x, y in zip(a, b, strict=True)]

    def xor_word(self, a: Word, b: Word) -> Word:
        self._check_same_width(a, b)
        return [self.xor(x, y) for x, y in zip(a, b, strict=True)]

    def nor_word(self, a: Word, b: Word) -> Word:
        self._check_same_width(a, b)
        return [self.nor(x, y) for x, y in zip(a, b, strict=True)]

    def mux_word(self, sel: int, a: Word, b: Word) -> Word:
        """Word-wide 2:1 mux (``b`` when sel)."""
        self._check_same_width(a, b)
        return [self.mux(sel, x, y) for x, y in zip(a, b, strict=True)]

    def mux_tree(self, select: Word, choices: Sequence[Word]) -> Word:
        """N:1 word mux from a binary select bus.

        ``choices[i]`` is selected when the select bus encodes ``i``; the
        choice list may be shorter than ``2**len(select)``, in which case the
        tree is pruned (missing branches reuse the last real choice, matching
        synthesized don't-care behaviour).
        """
        if not choices:
            raise NetlistError("mux_tree needs at least one choice")
        level = [list(c) for c in choices]
        for sel_bit in select:
            nxt: list[Word] = []
            for i in range(0, len(level), 2):
                if i + 1 < len(level):
                    nxt.append(self.mux_word(sel_bit, level[i], level[i + 1]))
                else:
                    nxt.append(level[i])
            level = nxt
            if len(level) == 1:
                break
        return level[0]

    def decoder(self, select: Word, enable: int | None = None) -> Word:
        """Binary decoder: ``2**len(select)`` one-hot outputs.

        With ``enable``, every output is gated by it.
        """
        lines: Word = [CONST1] if enable is None else [enable]
        # Iterate MSB-first so output index i corresponds to select value i
        # (adjacent outputs differ in the select LSB).
        for sel_bit in reversed(select):
            inv = self.not_(sel_bit)
            nxt: Word = []
            for line in lines:
                nxt.append(self.and_(line, inv))
                nxt.append(self.and_(line, sel_bit))
            lines = nxt
        return lines

    def equals_const(self, word: Word, value: int) -> int:
        """1 when ``word`` equals the constant ``value``."""
        terms = []
        for i, net in enumerate(word):
            terms.append(net if (value >> i) & 1 else self.not_(net))
        if len(terms) == 1:
            return terms[0]
        return self.and_(*terms)

    def reduce_or(self, word: Word) -> int:
        """OR-reduce a word as a balanced tree of 2-input ORs."""
        return self._reduce(GateType.OR, word)

    def reduce_and(self, word: Word) -> int:
        return self._reduce(GateType.AND, word)

    def reduce_xor(self, word: Word) -> int:
        return self._reduce(GateType.XOR, word)

    def is_zero(self, word: Word) -> int:
        """1 when every bit of ``word`` is 0."""
        return self.not_(self.reduce_or(word))

    def _reduce(self, gtype: GateType, word: Word) -> int:
        if not word:
            raise NetlistError("cannot reduce an empty word")
        level = list(word)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.gate(gtype, level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def register_word(
        self, d: Word, init: int = 0, enable: int | None = None
    ) -> Word:
        """Register a word; ``init`` encodes per-bit reset values."""
        return [
            self.dff(bit, (init >> i) & 1, enable) for i, bit in enumerate(d)
        ]

    def sign_extend(self, word: Word, width: int) -> Word:
        """Widen a word by replicating its MSB net (pure wiring)."""
        if len(word) >= width:
            return list(word[:width])
        return list(word) + [word[-1]] * (width - len(word))

    def zero_extend(self, word: Word, width: int) -> Word:
        if len(word) >= width:
            return list(word[:width])
        return list(word) + [CONST0] * (width - len(word))

    def build(self) -> Netlist:
        """Return the completed netlist."""
        return self.netlist
