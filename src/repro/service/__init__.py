"""Campaign-as-a-service: the async HTTP front end over the grading stack.

``python -m repro serve`` runs a long-lived, dependency-free
stdlib-``asyncio`` HTTP service that accepts fault-grading campaigns as
JSON jobs, runs them on the existing campaign machinery
(:func:`repro.core.campaign.grade_program` over the
:mod:`repro.runtime.pool` worker pool), and streams per-shard progress
by tailing the :class:`repro.runtime.EventLog` over Server-Sent Events.

The moving parts:

* :mod:`repro.service.schemas` — request validation: JSON bodies are
  checked field by field into a :class:`CampaignRequest` (unknown
  fields, bad types and bad values all yield structured diagnostics,
  returned as HTTP 400), then lowered to a
  :class:`~repro.faultsim.options.GradeOptions`;
* :mod:`repro.service.jobs` — the asynchronous job manager: a priority
  queue with per-tenant quotas and global backpressure (HTTP 429 +
  ``Retry-After`` when full), idempotent submission (jobs are keyed by
  the deterministic self-test program content + the verdict-shaping
  options fingerprint, so a duplicate submission attaches to the
  in-flight job or replays the finished result), cooperative
  cancellation through :attr:`~repro.runtime.RuntimeConfig.cancel`, and
  warm :class:`~repro.faultsim.store.TraceStore` replay
  (``cache_hit=true`` responses that re-simulate nothing);
* :mod:`repro.service.sse` — Server-Sent Events framing and the
  thread-to-event-loop bridge that re-publishes
  :class:`~repro.runtime.JobEvent` streams to HTTP subscribers;
* :mod:`repro.service.app` — the minimal HTTP/1.1 layer
  (``asyncio.start_server``; no third-party web framework) and the
  ``/v1`` route table.

See ``docs/SERVICE.md`` for the endpoint reference and
``docs/OPERATIONS.md`` for running it in production.
"""

from repro.service.app import ServiceServer, run_service
from repro.service.jobs import CampaignJob, CampaignService, ServiceConfig
from repro.service.schemas import (
    CampaignRequest,
    SchemaError,
    ValidationIssue,
    parse_campaign_request,
)

__all__ = [
    "CampaignJob",
    "CampaignRequest",
    "CampaignService",
    "SchemaError",
    "ServiceConfig",
    "ServiceServer",
    "ValidationIssue",
    "parse_campaign_request",
    "run_service",
]
