"""Unit tests for test-priority ordering (paper Section 2.2 / Table 1)."""

import pytest

from repro.core.priority import (
    ACCESSIBILITY,
    accessibility,
    component_priority,
)
from repro.core.priority import test_development_order as development_order
from repro.plasma.components import COMPONENTS, ComponentClass, component


class TestAccessibility:
    def test_every_component_scored(self):
        for info in COMPONENTS:
            assert info.name in ACCESSIBILITY

    def test_functional_grade_high(self):
        for name in ("RegF", "ALU", "BSH"):
            assert accessibility(name).grade == "high"

    def test_hidden_and_glue_grade_low(self):
        assert accessibility("PLN").grade == "low"
        assert accessibility("GL").grade == "low"

    def test_unknown_component(self):
        with pytest.raises(KeyError):
            accessibility("XYZ")


class TestOrdering:
    def test_classes_in_priority_order(self):
        order = development_order()
        ranks = [c.component_class for c in order]
        boundaries = {
            ComponentClass.FUNCTIONAL: 0,
            ComponentClass.CONTROL: 1,
            ComponentClass.HIDDEN: 2,
            ComponentClass.GLUE: 3,
        }
        numeric = [boundaries[r] for r in ranks]
        assert numeric == sorted(numeric)

    def test_functional_by_descending_size(self):
        order = [c.name for c in development_order()
                 if c.component_class is ComponentClass.FUNCTIONAL]
        # RegF and MulD are the two largest, in that order (paper Sec 2.2).
        assert order[0] == "RegF"
        assert order[1] == "MulD"

    def test_mctrl_first_in_control_class(self):
        order = [c.name for c in development_order()
                 if c.component_class is ComponentClass.CONTROL]
        assert order[0] == "MCTRL"

    def test_explicit_sizes_override_measurement(self):
        sizes = {c.name: 1 for c in COMPONENTS}
        sizes["BSH"] = 10_000  # pretend the shifter is huge
        order = [c.name for c in development_order(sizes=sizes)
                 if c.component_class is ComponentClass.FUNCTIONAL]
        assert order[0] == "BSH"

    def test_priority_key_shape(self):
        info = component("ALU")
        key = component_priority(info, nand2=500)
        assert key[0] == 0  # functional class rank
        assert key[1] == -500


class TestQuantitativeAccessibility:
    def test_scoap_scores_attached(self):
        from repro.core.priority import quantitative_accessibility

        scores = quantitative_accessibility("CTRL")
        assert scores.scoap_cc is not None and scores.scoap_cc > 0
        assert scores.scoap_co is not None and scores.scoap_co > 0

    def test_grade_unchanged_by_measurement(self):
        from repro.core.priority import (
            accessibility,
            quantitative_accessibility,
        )

        base = accessibility("ALU")
        measured = quantitative_accessibility("ALU")
        assert measured.grade == base.grade
        assert (measured.control_cost, measured.observe_cost) == \
            (base.control_cost, base.observe_cost)
