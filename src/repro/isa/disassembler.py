"""Disassembler: 32-bit words back to assembly text.

The output round-trips through the assembler (modulo label names: branch and
jump targets are rendered as absolute hex addresses, which the assembler
accepts as expressions).
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.encoding import Decoded, decode
from repro.isa.instruction import Syntax, ZERO_EXTENDED_IMM
from repro.isa.program import Program
from repro.isa.registers import register_name
from repro.utils.bits import to_signed


def _fmt_imm_signed(imm: int) -> str:
    return str(to_signed(imm, 16))


def disassemble(word: int, pc: int = 0) -> str:
    """Disassemble one instruction word fetched from address ``pc``.

    Returns:
        Assembly text such as ``addu $t0, $t1, $t2``.  Unknown encodings
        are rendered as ``.word 0x...`` rather than raising, so a full
        memory image (which may contain data) can be dumped.
    """
    try:
        d = decode(word)
    except EncodingError:
        return f".word {word:#010x}"
    return _render(d, pc)


def _render(d: Decoded, pc: int) -> str:
    syn = d.spec.syntax
    name = d.spec.mnemonic
    rs, rt, rd = register_name(d.rs), register_name(d.rt), register_name(d.rd)
    if syn is Syntax.RD_RS_RT:
        return f"{name} {rd}, {rs}, {rt}"
    if syn is Syntax.RD_RT_SA:
        return f"{name} {rd}, {rt}, {d.shamt}"
    if syn is Syntax.RD_RT_RS:
        return f"{name} {rd}, {rt}, {rs}"
    if syn is Syntax.RS_RT:
        return f"{name} {rs}, {rt}"
    if syn is Syntax.RD:
        return f"{name} {rd}"
    if syn is Syntax.RS:
        return f"{name} {rs}"
    if syn is Syntax.RD_RS:
        return f"{name} {rd}, {rs}"
    if syn is Syntax.RT_RS_IMM:
        if name in ZERO_EXTENDED_IMM:
            return f"{name} {rt}, {rs}, {d.imm:#x}"
        return f"{name} {rt}, {rs}, {_fmt_imm_signed(d.imm)}"
    if syn is Syntax.RT_IMM:
        return f"{name} {rt}, {d.imm:#x}"
    if syn is Syntax.RS_RT_LABEL:
        target = (pc + 4 + 4 * to_signed(d.imm, 16)) & 0xFFFF_FFFF
        return f"{name} {rs}, {rt}, {target:#x}"
    if syn is Syntax.RS_LABEL:
        target = (pc + 4 + 4 * to_signed(d.imm, 16)) & 0xFFFF_FFFF
        return f"{name} {rs}, {target:#x}"
    if syn is Syntax.RT_OFF_RS:
        return f"{name} {rt}, {_fmt_imm_signed(d.imm)}({rs})"
    if syn is Syntax.TARGET:
        return f"{name} {d.target << 2:#x}"
    raise EncodingError(f"unsupported syntax {syn}")  # pragma: no cover


def disassemble_program(program: Program) -> list[str]:
    """Disassemble every code segment of a program with addresses.

    Returns:
        Lines like ``0x00000010: beq $t0, $zero, 0x24``.
    """
    lines: list[str] = []
    for seg in program.segments:
        if not seg.is_code:
            continue
        for i, word in enumerate(seg.words):
            addr = seg.base + 4 * i
            lines.append(f"{addr:#010x}: {disassemble(word, pc=addr)}")
    return lines
