"""Unit tests for the disassembler (including assembler roundtrip)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, disassemble_program
from repro.isa.encoding import encode
from repro.isa.instruction import INSTRUCTION_SET, Format, Syntax


class TestRendering:
    def test_addu(self):
        assert disassemble(0x00430821) == "addu $at, $v0, $v1"

    def test_data_word_fallback(self):
        assert disassemble(0xFFFF_FFFF).startswith(".word")

    def test_branch_target_absolute(self):
        word = encode("beq", rs=0, rt=0, imm=0xFFFE)
        assert disassemble(word, pc=0x10) == "beq $zero, $zero, 0xc"

    def test_jump_target(self):
        assert disassemble(encode("j", target=0x40)) == "j 0x100"

    def test_memory_operand(self):
        assert disassemble(encode("lw", rt=8, rs=29, imm=4)) == "lw $t0, 4($sp)"

    def test_negative_offset(self):
        word = encode("lw", rt=8, rs=29, imm=0xFFFC)
        assert disassemble(word) == "lw $t0, -4($sp)"

    def test_shift(self):
        assert disassemble(encode("sll", rd=2, rt=3, shamt=7)) == "sll $v0, $v1, 7"


class TestRoundtrip:
    @given(st.sampled_from(sorted(INSTRUCTION_SET)),
           st.integers(0, 31), st.integers(0, 31), st.integers(0, 31),
           st.integers(0, 31), st.integers(0, 0x7FF))
    def test_disassemble_reassembles(self, mnemonic, rs, rt, rd, shamt, imm):
        spec = INSTRUCTION_SET[mnemonic]
        if spec.fmt is Format.J or spec.syntax in (
            Syntax.RS_RT_LABEL, Syntax.RS_LABEL
        ):
            # Absolute targets depend on pc placement; covered separately.
            return
        # Zero out fields the syntax does not use: they are don't-cares the
        # disassembler cannot (and should not) preserve.
        used = {
            Syntax.RD_RS_RT: ("rs", "rt", "rd"),
            Syntax.RD_RT_SA: ("rt", "rd", "shamt"),
            Syntax.RD_RT_RS: ("rs", "rt", "rd"),
            Syntax.RS_RT: ("rs", "rt"),
            Syntax.RD: ("rd",),
            Syntax.RS: ("rs",),
            Syntax.RD_RS: ("rd", "rs"),
            Syntax.RT_RS_IMM: ("rs", "rt", "imm"),
            Syntax.RT_IMM: ("rt", "imm"),
            Syntax.RT_OFF_RS: ("rs", "rt", "imm"),
        }[spec.syntax]
        fields = {"rs": rs, "rt": rt, "rd": rd, "shamt": shamt, "imm": imm}
        fields = {k: (v if k in used else 0) for k, v in fields.items()}
        word = encode(mnemonic, **fields)
        text = disassemble(word)
        program = assemble(text)
        code = [s for s in program.segments if s.is_code][0]
        assert code.words == [word]

    def test_branch_roundtrip_with_pc(self):
        word = encode("bne", rs=8, rt=9, imm=3)
        text = disassemble(word, pc=0)
        program = assemble(text)
        assert program.segments[0].words == [word]


class TestProgramListing:
    def test_lists_only_code(self):
        program = assemble("""
        nop
        addu $1, $2, $3
        .data
        .word 99
        """)
        lines = disassemble_program(program)
        assert len(lines) == 2
        assert lines[0].startswith("0x00000000:")
        assert "addu" in lines[1]
