"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXIT_DEGRADED, EXIT_WATCHDOG, main

SAMPLE = """
.text
    li $t0, 7
    la $t1, out
    sw $t0, 0($t1)
halt: j halt
    nop
.data
out: .word 0
"""

RUNAWAY = """
.text
loop:
    addiu $t0, $t0, 1
    j loop
    nop
"""


@pytest.fixture
def sample_file(tmp_path):
    path = tmp_path / "sample.s"
    path.write_text(SAMPLE)
    return str(path)


class TestAsm:
    def test_stats(self, sample_file, capsys):
        assert main(["asm", sample_file]) == 0
        out = capsys.readouterr().out
        assert "code words" in out

    def test_listing(self, sample_file, capsys):
        assert main(["asm", sample_file, "--listing"]) == 0
        out = capsys.readouterr().out
        assert "addiu $t0, $zero, 7" in out

    def test_image(self, sample_file, capsys):
        assert main(["asm", sample_file, "--image"]) == 0
        out = capsys.readouterr().out
        assert "00000000" in out

    def test_assembly_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("bogus $1, $2\n")
        assert main(["asm", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["asm", "/nonexistent.s"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRun:
    def test_runs_and_reports(self, sample_file, capsys):
        assert main(["run", sample_file]) == 0
        out = capsys.readouterr().out
        assert "halted at pc=" in out

    def test_dump(self, sample_file, capsys):
        assert main(["run", sample_file, "--dump", "0x2000:1"]) == 0
        out = capsys.readouterr().out
        assert "00002000 00000007" in out

    def test_bad_dump_spec(self, sample_file):
        with pytest.raises(SystemExit):
            main(["run", sample_file, "--dump", "whatever"])

    def test_watchdog_max_cycles(self, tmp_path, capsys):
        runaway = tmp_path / "runaway.s"
        runaway.write_text(RUNAWAY)
        code = main(["run", str(runaway), "--max-cycles", "50"])
        assert code == EXIT_WATCHDOG
        err = capsys.readouterr().err
        assert "watchdog" in err
        assert "Traceback" not in err

    def test_watchdog_not_tripped_by_halting_program(self, sample_file):
        assert main(["run", sample_file, "--max-cycles", "10000"]) == 0


class TestSelftest:
    def test_prints_source(self, capsys):
        assert main(["selftest", "--phases", "A"]) == 0
        captured = capsys.readouterr()
        assert "selftest_start:" in captured.out
        assert "code words" in captured.err

    def test_writes_file(self, tmp_path, capsys):
        target = tmp_path / "st.s"
        assert main(["selftest", "--phases", "A", "-o", str(target)]) == 0
        assert "selftest_halt" in target.read_text()


class TestCampaign:
    def test_subset_campaign(self, capsys):
        assert main(["campaign", "--phases", "A",
                     "--components", "ALU,BSH"]) == 0
        out = capsys.readouterr().out
        assert "ALU" in out and "Plasma" in out
        assert "Clock Cycles" in out

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        args = ["campaign", "--phases", "A", "--components", "CTRL",
                "--checkpoint", ckpt]
        assert main(args) == 0
        assert (tmp_path / "ckpt" / "checkpoint.jsonl").exists()
        assert (tmp_path / "ckpt" / "events.jsonl").exists()
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        assert "CTRL" in capsys.readouterr().out

    def test_multiphase_checkpoint_keeps_all_phases(self, tmp_path, capsys):
        from repro.runtime.checkpoint import CheckpointStore

        ckpt = str(tmp_path / "ckpt")
        assert main(["campaign", "--phases", "A,AB",
                     "--components", "CTRL", "--checkpoint", ckpt]) == 0
        # The second phase must not wipe the first phase's journal.
        assert set(CheckpointStore(ckpt).load()) == {"A:CTRL", "AB:CTRL"}

    def test_degraded_campaign_distinct_exit_code(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.core.campaign as campaign_mod

        def exploding_job(name, *args, **kwargs):
            raise ValueError("synthetic grading failure")

        monkeypatch.setattr(campaign_mod, "_grading_job", exploding_job)
        code = main(["campaign", "--phases", "A", "--components", "CTRL",
                     "--checkpoint", str(tmp_path / "ckpt"),
                     "--retries", "1"])
        assert code == EXIT_DEGRADED
        captured = capsys.readouterr()
        assert "degraded" in captured.err
        assert "Traceback" not in captured.err
        assert "lower bound" in captured.out

    def test_resume_requires_checkpoint(self, capsys):
        code = main(["campaign", "--phases", "A", "--components", "CTRL",
                     "--resume"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestInventory:
    def test_tables(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "Register File" in out
        assert "17,459" in out
