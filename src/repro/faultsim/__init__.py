"""Single-stuck-at fault simulation.

The package mirrors what a commercial tool (the paper used Mentor FlexTest)
does for fault grading.  The one entry point is :func:`grade` — it builds
the fault universe, normalizes observability into an :class:`ObservePlan`,
picks an engine (``"auto"``) and returns a
:class:`~repro.faultsim.harness.CampaignResult`:

* :mod:`~repro.faultsim.faults` — fault universe (stem faults on every net,
  branch faults on fanout gate pins) with structural equivalence collapsing;
* :mod:`~repro.faultsim.simulator` — pattern-parallel good-machine logic
  simulation over levelized netlists (one Python bitwise op evaluates a gate
  under every pattern at once);
* :mod:`~repro.faultsim.engine` — the :class:`FaultSimEngine` registry and
  the engines (``differential``, ``batch``, ``compiled``, ``packed``)
  behind the :func:`grade` facade;
* :mod:`~repro.faultsim.options` — the one validated
  :class:`GradeOptions` object every grading entry point shares;
* :mod:`~repro.faultsim.packed` — fault-parallel bit-packed grading (up
  to ``lanes - 1`` fault classes per big-int word next to the good
  machine);
* :mod:`~repro.faultsim.lowering` — netlist lowering / code generation for
  the compiled engine (dead-net elimination, constant folding, fused gate
  kernels);
* :mod:`~repro.faultsim.trace_cache` — the process-wide good-trace cache
  keyed by structural netlist and stimulus hashes;
* :mod:`~repro.faultsim.store` — the persistent content-addressed store
  for good traces and verdict records (checksummed records, quarantine
  on corruption, LRU size cap);
* :mod:`~repro.faultsim.observe` — one normalized observability plan shared
  by every engine;
* :mod:`~repro.faultsim.differential` — per-fault event-driven faulty
  simulation against stored good values, with fault dropping;
* :mod:`~repro.faultsim.harness` — component campaigns: apply a pattern set
  or a traced cycle sequence, honouring per-pattern/per-cycle observability;
* :mod:`~repro.faultsim.coverage` — FC / MOFC reports (the paper's Table 5
  quantities).
"""

from repro.faultsim.diagnosis import Candidate, FaultDictionary
from repro.faultsim.faults import (
    Fault,
    FaultKind,
    FaultList,
    build_fault_list,
    fault_sort_key,
)
from repro.faultsim.simulator import LogicSimulator, SimState
from repro.faultsim.differential import Detection, DifferentialFaultSimulator
from repro.faultsim.coverage import ComponentCoverage, CoverageSummary
from repro.faultsim.observe import ObservePlan, ObserveSpec
from repro.faultsim.trace_cache import (
    CacheStats,
    GoodTraceCache,
    active_store,
    global_trace_cache,
    set_active_store,
)
from repro.faultsim.store import StoreStats, TraceStore
from repro.faultsim.options import (
    DEFAULT_LANES,
    GradeOptions,
    resolve_prune_mode,
)
from repro.faultsim.harness import (
    CampaignResult,
    CombinationalCampaign,
    SequentialCampaign,
    run_combinational,
    run_sequential,
)
from repro.faultsim.engine import (
    BatchEngine,
    CompiledEngine,
    DifferentialEngine,
    FaultSimEngine,
    default_engine_name,
    engine_names,
    get_engine,
    grade,
    register_engine,
)
from repro.faultsim.packed import PackedEngine

__all__ = [
    "Candidate",
    "FaultDictionary",
    "Fault",
    "FaultKind",
    "FaultList",
    "build_fault_list",
    "fault_sort_key",
    "LogicSimulator",
    "SimState",
    "Detection",
    "DifferentialFaultSimulator",
    "ComponentCoverage",
    "CoverageSummary",
    "ObservePlan",
    "ObserveSpec",
    "CacheStats",
    "GoodTraceCache",
    "global_trace_cache",
    "active_store",
    "set_active_store",
    "StoreStats",
    "TraceStore",
    "DEFAULT_LANES",
    "GradeOptions",
    "resolve_prune_mode",
    "CampaignResult",
    "CombinationalCampaign",
    "SequentialCampaign",
    "run_combinational",
    "run_sequential",
    "BatchEngine",
    "CompiledEngine",
    "DifferentialEngine",
    "PackedEngine",
    "FaultSimEngine",
    "default_engine_name",
    "engine_names",
    "get_engine",
    "grade",
    "register_engine",
]
