"""Equivalence tests: parallel-fault engine vs the differential engine."""

import random

import pytest

from repro.errors import FaultSimError
from repro.faultsim.faults import build_fault_list
from repro.faultsim.harness import run_sequential
from repro.faultsim.parallel import ParallelFaultSimulator
from repro.library import build_alu, build_register_file
from repro.library.alu import AluOp
from repro.netlist.builder import NetlistBuilder


def cross_check(netlist, cycles, observe=None, batch_size=64):
    differential = run_sequential(netlist, cycles, observe)
    parallel = ParallelFaultSimulator(netlist, batch_size=batch_size)
    batched = parallel.run_campaign(cycles, observe)
    assert batched.detected == differential.detected, (
        len(batched.detected), len(differential.detected)
    )
    return differential, batched


class TestEquivalence:
    def test_combinational_alu(self):
        rng = random.Random(21)
        netlist = build_alu(width=8)
        cycles = [
            dict(a=rng.getrandbits(8), b=rng.getrandbits(8),
                 func=int(rng.choice(list(AluOp))))
            for _ in range(40)
        ]
        diff, par = cross_check(netlist, cycles)
        assert diff.fault_coverage == par.fault_coverage

    def test_sequential_regfile(self):
        rng = random.Random(22)
        netlist = build_register_file(n_registers=4, width=4)
        cycles = [
            dict(
                wr_addr=rng.randrange(4), wr_data=rng.getrandbits(4),
                wr_en=rng.randrange(2), rd_addr_a=rng.randrange(4),
                rd_addr_b=rng.randrange(4),
            )
            for _ in range(40)
        ]
        cross_check(netlist, cycles, batch_size=33)

    def test_with_observability_restriction(self):
        rng = random.Random(23)
        netlist = build_alu(width=4)
        cycles = [
            dict(a=rng.getrandbits(4), b=rng.getrandbits(4),
                 func=int(rng.choice(list(AluOp))))
            for _ in range(30)
        ]
        observe = [
            ("result",) if i % 3 == 0 else () for i in range(len(cycles))
        ]
        cross_check(netlist, cycles, observe)

    def test_tiny_batches(self):
        netlist = build_alu(width=4)
        cycles = [dict(a=5, b=9, func=int(AluOp.ADD)),
                  dict(a=0xF, b=1, func=int(AluOp.SUB))]
        cross_check(netlist, cycles, batch_size=1)


class TestBatchMechanics:
    def test_detection_records_first_cycle(self):
        b = NetlistBuilder("buf")
        x = b.input("x", 1)
        b.output("y", b.not_(x[0]))
        netlist = b.build()
        fl = build_fault_list(netlist)
        sim = ParallelFaultSimulator(netlist)
        reps = fl.class_representatives()
        faults = [fl.fault(r) for r in reps]
        cycles = [dict(x=0), dict(x=1)]
        detections = sim.run_batch(faults, cycles)
        assert all(d.detected for d in detections)
        assert {d.cycle for d in detections} <= {0, 1}

    def test_invalid_batch_size(self):
        netlist = build_alu(width=4)
        with pytest.raises(FaultSimError):
            ParallelFaultSimulator(netlist, batch_size=0)

    def test_empty_cycles_rejected(self):
        netlist = build_alu(width=4)
        with pytest.raises(FaultSimError):
            ParallelFaultSimulator(netlist).run_campaign([])

    def test_observe_length_checked(self):
        netlist = build_alu(width=4)
        with pytest.raises(FaultSimError):
            ParallelFaultSimulator(netlist).run_campaign(
                [dict(a=0, b=0, func=0)], observe=[(), ()]
            )

    def test_run_batch_observe_length_checked(self):
        # The public run_batch must validate like the campaign path
        # instead of dying on a bare IndexError mid-simulation.
        netlist = build_alu(width=4)
        fl = build_fault_list(netlist)
        faults = [fl.fault(fl.class_representatives()[0])]
        with pytest.raises(FaultSimError, match="observe"):
            ParallelFaultSimulator(netlist).run_batch(
                faults, [dict(a=0, b=0, func=0)] * 3, observe=[("result",)]
            )

    def test_run_batch_oversized_batch_rejected(self):
        netlist = build_alu(width=4)
        fl = build_fault_list(netlist)
        reps = fl.class_representatives()
        faults = [fl.fault(r) for r in reps[:3]]
        with pytest.raises(FaultSimError, match="batch"):
            ParallelFaultSimulator(netlist, batch_size=2).run_batch(
                faults, [dict(a=0, b=0, func=0)]
            )
