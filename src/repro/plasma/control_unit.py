"""CTRL component: the opcode decoder, as two-level shared logic.

The netlist is generated *from the reference decoder*
(:func:`repro.plasma.controls.decode_controls`): every supported instruction
gets a detect term (built from shared 3-bit opcode/funct pre-decoders, the
way synthesis shares product terms), and each control-field output bit is
the OR of the detects that set it.  This guarantees the gate-level CTRL and
the behavioural CPU can never disagree.
"""

from __future__ import annotations

from repro.isa.encoding import decode, encode
from repro.isa.instruction import INSTRUCTION_SET, Format
from repro.netlist.builder import NetlistBuilder, Word
from repro.netlist.netlist import CONST0, Netlist
from repro.plasma.controls import CONTROL_FIELDS, decode_controls


def _shared_equals(b: NetlistBuilder, lo_lines: Word, hi_lines: Word, value: int) -> int:
    """Equality over 6 bits via two shared 3-bit decoders."""
    return b.and_(hi_lines[(value >> 3) & 7], lo_lines[value & 7])


def build_control(name: str = "CTRL") -> Netlist:
    """Build the control decoder netlist.

    Ports:
        * ``instr`` (in, 32): the instruction word.
        * one output port per entry of
          :data:`repro.plasma.controls.CONTROL_FIELDS`.
    """
    b = NetlistBuilder(name)
    instr = b.input("instr", 32)
    opcode = instr[26:32]
    funct = instr[0:6]
    rt = instr[16:21]

    # Shared pre-decoders (3+3 split) for the opcode and funct fields.
    op_lo = b.decoder(opcode[0:3])
    op_hi = b.decoder(opcode[3:6])
    fn_lo = b.decoder(funct[0:3])
    fn_hi = b.decoder(funct[3:6])

    is_rtype = _shared_equals(b, op_lo, op_hi, 0)
    is_regimm = _shared_equals(b, op_lo, op_hi, 1)

    # One detect net per supported instruction.
    detects: dict[str, int] = {}
    for mnemonic, spec in INSTRUCTION_SET.items():
        if spec.fmt is Format.R:
            assert spec.funct is not None
            detects[mnemonic] = b.and_(
                is_rtype, _shared_equals(b, fn_lo, fn_hi, spec.funct)
            )
        elif spec.fmt is Format.REGIMM:
            assert spec.regimm_rt is not None
            rt_match = b.equals_const(rt, spec.regimm_rt)
            detects[mnemonic] = b.and_(is_regimm, rt_match)
        else:
            detects[mnemonic] = _shared_equals(b, op_lo, op_hi, spec.opcode)

    # Reference field values per instruction.
    field_values: dict[str, dict[str, int]] = {}
    for mnemonic in INSTRUCTION_SET:
        decoded = decode(encode(mnemonic))
        field_values[mnemonic] = decode_controls(decoded).to_fields()

    # Each output bit ORs the detects of the instructions that set it.
    for field, width in CONTROL_FIELDS:
        bits: Word = []
        for j in range(width):
            terms = [
                detects[m]
                for m, values in field_values.items()
                if (values[field] >> j) & 1
            ]
            if not terms:
                bits.append(CONST0)
            elif len(terms) == 1:
                bits.append(terms[0])
            else:
                bits.append(b.reduce_or(terms))
        b.output(field, bits)
    return b.build()
