"""Experiment EXT1 — on-line periodic testing (the paper's outlook).

The conclusions of the DATE 2003 paper emphasise that the self-test
program's small size and execution time minimise test cost; the authors'
follow-up work applies exactly these programs to *on-line periodic*
testing.  This bench measures the trade-off the compact program enables:
performance overhead vs worst-case fault-detection latency, for the
Phase A and Phase A+B programs interleaved with a real mission workload on
the Plasma model.

Anchor: because the self-test executes in a few thousand cycles, even a
sub-1% performance overhead buys a detection latency below a million
cycles (~15 ms at the paper's 66 MHz) — the property that makes the
methodology viable on-line.
"""

from conftest import run_once, write_result

from repro.core.methodology import SelfTestMethodology
from repro.core.periodic import PeriodicScheduler, operating_point
from repro.isa.assembler import assemble

MISSION = """
.text
    li $s0, 64
outer:
    li $t0, 32
    li $t1, 0
inner:
    addu $t1, $t1, $t0
    mult $t1, $t0
    mflo $t2
    addiu $t0, $t0, -1
    bnez $t0, inner
    nop
    sw $t2, 0x2400($0)
    addiu $s0, $s0, -1
    bnez $s0, outer
    nop
halt: j halt
    nop
"""

PERIODS = (10_000, 50_000, 200_000, 1_000_000)
CLOCK_MHZ = 66  # the paper's synthesis result


def measure():
    mission = assemble(MISSION)
    rows = []
    for phases in ("A", "AB"):
        self_test = SelfTestMethodology().build_program(phases)
        scheduler = PeriodicScheduler(mission, self_test, PERIODS[0])
        test_cost = scheduler._run_once(self_test.program)
        for period in PERIODS:
            point = operating_point(period, test_cost)
            rows.append((phases, period, test_cost, point))
    return rows


def test_periodic_trade_off(benchmark):
    rows = run_once(benchmark, measure)

    lines = [
        f"{'phases':>7s} {'period':>10s} {'test cyc':>9s} "
        f"{'overhead %':>11s} {'latency cyc':>12s} {'latency ms':>11s}"
    ]
    for phases, period, test_cost, point in rows:
        latency_ms = point.worst_case_latency / (CLOCK_MHZ * 1e3)
        lines.append(
            f"{phases:>7s} {period:>10,} {test_cost:>9,} "
            f"{100 * point.overhead:>11.2f} "
            f"{point.worst_case_latency:>12,} {latency_ms:>11.2f}"
        )
    text = "\n".join(lines)
    write_result("ext1_periodic.txt", text)
    print("\n" + text)

    # Anchor: at a 1M-cycle period the overhead is below 1% while the
    # worst-case detection latency stays near ~15 ms at 66 MHz.
    for phases, period, test_cost, point in rows:
        if period == 1_000_000:
            assert point.overhead < 0.01
            assert point.worst_case_latency / (CLOCK_MHZ * 1e3) < 20.0
