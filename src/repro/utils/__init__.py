"""Shared low-level utilities: bit manipulation, lane packing, LFSR PRNG."""

from repro.utils.bits import (
    MASK32,
    bit,
    bits_of,
    extract,
    from_signed,
    parity,
    popcount,
    rotate_left,
    sign_extend,
    to_signed,
)
from repro.utils.lanes import LaneSet, pack_lanes, unpack_lanes
from repro.utils.lfsr import LFSR, STANDARD_TAPS

__all__ = [
    "MASK32",
    "bit",
    "bits_of",
    "extract",
    "from_signed",
    "parity",
    "popcount",
    "rotate_left",
    "sign_extend",
    "to_signed",
    "LaneSet",
    "pack_lanes",
    "unpack_lanes",
    "LFSR",
    "STANDARD_TAPS",
]
