"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``asm FILE``       — assemble a MIPS source file, print statistics and
  (optionally) a listing or a memory image.
* ``run FILE``       — assemble and execute on the Plasma model.
* ``selftest``       — generate a Phase A/AB/ABC self-test program.
* ``campaign``       — run the fault-grading campaign and print the tables.
* ``inventory``      — print the component classification and gate counts
  (Tables 2 and 3).
* ``analyze``        — static analysis: program CFG/dataflow checks,
  netlist testability (SCOAP) screening, the SAT-based formal layer
  (``analyze formal``: golden-model equivalence + redundancy proofs),
  the structural fault-collapse pass (``analyze collapse``: equivalence /
  dominance classes with a SAT spot-check) and the program-aware reach
  screen (``analyze reach``: abstract interpretation proving fault
  classes unexercised by a self-test program, SAT spot-checked).
* ``serve``          — run the campaign service: an async HTTP API that
  queues campaign jobs and streams per-shard progress over SSE (see
  ``docs/SERVICE.md``).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.core.campaign import run_campaign
from repro.core.methodology import SelfTestMethodology
from repro.errors import ReproError, WatchdogTimeout
from repro.faultsim.engine import engine_names
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_program
from repro.plasma.cpu import PlasmaCPU
from repro.reporting.tables import (
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)
from repro.runtime import RetryPolicy, RuntimeConfig

#: Distinct exit codes so scripts/CI can tell failure modes apart.
EXIT_ERROR = 1       # generic library error
EXIT_DEGRADED = 3    # campaign completed but with ungraded components
EXIT_WATCHDOG = 4    # CPU watchdog tripped (runaway program)
EXIT_ANALYZE_PROGRAM = 5   # program analyzer found errors
EXIT_ANALYZE_NETLIST = 6   # netlist analyzer found errors
EXIT_ANALYZE_BOTH = 7      # both analyzers found errors
EXIT_ANALYZE_FORMAL = 8    # formal layer found errors (CEC / soundness)
EXIT_ANALYZE_COLLAPSE = 9  # SAT refuted a static collapse claim
EXIT_SERVICE = 10          # campaign service failed to start or crashed
EXIT_ANALYZE_REACH = 11    # SAT refuted a reach (unexercised) claim


def _cmd_asm(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        program = assemble(handle.read())
    print(
        f"{args.file}: {program.code_words} code words, "
        f"{program.data_words} data words"
    )
    if args.listing:
        for line in disassemble_program(program):
            print(line)
    if args.image:
        for addr, word in sorted(program.to_image().items()):
            print(f"{addr:08x} {word:08x}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        program = assemble(handle.read())
    cpu = PlasmaCPU()
    cpu.load_program(program)
    try:
        result = cpu.run(
            max_instructions=args.max_instructions,
            max_cycles=args.max_cycles,
        )
    except WatchdogTimeout as exc:
        print(f"watchdog: {exc}", file=sys.stderr)
        return EXIT_WATCHDOG
    print(
        f"halted at pc={result.pc:#010x} after {result.instructions} "
        f"instructions / {result.cycles} cycles"
    )
    if args.dump:
        base, count = args.dump
        for i, word in enumerate(cpu.memory.dump_words(base, count)):
            print(f"{base + 4 * i:08x} {word:08x}")
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    self_test = SelfTestMethodology().build_program(args.phases)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(self_test.source)
        print(f"wrote {args.output}")
    elif not args.coverage:
        print(self_test.source)
    print(
        f"# phases={args.phases}: {self_test.code_words} code words, "
        f"{self_test.data_words} data words, "
        f"{self_test.response_words} response words",
        file=sys.stderr,
    )
    if args.coverage:
        from repro.core.campaign import grade_program

        print(f"== grading phases {args.phases} (engine: {args.engine}) ==")
        outcome = grade_program(self_test, verbose=True, engine=args.engine)
        summary = outcome.summary
        print(
            f"overall FC {summary.overall_coverage:.2f}% "
            f"({summary.total_detected}/{summary.total_faults} faults)"
        )
    return 0


def _campaign_runtime(args: argparse.Namespace) -> RuntimeConfig | None:
    """Build the resilient-runner config from CLI flags (None = serial)."""
    wants_runtime = (
        args.checkpoint is not None
        or args.resume
        or args.timeout is not None
        or args.isolate
        or args.jobs > 1
    )
    if not wants_runtime:
        return None
    if args.jobs > 1 and args.no_isolate:
        # Same exit code as argparse usage errors: the flags conflict.
        print(
            "error: --jobs requires worker isolation; "
            "drop --no-isolate to grade in parallel",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return RuntimeConfig(
        timeout_seconds=args.timeout,
        retry=RetryPolicy(max_attempts=args.retries),
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
        isolate=not args.no_isolate,
        engine=args.engine,
        jobs=args.jobs,
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.faultsim.options import DEFAULT_LANES, GradeOptions

    components = args.components.split(",") if args.components else None
    runtime = _campaign_runtime(args)
    options = GradeOptions(
        engine=args.engine,
        prune_untestable="proven" if args.prune_untestable else False,
        collapse=args.collapse,
        reach=args.reach,
        cache=args.cache_dir,
        lanes=args.lanes if args.lanes is not None else DEFAULT_LANES,
    )
    outcomes = {}
    degraded: list[str] = []
    for phases in args.phases.split(","):
        print(f"== campaign: phases {phases} ==")
        outcomes[phases] = run_campaign(
            phases, components=components, verbose=True, runtime=runtime,
            jobs=args.jobs, options=options,
        )
        if args.cache_dir is not None:
            outcome = outcomes[phases]
            print(
                f"persistent cache: {len(outcome.cached_components)}"
                f"/{len(outcome.results)} components reused"
            )
        if runtime is not None and runtime.checkpoint_dir is not None:
            # Later phases (and the journal entries the first phase just
            # wrote) must survive: only the first phase may start a fresh
            # journal.
            runtime = dataclasses.replace(runtime, resume=True)
        degraded += [
            f"{phases}:{name}"
            for name in outcomes[phases].degraded_components
        ]
    print()
    print(render_table4(outcomes))
    print()
    print(render_table5(outcomes))
    if degraded:
        print(
            "warning: campaign degraded; ungraded components: "
            + ", ".join(degraded),
            file=sys.stderr,
        )
        return EXIT_DEGRADED
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig
    from repro.service.app import run_service

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        tenant_quota=args.tenant_quota,
        max_jobs=args.max_jobs,
        cache_dir=args.cache_dir,
        checkpoint_root=args.checkpoint_root,
        timeout_seconds=args.timeout,
        retries=args.retries,
    )
    try:
        return run_service(config)
    except OSError as exc:
        # Bind failures (port in use, bad host) land here.
        print(f"serve: {exc}", file=sys.stderr)
        return EXIT_SERVICE
    except ReproError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return EXIT_SERVICE


def _cmd_inventory(_args: argparse.Namespace) -> int:
    print(render_table2())
    print()
    print(render_table3())
    return 0


def _analyze_programs(files: list[str]) -> list:
    """Program reports: given files, or every shipped routine + the full
    phased self-test program when no files are named."""
    from repro.analysis import AnalysisOptions, analyze_program
    from repro.core.routines import ROUTINES, standalone_program

    reports = []
    if files:
        for path in files:
            with open(path) as handle:
                program = assemble(handle.read())
            reports.append(analyze_program(program, path, AnalysisOptions()))
        return reports
    for name in ROUTINES:
        source, routine = standalone_program(name)
        options = AnalysisOptions(
            signature_registers=routine.signature_registers
        )
        reports.append(
            analyze_program(assemble(source), f"routine:{name}", options)
        )
    methodology = SelfTestMethodology()
    self_test = methodology.build_program("ABC")
    signatures = tuple(
        {
            reg
            for _phase, routine in methodology.routine_plan("ABC")
            for reg in routine.signature_registers
        }
    )
    reports.append(
        analyze_program(
            self_test.program,
            "selftest:ABC",
            AnalysisOptions(signature_registers=signatures),
        )
    )
    return reports


def _analyze_netlists(names: list[str]) -> list:
    """Netlist reports for the named components (default: all)."""
    from repro.analysis.netlist import analyze_netlist
    from repro.plasma.components import COMPONENTS, component

    infos = [component(n) for n in names] if names else list(COMPONENTS)
    return [analyze_netlist(info.builder()) for info in infos]


def _analyze_formal(names: list[str]) -> tuple[list, list]:
    """Formal reports + redundancy screens for the named components.

    Default: all ten.  The screen is computed once per component and
    shared between the FV report and the provenance table.
    """
    from repro.analysis.formal import analyze_formal
    from repro.formal.redundancy import prove_untestable
    from repro.plasma.components import COMPONENTS, component

    infos = [component(n) for n in names] if names else list(COMPONENTS)
    reports, screens = [], []
    for info in infos:
        netlist = info.builder()
        screen = prove_untestable(netlist, component=info.name)
        reports.append(
            analyze_formal(netlist, component=info.name, screen=screen)
        )
        screens.append(screen)
    return reports, screens


def _analyze_collapse(names: list[str], sat_samples: int) -> tuple[list, list]:
    """Collapse reports + ``(map, check)`` pairs for the named components.

    Default: all ten.  Each component's collapse map is computed once and
    shared between the report and the summary table.
    """
    from repro.analysis.collapse import analyze_collapse
    from repro.plasma.components import COMPONENTS, component

    infos = [component(n) for n in names] if names else list(COMPONENTS)
    reports, entries = [], []
    for info in infos:
        report, cmap, check = analyze_collapse(
            info.builder(), sat_samples=sat_samples
        )
        reports.append(report)
        entries.append((cmap, check))
    return reports, entries


def _analyze_reach(
    specs: list[str], components: list[str], sat_samples: int
) -> tuple[list, list]:
    """Reach reports + ``(report, check)`` pairs per analyzed program.

    Each spec is a phase configuration (``A``/``AB``/``ABC`` — the
    generated self-test program) or an assembly file path; with no
    specs the phase A program is analyzed.  ``components`` restricts
    the screen (default: all ten).
    """
    from repro.analysis.reach import analyze_reach

    reports, entries = [], []
    for spec in specs or ["A"]:
        if spec in ("A", "AB", "ABC"):
            program = SelfTestMethodology().build_program(spec).program
            label = f"phase:{spec}"
        else:
            with open(spec) as handle:
                program = assemble(handle.read())
            label = spec
        report, by_component, checks = analyze_reach(
            program,
            components=components or None,
            sat_samples=sat_samples,
            target=label,
        )
        reports.append(report)
        entries += [
            (by_component[name], checks[name]) for name in by_component
        ]
    return reports, entries


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import reports_to_json
    from repro.reporting.analysis import (
        collapse_table_json,
        formal_table_json,
        reach_table_json,
        render_analysis_reports,
        render_collapse_table,
        render_formal_table,
        render_reach_table,
    )

    do_programs = args.all or args.what == "program"
    do_netlists = args.all or args.what == "netlist"
    do_formal = args.what == "formal"
    do_collapse = args.what == "collapse"
    do_reach = args.what == "reach"
    if not (do_programs or do_netlists or do_formal or do_collapse
            or do_reach):
        print("error: analyze needs 'program', 'netlist', 'formal', "
              "'collapse', 'reach' or --all",
              file=sys.stderr)
        return EXIT_ERROR
    if args.all and args.targets:
        print("error: --all analyzes everything; drop the extra targets",
              file=sys.stderr)
        return EXIT_ERROR
    targets = list(args.targets)
    if args.component and not do_reach:
        # For reach, positional targets name *programs* and --component
        # names netlists — the two stay separate.  Everywhere else
        # --component is sugar for a positional target.
        targets += args.component

    program_reports = _analyze_programs(targets) if do_programs else []
    netlist_reports = _analyze_netlists(targets) if do_netlists else []
    formal_reports: list = []
    formal_screens: list = []
    if do_formal:
        formal_reports, formal_screens = _analyze_formal(targets)
    collapse_reports: list = []
    collapse_entries: list = []
    if do_collapse:
        collapse_reports, collapse_entries = _analyze_collapse(
            targets, args.sat_samples
        )
    reach_reports: list = []
    reach_entries: list = []
    if do_reach:
        reach_reports, reach_entries = _analyze_reach(
            targets, args.component or [], args.sat_samples
        )
    reports = (
        program_reports + netlist_reports + formal_reports
        + collapse_reports + reach_reports
    )

    if args.json:
        extra: dict = {}
        if formal_screens:
            extra["formal"] = formal_table_json(formal_screens)
        if collapse_entries:
            extra["collapse"] = collapse_table_json(collapse_entries)
        if reach_entries:
            extra["reach"] = reach_table_json(reach_entries)
        print(reports_to_json(reports, extra=extra))
    else:
        print(render_analysis_reports(
            reports, max_diagnostics=args.max_diagnostics
        ))
        if formal_screens:
            print()
            print(render_formal_table(formal_screens))
        if collapse_entries:
            print()
            print(render_collapse_table(collapse_entries))
        if reach_entries:
            print()
            print(render_reach_table(reach_entries))

    program_failed = any(not r.ok for r in program_reports)
    netlist_failed = any(not r.ok for r in netlist_reports)
    formal_failed = any(not r.ok for r in formal_reports)
    collapse_failed = any(not r.ok for r in collapse_reports)
    reach_failed = any(not r.ok for r in reach_reports)
    if reach_failed:
        return EXIT_ANALYZE_REACH
    if collapse_failed:
        return EXIT_ANALYZE_COLLAPSE
    if formal_failed:
        return EXIT_ANALYZE_FORMAL
    if program_failed and netlist_failed:
        return EXIT_ANALYZE_BOTH
    if program_failed:
        return EXIT_ANALYZE_PROGRAM
    if netlist_failed:
        return EXIT_ANALYZE_NETLIST
    return 0


def _parse_dump(text: str) -> tuple[int, int]:
    try:
        base, count = text.split(":")
        return int(base, 0), int(count, 0)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected BASE:COUNT (e.g. 0x4000:16), got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_asm = sub.add_parser("asm", help="assemble a MIPS source file")
    p_asm.add_argument("file")
    p_asm.add_argument("--listing", action="store_true",
                       help="print a disassembly listing")
    p_asm.add_argument("--image", action="store_true",
                       help="print the memory image (addr word per line)")
    p_asm.set_defaults(func=_cmd_asm)

    p_run = sub.add_parser("run", help="assemble and execute a program")
    p_run.add_argument("file")
    p_run.add_argument("--max-instructions", type=int, default=2_000_000)
    p_run.add_argument("--max-cycles", type=int, default=None,
                       help="CPU watchdog: abort after this many cycles "
                            f"(exit code {EXIT_WATCHDOG})")
    p_run.add_argument("--dump", type=_parse_dump, metavar="BASE:COUNT",
                       help="dump memory words after the run")
    p_run.set_defaults(func=_cmd_run)

    engine_choices = ("auto", *engine_names())

    p_st = sub.add_parser("selftest", help="generate a self-test program")
    p_st.add_argument("--phases", default="AB")
    p_st.add_argument("-o", "--output")
    p_st.add_argument("--coverage", action="store_true",
                      help="also fault-grade the generated program and "
                           "print per-component coverage")
    p_st.add_argument("--engine", choices=engine_choices, default="auto",
                      help="fault-sim engine for --coverage (default auto)")
    p_st.set_defaults(func=_cmd_selftest)

    p_c = sub.add_parser("campaign", help="run the fault-grading campaign")
    p_c.add_argument("--phases", default="A",
                     help="comma-separated phase configs (e.g. A,AB)")
    p_c.add_argument("--components",
                     help="comma-separated subset (e.g. ALU,BSH)")
    p_c.add_argument("--checkpoint", metavar="DIR",
                     help="journal completed components to DIR "
                          "(crash-safe JSONL + event log)")
    p_c.add_argument("--resume", action="store_true",
                     help="reuse journaled results from --checkpoint DIR")
    p_c.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                     help="wall-clock budget per component grading attempt")
    p_c.add_argument("--retries", type=int, default=3, metavar="N",
                     help="attempts per component before degrading "
                          "(default 3)")
    p_c.add_argument("--isolate", action="store_true",
                     help="force the resilient runner (worker-process "
                          "isolation) even without --checkpoint/--timeout")
    p_c.add_argument("--no-isolate", action="store_true",
                     help="run grading jobs in-process (no timeouts)")
    p_c.add_argument("--prune-untestable", action="store_true",
                     help="skip simulating structurally untestable fault "
                          "classes (SCOAP screening) and SAT-certify them "
                          "(repro.formal); proven-redundant classes are "
                          "excluded from the FC denominator, so coverage "
                          "can only stay equal or improve")
    p_c.add_argument("--engine", choices=engine_choices, default="auto",
                     help="fault-sim engine (default: auto — compiled for "
                          "deep combinational components, differential "
                          "otherwise)")
    p_c.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="parallel grading workers; each component's "
                          "fault universe is sharded over a persistent "
                          "pool and the merged tables are bit-identical "
                          "to --jobs 1 (default: 1 = serial)")
    p_c.add_argument("--reach", action="store_true",
                     help="skip simulating fault classes the program-aware "
                          "reach screen (abstract interpretation of the "
                          "self-test program, repro.analysis.reach) proves "
                          "unexercised; verdicts and Tables 4/5 are "
                          "bit-identical either way — the screened classes "
                          "stay undetected in the FC denominator")
    p_c.add_argument("--collapse", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="grade through the structural collapse map: "
                          "simulate only super-class representatives and "
                          "infer dominated verdicts; Tables 4/5 are "
                          "bit-identical either way (default: on; "
                          "--no-collapse simulates every class)")
    p_c.add_argument("--cache-dir", metavar="DIR", default=None,
                     help="persistent content-addressed store for good "
                          "traces and verdict records; an unchanged "
                          "repeat campaign replays verdicts from DIR "
                          "and re-simulates nothing")
    p_c.add_argument("--lanes", type=int, default=None, metavar="N",
                     help="lane groups per packed-engine word, 2-1024 "
                          "(default 64 = good machine + 63 fault "
                          "classes); only meaningful with --engine "
                          "packed")
    p_c.set_defaults(func=_cmd_campaign)

    p_inv = sub.add_parser("inventory", help="print Tables 2 and 3")
    p_inv.set_defaults(func=_cmd_inventory)

    p_srv = sub.add_parser(
        "serve",
        help="run the campaign service (async HTTP API + SSE)",
        description=(
            "Run the long-lived campaign service.  Campaigns are "
            "submitted as JSON jobs over HTTP (POST /v1/campaigns), run "
            "on a priority queue with per-tenant quotas and idempotent "
            "deduplication, and stream per-shard progress over "
            "Server-Sent Events.  See docs/SERVICE.md for the endpoint "
            f"reference.  Exit code {EXIT_SERVICE} = the service could "
            "not start (e.g. the port is taken) or crashed."
        ),
    )
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8765,
                       help="bind port; 0 picks an ephemeral port and "
                            "prints it on startup (default 8765)")
    p_srv.add_argument("--workers", type=int, default=1, metavar="N",
                       help="concurrent campaign executors (default 1; "
                            "parallelism within a campaign comes from "
                            "the job's own 'jobs' field)")
    p_srv.add_argument("--queue-limit", type=int, default=16, metavar="N",
                       help="max queued jobs before submissions get "
                            "429 + Retry-After (default 16)")
    p_srv.add_argument("--tenant-quota", type=int, default=4, metavar="N",
                       help="max active jobs per tenant (default 4)")
    p_srv.add_argument("--max-jobs", type=int, default=8, metavar="N",
                       help="cap on a job's requested shard workers "
                            "(default 8)")
    p_srv.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persistent TraceStore shared by all jobs; "
                            "unchanged resubmissions replay verdicts "
                            "from DIR (cache_hit=true, zero re-simulated "
                            "fault classes)")
    p_srv.add_argument("--checkpoint-root", metavar="DIR", default=None,
                       help="per-job shard journals under DIR/<job key>; "
                            "a cancelled campaign's resubmission resumes "
                            "from its journal")
    p_srv.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget per grading attempt "
                            "(isolated jobs only)")
    p_srv.add_argument("--retries", type=int, default=2, metavar="N",
                       help="attempts per job/shard before degrading "
                            "(default 2)")
    p_srv.set_defaults(func=_cmd_serve)

    p_an = sub.add_parser(
        "analyze",
        help="static analysis of self-test programs and netlists",
        description=(
            "Run the static analyzers.  'program' checks assembled "
            "programs (delay slots, def-use, signature clobbers, memory "
            "map); 'netlist' checks component circuits (structural lint "
            "+ SCOAP testability); 'formal' runs the SAT layer (netlist "
            "vs golden-model equivalence + redundancy-proof soundness "
            "gate); 'collapse' computes the structural fault-collapse "
            "map (equivalence + dominance) and SAT spot-checks sampled "
            "claims; 'reach' abstract-interprets a self-test program "
            "(phase spec A/AB/ABC or an assembly file; default A) and "
            "proves fault classes unexercised by it, SAT spot-checking "
            "sampled proofs.  With no targets, every shipped "
            "routine/netlist is analyzed.  Exit codes: "
            f"{EXIT_ANALYZE_PROGRAM} = program errors, "
            f"{EXIT_ANALYZE_NETLIST} = netlist errors, "
            f"{EXIT_ANALYZE_BOTH} = both, "
            f"{EXIT_ANALYZE_FORMAL} = formal errors, "
            f"{EXIT_ANALYZE_COLLAPSE} = refuted collapse claims, "
            f"{EXIT_ANALYZE_REACH} = refuted/unsound reach claims."
        ),
    )
    p_an.add_argument("what", nargs="?",
                      choices=("program", "netlist", "formal", "collapse",
                               "reach"),
                      help="which analyzer to run (or use --all)")
    p_an.add_argument("targets", nargs="*",
                      help="assembly files (program), component names "
                           "(netlist/formal/collapse) or phase "
                           "specs/assembly files (reach); default: all "
                           "shipped artifacts (reach: the phase A "
                           "program)")
    p_an.add_argument("--component", action="append", metavar="NAME",
                      help="component short name to analyze (repeatable; "
                           "same as a positional target, except for "
                           "'reach' where it restricts the screened "
                           "components)")
    p_an.add_argument("--all", action="store_true",
                      help="run the program and netlist analyzers over "
                           "every shipped routine, self-test program and "
                           "netlist")
    p_an.add_argument("--json", action="store_true",
                      help="emit a JSON document instead of text")
    p_an.add_argument("--max-diagnostics", type=int, default=20,
                      metavar="N",
                      help="cap printed findings per target (default 20)")
    p_an.add_argument("--sat-samples", type=int, default=8, metavar="N",
                      help="collapse analyzer: SAT spot-check samples per "
                           "claim family per component (default 8; large "
                           "values approach an exhaustive check)")
    p_an.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that exited early — not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
