"""Unit tests for register name parsing."""

import pytest

from repro.errors import AssemblyError
from repro.isa.registers import (
    REGISTER_ALIASES,
    register_name,
    register_number,
)


class TestParsing:
    def test_numeric(self):
        assert register_number("$0") == 0
        assert register_number("$31") == 31

    def test_aliases(self):
        assert register_number("$zero") == 0
        assert register_number("$at") == 1
        assert register_number("$sp") == 29
        assert register_number("$ra") == 31

    def test_case_insensitive(self):
        assert register_number("$T0") == 8

    def test_whitespace_tolerated(self):
        assert register_number("  $t1 ") == 9

    def test_out_of_range(self):
        with pytest.raises(AssemblyError):
            register_number("$32")

    def test_missing_dollar(self):
        with pytest.raises(AssemblyError):
            register_number("t0")

    def test_garbage(self):
        with pytest.raises(AssemblyError):
            register_number("$xyz")


class TestRendering:
    def test_roundtrip_all(self):
        for name, num in REGISTER_ALIASES.items():
            assert register_number(register_name(num)) == num
            assert register_number(name) == num

    def test_prefers_abi_names(self):
        assert register_name(8) == "$t0"
        assert register_name(0) == "$zero"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            register_name(32)

    def test_alias_map_complete(self):
        assert sorted(REGISTER_ALIASES.values()) == list(range(32))
