"""Unit tests for the component campaign harness."""

import pytest

from repro.errors import FaultSimError
from repro.faultsim.harness import (
    CombinationalCampaign,
    SequentialCampaign,
    run_combinational,
    run_sequential,
)
from repro.netlist.builder import NetlistBuilder


def adder4():
    b = NetlistBuilder("adder4")
    a = b.input("a", 4)
    x = b.input("x", 4)
    cin = b.input("cin", 1)[0]
    from repro.library.adders import ripple_carry_adder

    total, cout = ripple_carry_adder(b, a, x, cin)
    b.output("sum", total)
    b.output("cout", cout)
    return b.build()


def exhaustive_patterns():
    return [dict(a=a, x=x, cin=c)
            for a in range(16) for x in range(16) for c in (0, 1)]


class TestCombinational:
    def test_exhaustive_reaches_full_coverage(self):
        result = run_combinational(adder4(), exhaustive_patterns())
        assert result.fault_coverage == 100.0
        assert result.undetected_faults() == []

    def test_single_pattern_partial_coverage(self):
        result = run_combinational(adder4(), [dict(a=0, x=0, cin=0)])
        assert 0 < result.fault_coverage < 100.0

    def test_constant_tied_logic_reported_untestable(self):
        # An AND fed by constant 0 can never differ: its stuck-at-0 faults
        # are structurally untestable and must survive an exhaustive test.
        # (The builder's helpers fold such gates away, so emit it raw.)
        from repro.netlist.gates import GateType
        from repro.netlist.netlist import CONST0

        b = NetlistBuilder("tied")
        a = b.input("a", 1)
        dead = b.netlist.add_gate(GateType.AND, [a[0], CONST0])
        b.output("y", b.gate(GateType.OR, a[0], dead))
        patterns = [dict(a=v) for v in (0, 1)]
        result = run_combinational(b.build(), patterns)
        assert result.fault_coverage < 100.0
        undetected = result.undetected_faults()
        nl = result.fault_list.netlist
        assert any("s-a-0" in f.describe(nl) for f in undetected)

    def test_unobserved_patterns_detect_nothing(self):
        observe = [() for _ in exhaustive_patterns()]
        result = run_combinational(adder4(), exhaustive_patterns(), observe)
        assert result.n_detected == 0

    def test_partial_observation(self):
        # Observing only cout: sum-only faults survive.
        observe = [("cout",) for _ in exhaustive_patterns()]
        result = run_combinational(adder4(), exhaustive_patterns(), observe)
        assert 0 < result.fault_coverage < 100.0

    def test_empty_patterns_rejected(self):
        with pytest.raises(FaultSimError):
            run_combinational(adder4(), [])

    def test_observe_length_mismatch(self):
        with pytest.raises(FaultSimError):
            CombinationalCampaign(adder4(), [dict(a=0, x=0)], [(), ()]).run()

    def test_sequential_netlist_rejected(self):
        b = NetlistBuilder("seq")
        x = b.input("x", 1)
        b.output("q", b.dff(x[0]))
        with pytest.raises(FaultSimError):
            run_combinational(b.build(), [dict(x=0)])

    def test_result_accounting(self):
        result = run_combinational(adder4(), exhaustive_patterns(), name="A4")
        assert result.name == "A4"
        assert result.n_patterns == 512
        assert result.n_faults == result.fault_list.n_collapsed
        cov = result.to_component_coverage(nand2=38)
        assert cov.nand2 == 38
        assert cov.fault_coverage == result.fault_coverage


class TestSequential:
    def _regfile(self):
        from repro.library import build_register_file

        return build_register_file(n_registers=4, width=4)

    def test_march_reaches_high_coverage(self):
        cycles = []
        for value in (0b0101, 0b1010):
            for reg in range(1, 4):
                cycles.append(dict(wr_addr=reg, wr_data=value, wr_en=1,
                                   rd_addr_a=0, rd_addr_b=0))
            for reg in range(1, 4):
                cycles.append(dict(wr_addr=0, wr_data=0, wr_en=0,
                                   rd_addr_a=reg, rd_addr_b=reg))
        # Parity + unique backgrounds for the address logic.
        for reg in range(1, 4):
            parity = 0xF if bin(reg).count("1") & 1 else 0
            cycles.append(dict(wr_addr=reg, wr_data=parity, wr_en=1,
                               rd_addr_a=0, rd_addr_b=0))
        for reg in range(1, 4):
            cycles.append(dict(wr_addr=0, wr_data=0, wr_en=0,
                               rd_addr_a=reg, rd_addr_b=3 - reg))
        result = run_sequential(self._regfile(), cycles)
        assert result.fault_coverage > 85.0

    def test_no_observation_no_detection(self):
        cycles = [dict(wr_addr=1, wr_data=0xF, wr_en=1,
                       rd_addr_a=1, rd_addr_b=1)] * 4
        observe = [() for _ in cycles]
        result = run_sequential(self._regfile(), cycles, observe)
        assert result.n_detected == 0

    def test_empty_cycles_rejected(self):
        with pytest.raises(FaultSimError):
            run_sequential(self._regfile(), [])

    def test_observe_length_mismatch(self):
        with pytest.raises(FaultSimError):
            SequentialCampaign(
                self._regfile(),
                [dict(wr_addr=0, wr_data=0, wr_en=0,
                      rd_addr_a=0, rd_addr_b=0)],
                [(), ()],
            ).run()
