"""Formal verification analyzer: CEC verdicts + redundancy soundness.

:func:`analyze_formal` folds the SAT-based formal results for one
component into a diagnostic :class:`~repro.analysis.diagnostics.Report`
(kind ``"formal"``, rules ``FV201``–``FV203``):

* **FV201** (error) — the structural netlist is *not* equivalent to its
  behavioral golden model (:mod:`repro.formal.golden`); the diagnostic
  carries the replay-confirmed counterexample.
* **FV202** (error) — soundness regression: a fault class the SCOAP
  structural screen calls untestable has no SAT redundancy certificate.
  The structural screen is meant to be a sound under-approximation of
  the complete SAT criterion, so each unconfirmed class is a bug in the
  screen (or, worse, a witnessed one is a wrongly-pruned testable
  fault).
* **FV203** (info) — summary: CEC verdict with solver statistics, plus
  the structural-vs-proven provenance counts of the redundancy screen.

Kept out of ``repro.analysis.__init__`` for the same reason as
:mod:`repro.analysis.netlist`: this module imports :mod:`repro.formal`,
which reaches back into the fault model, and the import chain must not
close into a cycle through the package init.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Report
from repro.netlist.netlist import Netlist

if TYPE_CHECKING:  # runtime import stays local to keep repro.formal lazy
    from repro.formal.redundancy import UntestabilityScreen


def analyze_formal(
    netlist: Netlist | None = None,
    *,
    component: str | None = None,
    screen: UntestabilityScreen | None = None,
) -> Report:
    """Formally analyze one component: CEC, then the redundancy screen.

    Args:
        netlist: the structural netlist to verify.  Omitted, it is built
            from the ``component`` name's registered builder.
        component: component short name (e.g. ``"ALU"``); required when
            ``netlist`` is omitted and used to look up the golden model.
        screen: reuse a precomputed
            :class:`~repro.formal.redundancy.UntestabilityScreen` (the
            CLI computes it once and also renders the provenance table
            from it); ``None`` runs the prover here.

    Returns:
        A report whose ``ok`` is False exactly when the component fails
        equivalence (FV201) or the structural screen lost soundness
        (FV202).
    """
    from repro.formal.cec import check_equivalence
    from repro.formal.golden import golden_model
    from repro.formal.redundancy import prove_untestable

    if netlist is None:
        if component is None:
            raise ValueError("analyze_formal needs a netlist or a component")
        from repro.plasma.components import build_component

        netlist = build_component(component)
    name = component or netlist.name
    report = Report(name, "formal")

    spec = golden_model(name)
    cec = check_equivalence(netlist, spec, component=name)
    if not cec.equivalent:
        cex = cec.counterexample
        assert cex is not None
        inputs = ", ".join(
            f"{port}={value:#x}" for port, value in sorted(cex.inputs.items())
        )
        state = "".join(str(b) for b in cex.state) or "-"
        report.add(
            "FV201",
            f"netlist diverges from golden model on "
            f"{', '.join(cex.mismatched)} (inputs: {inputs}; state: "
            f"{state}; impl {cex.impl_outputs} vs spec {cex.spec_outputs})",
        )

    if screen is None:
        screen = prove_untestable(netlist, component=name)
    fault_list = None
    for rep in sorted(screen.unconfirmed):
        if fault_list is None:
            from repro.faultsim.faults import build_fault_list

            fault_list = build_fault_list(netlist)
        fault = fault_list.fault(rep)
        tier = "witnessed testable" if rep in screen.witnessed \
            else "undecided"
        report.add(
            "FV202",
            f"structurally screened class {rep} "
            f"({fault.describe(netlist)}) is not SAT-certified redundant "
            f"({tier})",
            net=fault.net,
        )

    verdict = "equivalent" if cec.equivalent else "NOT equivalent"
    report.add(
        "FV203",
        f"CEC: {verdict} ({cec.n_vars} vars, {cec.n_clauses} clauses, "
        f"{cec.stats['conflicts']} conflicts, {cec.solve_seconds:.2f}s); "
        f"redundancy screen: {len(screen.structural)} structural "
        f"candidates, {len(screen.proven)} SAT-proven, "
        f"{len(screen.witnessed)} witnessed testable "
        f"({screen.conflicts} conflicts)",
    )
    return report
