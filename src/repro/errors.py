"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  Subpackages raise
the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AssemblyError(ReproError):
    """An assembly-language source could not be assembled.

    Carries the offending source line number (1-based) when known.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """An instruction could not be encoded or decoded."""


class NetlistError(ReproError):
    """A gate-level netlist is malformed or an operation on it is invalid."""


class SimulationError(ReproError):
    """The CPU or logic simulator reached an invalid state."""


class FaultSimError(ReproError):
    """The fault simulator was misused or reached an invalid state."""


class MethodologyError(ReproError):
    """The SBST methodology was applied to an unsupported configuration."""


class WatchdogTimeout(SimulationError):
    """The CPU watchdog tripped: a run exceeded its cycle or instruction
    budget without reaching the halt loop (runaway program)."""


class ReproRuntimeError(ReproError, RuntimeError):
    """Base class for campaign-runtime failures (job execution machinery).

    These errors describe how a *job* failed — timeout, worker death,
    journal damage — rather than a defect in the library itself.  They
    also derive from the builtin :class:`RuntimeError` so generic runtime
    handlers catch them.
    """


class GradingTimeout(ReproRuntimeError):
    """A fault-grading job exceeded its wall-clock timeout.

    Carries the job name and the budget that was exhausted.
    """

    def __init__(self, job: str, timeout_seconds: float):
        self.job = job
        self.timeout_seconds = timeout_seconds
        super().__init__(
            f"job {job!r} exceeded its {timeout_seconds:g}s wall-clock budget"
        )


class WorkerCrash(ReproRuntimeError):
    """An isolated worker process died without reporting a result.

    Carries the process exit code when known (negative = killed by
    signal, following POSIX convention).
    """

    def __init__(self, job: str, exitcode: int | None = None):
        self.job = job
        self.exitcode = exitcode
        detail = f" (exit code {exitcode})" if exitcode is not None else ""
        super().__init__(f"worker for job {job!r} died{detail}")


class JobFailed(ReproRuntimeError):
    """A job raised an exception (in-process or inside its worker).

    Carries the original exception type name and message; the traceback
    itself stays in the worker.
    """

    def __init__(self, job: str, exc_type: str, detail: str):
        self.job = job
        self.exc_type = exc_type
        self.detail = detail
        super().__init__(f"job {job!r} failed: {exc_type}: {detail}")


class JobCancelled(ReproRuntimeError):
    """A campaign run was cancelled through its ``RuntimeConfig.cancel``
    hook.

    Raised by :class:`~repro.runtime.runner.JobRunner` between jobs and
    by :class:`~repro.runtime.pool.ShardScheduler` between scheduler
    iterations once the hook reports cancellation.  Work journaled
    before the cancellation stays valid: a resumed run re-grades exactly
    the units that had not completed.
    """

    def __init__(self, job: str = ""):
        self.job = job
        detail = f" during job {job!r}" if job else ""
        super().__init__(f"campaign cancelled{detail}")


class CheckpointCorrupt(ReproRuntimeError):
    """A checkpoint journal entry cannot be decoded or trusted.

    Carries the offending job/shard key and the journal path when known,
    so a resumed campaign can report exactly which entry (and which file)
    to distrust instead of a bare lookup error.
    """

    def __init__(
        self,
        message: str,
        key: str | None = None,
        path: "object | None" = None,
    ):
        self.key = key
        self.path = str(path) if path is not None else None
        context = []
        if key is not None:
            context.append(f"key {key!r}")
        if self.path is not None:
            context.append(f"journal {self.path}")
        if context:
            message = f"{message} ({', '.join(context)})"
        super().__init__(message)
