"""Gate-level processor co-simulation tests.

Programs execute on the composed netlist (gates + flip-flops only) and the
architectural results must match the behavioural CPU.
"""

import pytest

from repro.isa.assembler import assemble
from repro.netlist.stats import gate_count
from repro.netlist.verify import lint
from repro.plasma.cosim import GateLevelPlasma
from repro.plasma.cpu import PlasmaCPU
from repro.plasma.toplevel import build_plasma_top


@pytest.fixture(scope="module")
def top_netlist():
    return build_plasma_top()


def cosim(source: str, top, out_symbol: str = "out", words: int = 4):
    program = assemble(source)
    gate = GateLevelPlasma(top)
    gate.load_program(program)
    gate_result = gate.run(max_cycles=100_000)
    assert gate_result.halted, "gate-level run did not reach the halt idiom"
    cpu = PlasmaCPU()
    cpu.load_program(program)
    cpu.run()
    base = program.symbol(out_symbol)
    return gate.dump_words(base, words), cpu.memory.dump_words(base, words)


HALT = "halt: j halt\n    nop\n"


class TestStructure:
    def test_lints_clean(self, top_netlist):
        assert lint(top_netlist, strict=False).ok

    def test_size_near_component_sum(self, top_netlist):
        from repro.plasma.components import component_table

        parts = sum(r["nand2"] for r in component_table())
        total = gate_count(top_netlist).nand2
        # Composition adds only top glue (muxes, interlocks, buffers).
        assert parts <= total <= parts + 400

    def test_register_count(self, top_netlist):
        assert gate_count(top_netlist).n_dffs > 1300  # RegF + MulD + ...


class TestCosim:
    def test_arithmetic_loop(self, top_netlist):
        gate, beh = cosim(f"""
.text
    li $t0, 10
    li $t1, 0
loop:
    addu $t1, $t1, $t0
    addiu $t0, $t0, -1
    bnez $t0, loop
    nop
    la $t9, out
    sw $t1, 0($t9)
{HALT}
.data
out: .word 0
""", top_netlist, words=1)
        assert gate == beh == [55]

    def test_muldiv_interlock(self, top_netlist):
        gate, beh = cosim(f"""
.text
    li $t0, 1234
    li $t1, 77
    mult $t0, $t1
    mflo $t2
    mfhi $t3
    divu $t0, $t1
    mflo $t4
    mfhi $t5
    la $t9, out
    sw $t2, 0($t9)
    sw $t3, 4($t9)
    sw $t4, 8($t9)
    sw $t5, 12($t9)
{HALT}
.data
out: .word 0, 0, 0, 0
""", top_netlist)
        assert gate == beh
        assert gate[0] == 1234 * 77

    def test_subword_memory(self, top_netlist):
        gate, beh = cosim(f"""
.text
    la $t9, out
    li $t0, 0x80FF7E01
    sw $t0, 0($t9)
    lb $t1, 3($t9)
    sw $t1, 4($t9)
    lbu $t2, 3($t9)
    sw $t2, 8($t9)
    lh $t3, 0($t9)
    sh $t3, 12($t9)
{HALT}
.data
out: .word 0, 0, 0, 0
""", top_netlist)
        assert gate == beh
        assert gate[1] == 0xFFFFFF80

    def test_jal_jr_linkage(self, top_netlist):
        gate, beh = cosim(f"""
.text
    la $t9, out
    jal sub
    nop
    sw $v0, 0($t9)
    b fin
    nop
sub:
    ori $v0, $0, 0x515
    jr $ra
    nop
fin:
{HALT}
.data
out: .word 0
""", top_netlist, words=1)
        assert gate == beh == [0x515]

    def test_branch_delay_slot_semantics(self, top_netlist):
        gate, beh = cosim(f"""
.text
    la $t9, out
    li $t0, 0
    b skip
    addiu $t0, $t0, 1    # delay slot executes
    addiu $t0, $t0, 100  # skipped
skip:
    sw $t0, 0($t9)
{HALT}
.data
out: .word 0
""", top_netlist, words=1)
        assert gate == beh == [1]

    def test_shift_all_types(self, top_netlist):
        gate, beh = cosim(f"""
.text
    la $t9, out
    li $t0, 0x80000001
    sll $t1, $t0, 4
    srl $t2, $t0, 4
    sra $t3, $t0, 4
    li $t4, 9
    srav $t5, $t0, $t4
    xor $t1, $t1, $t2
    xor $t1, $t1, $t3
    xor $t1, $t1, $t5
    sw $t1, 0($t9)
{HALT}
.data
out: .word 0
""", top_netlist, words=1)
        assert gate == beh

    def test_first_instruction_memory_access(self, top_netlist):
        # A load as the very first instruction must stall correctly.
        gate, beh = cosim(f"""
.text
    lw $t0, 0x2000($0)
    sw $t0, 0x2004($0)
{HALT}
.data
out: .word 0xFEED0001, 0
""", top_netlist, words=2)
        assert gate == beh
        assert gate[1] == 0xFEED0001


@pytest.mark.slow
class TestSelfTestOnGates:
    def test_phase_a_response_stream_matches(self, top_netlist):
        from repro.core.methodology import SelfTestMethodology

        st = SelfTestMethodology().build_program("A")
        gate = GateLevelPlasma(top_netlist)
        gate.load_program(st.program)
        result = gate.run(max_cycles=60_000)
        assert result.halted
        cpu = PlasmaCPU()
        cpu.load_program(st.program)
        cpu.run()
        got = gate.dump_words(st.response_base, st.response_words)
        want = cpu.memory.dump_words(st.response_base, st.response_words)
        assert got == want
