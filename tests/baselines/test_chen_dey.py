"""Unit tests for the Chen & Dey software-LFSR baseline."""

import pytest

from repro.baselines.chen_dey import (
    ChenDeySelfTest,
    ComponentSignature,
    DEFAULT_TAPS,
    PATTERN_BUFFER,
)
from repro.errors import MethodologyError
from repro.plasma.cpu import PlasmaCPU
from repro.utils.bits import parity
from repro.utils.lfsr import LFSR


def software_lfsr_words(seed: int, taps: int, count: int, steps: int):
    """Python model of the emulated LFSR (mask-parity formulation)."""
    state = seed
    words = []
    for _ in range(count):
        for _ in range(steps):
            feedback = parity(state & taps)
            state = (state >> 1) | (feedback << 31)
        words.append(state)
    return words


class TestLfsrEmulation:
    def test_assembly_matches_python_model(self):
        st = ChenDeySelfTest(
            signatures=[ComponentSignature("ALU", 0xACE1ACE1, 16)],
            steps_per_word=8,
        )
        cpu = PlasmaCPU()
        cpu.load_program(st.build_program().program)
        cpu.run(max_instructions=1_000_000)
        got = cpu.memory.dump_words(PATTERN_BUFFER, 16)
        want = software_lfsr_words(0xACE1ACE1, DEFAULT_TAPS, 16, 8)
        assert got == want

    def test_mask_convention_matches_lfsr_class(self):
        # DEFAULT_TAPS encodes taps (32,30,26,25) as bits (32 - t).
        lfsr = LFSR(32, seed=0xACE1ACE1, taps=(32, 30, 26, 25))
        mask = 0
        for t in (32, 30, 26, 25):
            mask |= 1 << (32 - t)
        assert mask == DEFAULT_TAPS
        state = 0xACE1ACE1
        lfsr.step()
        feedback = parity(state & DEFAULT_TAPS)
        assert lfsr.state == (state >> 1) | (feedback << 31)


class TestProgramStructure:
    def test_signatures_are_the_downloaded_data(self):
        st = ChenDeySelfTest()
        program = st.build_program()
        # Two words (seed + taps) per component signature.
        assert program.data_words == 2 * len(st.signatures)

    def test_execution_time_dominated_by_expansion(self):
        st = ChenDeySelfTest().build_program()
        cpu = PlasmaCPU()
        cpu.load_program(st.program)
        result = cpu.run(max_instructions=5_000_000)
        # The software LFSR costs tens of cycles per generated word: the
        # whole run is orders of magnitude longer than the program is big.
        assert result.cycles > 20 * st.code_words

    def test_regfile_signature_minimum(self):
        bad = ChenDeySelfTest(
            signatures=[ComponentSignature("RegF", 1, 16)]
        )
        with pytest.raises(MethodologyError):
            bad.build_program()

    def test_unknown_component_rejected(self):
        bad = ChenDeySelfTest(
            signatures=[ComponentSignature("FPU", 1, 16)]
        )
        with pytest.raises(MethodologyError):
            bad.build_program()

    def test_responses_written_for_all_components(self):
        st = ChenDeySelfTest()
        program = st.build_program()
        cpu = PlasmaCPU()
        cpu.load_program(program.program)
        cpu.run(max_instructions=5_000_000)
        window = cpu.memory.dump_words(program.response_base, 64)
        assert any(w != 0 for w in window)
