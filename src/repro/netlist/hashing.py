"""Stable structural hashing of netlists and stimulus sequences.

The fault-simulation engine cache (:mod:`repro.faultsim.trace_cache`) and
the compiled-program cache key their entries by circuit *structure*, not by
object identity: two independently built netlists with the same gates,
flip-flops and ports hash identically, so a resumed or re-run campaign
reuses work computed for an earlier build of the same component.

The hash is a BLAKE2b digest over a canonical byte serialization:

* gates in list order — ``(type, output net, input nets)``;
* DFFs in list order — ``(d, q, init)``;
* ports in name order — ``(name, direction, nets)``;
* the net count (distinguishes dangling nets).

Net *names* and the netlist's display name are deliberately excluded:
they do not affect simulation semantics.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence

from repro.netlist.netlist import Netlist

_DIGEST_SIZE = 16  # 128-bit digests render as 32 hex chars


def structural_hash(netlist: Netlist) -> str:
    """Deterministic hex digest of a netlist's simulation-relevant structure."""
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(b"nets:%d;" % netlist.n_nets)
    for gate in netlist.gates:
        h.update(
            b"g:%s:%d:%s;"
            % (
                gate.gtype.name.encode(),
                gate.output,
                b",".join(b"%d" % n for n in gate.inputs),
            )
        )
    for dff in netlist.dffs:
        h.update(b"d:%d:%d:%d;" % (dff.d, dff.q, dff.init))
    for name in sorted(netlist.ports):
        port = netlist.ports[name]
        h.update(
            b"p:%s:%s:%s;"
            % (
                name.encode(),
                port.direction.value.encode(),
                b",".join(b"%d" % n for n in port.nets),
            )
        )
    return h.hexdigest()


def stimulus_hash(cycles: Sequence[Mapping[str, int]]) -> str:
    """Deterministic hex digest of a pattern / cycle-input sequence.

    Entries are hashed in order (sequential stimulus is order-sensitive);
    within an entry, ports are hashed in name order so dict insertion
    order does not leak into the key.
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for cycle in cycles:
        for name in sorted(cycle):
            h.update(b"%s=%d;" % (name.encode(), cycle[name]))
        h.update(b"|")
    return h.hexdigest()
