"""Control-flow graph over assembled programs.

The CFG is built from the *machine words* of a :class:`~repro.isa.program.
Program` (not its source), so it sees exactly what the CPU will execute —
pseudo-instruction expansion, ``li`` splitting and branch encoding
included.  MIPS I delay-slot semantics are modeled explicitly: a basic
block ends *after* the delay slot of its control transfer, and the
transfer's edges leave from the end of that block.

Register effects (:func:`instruction_effects`) cover the architectural
registers plus HI/LO as pseudo-registers 32/33, so ``mult``/``mflo``
chains participate in the dataflow passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EncodingError
from repro.isa.encoding import Decoded, decode
from repro.isa.instruction import Kind, Syntax
from repro.isa.program import Program
from repro.utils.bits import to_signed

#: Pseudo-register indices for the HI/LO multiply-divide results.
REG_HI = 32
REG_LO = 33
N_TRACKED_REGS = 34


def instruction_effects(d: Decoded) -> tuple[frozenset[int], frozenset[int]]:
    """Registers read and written by one decoded instruction.

    Returns:
        ``(reads, writes)`` over register indices 0..33 (32 = HI,
        33 = LO).  Writes to ``$0`` are dropped — they are
        architecturally discarded, so they never define anything.
    """
    syn = d.spec.syntax
    kind = d.spec.kind
    reads: set[int] = set()
    writes: set[int] = set()
    if syn is Syntax.RD_RS_RT:
        reads = {d.rs, d.rt}
        writes = {d.rd}
    elif syn is Syntax.RD_RT_SA:
        reads = {d.rt}
        writes = {d.rd}
    elif syn is Syntax.RD_RT_RS:
        reads = {d.rt, d.rs}
        writes = {d.rd}
    elif syn is Syntax.RS_RT:  # mult/div family
        reads = {d.rs, d.rt}
        writes = {REG_HI, REG_LO}
    elif syn is Syntax.RD:  # mfhi/mflo
        reads = {REG_HI if d.mnemonic == "mfhi" else REG_LO}
        writes = {d.rd}
    elif syn is Syntax.RS:  # jr / mthi / mtlo
        reads = {d.rs}
        if d.mnemonic == "mthi":
            writes = {REG_HI}
        elif d.mnemonic == "mtlo":
            writes = {REG_LO}
    elif syn is Syntax.RD_RS:  # jalr
        reads = {d.rs}
        writes = {d.rd}
    elif syn is Syntax.RT_RS_IMM:
        reads = {d.rs}
        writes = {d.rt}
    elif syn is Syntax.RT_IMM:  # lui
        writes = {d.rt}
    elif syn is Syntax.RS_RT_LABEL:
        reads = {d.rs, d.rt}
    elif syn is Syntax.RS_LABEL:
        reads = {d.rs}
    elif syn is Syntax.RT_OFF_RS:
        reads = {d.rs}
        if kind is Kind.LOAD:
            writes = {d.rt}
        else:
            reads.add(d.rt)
    elif syn is Syntax.TARGET:
        if d.mnemonic == "jal":
            writes = {31}
    reads.discard(0)  # $0 always reads as zero — never "used" data
    writes.discard(0)  # writes to $0 are discarded by hardware
    return frozenset(reads), frozenset(writes)


@dataclass(frozen=True)
class Instr:
    """One word of a text segment, decoded when possible."""

    address: int
    word: int
    decoded: Decoded | None
    line: int | None = None

    @property
    def is_control(self) -> bool:
        return (self.decoded is not None
                and self.decoded.spec.kind in (Kind.BRANCH, Kind.JUMP))

    @property
    def is_load(self) -> bool:
        return self.decoded is not None and self.decoded.spec.kind is Kind.LOAD

    @property
    def is_unconditional(self) -> bool:
        """True if this control transfer always leaves the fall path.

        ``beq rs, rs`` (the assembler's ``b`` expansion) always takes;
        ``j`` always jumps; ``jr``/``jalr`` never fall through.
        """
        if not self.is_control:
            return False
        d = self.decoded
        assert d is not None
        if d.mnemonic == "beq" and d.rs == d.rt:
            return True
        return d.mnemonic in ("j", "jr", "jalr", "jal")

    def branch_target(self) -> int | None:
        """Absolute byte target for direct branches/jumps (None for jr)."""
        d = self.decoded
        if d is None or not self.is_control:
            return None
        if d.spec.syntax in (Syntax.RS_RT_LABEL, Syntax.RS_LABEL):
            return (self.address + 4 + 4 * to_signed(d.imm, 16)) & 0xFFFF_FFFF
        if d.spec.syntax is Syntax.TARGET:
            return ((self.address + 4) & 0xF000_0000) | (d.target << 2)
        return None  # jr / jalr: indirect


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions (delay slot included)."""

    index: int
    instrs: list[Instr]
    successors: list[int] = field(default_factory=list)

    @property
    def start(self) -> int:
        return self.instrs[0].address

    @property
    def end(self) -> int:
        """Byte address one past the last instruction."""
        return self.instrs[-1].address + 4

    def control_transfer(self) -> Instr | None:
        """The block's terminating control transfer, if any.

        With delay slots the transfer sits at position ``-2`` (the slot
        is last); a transfer at ``-1`` means its slot fell into the next
        block (a leader split the pair).
        """
        if len(self.instrs) >= 2 and self.instrs[-2].is_control:
            return self.instrs[-2]
        if self.instrs and self.instrs[-1].is_control:
            return self.instrs[-1]
        return None


@dataclass
class ControlFlowGraph:
    """CFG of one program: blocks, edges and reachability."""

    blocks: list[BasicBlock]
    entry: int | None  # entry block index (None for an empty program)
    block_at: dict[int, int] = field(default_factory=dict)  # start -> index

    def instructions(self) -> list[Instr]:
        return [i for b in self.blocks for i in b.instrs]

    def reachable(self) -> set[int]:
        """Block indices reachable from the entry block."""
        if self.entry is None:
            return set()
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ in self.blocks[stack.pop()].successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen


def _collect_instrs(program: Program) -> list[list[Instr]]:
    """Decode every code segment into instruction lists."""
    segments: list[list[Instr]] = []
    for seg in sorted(
        (s for s in program.segments if s.is_code and s.words),
        key=lambda s: s.base,
    ):
        instrs: list[Instr] = []
        for i, word in enumerate(seg.words):
            addr = seg.base + 4 * i
            try:
                decoded = decode(word)
            except EncodingError:
                decoded = None
            instrs.append(
                Instr(addr, word, decoded, line=program.line_map.get(addr))
            )
        segments.append(instrs)
    return segments


def build_cfg(program: Program) -> ControlFlowGraph:
    """Build the delay-slot-aware CFG of an assembled program."""
    segments = _collect_instrs(program)
    addr_index: dict[int, Instr] = {
        i.address: i for seg in segments for i in seg
    }

    # Leaders: segment starts, direct targets, and the address after each
    # control transfer's delay slot.
    leaders: set[int] = set()
    for seg in segments:
        leaders.add(seg[0].address)
        for instr in seg:
            if instr.is_control:
                target = instr.branch_target()
                if target is not None and target in addr_index:
                    leaders.add(target)
                leaders.add(instr.address + 8)  # after the delay slot

    blocks: list[BasicBlock] = []
    block_at: dict[int, int] = {}
    for seg in segments:
        current: list[Instr] = []
        for instr in seg:
            if instr.address in leaders and current:
                blocks.append(BasicBlock(len(blocks), current))
                current = []
            current.append(instr)
        if current:
            blocks.append(BasicBlock(len(blocks), current))
    for block in blocks:
        block_at[block.start] = block.index

    # Segment-contiguity map for fallthrough edges.
    seg_ends = {seg[-1].address + 4 for seg in segments}

    for block in blocks:
        ct = block.control_transfer()
        succs: list[int] = []

        def link(addr: int | None) -> None:
            if addr is not None and addr in block_at:
                idx = block_at[addr]
                if idx not in succs:
                    succs.append(idx)

        if ct is None:
            if block.end not in seg_ends:
                link(block.end)
        elif ct is block.instrs[-1]:
            # Slot fell into the next block: transfer continues there, but
            # keep the target edges too (conservative over-approximation).
            link(block.end)
            link(ct.branch_target())
        else:
            d = ct.decoded
            assert d is not None
            if d.mnemonic == "jr":
                pass  # indirect: treated as an exit (function return)
            elif d.mnemonic == "jalr":
                link(block.end)  # call through register, returns after slot
            elif d.mnemonic == "jal":
                link(ct.branch_target())
                link(block.end)  # call-return edge
            elif ct.is_unconditional:
                link(ct.branch_target())
            else:
                link(ct.branch_target())
                link(block.end)
        block.successors = succs

    entry = None
    if blocks:
        entry = block_at.get(program.entry, blocks[0].index)
    return ControlFlowGraph(blocks, entry, block_at)
