"""Property tests: the reach screen never changes what grading reports.

The screen lets the grader skip simulating proven-unexercised fault
classes and synthesise their verdicts.  The load-bearing claim is that
the reported result is bit-identical to simulating everything — driven
here with random netlists (combinational and sequential), abstract
patterns generalised from the concrete stimulus, every engine, collapse
on and off, random shard partitions, and a real campaign.

Comparison contract (the repo-wide cross-config verdict contract, see
``tests/faultsim/test_engines.py``): per-fault ``(detected, excited)``
and detection cycle, the detected set, coverage, pruned and proven sets.
``Detection.lanes`` is a batch/packed packing artefact (the fault's
one-hot position inside its simulation word) and is *not* part of the
contract — removing screened faults repacks the survivors.  For the
differential engine full record equality is asserted on top.
"""

import random

import pytest

from repro.analysis.collapse import compute_collapse
from repro.analysis.reach import build_reach_report, reach_reduction
from repro.errors import FaultSimError
from repro.faultsim import GradeOptions, build_fault_list, grade
from repro.faultsim.differential import Detection
from repro.faultsim.engine import prune_sets

from tests.faultsim.test_collapse_property import (
    _cycles,
    _patterns,
    random_comb,
    random_seq,
)

ENGINES = ("differential", "batch", "compiled", "packed")

MASK32 = 0xFFFF_FFFF


def abstract_cover(rng, stimulus, width, loosen=0.4):
    """One abstract pattern per stimulus entry, each covering its entry.

    Random input bits are forgotten (mask cleared), so the pattern set
    over-approximates the concrete run exactly the way derived program
    patterns over-approximate the traced one.
    """
    patterns = []
    for entry in stimulus:
        mask = MASK32
        for bit in range(width):
            if rng.random() < loosen:
                mask &= ~(1 << bit)
        patterns.append({"x": (mask, entry["x"] & mask)})
    return patterns


def canonical(result):
    """The cross-config verdict contract of one grading result."""
    per_fault = {
        rep: (det.detected, det.excited, det.cycle)
        for rep, det in result.detections.items()
    }
    return (
        per_fault,
        frozenset(result.detected),
        result.fault_coverage,
        frozenset(result.pruned),
        frozenset(result.proven),
    )


def assert_identical(off, on, report, skipped_expected=None):
    assert canonical(on) == canonical(off)
    # Synthesised verdicts must be exactly what simulation reports for a
    # never-diverging fault — and a proven class must never be detected.
    for rep in report.proven:
        if rep in on.detections:
            det = on.detections[rep]
            assert not det.detected and not det.excited
        assert rep not in on.detected
    if skipped_expected is not None:
        assert on.n_reach_skipped == skipped_expected
    assert on.n_simulated <= off.n_simulated


class TestReachOnEqualsOff:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_combinational(self, engine, seed):
        netlist = random_comb(seed)
        fault_list = build_fault_list(netlist)
        rng = random.Random(seed + 500)
        stimulus = _patterns(rng, 12)
        report = build_reach_report(
            netlist, fault_list, abstract_cover(rng, stimulus, 5)
        )
        off = grade(netlist, stimulus, fault_list,
                    GradeOptions(engine=engine))
        on = grade(netlist, stimulus, fault_list,
                   GradeOptions(engine=engine, reach=report))
        skipped = len(reach_reduction(
            report, fault_list, None, frozenset()
        ))
        assert_identical(off, on, report, skipped)
        if engine == "differential":
            assert on.detections == off.detections

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_random_sequential(self, engine, seed):
        netlist = random_seq(seed)
        fault_list = build_fault_list(netlist)
        rng = random.Random(seed + 600)
        stimulus = _cycles(rng, 20)
        report = build_reach_report(
            netlist, fault_list, abstract_cover(rng, stimulus, 4)
        )
        off = grade(netlist, stimulus, fault_list,
                    GradeOptions(engine=engine))
        on = grade(netlist, stimulus, fault_list,
                   GradeOptions(engine=engine, reach=report))
        assert_identical(off, on, report)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", [21, 22])
    def test_with_collapse(self, engine, seed):
        netlist = random_comb(seed, n_gates=30)
        fault_list = build_fault_list(netlist)
        cmap = compute_collapse(netlist, fault_list)
        rng = random.Random(seed + 700)
        stimulus = _patterns(rng, 10)
        report = build_reach_report(
            netlist, fault_list, abstract_cover(rng, stimulus, 5)
        )
        off = grade(netlist, stimulus, fault_list,
                    GradeOptions(engine=engine, collapse=cmap))
        on = grade(
            netlist, stimulus, fault_list,
            GradeOptions(engine=engine, collapse=cmap, reach=report),
        )
        assert_identical(off, on, report)

    @pytest.mark.parametrize("seed", [31, 32])
    def test_with_pruning(self, seed):
        netlist = random_comb(seed, n_gates=30)
        fault_list = build_fault_list(netlist)
        rng = random.Random(seed + 800)
        stimulus = _patterns(rng, 10)
        report = build_reach_report(
            netlist, fault_list, abstract_cover(rng, stimulus, 5)
        )
        opts = GradeOptions(prune_untestable=True)
        off = grade(netlist, stimulus, fault_list, opts)
        on = grade(netlist, stimulus, fault_list,
                   opts.replace(reach=report))
        assert_identical(off, on, report)
        # Pruned classes are never double-counted as reach-skipped.
        skip, _ = prune_sets(netlist, fault_list, opts.prune_mode)
        assert on.n_reach_skipped == len(
            reach_reduction(report, fault_list, None, skip)
        )

    def test_constant_pinned_inputs_skip_a_lot(self):
        # Sanity: the screen must actually fire — with every input
        # pinned, most of the circuit is constant.
        netlist = random_comb(41)
        fault_list = build_fault_list(netlist)
        stimulus = [{"x": 0}]
        report = build_reach_report(
            netlist, fault_list, [{"x": (MASK32, 0)}]
        )
        assert report.n_proven > 0
        off = grade(netlist, stimulus, fault_list, GradeOptions())
        on = grade(netlist, stimulus, fault_list,
                   GradeOptions(reach=report))
        assert_identical(off, on, report)
        assert on.n_reach_skipped > 0


class TestShardPartitions:
    @pytest.mark.parametrize("seed", [51, 52])
    def test_random_partition_merges_to_full(self, seed):
        netlist = random_comb(seed)
        fault_list = build_fault_list(netlist)
        rng = random.Random(seed + 900)
        stimulus = _patterns(rng, 12)
        report = build_reach_report(
            netlist, fault_list, abstract_cover(rng, stimulus, 5)
        )
        full = grade(netlist, stimulus, fault_list,
                     GradeOptions(reach=report))

        reps = fault_list.class_representatives()
        n_parts = rng.randrange(2, 5)
        assignment = [rng.randrange(n_parts) for _ in reps]
        merged_detected = set()
        merged_detections = {}
        skipped = 0
        for part in range(n_parts):
            subset = [
                r for r, p in zip(reps, assignment, strict=True)
                if p == part
            ]
            if not subset:
                continue
            shard = grade(
                netlist, stimulus, fault_list,
                GradeOptions(reach=report, subset=subset),
            )
            merged_detected |= shard.detected
            merged_detections.update(shard.detections)
            skipped += shard.n_reach_skipped
        assert merged_detected == full.detected
        assert merged_detections == full.detections
        assert skipped == full.n_reach_skipped

    def test_collapsed_super_slices_merge_to_full(self):
        netlist = random_seq(61)
        fault_list = build_fault_list(netlist)
        cmap = compute_collapse(netlist, fault_list)
        rng = random.Random(961)
        stimulus = _cycles(rng, 16)
        report = build_reach_report(
            netlist, fault_list, abstract_cover(rng, stimulus, 4)
        )
        opts = GradeOptions(collapse=cmap, reach=report)
        full = grade(netlist, stimulus, fault_list, opts)

        order = cmap.simulation_order()
        cut = len(order) // 2
        merged = set()
        for supers in (order[:cut], order[cut:]):
            subset = [r for s in supers for r in cmap.members(s)]
            shard = grade(netlist, stimulus, fault_list,
                          opts.replace(subset=subset))
            merged |= shard.detected
        assert merged == full.detected


class TestGradeValidation:
    def test_bare_reach_true_rejected_by_grade(self):
        netlist = random_comb(71)
        stimulus = _patterns(random.Random(71), 4)
        with pytest.raises(FaultSimError, match="campaign-level"):
            grade(netlist, stimulus, options=GradeOptions(reach=True))

    def test_foreign_report_rejected(self):
        netlist, other = random_comb(72), random_comb(73)
        fault_list = build_fault_list(other)
        report = build_reach_report(
            other, fault_list, [{"x": (MASK32, 0)}]
        )
        stimulus = _patterns(random.Random(72), 4)
        with pytest.raises(FaultSimError, match="another netlist"):
            grade(netlist, stimulus,
                  options=GradeOptions(reach=report))

    def test_options_properties(self):
        assert GradeOptions().reach_requested is False
        assert GradeOptions(reach=True).reach_requested is True
        assert GradeOptions(reach=True).reach_report is None
        netlist = random_comb(74)
        report = build_reach_report(
            netlist, build_fault_list(netlist), [{"x": (MASK32, 0)}]
        )
        opts = GradeOptions(reach=report)
        assert opts.reach_requested and opts.reach_report is report
        # The fingerprint is reach-invariant: verdicts are bit-identical
        # either way, so cached records stay shared across modes.
        assert opts.fingerprint() == GradeOptions().fingerprint()


class TestCampaignReach:
    def _canonical_outcome(self, outcome):
        return {
            name: canonical(result)
            for name, result in outcome.results.items()
        }

    def test_serial_campaign_identity(self):
        from repro.core.campaign import run_campaign

        off = run_campaign("A", components=["GL"])
        on = run_campaign(
            "A", components=["GL"], options=GradeOptions(reach=True)
        )
        assert self._canonical_outcome(on) == self._canonical_outcome(off)
        assert on.results["GL"].n_reach_skipped > 0
        assert on.results["GL"].n_simulated < off.results["GL"].n_simulated

    def test_parallel_campaign_identity(self):
        from repro.core.campaign import run_campaign

        serial = run_campaign(
            "A", components=["GL"], options=GradeOptions(reach=True)
        )
        parallel = run_campaign(
            "A", components=["GL"], jobs=2,
            options=GradeOptions(reach=True),
        )
        assert self._canonical_outcome(parallel) == \
            self._canonical_outcome(serial)
        assert parallel.results["GL"].n_reach_skipped == \
            serial.results["GL"].n_reach_skipped

    def test_campaign_rejects_precomputed_report(self):
        from repro.core.campaign import run_campaign

        netlist = random_comb(81)
        report = build_reach_report(
            netlist, build_fault_list(netlist), [{"x": (MASK32, 0)}]
        )
        with pytest.raises(FaultSimError, match="single"):
            run_campaign(
                "A", components=["GL"],
                options=GradeOptions(reach=report),
            )

    def test_synthesised_verdict_shape(self):
        # The one verdict every engine reports for a never-diverging
        # fault; reach synthesis must produce exactly this record.
        assert Detection(False, excited=False) == Detection(
            detected=False, cycle=None, lanes=0, excited=False
        )
