"""Pattern-lane packing for pattern-parallel logic simulation.

The fault simulator evaluates a gate once for *all* test patterns by packing
one bit per pattern into an arbitrary-precision Python int (a "lane word").
Lane ``i`` of every net holds that net's value under pattern ``i``.  Bitwise
``& | ^ ~`` on lane words then evaluate a gate across every pattern at once.

Because Python ints are arbitrary precision there is no fixed lane-count
limit; a :class:`LaneSet` just records how many lanes are live so inversions
can be masked correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence


@dataclass(frozen=True)
class LaneSet:
    """Describes a set of parallel simulation lanes.

    Attributes:
        count: number of live lanes (patterns simulated in parallel).
    """

    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"lane count must be positive, got {self.count}")

    @property
    def mask(self) -> int:
        """All-lanes-set word: ``count`` ones."""
        return (1 << self.count) - 1

    def invert(self, word: int) -> int:
        """Lane-wise logical NOT of ``word``."""
        return self.mask & ~word

    def broadcast(self, value: int) -> int:
        """Replicate a scalar bit (0/1) across every lane."""
        return self.mask if value & 1 else 0

    def lane(self, word: int, index: int) -> int:
        """Extract the scalar bit of lane ``index`` from ``word``."""
        if not 0 <= index < self.count:
            raise IndexError(f"lane {index} out of range [0,{self.count})")
        return (word >> index) & 1

    def any_set(self, word: int) -> bool:
        """True if any live lane of ``word`` is 1."""
        return bool(word & self.mask)

    def set_lanes(self, word: int) -> list[int]:
        """Indices of lanes that are 1 in ``word``."""
        out = []
        word &= self.mask
        while word:
            low = word & -word
            out.append(low.bit_length() - 1)
            word ^= low
        return out


def pack_lanes(bits: Sequence[int]) -> int:
    """Pack a sequence of scalar bits into a lane word (lane 0 = bits[0])."""
    word = 0
    for i, b in enumerate(bits):
        if b & 1:
            word |= 1 << i
    return word


def unpack_lanes(word: int, count: int) -> list[int]:
    """Inverse of :func:`pack_lanes`."""
    return [(word >> i) & 1 for i in range(count)]


def pack_vectors(values: Iterable[int], width: int) -> list[int]:
    """Transpose pattern-major vectors into bit-major lane words.

    Args:
        values: one ``width``-bit value per pattern.
        width: bit width of each value.

    Returns:
        ``width`` lane words; word ``j`` holds bit ``j`` of every pattern.
    """
    words = [0] * width
    for lane, value in enumerate(values):
        v = value
        while v:
            low = v & -v
            j = low.bit_length() - 1
            if j >= width:
                break
            words[j] |= 1 << lane
            v ^= low
    return words


def unpack_vectors(words: Sequence[int], count: int) -> list[int]:
    """Inverse of :func:`pack_vectors`: recover per-pattern values."""
    values = [0] * count
    for j, word in enumerate(words):
        w = word
        while w:
            low = w & -w
            lane = low.bit_length() - 1
            if lane < count:
                values[lane] |= 1 << j
            w ^= low
    return values
