"""Unit tests for the pipeline-register netlist."""

from repro.faultsim.simulator import LogicSimulator
from repro.plasma.pipeline import PIPELINE_REGS, build_pipeline

_SIM = LogicSimulator(build_pipeline())


def cycle(instr=0, pc=0, wb=0, dest=0, ctrl=0, pause=0, flush=0):
    return dict(instr_in=instr, pc_snapshot_in=pc, wb_value_in=wb,
                wb_dest_in=dest, ctrl_in=ctrl, pause=pause, flush=flush)


class TestRegisters:
    def test_one_cycle_delay(self):
        outs, _ = _SIM.run_sequence(
            [cycle(instr=0x1234, pc=0x40, wb=7, dest=3, ctrl=0xA5), cycle()]
        )
        assert outs[0]["instr_q"] == 0  # reset values
        assert outs[1]["instr_q"] == 0x1234
        assert outs[1]["pc_snapshot_q"] == 0x40
        assert outs[1]["wb_value_q"] == 7
        assert outs[1]["wb_dest_q"] == 3
        assert outs[1]["ctrl_q"] == 0xA5

    def test_pause_freezes_every_stage(self):
        outs, _ = _SIM.run_sequence(
            [cycle(instr=0xAAAA), cycle(instr=0xBBBB, pause=1), cycle()]
        )
        assert outs[1]["instr_q"] == 0xAAAA
        assert outs[2]["instr_q"] == 0xAAAA  # held through the pause

    def test_flush_squashes_instruction_to_nop(self):
        outs, _ = _SIM.run_sequence(
            [cycle(instr=0xFFFF_FFFF, pc=0x80, flush=1), cycle()]
        )
        # Instruction is zeroed (MIPS NOP) but the rest still advances.
        assert outs[1]["instr_q"] == 0
        assert outs[1]["pc_snapshot_q"] == 0x80

    def test_register_inventory(self):
        names = [name for name, _ in PIPELINE_REGS]
        assert names == ["instr", "pc_snapshot", "wb_value", "wb_dest", "ctrl"]
        netlist = build_pipeline()
        expected_bits = sum(width for _, width in PIPELINE_REGS)
        assert len(netlist.dffs) == expected_bits
