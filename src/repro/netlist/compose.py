"""Hierarchical composition: instantiate netlists inside a parent netlist.

Used to build multi-component clusters (and ultimately a flat processor)
out of the per-component generators, so the hierarchical fault-grading
decomposition can be validated against flat fault simulation of the
composed circuit.

Instantiation copies the child's gates and flip-flops into the parent with
fresh net ids; the child's input ports are *bound* to parent nets supplied
by the caller and its output ports are returned as parent nets.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder, Word
from repro.netlist.netlist import CONST0, CONST1, DFF, Netlist, PortDirection


def instantiate(
    parent: NetlistBuilder,
    child: Netlist,
    connections: Mapping[str, Word | Sequence[int]],
    name: str | None = None,
) -> dict[str, Word]:
    """Copy ``child`` into ``parent``, binding its input ports.

    Args:
        parent: builder receiving the instance.
        child: netlist to instantiate (not modified).
        connections: parent nets per child *input* port (LSB first; widths
            must match exactly).  Child *output* ports may also be bound to
            pre-allocated parent nets — used to wire feedback between
            instances (allocate the nets first, bind them as one instance's
            output and another's input).
        name: instance name used to prefix copied net names.

    Returns:
        Parent nets per child *output* port (pre-bound or fresh).

    Raises:
        NetlistError: missing/extra connections or width mismatches.
    """
    instance = name or child.name.lower()
    net_map: dict[int, int] = {CONST0: CONST0, CONST1: CONST1}

    inputs = {p.name for p in child.input_ports()}
    output_names = {p.name for p in child.output_ports()}
    given = set(connections)
    if inputs - given:
        raise NetlistError(
            f"instance {instance!r}: unconnected inputs {sorted(inputs - given)}"
        )
    if given - inputs - output_names:
        raise NetlistError(
            f"instance {instance!r}: unknown ports "
            f"{sorted(given - inputs - output_names)}"
        )

    for port_name in sorted(given):
        port = child.port(port_name)
        word = list(connections[port_name])
        if len(word) != port.width:
            raise NetlistError(
                f"instance {instance!r}: port {port_name!r} expects "
                f"{port.width} bits, got {len(word)}"
            )
        for child_net, parent_net in zip(port.nets, word, strict=True):
            parent.netlist._check_net(parent_net)
            if child_net in (CONST0, CONST1):
                if port.direction is PortDirection.OUTPUT:
                    raise NetlistError(
                        f"instance {instance!r}: output {port_name!r} has a "
                        f"constant bit; it cannot be bound to a parent net"
                    )
                continue  # constant child input bits need no binding
            net_map[child_net] = parent_net

    def mapped(child_net: int) -> int:
        out = net_map.get(child_net)
        if out is None:
            label = child.net_names.get(child_net)
            suffix = f"/{label}" if label else f"/n{child_net}"
            out = parent.netlist.new_net(f"{instance}{suffix}")
            net_map[child_net] = out
        return out

    # DFF Q nets first (they may be read by gates copied before them).
    for dff in child.dffs:
        mapped(dff.q)
    for gate in child.gates:
        parent.netlist.add_gate(
            gate.gtype, [mapped(n) for n in gate.inputs], output=mapped(gate.output)
        )
    for dff in child.dffs:
        parent.netlist.dffs.append(
            DFF(len(parent.netlist.dffs), mapped(dff.d), mapped(dff.q), dff.init)
        )

    outputs: dict[str, Word] = {}
    for port in child.output_ports():
        outputs[port.name] = [mapped(n) for n in port.nets]
    return outputs
