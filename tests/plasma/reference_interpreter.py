"""An independent, deliberately simple MIPS interpreter for differential
testing of :class:`repro.plasma.cpu.PlasmaCPU`.

This implementation shares **no code** with the CPU model: it decodes bit
fields by hand, keeps memory as a byte dict, and implements each
instruction with plain Python arithmetic.  Anything the two implementations
disagree on is a bug in one of them.

It executes straight-line programs with branches and delay slots but no
cycle accounting (architectural state only).
"""

from __future__ import annotations

M32 = 0xFFFF_FFFF


def _s32(v: int) -> int:
    v &= M32
    return v - (1 << 32) if v & 0x8000_0000 else v


def _sx16(v: int) -> int:
    v &= 0xFFFF
    return v | 0xFFFF_0000 if v & 0x8000 else v


class ReferenceInterpreter:
    """Minimal architectural MIPS I interpreter (Plasma subset)."""

    def __init__(self) -> None:
        self.regs = [0] * 32
        self.hi = 0
        self.lo = 0
        self.pc = 0
        self.next_pc = 4
        self.bytes: dict[int, int] = {}
        self.halted = False

    # ------------------------------------------------------------ memory

    def load_words(self, image: dict[int, int]) -> None:
        for addr, word in image.items():
            for k in range(4):
                self.bytes[addr + k] = (word >> (8 * k)) & 0xFF

    def read_word(self, addr: int) -> int:
        assert addr % 4 == 0, f"unaligned word read {addr:#x}"
        return sum(self.bytes.get(addr + k, 0) << (8 * k) for k in range(4))

    def write_word(self, addr: int, value: int) -> None:
        assert addr % 4 == 0
        for k in range(4):
            self.bytes[addr + k] = (value >> (8 * k)) & 0xFF

    # --------------------------------------------------------------- run

    def step(self) -> None:
        word = self.read_word(self.pc)
        current_pc = self.pc
        self.pc = self.next_pc
        self.next_pc = (self.next_pc + 4) & M32

        op = word >> 26
        rs = (word >> 21) & 31
        rt = (word >> 16) & 31
        rd = (word >> 11) & 31
        sa = (word >> 6) & 31
        fn = word & 63
        imm = word & 0xFFFF
        target = word & 0x3FF_FFFF

        R = self.regs

        def wr(reg: int, value: int) -> None:
            if reg:
                R[reg] = value & M32

        def branch(taken: bool) -> None:
            if taken:
                dest = (current_pc + 4 + (_sx16(imm) << 2)) & M32
                if dest == current_pc:
                    self.halted = True
                self.next_pc = dest

        if op == 0:
            if fn == 0x00:
                wr(rd, R[rt] << sa)
            elif fn == 0x02:
                wr(rd, R[rt] >> sa)
            elif fn == 0x03:
                wr(rd, _s32(R[rt]) >> sa)
            elif fn == 0x04:
                wr(rd, R[rt] << (R[rs] & 31))
            elif fn == 0x06:
                wr(rd, R[rt] >> (R[rs] & 31))
            elif fn == 0x07:
                wr(rd, _s32(R[rt]) >> (R[rs] & 31))
            elif fn == 0x08:
                if R[rs] == current_pc:
                    self.halted = True
                self.next_pc = R[rs]
            elif fn == 0x09:
                wr(rd, current_pc + 8)
                self.next_pc = R[rs]
            elif fn == 0x10:
                wr(rd, self.hi)
            elif fn == 0x11:
                self.hi = R[rs]
            elif fn == 0x12:
                wr(rd, self.lo)
            elif fn == 0x13:
                self.lo = R[rs]
            elif fn in (0x18, 0x19):
                if fn == 0x18:
                    product = _s32(R[rs]) * _s32(R[rt])
                else:
                    product = R[rs] * R[rt]
                product &= (1 << 64) - 1
                self.hi = (product >> 32) & M32
                self.lo = product & M32
            elif fn in (0x1A, 0x1B):
                a, b = R[rs], R[rt]
                if fn == 0x1A:
                    sa_, sb_ = _s32(a), _s32(b)
                    if sb_ == 0:
                        # Restoring-array semantics (matches the netlist).
                        q = M32
                        r = abs(sa_) & M32
                        if sa_ < 0:
                            r = (-r) & M32
                        q_signed_fix = (a ^ b) & 0x8000_0000
                        if q_signed_fix:
                            q = (-q) & M32
                        self.lo, self.hi = q, r
                    else:
                        q = abs(sa_) // abs(sb_)
                        if (sa_ < 0) != (sb_ < 0):
                            q = -q
                        r = sa_ - q * sb_
                        self.lo, self.hi = q & M32, r & M32
                else:
                    if b == 0:
                        self.lo, self.hi = M32, a
                    else:
                        self.lo, self.hi = (a // b) & M32, (a % b) & M32
            elif fn in (0x20, 0x21):
                wr(rd, R[rs] + R[rt])
            elif fn in (0x22, 0x23):
                wr(rd, R[rs] - R[rt])
            elif fn == 0x24:
                wr(rd, R[rs] & R[rt])
            elif fn == 0x25:
                wr(rd, R[rs] | R[rt])
            elif fn == 0x26:
                wr(rd, R[rs] ^ R[rt])
            elif fn == 0x27:
                wr(rd, ~(R[rs] | R[rt]))
            elif fn == 0x2A:
                wr(rd, int(_s32(R[rs]) < _s32(R[rt])))
            elif fn == 0x2B:
                wr(rd, int(R[rs] < R[rt]))
            else:
                raise ValueError(f"funct {fn:#x}")
        elif op == 1:
            if rt == 0:
                branch(_s32(R[rs]) < 0)
            elif rt == 1:
                branch(_s32(R[rs]) >= 0)
            else:
                raise ValueError(f"regimm rt {rt}")
        elif op == 2 or op == 3:
            dest = ((current_pc + 4) & 0xF000_0000) | (target << 2)
            if op == 3:
                wr(31, current_pc + 8)
            if dest == current_pc:
                self.halted = True
            self.next_pc = dest
        elif op == 4:
            branch(R[rs] == R[rt])
        elif op == 5:
            branch(R[rs] != R[rt])
        elif op == 6:
            branch(_s32(R[rs]) <= 0)
        elif op == 7:
            branch(_s32(R[rs]) > 0)
        elif op == 8 or op == 9:
            wr(rt, R[rs] + _sx16(imm))
        elif op == 0x0A:
            wr(rt, int(_s32(R[rs]) < _s32(_sx16(imm))))
        elif op == 0x0B:
            wr(rt, int(R[rs] < (_sx16(imm) & M32)))
        elif op == 0x0C:
            wr(rt, R[rs] & imm)
        elif op == 0x0D:
            wr(rt, R[rs] | imm)
        elif op == 0x0E:
            wr(rt, R[rs] ^ imm)
        elif op == 0x0F:
            wr(rt, imm << 16)
        elif op in (0x20, 0x21, 0x23, 0x24, 0x25):
            addr = (R[rs] + _sx16(imm)) & M32
            if op == 0x23:
                wr(rt, self.read_word(addr))
            elif op in (0x20, 0x24):
                byte = self.bytes.get(addr, 0)
                if op == 0x20 and byte & 0x80:
                    byte |= 0xFFFF_FF00
                wr(rt, byte)
            else:
                assert addr % 2 == 0
                half = self.bytes.get(addr, 0) | (
                    self.bytes.get(addr + 1, 0) << 8
                )
                if op == 0x21 and half & 0x8000:
                    half |= 0xFFFF_0000
                wr(rt, half)
        elif op in (0x28, 0x29, 0x2B):
            addr = (R[rs] + _sx16(imm)) & M32
            value = R[rt]
            if op == 0x2B:
                self.write_word(addr, value)
            elif op == 0x28:
                self.bytes[addr] = value & 0xFF
            else:
                assert addr % 2 == 0
                self.bytes[addr] = value & 0xFF
                self.bytes[addr + 1] = (value >> 8) & 0xFF
        else:
            raise ValueError(f"opcode {op:#x}")

    def run(self, max_steps: int = 100_000) -> None:
        steps = 0
        while not self.halted:
            self.step()
            steps += 1
            if steps > max_steps:
                raise RuntimeError("reference interpreter did not halt")
