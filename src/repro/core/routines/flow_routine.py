"""Control-flow self-test routine (Phase C).

Stresses the remaining control/hidden structures beyond what Phases A+B
already exercise: every branch type in both its taken and not-taken
direction (with positive, negative and zero operands), plus the JAL / JALR
/ JR linkage path.  Path markers stored to the response window make every
decision tester-visible.

The paper found Plasma's hidden component (the pipeline) already tested
satisfactorily after Phase A+B; this routine exists to let the phase-C
trade-off be measured.
"""

from __future__ import annotations

from repro.core.routines.base import RoutineResult, TestRoutine, _Emitter

#: (branch mnemonic, rs value, rt value or None, expected taken)
BRANCH_CASES: tuple[tuple[str, int, int | None, bool], ...] = (
    ("beq", 5, 5, True),
    ("beq", 5, -5, False),
    ("bne", 7, 3, True),
    ("bne", 7, 7, False),
    ("blez", 0, None, True),
    ("blez", -3, None, True),
    ("blez", 9, None, False),
    ("bgtz", 9, None, True),
    ("bgtz", -9, None, False),
    ("bltz", -1, None, True),
    ("bltz", 1, None, False),
    ("bgez", 0, None, True),
    ("bgez", -8, None, False),
)


class ControlFlowRoutine(TestRoutine):
    """Branch/jump decision sweep with tester-visible path markers."""

    component = "FLOW"
    signature_registers = ("$t2",)

    def generate(self, prefix: str, resp_base: int) -> RoutineResult:
        e = _Emitter(resp_base)
        e.comment("control-flow: every branch type, both directions")
        e.emit(f"{prefix}_start:")

        for idx, (op, rs, rt, taken) in enumerate(BRANCH_CASES):
            label = f"{prefix}_b{idx}"
            e.emit(f"    li $t0, {rs}")
            if rt is None:
                operands = f"$t0, {label}_t"
            else:
                e.emit(f"    li $t1, {rt}")
                operands = f"$t0, $t1, {label}_t"
            e.emit(f"    {op} {operands}")
            e.emit("    nop")
            # Fallthrough (not-taken) marker.
            e.emit(f"    ori $t2, $0, {0x100 + idx}")
            e.emit(f"    b {label}_d")
            e.emit("    nop")
            e.emit(f"{label}_t:")
            # Taken marker.
            e.emit(f"    ori $t2, $0, {0x200 + idx}")
            e.emit(f"{label}_d:")
            e.store("$t2")
            del taken  # expectation is checked by the harness, not here

        e.comment("walking-bit equality sweep (PCL comparator tree)")
        # For every bit k and both data polarities, compare x against
        # x ^ (1 << k): a single-bit difference isolates one XNOR of the
        # equality comparator and one AND-tree path; a wrong taken/not-taken
        # decision corrupts the counted marker.
        for base in (0x5A5A5A5A, 0xA5A5A5A5):
            e.emit(f"    li $s0, {base:#010x}")
            e.emit("    li $t0, 1")
            e.emit("    li $t9, 32")
            e.emit("    move $t2, $0")
            label = f"{prefix}_cmp{base & 1 or base % 7}"
            e.emit(f"{label}_loop:")
            e.emit("    xor $t1, $s0, $t0")
            e.emit(f"    beq $s0, $t1, {label}_skip")
            e.emit("    nop")
            e.emit("    addiu $t2, $t2, 1")
            e.emit(f"{label}_skip:")
            e.emit("    addu $t0, $t0, $t0")
            e.emit("    addiu $t9, $t9, -1")
            e.emit(f"    bnez $t9, {label}_loop")
            e.emit("    nop")
            e.store("$t2")  # 32 iff every single-bit compare decided right

        e.comment("JAL / JR / JALR linkage")
        e.emit(f"    jal {prefix}_sub")
        e.emit("    nop")
        e.store("$v0")  # value produced by the subroutine
        e.store("$ra")  # link address itself is a response
        e.emit("    ori $v0, $0, 0")
        e.emit(f"    la $t7, {prefix}_sub")
        e.emit("    jalr $t7")
        e.emit("    nop")
        e.store("$v0")
        e.emit(f"    b {prefix}_done")
        e.emit("    nop")
        e.emit(f"{prefix}_sub:")
        e.emit("    ori $v0, $0, 0x3C3")
        e.emit("    jr $ra")
        e.emit("    nop")
        e.emit(f"{prefix}_done:")

        return RoutineResult(
            text=e.text(), data="", response_words=e.response_words
        )
