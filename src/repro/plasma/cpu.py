"""Behavioural Plasma/MIPS CPU with cycle accounting and component tracing.

The model executes one instruction per step, charging the Plasma 3-stage
pipeline's cycle costs:

* 2 cycles of pipeline fill at reset;
* 1 cycle per issued instruction;
* +1 pause cycle for every data-memory access (unified bus, as in Plasma's
  ``mem_ctrl`` handshake);
* multiply/divide results become readable 33 cycles after issue; HI/LO
  accesses (and new mul/div issues) interlock until then;
* one architectural branch delay slot (MIPS I semantics).

When constructed with a :class:`~repro.plasma.tracer.ComponentTracer`, the
model records every component's boundary stimulus and tracks value taint for
observability (see the tracer's module docstring).  Tracing costs time, so
pass ``tracer=None`` for plain functional runs.

Halt convention: an absolute or relative jump to its own address (the usual
``halt: j halt`` / ``b halt`` idiom) stops execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError, WatchdogTimeout
from repro.isa.encoding import decode
from repro.isa.program import Program
from repro.library.alu import alu_reference
from repro.library.multiplier import MulDivOp, muldiv_reference
from repro.library.shifter import shifter_reference
from repro.plasma.busmux import busmux_reference
from repro.plasma.controls import (
    ASource,
    BranchType,
    BSource,
    ControlBundle,
    MemSize,
    RegDest,
    WbSource,
    decode_controls,
)
from repro.plasma.mctrl import mctrl_load_reference, mctrl_store_reference
from repro.plasma.memory import Memory
from repro.plasma.pclogic import branch_taken_reference
from repro.plasma.tracer import ComponentTracer, TaintNode
from repro.utils.bits import MASK32

#: Cycles from a mul/div issue until HI/LO are readable (issue + 32 steps).
MULDIV_LATENCY = 33

#: Pipeline fill cycles charged at reset.
PIPELINE_FILL = 2


@dataclass
class CPUResult:
    """Summary of a completed run."""

    cycles: int
    instructions: int
    halted: bool
    pc: int


@dataclass
class _PendingBranch:
    """Branch decision presented to the PC logic during the delay slot."""

    branch_type: int
    rs_data: int
    rt_data: int
    target: int


class PlasmaCPU:
    """Instruction-level Plasma model with optional component tracing."""

    def __init__(
        self,
        memory: Memory | None = None,
        tracer: ComponentTracer | None = None,
    ):
        self.memory = memory if memory is not None else Memory()
        self.tracer = tracer
        self.regs = [0] * 32
        self.hi = 0
        self.lo = 0
        self.pc = 0
        self.next_pc = 4
        self.cycles = PIPELINE_FILL
        self.instructions = 0
        self.halted = False
        self.muldiv_ready = 0  # cycle from which HI/LO may be read
        self._pending_branch: _PendingBranch | None = None
        # Taint shadows (only maintained when tracing).
        self._reg_taint: list[TaintNode | None] = [None] * 32
        self._hi_taint: TaintNode | None = None
        self._lo_taint: TaintNode | None = None
        self._reset_emitted = False

    # ----------------------------------------------------------- loading

    def load_program(self, program: Program) -> None:
        """Load an assembled program and point the PC at its entry."""
        self.memory.load_program(program)
        self.pc = program.entry
        self.next_pc = program.entry + 4

    # ------------------------------------------------------ trace helpers

    def _emit_reset_cycles(self) -> None:
        """Pipeline-fill cycles; the first exercises the PLN flush path."""
        t = self.tracer
        assert t is not None
        first_word = self.memory.read_word(self.pc)
        for i in range(PIPELINE_FILL):
            t.trace_pcl_cycle(0, 0, 0, 0, pause=1)
            t.trace_pln_cycle(first_word, self.pc, 0, 0, 0, pause=0,
                              flush=1 if i == 0 else 0)
            t.trace_gl_cycle(pause_mem=0, pause_muldiv=0, branch_taken=0)
            t.trace_muld_cycle(0, 0, 0)

    def _emit_stall_cycle(self, mem: bool, muldiv: bool) -> None:
        """One pause cycle (memory or mul/div interlock)."""
        t = self.tracer
        if t is None:
            return
        t.trace_pcl_cycle(0, 0, 0, 0, pause=1)
        t.trace_pln_cycle(0, self.pc, 0, 0, 0, pause=1, flush=0)
        t.trace_gl_cycle(
            pause_mem=int(mem), pause_muldiv=int(muldiv), branch_taken=0
        )
        t.trace_muld_cycle(0, 0, 0)

    # ------------------------------------------------------------ memory

    def _do_load(self, bundle: ControlBundle, addr: int) -> tuple[int, int]:
        """Perform a load; returns (value, full aligned word for the trace)."""
        if bundle.mem_size is MemSize.WORD and addr % 4:
            raise SimulationError(f"unaligned word load at {addr:#010x}")
        if bundle.mem_size is MemSize.HALF and addr % 2:
            raise SimulationError(f"unaligned halfword load at {addr:#010x}")
        word = self.memory.read_word(addr & ~3)
        value = mctrl_load_reference(
            int(bundle.mem_size), bundle.mem_signed, addr, word
        )
        return value, word

    def _do_store(self, bundle: ControlBundle, addr: int, data: int) -> int:
        """Perform a store; returns the steered bus word for the trace."""
        steered, _be = mctrl_store_reference(int(bundle.mem_size), addr, data)
        if bundle.mem_size is MemSize.BYTE:
            self.memory.write_byte(addr, data & 0xFF)
        elif bundle.mem_size is MemSize.HALF:
            if addr % 2:
                raise SimulationError(f"unaligned halfword store at {addr:#010x}")
            self.memory.write_half(addr, data & 0xFFFF)
        else:
            if addr % 4:
                raise SimulationError(f"unaligned word store at {addr:#010x}")
            self.memory.write_word(addr, data)
        return steered

    # -------------------------------------------------------------- step

    def step(self) -> bool:
        """Execute one instruction.  Returns False once halted."""
        if self.halted:
            return False
        if self.tracer is not None and not self._reset_emitted:
            self._emit_reset_cycles()
            self._reset_emitted = True

        instr_pc = self.pc
        word = self.memory.read_word(instr_pc)
        decoded = decode(word)
        bundle = decode_controls(decoded)
        t = self.tracer

        # ---------------------------------------- mul/div interlock stall
        needs_muldiv = (
            bundle.muldiv_op is not MulDivOp.IDLE
            or bundle.wb_source in (WbSource.LO, WbSource.HI)
        )
        pause_muldiv = 0
        if needs_muldiv and self.cycles < self.muldiv_ready:
            pause_muldiv = self.muldiv_ready - self.cycles
            for _ in range(pause_muldiv):
                self._emit_stall_cycle(mem=False, muldiv=True)
            self.cycles += pause_muldiv

        # ------------------------------------------------------ operands
        rs_val = self.regs[decoded.rs]
        rt_val = self.regs[decoded.rt]
        rs_taint = self._reg_taint[decoded.rs]
        rt_taint = self._reg_taint[decoded.rt]
        pc_plus4 = (instr_pc + 4) & MASK32

        uses_alu_result = (
            bundle.mem_read
            or bundle.mem_write
            or (bundle.reg_write and bundle.wb_source is WbSource.ALU)
            or (bundle.branch_type is not BranchType.NONE
                and not bundle.jump_reg and not bundle.jump_abs)
        )
        uses_shifter = bundle.reg_write and bundle.wb_source is WbSource.SHIFT
        is_muldiv_write = bundle.muldiv_op is not MulDivOp.IDLE
        is_branch = bundle.branch_type is not BranchType.NONE

        uses_rs = (
            (uses_alu_result and bundle.a_source is ASource.RS)
            or bundle.shift_variable
            or is_muldiv_write
            or bundle.jump_reg
            or (is_branch and not bundle.jump_reg and not bundle.jump_abs)
        )
        uses_rt = (
            (uses_alu_result and bundle.b_source is BSource.RT)
            or uses_shifter
            or bundle.muldiv_op in (MulDivOp.MULT, MulDivOp.MULTU,
                                    MulDivOp.DIV, MulDivOp.DIVU)
            or bundle.mem_write
            or bundle.branch_type in (BranchType.EQ, BranchType.NE)
        )

        # ------------------------------------------------------- datapath
        a_bus, b_bus, _ = busmux_reference(
            int(bundle.a_source), int(bundle.b_source), 0,
            rs_val, rt_val, decoded.imm, pc_plus4,
        )
        alu_result = alu_reference(bundle.alu_func, a_bus, b_bus)

        shift_result = 0
        if uses_shifter:
            shamt = rs_val & 31 if bundle.shift_variable else decoded.shamt
            shift_result = shifter_reference(
                rt_val, shamt, bundle.shift_left, bundle.shift_arith
            )

        # ------------------------------------------------- apps & tracing
        apps: list[tuple] = []
        parents: list[TaintNode | None] = []
        if t is not None:
            apps.append(t.trace_ctrl(word, bundle))
            if uses_alu_result:
                apps.append(t.trace_alu(a_bus, b_bus, int(bundle.alu_func)))
            if uses_shifter:
                shamt = rs_val & 31 if bundle.shift_variable else decoded.shamt
                apps.append(
                    t.trace_bsh(rt_val, shamt,
                                int(bundle.shift_left), int(bundle.shift_arith))
                )
            if uses_rs:
                parents.append(rs_taint)
            if uses_rt:
                parents.append(rt_taint)

        # ------------------------------------------------ memory access
        mem_value = 0
        mem_word_for_trace = 0
        mem_steered = 0
        pause_mem = 0
        if bundle.mem_read:
            mem_value, mem_word_for_trace = self._do_load(bundle, alu_result)
            pause_mem = 1
        elif bundle.mem_write:
            mem_steered = self._do_store(bundle, alu_result, rt_val)
            pause_mem = 1

        # ------------------------------------------------ mul/div issue
        exec_cycle = self.cycles  # index of this instruction's issue cycle
        if bundle.muldiv_op is MulDivOp.MTHI:
            self.hi = rs_val
            self._hi_taint = None
        elif bundle.muldiv_op is MulDivOp.MTLO:
            self.lo = rs_val
            self._lo_taint = None
        elif is_muldiv_write:
            self.hi, self.lo = muldiv_reference(bundle.muldiv_op, rs_val, rt_val)
            self.muldiv_ready = exec_cycle + MULDIV_LATENCY
            self._hi_taint = None
            self._lo_taint = None

        # --------------------------------------------------- write-back
        wb_value = 0
        wb_dest = 0
        if bundle.reg_write:
            if bundle.reg_dest is RegDest.RD:
                wb_dest = decoded.rd
            elif bundle.reg_dest is RegDest.RT:
                wb_dest = decoded.rt
            else:
                wb_dest = 31
            if bundle.wb_source is WbSource.ALU:
                wb_value = alu_result
            elif bundle.wb_source is WbSource.SHIFT:
                wb_value = shift_result
            elif bundle.wb_source is WbSource.MEM:
                wb_value = mem_value
            elif bundle.wb_source is WbSource.LO:
                wb_value = self.lo
            else:
                wb_value = self.hi
            if wb_dest != 0:
                self.regs[wb_dest] = wb_value

        # ------------------------------------------------------ branches
        taken = False
        target = 0
        if is_branch:
            if bundle.jump_abs:
                target = (pc_plus4 & 0xF000_0000) | (decoded.target << 2)
                taken = True
            elif bundle.jump_reg:
                target = rs_val
                taken = True
            else:
                target = alu_result  # PC+4 + (imm << 2), from the ALU
                taken = branch_taken_reference(
                    int(bundle.branch_type), rs_val, rt_val
                )
            if taken and target == instr_pc:
                self.halted = True

        # ----------------------------------------------------- observe
        if t is not None:
            bmux_inputs = {
                "rs_data": rs_val, "rt_data": rt_val, "imm": decoded.imm,
                "pc_plus4": pc_plus4, "alu_result": alu_result,
                "shift_result": shift_result, "mem_data": mem_value,
                "lo": self.lo, "hi": self.hi,
                "a_source": int(bundle.a_source),
                "b_source": int(bundle.b_source),
                "wb_source": int(bundle.wb_source),
            }
            apps.append(t.trace_bmux(bmux_inputs, bundle))

            app_a, app_b = t.trace_regf(
                decoded.rs, decoded.rt, wb_dest if bundle.reg_write else 0,
                wb_value, int(bundle.reg_write),
            )
            if uses_rs:
                apps.append(app_a)
            if uses_rt:
                apps.append(app_b)

            if bundle.mem_read or bundle.mem_write:
                mctrl_app = t.trace_mctrl_access(
                    addr=alu_result,
                    size=int(bundle.mem_size),
                    signed=int(bundle.mem_signed),
                    re=int(bundle.mem_read),
                    we=int(bundle.mem_write),
                    wr_data=mem_steered if bundle.mem_write else 0,
                    mem_rdata=mem_word_for_trace,
                )
                if bundle.mem_read:
                    apps.append(mctrl_app)

            if bundle.wb_source is WbSource.LO:
                apps.append(t.muld_read_app(exec_cycle, "lo"))
                parents.append(self._lo_taint)
            elif bundle.wb_source is WbSource.HI:
                apps.append(t.muld_read_app(exec_cycle, "hi"))
                parents.append(self._hi_taint)

            node = t.tracker.node(apps, parents)

            if is_muldiv_write:
                if bundle.muldiv_op is MulDivOp.MTHI:
                    self._hi_taint = node
                elif bundle.muldiv_op is MulDivOp.MTLO:
                    self._lo_taint = node
                else:
                    self._hi_taint = node
                    self._lo_taint = node

            if bundle.reg_write and wb_dest != 0:
                self._reg_taint[wb_dest] = node

            if bundle.mem_write or is_branch:
                # Stores reach the tester-readable response area; branch
                # and jump decisions reach the (observable) control flow.
                t.tracker.observe(node)

            # -------- per-cycle traces for the issue + memory-pause cycles
            stash = self._pending_branch
            if stash is not None:
                t.trace_pcl_cycle(
                    stash.rs_data, stash.rt_data, stash.branch_type,
                    stash.target, pause=0,
                )
                gl_branch_taken = int(
                    branch_taken_reference(
                        stash.branch_type, stash.rs_data, stash.rt_data
                    )
                )
            else:
                t.trace_pcl_cycle(0, 0, 0, 0, pause=0)
                gl_branch_taken = 0
            ctrl8 = (
                int(bundle.alu_func)
                | (int(bundle.reg_write) << 4)
                | (int(bundle.mem_read) << 5)
                | (int(bundle.mem_write) << 6)
                | (int(bundle.use_shifter) << 7)
            )
            t.trace_pln_cycle(
                word, instr_pc, wb_value, wb_dest, ctrl8, pause=0, flush=0
            )
            t.trace_gl_cycle(
                pause_mem=0, pause_muldiv=0, branch_taken=gl_branch_taken
            )
            if is_muldiv_write:
                t.trace_muld_cycle(rs_val, rt_val, int(bundle.muldiv_op))
            else:
                t.trace_muld_cycle(0, 0, 0)

        # Stash this instruction's branch decision for the delay slot.
        if is_branch:
            self._pending_branch = _PendingBranch(
                int(bundle.branch_type), rs_val, rt_val, target
            )
        else:
            self._pending_branch = None

        # Memory pause cycle.
        self.cycles += 1
        if pause_mem:
            self._emit_stall_cycle(mem=True, muldiv=False)
            self.cycles += 1

        # ------------------------------------------------- PC update
        self.instructions += 1
        self.pc = self.next_pc
        self.next_pc = (self.next_pc + 4) & MASK32
        if taken:
            self.next_pc = target
        return not self.halted

    # --------------------------------------------------------------- run

    def run(
        self, max_instructions: int = 2_000_000, max_cycles: int | None = None
    ) -> CPUResult:
        """Run until halt or a limit is hit.

        Raises:
            WatchdogTimeout: if a limit is exceeded (runaway program).
                It subclasses :class:`SimulationError`, so existing
                handlers keep working.
        """
        while not self.halted:
            if self.instructions >= max_instructions:
                raise WatchdogTimeout(
                    f"exceeded {max_instructions} instructions without halting"
                )
            if max_cycles is not None and self.cycles >= max_cycles:
                raise WatchdogTimeout(
                    f"exceeded {max_cycles} cycles without halting"
                )
            self.step()
        return CPUResult(
            cycles=self.cycles,
            instructions=self.instructions,
            halted=self.halted,
            pc=self.pc,
        )
