"""Execute cluster: CTRL + BMUX + ALU + BSH composed into one netlist.

Used by the flat-vs-hierarchical validation experiment (V1): the paper's
fault-grading pipeline (and ours) grades each component in isolation with
trace-derived observability; composing the execute stage and fault-grading
it *flat* checks that the decomposition neither loses real detections nor
invents impossible ones at the component boundaries.

The cluster implements exactly the per-instruction dataflow of the
behavioural CPU's execute step:

* CTRL decodes the instruction word;
* BMUX selects the ALU operands and the write-back value;
* the ALU computes; the shifter shifts ``rt`` by the shamt field or
  ``rs[4:0]``;
* outputs: the write-back value plus the architecturally relevant control
  fields (the same surfaces the per-component campaigns observe).
"""

from __future__ import annotations

from repro.library import build_alu, build_barrel_shifter
from repro.netlist.builder import NetlistBuilder
from repro.netlist.compose import instantiate
from repro.netlist.netlist import Netlist
from repro.plasma.busmux import build_busmux
from repro.plasma.control_unit import build_control

#: CTRL fields exposed as cluster outputs (the architectural surface).
EXPOSED_CONTROLS: tuple[str, ...] = (
    "reg_write", "reg_dest", "mem_read", "mem_write", "mem_size",
    "mem_signed", "branch_type", "jump_reg", "jump_abs", "muldiv_op",
)


def build_execute_cluster(name: str = "EXEC") -> Netlist:
    """Build the composed execute-stage netlist.

    Ports:
        * in: ``instr`` (32), ``rs_data`` (32), ``rt_data`` (32),
          ``pc_plus4`` (32), ``mem_data`` (32), ``lo`` (32), ``hi`` (32).
        * out: ``wb_data`` (32), ``alu_result`` (32) and the
          :data:`EXPOSED_CONTROLS` fields.
    """
    b = NetlistBuilder(name)
    instr = b.input("instr", 32)
    rs_data = b.input("rs_data", 32)
    rt_data = b.input("rt_data", 32)
    pc_plus4 = b.input("pc_plus4", 32)
    mem_data = b.input("mem_data", 32)
    lo = b.input("lo", 32)
    hi = b.input("hi", 32)

    controls = instantiate(b, build_control(), {"instr": instr}, name="ctrl")

    # Feedback nets: BMUX consumes the ALU/shifter results for write-back,
    # so pre-allocate their nets and bind them as those instances' outputs.
    alu_result = b.netlist.new_bus(32, "alu_result")
    shift_result = b.netlist.new_bus(32, "shift_result")

    bmux_out = instantiate(
        b,
        build_busmux(),
        {
            "rs_data": rs_data,
            "rt_data": rt_data,
            "imm": instr[0:16],
            "pc_plus4": pc_plus4,
            "alu_result": alu_result,
            "shift_result": shift_result,
            "mem_data": mem_data,
            "lo": lo,
            "hi": hi,
            "a_source": controls["a_source"],
            "b_source": controls["b_source"],
            "wb_source": controls["wb_source"],
        },
        name="bmux",
    )

    instantiate(
        b,
        build_alu(),
        {
            "a": bmux_out["a_bus"],
            "b": bmux_out["b_bus"],
            "func": controls["alu_func"],
            "result": alu_result,
        },
        name="alu",
    )

    shamt = b.mux_word(
        controls["shift_variable"][0], instr[6:11], rs_data[0:5]
    )
    instantiate(
        b,
        build_barrel_shifter(),
        {
            "value": rt_data,
            "shamt": shamt,
            "left": controls["shift_left"],
            "arith": controls["shift_arith"],
            "result": shift_result,
        },
        name="bsh",
    )

    b.output("wb_data", bmux_out["wb_data"])
    b.output("alu_result", alu_result)
    for field in EXPOSED_CONTROLS:
        b.output(field, controls[field])
    return b.build()
