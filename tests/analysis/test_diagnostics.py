"""Unit tests for the shared diagnostic model."""

import json

import pytest

from repro.analysis.diagnostics import (
    RULES,
    Report,
    Severity,
    make_diagnostic,
    render_text,
    reports_to_json,
)


class TestRules:
    def test_registry_namespaces(self):
        for rule_id, rule in RULES.items():
            assert rule.rule_id == rule_id
            assert rule_id.startswith(("PR", "NL", "FV", "RC"))
            assert rule.title

    def test_known_severities(self):
        assert RULES["PR002"].severity is Severity.ERROR
        assert RULES["PR003"].severity is Severity.WARNING
        assert RULES["NL002"].severity is Severity.ERROR
        assert RULES["NL103"].severity is Severity.INFO

    def test_unregistered_rule_rejected(self):
        with pytest.raises(KeyError):
            make_diagnostic("XX999", "nope")


class TestDiagnostic:
    def test_severity_defaults_to_rule(self):
        diag = make_diagnostic("PR002", "bad slot", address=0x10, line=3)
        assert diag.severity is Severity.ERROR
        assert "0x00000010" in diag.location
        assert "line 3" in diag.location

    def test_render_includes_rule_and_message(self):
        diag = make_diagnostic("NL002", "gate 4 reads undriven net 9",
                               net=9, gate=4)
        text = diag.render()
        assert "[NL002]" in text
        assert "undriven" in text
        assert "net 9" in text

    def test_to_dict_drops_absent_locations(self):
        diag = make_diagnostic("NL101", "constant", net=5)
        data = diag.to_dict()
        assert data["net"] == 5
        assert "address" not in data


class TestReport:
    def test_ok_means_no_errors(self):
        report = Report("t", "program")
        assert report.ok
        report.add("PR001", "warn only", address=0)
        assert report.ok
        report.add("PR002", "error", address=4)
        assert not report.ok
        assert len(report.errors) == 1
        assert len(report.warnings) == 1

    def test_sorted_by_severity_then_address(self):
        report = Report("t", "program")
        report.add("PR001", "w", address=0)
        report.add("PR002", "e", address=8)
        report.add("PR006", "e", address=4)
        ordered = report.sorted_diagnostics()
        assert [d.rule_id for d in ordered] == ["PR006", "PR002", "PR001"]

    def test_render_text_caps_output(self):
        report = Report("t", "program")
        for i in range(10):
            report.add("PR001", f"w{i}", address=4 * i)
        text = render_text(report, max_diagnostics=3)
        assert "7 more diagnostic(s) suppressed" in text

    def test_json_document(self):
        report = Report("t", "netlist")
        report.add("NL002", "undriven", net=3)
        doc = json.loads(reports_to_json([report]))
        assert doc["ok"] is False
        assert doc["reports"][0]["target"] == "t"
        assert doc["reports"][0]["diagnostics"][0]["rule"] == "NL002"
