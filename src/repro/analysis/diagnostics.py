"""Shared diagnostic model for the static analyzers.

Every finding — from the program analyzer, the netlist linter or the
SCOAP testability analyzer — is a :class:`Diagnostic`: a stable rule ID,
a severity, a message and a source location (program address / source
line for assembly findings, net / gate for netlist findings).  Analyzers
collect diagnostics into :class:`Report` objects; :func:`render_text`
and :func:`reports_to_json` are the two reporters the CLI exposes.

Rule namespaces (see :data:`RULE_NAMESPACES` — the machine-readable
registry the cross-analyzer consistency test checks against):

* ``PR0xx`` — program (assembly/CFG/dataflow) rules;
* ``NL0xx`` — netlist structural lint rules;
* ``NL1xx`` — netlist testability (SCOAP / structural screening) rules;
* ``NL2xx`` — fault collapsing (equivalence/dominance) rules;
* ``FV2xx`` — formal verification (SAT-based CEC / redundancy) rules;
* ``RC3xx`` — program-aware reachability (unexercised-fault screen)
  rules.

Every rule ID an analyzer emits must be registered here —
:func:`make_diagnostic` raises on unknown IDs, and
:func:`validate_rules` (run at import and by the registry test) rejects
duplicate or out-of-namespace registrations.

Only ``ERROR``-severity diagnostics gate (non-zero ``repro analyze``
exit, failing lint-gate tests); warnings are surfaced but never fail a
build, and info diagnostics are purely explanatory.
"""

from __future__ import annotations

import enum
import json
import re
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """Diagnostic severity; only ERROR gates exit codes and CI."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort rank: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Rule:
    """One registered analysis rule."""

    rule_id: str
    severity: Severity
    title: str


_RULE_TABLE: tuple[Rule, ...] = (
    # --- program rules ---------------------------------------------------
    Rule("PR001", Severity.WARNING,
         "register read before any definition on some path"),
    Rule("PR002", Severity.ERROR,
         "control transfer placed in a branch/jump delay slot"),
    Rule("PR003", Severity.WARNING,
         "load-use hazard: loaded register read in the load delay slot"),
    Rule("PR004", Severity.WARNING, "unreachable basic block"),
    Rule("PR005", Severity.ERROR,
         "dead store to a declared signature/accumulator register"),
    Rule("PR006", Severity.ERROR, "misaligned memory access"),
    Rule("PR007", Severity.ERROR, "memory access outside the memory map"),
    Rule("PR008", Severity.WARNING,
         "control can fall off the end of a text segment"),
    Rule("PR009", Severity.WARNING, "undecodable word in a text segment"),
    # --- netlist structural lint rules ----------------------------------
    Rule("NL001", Severity.ERROR, "net has more than one driver"),
    Rule("NL002", Severity.ERROR, "undriven net is read"),
    Rule("NL003", Severity.ERROR, "combinational cycle"),
    Rule("NL004", Severity.WARNING,
         "gate output is never read and not a port"),
    # --- netlist testability rules --------------------------------------
    Rule("NL101", Severity.WARNING,
         "net is structurally constant (stuck-at that value is untestable)"),
    Rule("NL102", Severity.WARNING,
         "net has no structural path to any output port (unobservable)"),
    Rule("NL103", Severity.INFO,
         "summary: structurally untestable stuck-at fault classes"),
    # --- fault collapsing rules -------------------------------------------
    Rule("NL201", Severity.INFO,
         "summary: fault collapsing result (equivalence classes, "
         "dominance graph, SAT spot-check statistics)"),
    Rule("NL202", Severity.ERROR,
         "statically claimed fault equivalence refuted by the SAT "
         "difference miter"),
    Rule("NL203", Severity.ERROR,
         "statically claimed fault dominance refuted by the SAT layer"),
    # --- formal verification rules ---------------------------------------
    Rule("FV201", Severity.ERROR,
         "netlist is not equivalent to its behavioral golden model "
         "(SAT counterexample, replay-confirmed)"),
    Rule("FV202", Severity.ERROR,
         "soundness regression: structurally screened fault class has "
         "no SAT redundancy certificate"),
    Rule("FV203", Severity.INFO,
         "summary: formal verification result (CEC verdict, redundancy "
         "certificates, solver statistics)"),
    # --- program-aware reachability rules ---------------------------------
    Rule("RC301", Severity.INFO,
         "summary: reach screen result (exercised / unexercised-proven / "
         "unknown fault classes, SAT spot-check statistics)"),
    Rule("RC302", Severity.ERROR,
         "statically claimed unexercised constant net refuted by the SAT "
         "layer under the program-derived input constraints"),
    Rule("RC303", Severity.WARNING,
         "reach screen decided almost nothing for this component "
         "(high unknown-class ratio or degraded program abstraction)"),
)

#: Allocated rule-ID namespaces: prefix (two letters + leading digit) ->
#: owning analyzer family.  New rules must land in an allocated block.
RULE_NAMESPACES: dict[str, str] = {
    "PR0": "program analysis (assembly/CFG/dataflow)",
    "NL0": "netlist structural lint",
    "NL1": "netlist testability (SCOAP screening)",
    "NL2": "fault collapsing (equivalence/dominance)",
    "FV2": "formal verification (CEC / redundancy)",
    "RC3": "program-aware reachability (unexercised-fault screen)",
}

_RULE_ID_PATTERN = re.compile(r"^(PR|NL|FV|RC)\d{3}$")

#: Registry of every known rule, keyed by rule ID.
RULES: dict[str, Rule] = {r.rule_id: r for r in _RULE_TABLE}


def validate_rules(table: tuple[Rule, ...] = _RULE_TABLE) -> None:
    """Reject malformed, duplicate or out-of-namespace rule registrations.

    Runs at import time (a broken table should fail fast, not at first
    emission) and again from the registry test suite, which additionally
    greps the source tree for rule IDs referenced but never registered.

    Raises:
        ValueError: on any registry inconsistency.
    """
    seen: set[str] = set()
    for rule in table:
        if not _RULE_ID_PATTERN.match(rule.rule_id):
            raise ValueError(
                f"rule ID {rule.rule_id!r} is not of the form "
                "<PR|NL|FV|RC><3 digits>"
            )
        if rule.rule_id in seen:
            raise ValueError(f"duplicate rule ID {rule.rule_id!r}")
        seen.add(rule.rule_id)
        if rule.rule_id[:3] not in RULE_NAMESPACES:
            raise ValueError(
                f"rule ID {rule.rule_id!r} is outside every allocated "
                f"namespace ({', '.join(sorted(RULE_NAMESPACES))})"
            )
        if not rule.title:
            raise ValueError(f"rule {rule.rule_id} has an empty title")


validate_rules()


@dataclass(frozen=True)
class Diagnostic:
    """One analysis finding.

    Attributes:
        rule_id: registered rule (see :data:`RULES`).
        severity: effective severity (defaults to the rule's).
        message: human-readable description of this occurrence.
        address: program byte address the finding anchors to (programs).
        line: 1-based source line when the assembler recorded one.
        net: net id the finding anchors to (netlists).
        gate: gate index the finding anchors to (netlists).
    """

    rule_id: str
    severity: Severity
    message: str
    address: int | None = None
    line: int | None = None
    net: int | None = None
    gate: int | None = None

    @property
    def location(self) -> str:
        """Compact location string (``@0x00000474``, ``line 12``, ``net 7``)."""
        parts = []
        if self.address is not None:
            parts.append(f"@{self.address:#010x}")
        if self.line is not None:
            parts.append(f"line {self.line}")
        if self.gate is not None:
            parts.append(f"gate {self.gate}")
        if self.net is not None:
            parts.append(f"net {self.net}")
        return ", ".join(parts)

    def render(self) -> str:
        loc = self.location
        prefix = f"[{self.rule_id}] {self.severity.value}"
        if loc:
            return f"{prefix} ({loc}): {self.message}"
        return f"{prefix}: {self.message}"

    def to_dict(self) -> dict:
        data = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }
        for key in ("address", "line", "net", "gate"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data


def make_diagnostic(
    rule_id: str, message: str, **location: int | None
) -> Diagnostic:
    """Build a diagnostic with the rule's registered severity.

    Args:
        rule_id: key into :data:`RULES` (KeyError if unregistered —
            analyzers must not invent ad-hoc rule IDs).
        message: occurrence-specific message.
        **location: any of ``address``, ``line``, ``net``, ``gate``.
    """
    rule = RULES[rule_id]
    return Diagnostic(rule_id, rule.severity, message, **location)


@dataclass
class Report:
    """All diagnostics for one analysis target.

    Attributes:
        target: what was analyzed (program name / file / netlist name).
        kind: ``"program"``, ``"netlist"``, ``"formal"``,
            ``"collapse"`` or ``"reach"``.
        diagnostics: findings in discovery order.
    """

    target: str
    kind: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(
        self, rule_id: str, message: str, **location: int | None
    ) -> Diagnostic:
        diag = make_diagnostic(rule_id, message, **location)
        self.diagnostics.append(diag)
        return diag

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the target has no ERROR-severity findings."""
        return not self.errors

    def sorted_diagnostics(self) -> list[Diagnostic]:
        """Diagnostics ordered by severity then location."""
        return sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.address or 0, d.net or 0,
                           d.rule_id),
        )

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "kind": self.kind,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.sorted_diagnostics()],
        }


def render_text(report: Report, max_diagnostics: int | None = None) -> str:
    """Render one report as human-readable text.

    Args:
        report: the report to render.
        max_diagnostics: cap on printed findings (None = all); the
            remainder is summarized in one line so huge netlists do not
            flood the terminal.
    """
    n_err, n_warn = len(report.errors), len(report.warnings)
    status = "OK" if report.ok else "FAIL"
    lines = [
        f"{report.kind} {report.target}: {status} "
        f"({n_err} error(s), {n_warn} warning(s))"
    ]
    shown = report.sorted_diagnostics()
    hidden = 0
    if max_diagnostics is not None and len(shown) > max_diagnostics:
        hidden = len(shown) - max_diagnostics
        shown = shown[:max_diagnostics]
    for diag in shown:
        lines.append(f"  {diag.render()}")
    if hidden:
        lines.append(f"  ... {hidden} more diagnostic(s) suppressed")
    return "\n".join(lines)


#: Version of the ``repro analyze --json`` envelope.  Bumped whenever a
#: field is renamed/removed or its meaning changes; *adding* sections
#: (e.g. the per-analyzer summary tables) is backward compatible and
#: does not bump it.
ANALYZE_SCHEMA_VERSION = 1


def reports_to_json(
    reports: list[Report], *, extra: dict | None = None
) -> str:
    """Serialize reports to a stable JSON document (for CI artifacts).

    Every envelope carries ``schema_version``
    (:data:`ANALYZE_SCHEMA_VERSION`), ``ok`` and ``reports``; callers
    may attach analyzer-specific summary sections via ``extra`` (the
    CLI adds ``formal`` / ``collapse`` / ``reach`` tables so ``--json``
    loses nothing the text rendering shows).
    """
    document: dict = {
        "schema_version": ANALYZE_SCHEMA_VERSION,
        "ok": all(r.ok for r in reports),
        "reports": [r.to_dict() for r in reports],
    }
    if extra:
        for key in extra:
            if key in document:
                raise ValueError(
                    f"extra section {key!r} collides with an envelope field"
                )
        document.update(extra)
    return json.dumps(document, indent=2, sort_keys=True)
