"""Lint-clean gate: every shipped artifact passes its analyzer.

These tests are the regression fence the ``repro analyze --all`` CI step
relies on: a new routine or netlist change that introduces an
ERROR-severity diagnostic fails here first, with the rule ID in the
assertion message.
"""

import pytest

from repro.analysis import AnalysisOptions, analyze_program
from repro.analysis.netlist import analyze_netlist
from repro.core.methodology import SelfTestMethodology
from repro.core.routines import ROUTINES, standalone_program
from repro.isa.assembler import assemble
from repro.plasma.components import COMPONENTS


def _fail_message(report):
    return "; ".join(d.render() for d in report.errors)


@pytest.mark.parametrize("name", sorted(ROUTINES))
def test_routine_program_is_error_free(name):
    source, routine = standalone_program(name)
    options = AnalysisOptions(
        signature_registers=routine.signature_registers
    )
    report = analyze_program(assemble(source), name, options)
    assert report.ok, _fail_message(report)


@pytest.mark.parametrize("phases", ["A", "AB", "ABC"])
def test_phased_selftest_program_is_error_free(phases):
    methodology = SelfTestMethodology()
    built = methodology.build_program(phases)
    signatures = tuple(
        {
            reg
            for _phase, routine in methodology.routine_plan(phases)
            for reg in routine.signature_registers
        }
    )
    report = analyze_program(
        built.program,
        f"selftest:{phases}",
        AnalysisOptions(signature_registers=signatures),
    )
    assert report.ok, _fail_message(report)


@pytest.mark.parametrize("info", COMPONENTS, ids=lambda i: i.name)
def test_component_netlist_is_error_free(info):
    report = analyze_netlist(info.builder())
    assert report.ok, _fail_message(report)
