"""Component-level fault-grading campaigns.

A campaign takes a component netlist plus the stimulus that reaches it
during self-test execution (either an unordered pattern set for a
combinational component, or the exact traced cycle sequence for a sequential
one) and grades every collapsed fault class, honouring observability
restrictions.  Grading itself runs through the engine facade
(:func:`repro.faultsim.engine.grade`); the campaign dataclasses here are
the stable component-level API and carry the result type.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.errors import FaultSimError
from repro.faultsim.coverage import ComponentCoverage
from repro.faultsim.differential import Detection
from repro.faultsim.faults import Fault, FaultList
from repro.netlist.netlist import Netlist


@dataclass
class CampaignResult:
    """Detailed outcome of grading one component.

    Attributes:
        name: campaign label.
        fault_list: the component's fault universe.
        detected: representative fault indices that were detected.
        detections: per representative index, the Detection record.
        n_patterns: number of patterns / cycles applied.
        pruned: representatives skipped as structurally untestable (they
            still count in the FC denominator, as undetected — pruning
            saves simulation time without touching reported coverage).
        proven: representatives holding a SAT redundancy certificate
            (UNSAT good/faulty miter, :mod:`repro.formal.redundancy`).
            These — and only these — are excluded from the FC
            denominator.  Always a subset of ``pruned``; empty unless
            grading ran with ``prune_untestable="proven"``.
        n_simulated: fault classes the engine actually simulated.  With
            structural collapsing (``grade(collapse=...)``) this is the
            super-class sim-unit count; without it, the graded class
            count.  Coverage never depends on it — it is the workload
            accounting the collapse benchmark reports.
        n_inferred: dominator verdicts inferred from a detected child
            instead of simulated (0 without collapsing).
        n_reach_skipped: classes whose simulation the program-aware
            reach screen (``GradeOptions(reach=...)``) proved
            unnecessary — the stimulus never drives the fault site to
            the opposite value, so the verdict is synthesised as
            undetected/unexcited without running an engine.  Like
            pruning, this is workload accounting only: the classes stay
            in the FC denominator and the synthesised verdicts are
            bit-identical to what simulation would report.
        collapse_hash: digest of the applied
            :class:`~repro.analysis.collapse.CollapseMap` (empty when
            grading ran uncollapsed); recorded in checkpoint
            fingerprints so resumed shards never mix universes.
        cache_hit: True when the whole result was replayed from the
            persistent store (:class:`~repro.faultsim.store.TraceStore`)
            instead of simulated — ``n_simulated`` is 0 in that case.
    """

    name: str
    fault_list: FaultList
    detected: set[int] = field(default_factory=set)
    detections: dict[int, Detection] = field(default_factory=dict)
    n_patterns: int = 0
    pruned: set[int] = field(default_factory=set)
    proven: set[int] = field(default_factory=set)
    n_simulated: int = 0
    n_inferred: int = 0
    n_reach_skipped: int = 0
    collapse_hash: str = ""
    cache_hit: bool = False

    @property
    def n_faults(self) -> int:
        return self.fault_list.n_collapsed

    @property
    def n_effective_faults(self) -> int:
        """FC denominator: collapsed classes minus proven-redundant."""
        return self.n_faults - len(self.proven)

    @property
    def n_detected(self) -> int:
        return len(self.detected)

    @property
    def fault_coverage(self) -> float:
        if self.n_effective_faults == 0:
            return 100.0
        return 100.0 * self.n_detected / self.n_effective_faults

    def undetected_faults(self) -> list[Fault]:
        """Representative faults that survived the test (for diagnosis)."""
        return [
            self.fault_list.fault(rep)
            for rep in self.fault_list.class_representatives()
            if rep not in self.detected
        ]

    @property
    def n_never_excited(self) -> int:
        """Undetected faults whose site never took the opposite value.

        These cannot be detected by *any* observability improvement — the
        stimulus never drives them (e.g. high PC/address bits in a small
        test footprint).  The remainder of the undetected set was excited
        but failed to propagate to an observed output.
        """
        return sum(
            1
            for rep, detection in self.detections.items()
            if not detection.detected and not detection.excited
        )

    @property
    def n_pruned(self) -> int:
        """Classes skipped (not simulated) as structurally untestable."""
        return len(self.pruned)

    @property
    def n_proven(self) -> int:
        """Classes excluded from the denominator with a SAT certificate."""
        return len(self.proven)

    @property
    def n_excited_unobserved(self) -> int:
        """Undetected faults that were excited but never observed."""
        return (
            (self.n_faults - self.n_detected)
            - self.n_never_excited
            - self.n_pruned
        )

    def excitation_report(self) -> str:
        """One-line FC breakdown used by verbose campaigns and analyses."""
        pruned = f", {self.n_pruned} pruned-untestable" if self.pruned else ""
        proven = (
            f" ({self.n_proven} proven-redundant, excluded)"
            if self.proven else ""
        )
        return (
            f"{self.name}: FC {self.fault_coverage:.2f}% "
            f"({self.n_detected}/{self.n_effective_faults}); undetected: "
            f"{self.n_never_excited} never excited, "
            f"{self.n_excited_unobserved} excited-but-unobserved"
            f"{pruned}{proven}"
        )

    def to_component_coverage(
        self, nand2: int = 0, degraded: bool = False
    ) -> ComponentCoverage:
        return ComponentCoverage(
            name=self.name,
            n_faults=self.n_faults,
            n_detected=self.n_detected,
            nand2=nand2,
            degraded=degraded,
            n_proven=self.n_proven,
        )


@dataclass
class CombinationalCampaign:
    """Grade a combinational component with an unordered pattern set.

    Prefer :func:`repro.faultsim.grade` for new code — it dispatches on
    the netlist and stimulus shape and exposes engine selection, pruning
    and fault subsetting through one signature (``docs/API.md`` §6 maps
    the old surface onto it).

    Attributes:
        netlist: component circuit (must be DFF-free).
        patterns: per pattern, ``{input port: value}``.
        observe: per pattern, set/iterable of observed output port names;
            None observes every output for every pattern.
        engine: fault-sim engine name (see
            :func:`repro.faultsim.engine.engine_names`) or ``"auto"``.
            Defaults to the historical differential engine so existing
            callers keep byte-identical Detection records.
    """

    netlist: Netlist
    patterns: Sequence[Mapping[str, int]]
    observe: Sequence[Sequence[str]] | None = None
    name: str = ""
    engine: str = "differential"

    def run(
        self,
        fault_list: FaultList | None = None,
        prune_untestable: bool = False,
    ) -> CampaignResult:
        # Local import: the engine module imports CampaignResult from here.
        from repro.faultsim.engine import grade
        from repro.faultsim.options import GradeOptions

        if self.netlist.dffs:
            raise FaultSimError(
                f"{self.netlist.name!r} has flip-flops; use SequentialCampaign"
            )
        if not self.patterns:
            raise FaultSimError("no patterns to apply")
        if (
            self.observe is not None
            and len(self.observe) != len(self.patterns)
        ):
            raise FaultSimError("observe list must match pattern count")
        options = GradeOptions(
            engine=self.engine,
            observe=self.observe,
            name=self.name or self.netlist.name,
            prune_untestable=prune_untestable,
        )
        return grade(self.netlist, self.patterns, fault_list, options)


@dataclass
class SequentialCampaign:
    """Grade a sequential component with a traced cycle sequence.

    Prefer :func:`repro.faultsim.grade` for new code — it dispatches on
    the netlist and stimulus shape and exposes engine selection, pruning
    and fault subsetting through one signature (``docs/API.md`` §6 maps
    the old surface onto it).

    Attributes:
        netlist: component circuit.
        cycle_inputs: per cycle, ``{input port: value}`` — typically the
            boundary trace captured while the CPU executed the self-test
            program.
        observe: per cycle, iterable of observed output port names (None =
            all outputs every cycle).
        engine: fault-sim engine name (see
            :func:`repro.faultsim.engine.engine_names`) or ``"auto"``.
            Defaults to the historical differential engine so existing
            callers keep byte-identical Detection records.
    """

    netlist: Netlist
    cycle_inputs: Sequence[Mapping[str, int]]
    observe: Sequence[Sequence[str]] | None = None
    name: str = ""
    engine: str = "differential"

    def run(
        self,
        fault_list: FaultList | None = None,
        prune_untestable: bool = False,
    ) -> CampaignResult:
        from repro.faultsim.engine import grade
        from repro.faultsim.options import GradeOptions

        if not self.cycle_inputs:
            raise FaultSimError("no cycles to apply")
        if (
            self.observe is not None
            and len(self.observe) != len(self.cycle_inputs)
        ):
            raise FaultSimError("observe list must match cycle count")
        options = GradeOptions(
            engine=self.engine,
            observe=self.observe,
            name=self.name or self.netlist.name,
            prune_untestable=prune_untestable,
        )
        return grade(self.netlist, self.cycle_inputs, fault_list, options)


def run_combinational(
    netlist: Netlist,
    patterns: Sequence[Mapping[str, int]],
    observe: Sequence[Sequence[str]] | None = None,
    name: str = "",
) -> CampaignResult:
    """Deprecated: call :func:`repro.faultsim.grade` instead.

    Migration: ``run_combinational(netlist, patterns, observe, name)``
    becomes ``grade(netlist, patterns, observe=observe, name=name)`` —
    ``grade()`` infers combinational stimulus from the absence of DFFs
    and returns the same :class:`CampaignResult`.  See the migration
    table in ``docs/API.md`` §6.
    """
    warnings.warn(
        "run_combinational() is deprecated; use repro.faultsim.grade()",
        DeprecationWarning,
        stacklevel=2,
    )
    return CombinationalCampaign(netlist, patterns, observe, name).run()


def run_sequential(
    netlist: Netlist,
    cycle_inputs: Sequence[Mapping[str, int]],
    observe: Sequence[Sequence[str]] | None = None,
    name: str = "",
) -> CampaignResult:
    """Deprecated: call :func:`repro.faultsim.grade` instead.

    Migration: ``run_sequential(netlist, cycles, observe, name)`` becomes
    ``grade(netlist, cycles, observe=observe, name=name)`` — ``grade()``
    treats the stimulus as a cycle sequence whenever the netlist holds
    state, and returns the same :class:`CampaignResult`.  See the
    migration table in ``docs/API.md`` §6.
    """
    warnings.warn(
        "run_sequential() is deprecated; use repro.faultsim.grade()",
        DeprecationWarning,
        stacklevel=2,
    )
    return SequentialCampaign(netlist, cycle_inputs, observe, name).run()
