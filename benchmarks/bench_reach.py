"""Gate G2 — program-aware reach screen: soundness payoff, zero drift.

The reach screen (``GradeOptions(reach=...)``) lets a campaign skip
simulating fault classes the abstract interpreter proves the program
never exercises, synthesising their (undetected, unexcited) verdicts.
The load-bearing claim is that this is *invisible* in the results: every
table, verdict and coverage figure must be bit-identical to simulating
everything.  This bench grades the gate components both ways on the
campaign-default configuration (structural collapsing on) with the same
phase-A traced stimulus and enforces:

* **verdict equality (hard gate)** — any per-class ``(detected,
  excited)`` difference, detected-set difference or coverage difference
  between the screened and the plain run fails the bench;
* **skip accounting (hard gate)** — the screened run must simulate
  exactly ``plain - reach_reduction`` classes and report that count as
  ``n_reach_skipped``; a mismatch means skipped work was silently lost
  or double-counted;
* **screen yield (hard gate)** — across the benched components, at
  least :data:`MIN_YIELD_COMPONENTS` must have >=
  :data:`MIN_YIELD_RATIO` of their *post-collapse* fault universe proven
  unexercised by the phase-A program.  The screen earning its keep on
  real components is part of the reproduction claim, not a nice-to-have;
* **steady-state speedup (soft gate)** — cache-warm screened grading
  should be >= :data:`SPEEDUP_FLOOR` x the plain run on components
  where the screen actually fires.  Components the program fully
  exercises (nothing to skip) are reported as SKIP, not failed.

Timing reports both the *warm* speedup (steady-state campaign, screen
already built) and the *cold* speedup (single run, per-component screen
construction charged against the win) so the artifact records whether
the screen pays for itself on a one-shot grade.

Runs two ways:

* ``PYTHONPATH=src python benchmarks/bench_reach.py [--quick]`` —
  standalone; exit 1 only on a hard-gate failure.  ``--quick`` (the CI
  gate) restricts to the fast components and one timing repetition.
* via the tier-2 pytest-benchmark suite (full mode).

A JSON artifact with the per-component measurements lands in
``benchmarks/results/reach_gate.json`` for trend tracking.
"""

import argparse
import json
import sys
import time

from repro.analysis.absint import interpret_program
from repro.analysis.collapse import compute_collapse
from repro.analysis.reach import (
    build_reach_report,
    derive_patterns,
    reach_reduction,
)
from repro.core.campaign import execute_self_test
from repro.core.methodology import SelfTestMethodology
from repro.faultsim import GradeOptions, build_fault_list, grade
from repro.plasma.components import build_component

#: Soft-gate floor: steady-state (cache-warm) speedup from screening.
SPEEDUP_FLOOR = 1.05

#: Hard gate: this many components must clear :data:`MIN_YIELD_RATIO`.
MIN_YIELD_COMPONENTS = 2

#: Hard gate: fraction of the post-collapse universe proven unexercised.
MIN_YIELD_RATIO = 0.05

#: Quick mode: fast components where the screen demonstrably fires.
QUICK_COMPONENTS = ("CTRL", "GL", "PCL")

#: Full mode adds the remaining fast-enough components (RegF and MulD
#: grade for minutes and the phase-A program exercises both end to end —
#: reported by ``repro analyze reach``, not re-measured here).
FULL_COMPONENTS = (
    "ALU", "BSH", "CTRL", "BMUX", "GL", "PCL", "PLN", "MCTRL"
)


def traced_program_and_specs():
    self_test = SelfTestMethodology().build_program("A")
    _, tracer, _ = execute_self_test(self_test)
    return self_test.program, tracer.finalize()


def _verdicts(result):
    return {
        rep: (det.detected, det.excited)
        for rep, det in result.detections.items()
    }


def _timed(repeats, fn):
    """Best-of-N wall time (seconds) and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _bench_component(name, patterns, stimulus, observe, repeats, lines,
                     failures, records):
    netlist = build_component(name)
    fault_list = build_fault_list(netlist)
    cmap = compute_collapse(netlist, fault_list)

    # Per-component screen construction is the cold-start cost the
    # screened run pays once; charge it against the cold speedup.
    screen_started = time.perf_counter()
    report = build_reach_report(
        netlist, fault_list, patterns[name], component=name
    )
    screen_seconds = time.perf_counter() - screen_started
    # ``dropped`` holds super-representatives; the engine reports
    # ``n_reach_skipped`` at member-class granularity (every class whose
    # verdict it synthesises) while ``n_simulated`` shrinks by supers.
    dropped = reach_reduction(report, fault_list, cmap, frozenset())
    screened_classes = sum(len(cmap.members(s)) for s in dropped)

    def plain():
        return grade(netlist, stimulus, fault_list,
                     GradeOptions(observe=observe, name=name, collapse=cmap))

    def screened():
        return grade(
            netlist, stimulus, fault_list,
            GradeOptions(observe=observe, name=name, collapse=cmap,
                         reach=report),
        )

    # Warm every cache (good trace, compiled program) outside the timing:
    # the warm gate measures steady-state campaign behaviour.
    plain()
    screened()
    base_seconds, base = _timed(repeats, plain)
    reach_seconds, on = _timed(repeats, screened)

    warm_speedup = base_seconds / reach_seconds if reach_seconds else 0.0
    cold = reach_seconds + screen_seconds
    cold_speedup = base_seconds / cold if cold else 0.0
    n_supers = len(cmap.simulation_order())
    yield_ratio = len(dropped) / n_supers if n_supers else 0.0

    # --- hard gates ------------------------------------------------------
    if _verdicts(on) != _verdicts(base) or on.detected != base.detected:
        failures.append(
            f"{name}: screened verdicts differ from the plain run"
        )
    if on.fault_coverage != base.fault_coverage:
        failures.append(f"{name}: FC differs with the reach screen on")
    if on.n_reach_skipped != screened_classes:
        failures.append(
            f"{name}: n_reach_skipped={on.n_reach_skipped} but the "
            f"reduction screens {screened_classes} classes"
        )
    if on.n_simulated != base.n_simulated - len(dropped):
        failures.append(
            f"{name}: simulated {on.n_simulated} classes, expected "
            f"{base.n_simulated} - {len(dropped)}"
        )

    # --- soft gate -------------------------------------------------------
    if not dropped:
        status = "SKIP"
    elif warm_speedup >= SPEEDUP_FLOOR:
        status = "PASS"
    else:
        status = "SKIP"
    records.append({
        "component": name,
        "n_classes": fault_list.n_collapsed,
        "n_supers": n_supers,
        "n_proven": report.n_proven,
        "n_reach_skipped": on.n_reach_skipped,
        "post_collapse_yield": round(yield_ratio, 4),
        "n_simulated_plain": base.n_simulated,
        "n_simulated_screened": on.n_simulated,
        "base_seconds": round(base_seconds, 4),
        "screened_seconds": round(reach_seconds, 4),
        "screen_build_seconds": round(screen_seconds, 4),
        "warm_speedup": round(warm_speedup, 4),
        "cold_speedup": round(cold_speedup, 4),
        "degraded": report.degraded,
        "status": status,
        "reach_hash": report.reach_hash,
    })
    lines.append(
        f"{name:6s} {fault_list.n_collapsed:7,} classes -> "
        f"{on.n_simulated:7,} simulated ({on.n_reach_skipped:,} screened, "
        f"{100 * yield_ratio:4.1f}% of supers)  "
        f"{base_seconds:6.2f}s -> {reach_seconds:6.2f}s "
        f"(warm {warm_speedup:.2f}x, cold {cold_speedup:.2f}x)  {status}"
        + (
            "" if status == "PASS" else
            " (nothing to screen)" if not dropped else
            f" (below the {SPEEDUP_FLOOR:.2f}x floor)"
        )
    )
    return yield_ratio


def run_bench(quick: bool) -> tuple[str, list[str], list[dict]]:
    """Grade the gate components screened and plain, compare, time.

    Returns:
        ``(report text, hard failures, per-component records)``.
    """
    components = QUICK_COMPONENTS if quick else FULL_COMPONENTS
    repeats = 2 if quick else 3
    program, specs = traced_program_and_specs()
    patterns = derive_patterns(interpret_program(program))
    lines: list[str] = []
    failures: list[str] = []
    records: list[dict] = []
    yielding = 0
    for name in components:
        stimulus, observe = specs[name]
        ratio = _bench_component(
            name, patterns, stimulus, observe, repeats, lines, failures,
            records,
        )
        if ratio >= MIN_YIELD_RATIO:
            yielding += 1
    if yielding < MIN_YIELD_COMPONENTS:
        failures.append(
            f"screen yield: only {yielding} component(s) have >= "
            f"{100 * MIN_YIELD_RATIO:.0f}% of their post-collapse universe "
            f"proven unexercised (need {MIN_YIELD_COMPONENTS})"
        )
    passed = sum(1 for r in records if r["status"] == "PASS")
    lines.append(
        f"{passed}/{len(records)} component(s) beat the "
        f"{SPEEDUP_FLOOR:.2f}x steady-state floor; "
        f"{yielding} clear the {100 * MIN_YIELD_RATIO:.0f}% yield bar; "
        f"{len(failures)} hard failure(s)"
    )
    return "\n".join(lines), failures, records


def _write_artifact(quick, records, failures) -> str:
    import os

    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "reach_gate.json")
    with open(path, "w") as handle:
        json.dump(
            {
                "bench": "reach_gate",
                "quick": quick,
                "speedup_floor": SPEEDUP_FLOOR,
                "min_yield_components": MIN_YIELD_COMPONENTS,
                "min_yield_ratio": MIN_YIELD_RATIO,
                "components": records,
                "failures": failures,
                "ok": not failures,
            },
            handle, indent=2, sort_keys=True,
        )
        handle.write("\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: fast components only, single timing repetition",
    )
    args = parser.parse_args(argv)
    text, failures, records = run_bench(quick=args.quick)
    print(text)
    print(f"artifact: {_write_artifact(args.quick, records, failures)}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_reach_gate(benchmark):
    from conftest import write_result

    text, failures, records = benchmark.pedantic(
        lambda: run_bench(quick=False), rounds=1, iterations=1
    )
    write_result("reach_gate.txt", text)
    _write_artifact(False, records, failures)
    print("\n" + text)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    sys.exit(main())
