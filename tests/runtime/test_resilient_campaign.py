"""Integration tests: the fault-grading campaign under the resilient runner.

These exercise the acceptance paths of the resilient runtime against real
(cheap) components: checkpoint/resume round-trips, interrupted campaigns,
timeout-driven degradation and corrupt-journal recovery.
"""

import os
import time

import pytest

import repro.core.campaign as campaign_mod
from repro.core.campaign import run_campaign
from repro.reporting.tables import render_table5
from repro.runtime import RetryPolicy, RuntimeConfig
from repro.runtime.checkpoint import CheckpointStore

FAST = ["CTRL", "BMUX"]

_real_grading_job = campaign_mod._grading_job


def _config(tmp_path=None, resume=False, attempts=2, timeout=None,
            isolate=True):
    return RuntimeConfig(
        timeout_seconds=timeout,
        retry=RetryPolicy(max_attempts=attempts, backoff_seconds=0),
        checkpoint_dir=tmp_path,
        resume=resume,
        isolate=isolate,
        sleep=lambda s: None,
    )


def _hang_component(name, *args, **kwargs):
    if name == "BMUX":
        time.sleep(60)
    return _real_grading_job(name, *args, **kwargs)


def _crash_component(name, *args, **kwargs):
    if name == "BMUX":
        os._exit(11)
    return _real_grading_job(name, *args, **kwargs)


def _interrupt_component(name, *args, **kwargs):
    if name == "BMUX":
        raise KeyboardInterrupt  # simulates the user killing the campaign
    return _real_grading_job(name, *args, **kwargs)


class TestResilientMatchesSerial:
    def test_same_table5_as_in_process(self, tmp_path):
        resilient = run_campaign(
            "A", components=FAST, runtime=_config(tmp_path)
        )
        serial = run_campaign("A", components=FAST)
        assert render_table5({"A": resilient}) == render_table5({"A": serial})
        assert not resilient.degraded
        kinds = [e.kind for e in resilient.events]
        assert kinds.count("success") == len(FAST)


class TestCheckpointResume:
    def test_interrupted_campaign_resumes(self, tmp_path, monkeypatch):
        # Run 1: the campaign dies mid-run (simulated Ctrl-C while grading
        # the second component).  The first component is already journaled.
        monkeypatch.setattr(
            campaign_mod, "_grading_job", _interrupt_component
        )
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                "A", components=FAST,
                runtime=_config(tmp_path, isolate=False),
            )
        journaled = CheckpointStore(tmp_path).load()
        assert set(journaled) == {"A:CTRL"}

        # Run 2: --resume grades only the remainder...
        monkeypatch.setattr(campaign_mod, "_grading_job", _real_grading_job)
        resumed = run_campaign(
            "A", components=FAST, runtime=_config(tmp_path, resume=True)
        )
        per_job = {e.job: e.kind for e in resumed.events}
        assert per_job["A:CTRL"] == "cached"
        assert any(
            e.job == "A:BMUX" and e.kind == "success"
            for e in resumed.events
        )
        # ... and the final table is identical to an uninterrupted run.
        uninterrupted = run_campaign("A", components=FAST)
        assert render_table5({"A": resumed}) == render_table5(
            {"A": uninterrupted}
        )

    def test_resume_skips_all_completed(self, tmp_path):
        run_campaign("A", components=FAST, runtime=_config(tmp_path))
        resumed = run_campaign(
            "A", components=FAST, runtime=_config(tmp_path, resume=True)
        )
        assert [e.kind for e in resumed.events] == ["cached", "cached"]
        assert not resumed.degraded

    def test_corrupt_checkpoint_recovery(self, tmp_path):
        run_campaign("A", components=FAST, runtime=_config(tmp_path))
        store = CheckpointStore(tmp_path)
        # Vandalise the journal: corrupt CTRL's line, keep BMUX's.
        lines = store.path.read_text().splitlines()
        assert len(lines) == 2
        store.path.write_text("CORRUPTED {{{\n" + lines[1] + "\n")

        resumed = run_campaign(
            "A", components=FAST, runtime=_config(tmp_path, resume=True)
        )
        per_job = {}
        for e in resumed.events:
            per_job.setdefault(e.job, []).append(e.kind)
        assert per_job["A:CTRL"][-1] == "success"  # re-graded
        assert per_job["A:BMUX"] == ["cached"]     # salvaged
        uninterrupted = run_campaign("A", components=FAST)
        assert render_table5({"A": resumed}) == render_table5(
            {"A": uninterrupted}
        )


class TestGracefulDegradation:
    def test_timeout_retry_then_degraded(self, tmp_path, monkeypatch):
        monkeypatch.setattr(campaign_mod, "_grading_job", _hang_component)
        outcome = run_campaign(
            "A", components=FAST,
            runtime=_config(tmp_path, timeout=0.5),
        )
        assert outcome.degraded_components == ["BMUX"]
        assert outcome.degraded
        kinds = [e.kind for e in outcome.events if e.job == "A:BMUX"]
        assert kinds == ["start", "timeout", "retry", "start", "timeout",
                         "degraded"]
        # The degraded component reports its full fault universe with
        # nothing detected: a coverage lower bound.
        bmux = outcome.results["BMUX"]
        assert bmux.n_faults > 0
        assert bmux.n_detected == 0
        cov = outcome.summary.component("BMUX")
        assert cov.degraded
        assert outcome.summary.degraded_components == ["BMUX"]
        # The other component graded normally.
        assert outcome.results["CTRL"].n_detected > 0
        assert not outcome.summary.component("CTRL").degraded

    def test_worker_crash_then_degraded(self, monkeypatch):
        monkeypatch.setattr(campaign_mod, "_grading_job", _crash_component)
        outcome = run_campaign(
            "A", components=["BMUX"], runtime=_config(attempts=2)
        )
        assert outcome.degraded_components == ["BMUX"]
        kinds = [e.kind for e in outcome.events]
        assert kinds == ["start", "crash", "retry", "start", "crash",
                         "degraded"]

    def test_degraded_table5_rendering(self, monkeypatch):
        monkeypatch.setattr(campaign_mod, "_grading_job", _crash_component)
        outcome = run_campaign(
            "A", components=FAST, runtime=_config(attempts=1)
        )
        table = render_table5({"A": outcome})
        assert "0.00*" in table
        assert "lower bound" in table
        rows = outcome.table5()
        by_name = {r["name"]: r for r in rows}
        assert by_name["BMUX"]["degraded"]
        assert not by_name["CTRL"]["degraded"]
        assert by_name["Plasma"]["degraded"]
