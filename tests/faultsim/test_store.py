"""Persistent TraceStore failure modes and campaign integration.

The store's contract is "incremental campaigns without wrong answers":
a warm store replays bit-identical verdicts with zero re-simulation, and
every corruption mode (truncation, bit flips, concurrent writers, cache
caps) degrades to a miss-and-rebuild, never to a wrong record.
"""

import multiprocessing
import random

import pytest

from repro.core.campaign import run_campaign
from repro.faultsim import (
    GradeOptions,
    StoreStats,
    TraceStore,
    build_fault_list,
    grade,
)
from repro.faultsim.store import (
    result_from_payload,
    verdicts_payload,
)
from repro.library import build_alu, build_register_file


def _alu_patterns(n=20, seed=9):
    rng = random.Random(seed)
    return [
        dict(a=rng.getrandbits(4), b=rng.getrandbits(4),
             func=rng.getrandbits(4))
        for _ in range(n)
    ]


def _regfile_cycles(n=25, seed=4):
    rng = random.Random(seed)
    return [
        dict(
            wr_addr=rng.randrange(4), wr_data=rng.getrandbits(4),
            wr_en=rng.randrange(2), rd_addr_a=rng.randrange(4),
            rd_addr_b=rng.randrange(4),
        )
        for _ in range(n)
    ]


def _record_paths(store):
    return sorted(store.root.glob("*/*/*.rec"))


def _assert_same_verdicts(a, b):
    assert b.detected == a.detected
    assert b.pruned == a.pruned
    assert b.proven == a.proven
    assert b.fault_coverage == a.fault_coverage
    assert set(b.detections) == set(a.detections)
    for rep, d in a.detections.items():
        g = b.detections[rep]
        assert (g.detected, g.cycle, g.excited) == (
            d.detected, d.cycle, d.excited
        )


class TestWarmReplay:
    @pytest.mark.parametrize(
        "builder,stimulus",
        [
            (lambda: build_alu(width=4), _alu_patterns()),
            (
                lambda: build_register_file(n_registers=4, width=4),
                _regfile_cycles(),
            ),
        ],
        ids=("combinational", "sequential"),
    )
    def test_cold_then_warm_bit_identical(self, tmp_path, builder, stimulus):
        store = TraceStore(tmp_path)
        opts = GradeOptions(cache=store)
        cold = grade(builder(), stimulus, options=opts)
        assert not cold.cache_hit
        warm = grade(builder(), stimulus, options=opts)
        assert warm.cache_hit
        assert warm.n_simulated == 0
        _assert_same_verdicts(cold, warm)

    def test_different_observability_misses(self, tmp_path):
        netlist = build_alu(width=4)
        stimulus = _alu_patterns()
        store = TraceStore(tmp_path)
        grade(netlist, stimulus, options=GradeOptions(cache=store))
        half = [["result"] if i % 2 else [] for i in range(len(stimulus))]
        partial = grade(
            netlist, stimulus,
            options=GradeOptions(cache=store, observe=half),
        )
        assert not partial.cache_hit  # observe signature is in the key

    def test_subset_grades_are_never_stored(self, tmp_path):
        netlist = build_alu(width=4)
        fault_list = build_fault_list(netlist)
        reps = fault_list.class_representatives()
        store = TraceStore(tmp_path)
        grade(
            netlist, _alu_patterns(), fault_list,
            GradeOptions(cache=store, subset=reps[: len(reps) // 2]),
        )
        assert _record_paths(store) == []  # no trace root either
        assert store.stats.verdict_hits == 0


class TestCorruption:
    def _seed_record(self, tmp_path):
        store = TraceStore(tmp_path)
        netlist = build_alu(width=4)
        stimulus = _alu_patterns()
        cold = grade(netlist, stimulus, options=GradeOptions(cache=store))
        paths = _record_paths(store)
        assert paths
        return store, netlist, stimulus, cold, paths

    def test_bit_flip_quarantines_and_rebuilds(self, tmp_path):
        store, netlist, stimulus, cold, paths = self._seed_record(tmp_path)
        for path in paths:
            blob = bytearray(path.read_bytes())
            blob[len(blob) // 2] ^= 0x40
            path.write_bytes(bytes(blob))
        regraded = grade(netlist, stimulus, options=GradeOptions(cache=store))
        assert not regraded.cache_hit  # every record was corrupt
        assert store.stats.corrupt >= len(paths)
        quarantined = list((store.root / "quarantine").iterdir())
        assert len(quarantined) >= len(paths)
        _assert_same_verdicts(cold, regraded)
        # The rebuild re-published clean records: warm again.
        warm = grade(netlist, stimulus, options=GradeOptions(cache=store))
        assert warm.cache_hit

    def test_truncated_record_is_a_miss(self, tmp_path):
        store, netlist, stimulus, cold, paths = self._seed_record(tmp_path)
        for path in paths:
            path.write_bytes(path.read_bytes()[: 40])
        regraded = grade(netlist, stimulus, options=GradeOptions(cache=store))
        assert not regraded.cache_hit
        _assert_same_verdicts(cold, regraded)

    def test_garbage_payload_is_a_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.load_verdicts("0" * 32) is None
        store.save_verdicts("0" * 32, {"n_classes": 3})
        path = _record_paths(store)[0]
        path.write_bytes(b"not a record at all")
        assert store.load_verdicts("0" * 32) is None
        assert store.stats.corrupt == 1

    def test_malformed_payload_rejected_by_decoder(self):
        netlist = build_alu(width=4)
        fault_list = build_fault_list(netlist)
        good = verdicts_payload(
            grade(netlist, _alu_patterns(), fault_list,
                  GradeOptions(engine="differential"))
        )
        restored = result_from_payload(good, "ALU", fault_list)
        assert restored.cache_hit and restored.n_simulated == 0
        bad = dict(good)
        bad["detections"] = "oops"
        with pytest.raises((KeyError, TypeError, ValueError)):
            result_from_payload(bad, "ALU", fault_list)
        missing = dict(good)
        del missing["detected"]
        with pytest.raises((KeyError, TypeError, ValueError)):
            result_from_payload(missing, "ALU", fault_list)


def _hammer_store(args):
    root, worker, rounds = args
    store = TraceStore(root)
    ok = True
    for i in range(rounds):
        key = f"{'%02d' % (i % 4)}{'f' * 30}"
        store.save_verdicts(key, {"worker": worker, "round": i, "pad": "x" * 64})
        doc = store.load_verdicts(key)
        # A concurrent read must see a complete record or a miss — never
        # a half-written hybrid (which would quarantine and bump corrupt).
        ok = ok and (doc is None or {"worker", "round", "pad"} <= set(doc))
        ok = ok and store.stats.corrupt == 0
    return ok


class TestConcurrency:
    def test_concurrent_writers_never_tear_records(self, tmp_path):
        with multiprocessing.Pool(4) as pool:
            results = pool.map(
                _hammer_store,
                [(str(tmp_path), w, 25) for w in range(4)],
            )
        assert all(results)
        store = TraceStore(tmp_path)
        for i in range(4):
            key = f"{'%02d' % i}{'f' * 30}"
            doc = store.load_verdicts(key)
            assert doc is not None and "worker" in doc
        assert not (tmp_path / "quarantine").exists()


class TestLruCap:
    def test_eviction_respects_cap_and_recency(self, tmp_path):
        store = TraceStore(tmp_path, max_bytes=2_000)
        payload = {"pad": "y" * 400}
        keys = [f"{'%02d' % i}{'a' * 30}" for i in range(10)]
        for key in keys:
            store.save_verdicts(key, payload)
        assert store.stats.evictions > 0
        resident = _record_paths(store)
        assert sum(p.stat().st_size for p in resident) <= 2_000
        # The newest record always survives its own save.
        assert store.load_verdicts(keys[-1]) is not None

    def test_oversized_record_not_persisted(self, tmp_path):
        store = TraceStore(tmp_path, max_record_bytes=100)
        assert not store.save_verdicts("b" * 32, {"pad": "z" * 500})
        assert _record_paths(store) == []

    def test_stats_summary_mentions_counts(self):
        stats = StoreStats(trace_hits=1, verdict_hits=2, saves=3)
        summary = stats.summary()
        assert "saved" in summary and "quarantined" in summary


class TestCampaignIntegration:
    def test_repeat_campaign_reuses_every_component(self, tmp_path):
        opts = GradeOptions(cache=TraceStore(tmp_path), collapse=True)
        cold = run_campaign("A", components=["CTRL", "BSH"], options=opts)
        assert cold.cached_components == []
        warm = run_campaign("A", components=["CTRL", "BSH"], options=opts)
        assert sorted(warm.cached_components) == ["BSH", "CTRL"]
        for name in ("CTRL", "BSH"):
            _assert_same_verdicts(
                cold.results[name], warm.results[name]
            )
            assert warm.results[name].n_simulated == 0
        assert (
            warm.summary.overall_coverage == cold.summary.overall_coverage
        )

    def test_collapse_toggle_invalidates_the_record(self, tmp_path):
        store = TraceStore(tmp_path)
        on = run_campaign(
            "A", components=["CTRL"],
            options=GradeOptions(cache=store, collapse=True),
        )
        off = run_campaign(
            "A", components=["CTRL"],
            options=GradeOptions(cache=store, collapse=False),
        )
        # Different collapse hash → different record → no replay...
        assert off.cached_components == []
        # ...but identical Table 5 answers either way.
        _assert_same_verdicts(on.results["CTRL"], off.results["CTRL"])
