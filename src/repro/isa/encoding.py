"""Binary encoding and decoding of MIPS I instructions.

:func:`encode` assembles field values into a 32-bit word according to the
instruction's format; :func:`decode` is its exact inverse and returns a
:class:`Decoded` record the CPU model executes directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EncodingError
from repro.isa.instruction import (
    BY_OPCODE,
    Format,
    InstructionSpec,
    R_BY_FUNCT,
    REGIMM_BY_RT,
    lookup_mnemonic,
)
from repro.utils.bits import extract, mask


def _check_field(name: str, value: int, width: int) -> int:
    if not 0 <= value <= mask(width):
        raise EncodingError(f"{name}={value} does not fit in {width} bits")
    return value


def encode(
    mnemonic: str,
    rs: int = 0,
    rt: int = 0,
    rd: int = 0,
    shamt: int = 0,
    imm: int = 0,
    target: int = 0,
) -> int:
    """Encode an instruction to its 32-bit machine word.

    Args:
        mnemonic: real instruction mnemonic (pseudo-ops are expanded by the
            assembler before encoding).
        rs, rt, rd: register field values (0..31).
        shamt: shift amount (0..31) for immediate shifts.
        imm: 16-bit immediate *bit pattern* (callers sign-encode negatives
            with :func:`repro.utils.bits.from_signed` first).
        target: 26-bit jump target field (word address within the region).

    Raises:
        EncodingError: unknown mnemonic or field out of range.
    """
    spec = lookup_mnemonic(mnemonic)
    if spec is None:
        raise EncodingError(f"unknown mnemonic {mnemonic!r}")
    _check_field("rs", rs, 5)
    _check_field("rt", rt, 5)
    _check_field("rd", rd, 5)
    _check_field("shamt", shamt, 5)

    if spec.fmt is Format.R:
        assert spec.funct is not None
        return (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | spec.funct
    if spec.fmt is Format.REGIMM:
        assert spec.regimm_rt is not None
        _check_field("imm", imm, 16)
        return (spec.opcode << 26) | (rs << 21) | (spec.regimm_rt << 16) | imm
    if spec.fmt is Format.I:
        _check_field("imm", imm, 16)
        return (spec.opcode << 26) | (rs << 21) | (rt << 16) | imm
    if spec.fmt is Format.J:
        _check_field("target", target, 26)
        return (spec.opcode << 26) | target
    raise EncodingError(f"unhandled format {spec.fmt}")  # pragma: no cover


@dataclass(frozen=True)
class Decoded:
    """A decoded instruction word.

    Attributes mirror the raw bit fields; ``spec`` identifies the
    instruction.  ``imm`` is the raw (not sign-extended) 16-bit field and
    ``target`` the raw 26-bit field; extension is the executor's job because
    it depends on the instruction.
    """

    word: int
    spec: InstructionSpec
    rs: int
    rt: int
    rd: int
    shamt: int
    imm: int
    target: int

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic


def decode(word: int) -> Decoded:
    """Decode a 32-bit machine word.

    Raises:
        EncodingError: the word is not a supported instruction.
    """
    if not 0 <= word <= mask(32):
        raise EncodingError(f"word {word:#x} is not a 32-bit value")
    opcode = extract(word, 31, 26)
    rs = extract(word, 25, 21)
    rt = extract(word, 20, 16)
    rd = extract(word, 15, 11)
    shamt = extract(word, 10, 6)
    funct = extract(word, 5, 0)
    imm = extract(word, 15, 0)
    target = extract(word, 25, 0)

    if opcode == 0:
        spec = R_BY_FUNCT.get(funct)
        if spec is None:
            raise EncodingError(f"unknown R-format funct {funct:#04x} in {word:#010x}")
    elif opcode == 1:
        spec = REGIMM_BY_RT.get(rt)
        if spec is None:
            raise EncodingError(f"unknown REGIMM rt {rt:#04x} in {word:#010x}")
    else:
        spec = BY_OPCODE.get(opcode)
        if spec is None:
            raise EncodingError(f"unknown opcode {opcode:#04x} in {word:#010x}")

    return Decoded(
        word=word, spec=spec, rs=rs, rt=rt, rd=rd, shamt=shamt, imm=imm, target=target
    )
