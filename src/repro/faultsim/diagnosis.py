"""Fault dictionaries and response-based diagnosis.

Once the self-test response stream flags a defective part, the natural next
question is *which* fault explains the observed failures.  A fault
dictionary records, for every collapsed fault, the complete set of test
patterns whose observed response it corrupts; diagnosis then ranks faults
by how well their failure signatures match the tester's observation.

This implementation targets pattern-set (combinational) campaigns, where a
signature is simply the set of failing pattern indices — the classic
full-response dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence

from repro.errors import FaultSimError
from repro.faultsim.differential import DifferentialFaultSimulator
from repro.faultsim.faults import FaultList, build_fault_list
from repro.faultsim.simulator import LogicSimulator
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class Candidate:
    """One diagnosis candidate.

    Attributes:
        fault_index: representative fault index in the dictionary's list.
        description: human-readable fault location.
        score: Jaccard similarity between the fault's signature and the
            observed failing set (1.0 = exact match).
        exact: True when the signatures are identical.
    """

    fault_index: int
    description: str
    score: float
    exact: bool


@dataclass
class FaultDictionary:
    """Full-response fault dictionary for a combinational pattern set.

    Attributes:
        netlist: circuit the dictionary describes.
        patterns: the applied pattern set (order defines pattern indices).
        observe: per-pattern observed output ports (None = all).
    """

    netlist: Netlist
    patterns: Sequence[Mapping[str, int]]
    observe: Sequence[Sequence[str]] | None = None
    fault_list: FaultList | None = None
    signatures: dict[int, frozenset[int]] = field(default_factory=dict)

    def build(self) -> "FaultDictionary":
        """Simulate every collapsed fault to completion and store its
        failing-pattern signature.  Undetected faults get the empty set."""
        if self.netlist.dffs:
            raise FaultSimError(
                "fault dictionaries are built over pattern sets; "
                f"{self.netlist.name!r} is sequential"
            )
        if not self.patterns:
            raise FaultSimError("no patterns to build the dictionary from")
        if self.fault_list is None:
            self.fault_list = build_fault_list(self.netlist)
        sim = LogicSimulator(self.netlist)
        trace = sim.run_parallel_sessions([[dict(p)] for p in self.patterns])
        diff = DifferentialFaultSimulator(self.netlist)
        observe_nets = None
        if self.observe is not None:
            if len(self.observe) != len(self.patterns):
                raise FaultSimError("observe list must match pattern count")
            port_masks: dict[str, int] = {}
            for lane, ports in enumerate(self.observe):
                for port in ports:
                    port_masks[port] = port_masks.get(port, 0) | (1 << lane)
            observe_nets = diff.observe_nets_for(
                [port_masks], trace.n_cycles, trace.lanes.mask
            )
        for rep in self.fault_list.class_representatives():
            fault = self.fault_list.fault(rep)
            detection = diff.simulate_fault(
                fault, trace, observe_nets, stop_at_first=False
            )
            failing = frozenset(
                trace.lanes.set_lanes(detection.lanes)
            ) if detection.detected else frozenset()
            self.signatures[rep] = failing
        return self

    # ------------------------------------------------------------ queries

    def signature_of(self, fault_index: int) -> frozenset[int]:
        try:
            return self.signatures[fault_index]
        except KeyError:
            raise FaultSimError(
                f"fault {fault_index} not in dictionary (not a class "
                f"representative, or build() not called)"
            ) from None

    def distinguishable_pairs(self) -> float:
        """Diagnostic resolution: fraction of detected-fault pairs whose
        signatures differ (1.0 = every pair distinguishable)."""
        detected = [s for s in self.signatures.values() if s]
        if len(detected) < 2:
            return 1.0
        from collections import Counter

        sizes = Counter(detected)
        total = len(detected) * (len(detected) - 1) // 2
        same = sum(n * (n - 1) // 2 for n in sizes.values())
        return 1.0 - same / total

    def diagnose(
        self, failing_patterns: Iterable[int], top: int = 10
    ) -> list[Candidate]:
        """Rank candidate faults against an observed failing-pattern set.

        Args:
            failing_patterns: pattern indices the tester saw fail.
            top: maximum number of candidates returned.

        Returns:
            Candidates sorted by descending Jaccard score (exact matches
            first).  An empty observation returns no candidates.
        """
        observed = frozenset(failing_patterns)
        if not observed:
            return []
        assert self.fault_list is not None
        candidates: list[Candidate] = []
        for rep, signature in self.signatures.items():
            if not signature:
                continue
            union = len(signature | observed)
            inter = len(signature & observed)
            if inter == 0:
                continue
            score = inter / union
            candidates.append(
                Candidate(
                    fault_index=rep,
                    description=self.fault_list.fault(rep).describe(
                        self.netlist
                    ),
                    score=score,
                    exact=signature == observed,
                )
            )
        candidates.sort(key=lambda c: (-c.exact, -c.score, c.fault_index))
        return candidates[:top]
