"""PCL component: program-counter logic.

Holds the PC register, the +4 incrementer, the branch-condition evaluator
(equality comparator, sign/zero tests) and the next-PC select.  The branch
*target* arrives pre-computed (the ALU produces ``PC+4 + (imm << 2)``; for
JR it is the register value, for J the paste-up of the index field) — PCL
decides whether to take it.
"""

from __future__ import annotations

from repro.library.adders import equality_comparator, incrementer
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType
from repro.netlist.netlist import CONST0, CONST1, DFF, Netlist
from repro.plasma.controls import BranchType
from repro.utils.bits import to_signed


def build_pclogic(name: str = "PCL") -> Netlist:
    """Build the PC-logic netlist.

    Ports:
        * in: ``rs_data`` (32), ``rt_data`` (32), ``branch_type`` (3),
          ``branch_target`` (32), ``pause`` (1).
        * out: ``pc`` (32), ``pc_plus4`` (32), ``take_branch`` (1).

    ``pc`` resets to 0 (the Plasma reset vector) and holds while ``pause``.
    """
    b = NetlistBuilder(name)
    rs_data = b.input("rs_data", 32)
    rt_data = b.input("rt_data", 32)
    branch_type = b.input("branch_type", 3)
    branch_target = b.input("branch_target", 32)
    pause = b.input("pause", 1)[0]

    pc = [b.netlist.new_net(f"pc[{i}]") for i in range(32)]
    pc_plus4 = incrementer(b, pc, step_bit=2)

    eq = equality_comparator(b, rs_data, rt_data)
    sign = rs_data[31]
    zero = b.is_zero(rs_data)
    lez = b.or_(sign, zero)
    conditions = [
        [CONST0],  # NONE
        [eq],  # EQ
        [b.not_(eq)],  # NE
        [lez],  # LEZ
        [b.not_(lez)],  # GTZ
        [sign],  # LTZ
        [b.not_(sign)],  # GEZ
        [CONST1],  # ALWAYS
    ]
    take = b.mux_tree(branch_type, conditions)[0]

    pc_next = b.mux_word(take, pc_plus4, branch_target)
    not_pause = b.not_(pause)
    for i in range(32):
        held = b.netlist.add_gate(GateType.MUX2, [pc[i], pc_next[i], not_pause])
        b.netlist.dffs.append(DFF(len(b.netlist.dffs), held, pc[i], 0))

    b.output("pc", pc)
    b.output("pc_plus4", pc_plus4)
    b.output("take_branch", take)
    return b.build()


def branch_taken_reference(
    branch_type: int, rs_data: int, rt_data: int
) -> bool:
    """Reference for the branch-condition evaluator."""
    rs = to_signed(rs_data, 32)
    bt = BranchType(branch_type)
    if bt is BranchType.NONE:
        return False
    if bt is BranchType.EQ:
        return rs_data == rt_data
    if bt is BranchType.NE:
        return rs_data != rt_data
    if bt is BranchType.LEZ:
        return rs <= 0
    if bt is BranchType.GTZ:
        return rs > 0
    if bt is BranchType.LTZ:
        return rs < 0
    if bt is BranchType.GEZ:
        return rs >= 0
    return True  # ALWAYS
