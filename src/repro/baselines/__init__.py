"""Baselines the paper compares against.

* :mod:`~repro.baselines.random_instructions` — functional self-test with
  pseudorandom instruction/operand sequences (the [2]-[5] family of prior
  work): large programs, low structural coverage per downloaded word.
* :mod:`~repro.baselines.chen_dey` — the Chen & Dey [6] software-based
  self-test style: per-component *self-test signatures* expanded on-chip by
  a software-emulated LFSR into pseudorandom patterns, applied by
  component-specific test-application loops.  Small-ish download, very
  large execution time — the trade-off the paper's deterministic routines
  beat.

Both baselines produce the same campaign artefacts as the methodology
(program statistics + per-component fault coverage) so the comparison
benches can report the paper's relative claims.
"""

from repro.baselines.random_instructions import RandomInstructionSelfTest
from repro.baselines.chen_dey import ChenDeySelfTest

__all__ = ["RandomInstructionSelfTest", "ChenDeySelfTest"]
