"""Flat structural netlist: nets, gates, flip-flops, ports.

Nets are dense integer ids.  Net 0 is the constant-0 net and net 1 the
constant-1 net; both always exist.  Every other net must be driven by
exactly one of: a primary input port, a gate output, or a DFF Q output.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import NetlistError
from repro.netlist.gates import GateType, validate_arity

CONST0 = 0
CONST1 = 1


class PortDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class Gate:
    """A combinational gate instance.

    Attributes:
        index: position in :attr:`Netlist.gates` (stable id).
        gtype: gate primitive type.
        output: driven net id.
        inputs: input net ids in declaration order.
    """

    index: int
    gtype: GateType
    output: int
    inputs: tuple[int, ...]


@dataclass(frozen=True)
class DFF:
    """A D flip-flop.

    Attributes:
        index: position in :attr:`Netlist.dffs`.
        d: data input net.
        q: output net (driven by this DFF).
        init: reset value (0/1).
    """

    index: int
    d: int
    q: int
    init: int = 0


@dataclass(frozen=True)
class Port:
    """A named bus port: LSB-first net list."""

    name: str
    direction: PortDirection
    nets: tuple[int, ...]

    @property
    def width(self) -> int:
        return len(self.nets)


@dataclass
class Netlist:
    """A flat gate-level circuit.

    Use :class:`~repro.netlist.builder.NetlistBuilder` for word-level
    construction; this class holds the final structure and the low-level
    mutation primitives.
    """

    name: str
    gates: list[Gate] = field(default_factory=list)
    dffs: list[DFF] = field(default_factory=list)
    ports: dict[str, Port] = field(default_factory=dict)
    net_names: dict[int, str] = field(default_factory=dict)
    _n_nets: int = 2  # nets 0 and 1 are the constants

    # ------------------------------------------------------------- nets

    @property
    def n_nets(self) -> int:
        """Total number of nets, including the two constants."""
        return self._n_nets

    def new_net(self, name: str | None = None) -> int:
        """Allocate a fresh net id."""
        net = self._n_nets
        self._n_nets += 1
        if name is not None:
            self.net_names[net] = name
        return net

    def new_bus(self, width: int, name: str | None = None) -> list[int]:
        """Allocate ``width`` fresh nets (LSB first)."""
        if name is None:
            return [self.new_net() for _ in range(width)]
        return [self.new_net(f"{name}[{i}]") for i in range(width)]

    def _check_net(self, net: int) -> None:
        if not 0 <= net < self._n_nets:
            raise NetlistError(f"net {net} does not exist in {self.name!r}")

    # ------------------------------------------------------------ gates

    def add_gate(
        self, gtype: GateType, inputs: list[int] | tuple[int, ...],
        output: int | None = None, name: str | None = None,
    ) -> int:
        """Add a gate; returns the output net (allocated if not given)."""
        validate_arity(gtype, len(inputs))
        for net in inputs:
            self._check_net(net)
        if output is None:
            output = self.new_net(name)
        else:
            self._check_net(output)
        self.gates.append(Gate(len(self.gates), gtype, output, tuple(inputs)))
        return output

    def add_dff(self, d: int, init: int = 0, name: str | None = None) -> int:
        """Add a D flip-flop clocked by the implicit global clock.

        Returns:
            The Q output net.
        """
        self._check_net(d)
        if init not in (0, 1):
            raise NetlistError(f"DFF init must be 0 or 1, got {init}")
        q = self.new_net(name)
        self.dffs.append(DFF(len(self.dffs), d, q, init))
        return q

    # ------------------------------------------------------------ ports

    def add_input(self, name: str, width: int) -> list[int]:
        """Declare an input port of ``width`` bits; returns its nets."""
        if name in self.ports:
            raise NetlistError(f"duplicate port {name!r}")
        nets = self.new_bus(width, name)
        self.ports[name] = Port(name, PortDirection.INPUT, tuple(nets))
        return nets

    def add_output(self, name: str, nets: list[int]) -> None:
        """Declare an output port made of existing ``nets`` (LSB first)."""
        if name in self.ports:
            raise NetlistError(f"duplicate port {name!r}")
        for net in nets:
            self._check_net(net)
        self.ports[name] = Port(name, PortDirection.OUTPUT, tuple(nets))

    def input_ports(self) -> list[Port]:
        return [p for p in self.ports.values() if p.direction is PortDirection.INPUT]

    def output_ports(self) -> list[Port]:
        return [p for p in self.ports.values() if p.direction is PortDirection.OUTPUT]

    def port(self, name: str) -> Port:
        try:
            return self.ports[name]
        except KeyError:
            raise NetlistError(f"no port {name!r} in {self.name!r}") from None

    # ---------------------------------------------------------- queries

    def drivers(self) -> dict[int, str]:
        """Map each driven net to a description of its driver.

        Used by the linter; constants and input ports are drivers too.
        """
        result: dict[int, str] = {CONST0: "const0", CONST1: "const1"}
        for port in self.input_ports():
            for net in port.nets:
                self._note_driver(result, net, f"input {port.name}")
        for gate in self.gates:
            self._note_driver(result, gate.output, f"gate {gate.index}")
        for dff in self.dffs:
            self._note_driver(result, dff.q, f"dff {dff.index}")
        return result

    @staticmethod
    def _note_driver(result: dict[int, str], net: int, who: str) -> None:
        if net in result:
            raise NetlistError(f"net {net} driven by both {result[net]} and {who}")
        result[net] = who

    def fanout_map(self) -> dict[int, list[int]]:
        """Map net id -> indices of gates that read it."""
        fanout: dict[int, list[int]] = {}
        for gate in self.gates:
            for net in gate.inputs:
                fanout.setdefault(net, []).append(gate.index)
        return fanout

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"{self.name}: {len(self.gates)} gates, {len(self.dffs)} DFFs, "
            f"{self._n_nets} nets, "
            f"in={[p.name for p in self.input_ports()]}, "
            f"out={[p.name for p in self.output_ports()]}"
        )
