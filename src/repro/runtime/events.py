"""Structured per-job event log for campaign health auditing.

Every job the runner touches emits a small, machine-readable event stream
(start / retry / success / failure / timeout / crash / cached / degraded)
with attempt numbers and wall-clock durations.  Benchmarks and CI read the
stream to decide whether a campaign ran clean, limped through retries, or
degraded.

The log is also a live feed: :meth:`EventLog.subscribe` registers a
callback invoked synchronously on every :meth:`EventLog.emit`, from
whichever thread emitted.  The campaign service tails a job's log this
way and re-publishes the events over Server-Sent Events; subscriber
errors are swallowed so an observer can never fail a campaign.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from collections.abc import Callable
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: Event kinds in lifecycle order.  ``cached`` means the job was skipped
#: because a journaled result was reused; ``degraded`` means the job
#: permanently failed and the campaign continued without it.  The last
#: four kinds (``queued`` / ``running`` / ``finished`` / ``cancelled``)
#: are emitted by the campaign service for whole-campaign lifecycle
#: transitions; the runner and scheduler never emit them.
EVENT_KINDS = (
    "start",
    "retry",
    "success",
    "failure",
    "timeout",
    "crash",
    "cached",
    "degraded",
    "queued",
    "running",
    "finished",
    "cancelled",
)


@dataclass
class JobEvent:
    """One line of the campaign health journal.

    ``throughput`` is populated by the sharded scheduler: work items
    (fault classes) graded per second for this job, so a scaling run can
    be audited shard by shard straight from the event log.
    """

    job: str
    kind: str
    attempt: int = 0
    duration: float | None = None
    detail: str = ""
    timestamp: float = 0.0
    throughput: float | None = None

    def to_json(self) -> str:
        payload = {k: v for k, v in asdict(self).items() if v not in (None, "")}
        return json.dumps(payload, sort_keys=True)


@dataclass
class EventLog:
    """In-memory event list with an optional JSONL sink.

    The sink is append-only and flushed per event so a crashed campaign
    still leaves an auditable trail.
    """

    path: Path | None = None
    events: list[JobEvent] = field(default_factory=list)
    _subscribers: list[Callable[[JobEvent], None]] = field(
        default_factory=list, repr=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    # ------------------------------------------------------- subscription

    def subscribe(
        self, callback: Callable[[JobEvent], None]
    ) -> Callable[[JobEvent], None]:
        """Register a live observer, called once per emitted event.

        Callbacks run synchronously in the emitting thread (grading runs
        in worker threads under the service, so observers that touch an
        event loop must bridge via ``call_soon_threadsafe``).  A raising
        callback is ignored — observation can never fail a campaign.
        Returns the callback so it can be handed back to
        :meth:`unsubscribe`.
        """
        with self._lock:
            self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[[JobEvent], None]) -> None:
        """Remove a subscriber; unknown callbacks are ignored."""
        with self._lock:
            with contextlib.suppress(ValueError):
                self._subscribers.remove(callback)

    def __getstate__(self) -> dict:
        """Pickle without live subscribers or the lock.

        The log is shipped to pool workers inside ``RuntimeConfig``;
        parent-side observers are process-local by definition.
        """
        state = self.__dict__.copy()
        state["_subscribers"] = []
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._subscribers = []
        self._lock = threading.Lock()

    def emit(
        self,
        job: str,
        kind: str,
        attempt: int = 0,
        duration: float | None = None,
        detail: str = "",
        throughput: float | None = None,
    ) -> JobEvent:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        event = JobEvent(
            job=job, kind=kind, attempt=attempt, duration=duration,
            detail=detail, timestamp=time.time(), throughput=throughput,
        )
        self.events.append(event)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(event.to_json() + "\n")
                handle.flush()
        with self._lock:
            subscribers = list(self._subscribers)
        for callback in subscribers:
            with contextlib.suppress(Exception):
                callback(event)
        return event

    def for_job(self, job: str) -> list[JobEvent]:
        return [e for e in self.events if e.job == job]

    def kinds(self, job: str | None = None) -> list[str]:
        """Event-kind sequence, optionally filtered to one job."""
        events = self.events if job is None else self.for_job(job)
        return [e.kind for e in events]

    def summary(self) -> dict[str, int]:
        """Event counts per kind — the one-glance campaign health check."""
        counts = {kind: 0 for kind in EVENT_KINDS}
        for event in self.events:
            counts[event.kind] += 1
        return counts
