"""Packed-engine specifics: lane layout, repacking, lane-width knob.

Cross-engine verdict equivalence over the real Plasma components lives
in :mod:`tests.faultsim.test_engines` (``ENGINES`` includes
``"packed"``); this module pins the packed-only machinery — the pattern
span schedule, the replication ladder, odd lane widths, the
``GradeOptions.lanes`` plumbing — and equivalence at extreme configs the
shared matrix doesn't reach.
"""

import random

import pytest

from repro.errors import FaultSimError
from repro.faultsim import GradeOptions, build_fault_list, grade
from repro.faultsim.engine import get_engine
from repro.faultsim.observe import ObservePlan
from repro.faultsim.packed import (
    PACKED_CHUNK_SCHEDULE,
    PackedEngine,
    _packed_spans,
    _replicate,
)
from repro.library import build_alu, build_register_file
from repro.netlist.builder import NetlistBuilder


def _adder4():
    b = NetlistBuilder("adder4")
    a = b.input("a", 4)
    x = b.input("x", 4)
    cin = b.input("cin", 1)[0]
    from repro.library.adders import ripple_carry_adder

    total, cout = ripple_carry_adder(b, a, x, cin)
    b.output("sum", total)
    b.output("cout", cout)
    return b.build()


def _adder_patterns(n=300, seed=13):
    rng = random.Random(seed)
    return [
        dict(a=rng.getrandbits(4), x=rng.getrandbits(4),
             cin=rng.randrange(2))
        for _ in range(n)
    ]


def _regfile_cycles(n=40, seed=22):
    rng = random.Random(seed)
    return [
        dict(
            wr_addr=rng.randrange(4), wr_data=rng.getrandbits(4),
            wr_en=rng.randrange(2), rd_addr_a=rng.randrange(4),
            rd_addr_b=rng.randrange(4),
        )
        for _ in range(n)
    ]


class TestSpans:
    @pytest.mark.parametrize("n_lanes", (1, 7, 8, 31, 32, 100, 5000, 20000))
    def test_spans_cover_exactly_and_stay_byte_aligned(self, n_lanes):
        spans = list(_packed_spans(n_lanes))
        covered = 0
        for base, width in spans:
            assert base == covered
            assert width % 8 == 0
            # Padding never exceeds the byte-rounding of the real span.
            real = min(width, n_lanes - base)
            assert width - real < 8
            covered += real
        assert covered == n_lanes

    def test_schedule_starts_narrow_and_grows(self):
        exact = sum(PACKED_CHUNK_SCHEDULE) + PACKED_CHUNK_SCHEDULE[-1]
        widths = [w for _base, w in _packed_spans(exact)]
        assert widths[0] == PACKED_CHUNK_SCHEDULE[0]
        assert max(widths) == PACKED_CHUNK_SCHEDULE[-1]
        # Non-decreasing: narrow passes first, wide passes only for the
        # stubborn tail (the final span of a ragged count may truncate).
        assert widths == sorted(widths)


class TestReplicate:
    @pytest.mark.parametrize("width,n_groups", [
        (8, 1), (8, 2), (8, 3), (16, 7), (32, 64), (24, 5),
    ])
    def test_matches_multiplication_by_replication_constant(
        self, width, n_groups
    ):
        rng = random.Random(width * 100 + n_groups)
        constant = sum(1 << (g * width) for g in range(n_groups))
        full = (1 << (n_groups * width)) - 1
        for _ in range(20):
            value = rng.getrandbits(width)
            assert _replicate(value, width, n_groups, full) == (
                value * constant
            ) & full


class TestLaneWidths:
    @pytest.mark.parametrize("lanes", (2, 3, 17, 64, 256))
    def test_combinational_verdicts_lane_invariant(self, lanes):
        netlist = _adder4()
        patterns = _adder_patterns()
        want = grade(netlist, patterns,
                     options=GradeOptions(engine="differential"))
        got = grade(netlist, patterns,
                    options=GradeOptions(engine="packed", lanes=lanes))
        assert got.detected == want.detected
        assert {r: (d.detected, d.excited)
                for r, d in got.detections.items()} == {
            r: (d.detected, d.excited)
            for r, d in want.detections.items()
        }

    @pytest.mark.parametrize("lanes", (2, 64))
    def test_sequential_verdicts_and_cycles_lane_invariant(self, lanes):
        netlist = build_register_file(n_registers=4, width=4)
        cycles = _regfile_cycles()
        want = grade(netlist, cycles,
                     options=GradeOptions(engine="differential"))
        got = grade(netlist, cycles,
                    options=GradeOptions(engine="packed", lanes=lanes))
        assert got.detected == want.detected
        for rep, d in want.detections.items():
            g = got.detections[rep]
            assert (g.detected, g.excited) == (d.detected, d.excited)
            if d.detected:
                assert g.cycle == d.cycle

    def test_options_lanes_reaches_the_engine(self):
        engine = get_engine("packed")
        engine.configure(GradeOptions(lanes=32))
        assert engine.lanes == 32
        engine.configure(GradeOptions())  # restore the default

    def test_too_few_lanes_rejected(self):
        with pytest.raises(FaultSimError, match="lane groups"):
            PackedEngine(lanes=1)


class TestOrderPreservation:
    def test_only_order_is_preserved_not_recanonicalised(self):
        # Cone fusion feeds `only` in simulation order; the packed engine
        # must grade exactly that order (verdicts are order-invariant,
        # locality is not).
        netlist = build_alu(width=4)
        fault_list = build_fault_list(netlist)
        reps = list(fault_list.class_representatives())
        shuffled = list(reps)
        random.Random(3).shuffle(shuffled)
        patterns = [
            dict(a=a, b=15 - a, func=a % 16) for a in range(24)
        ]
        plan = ObservePlan.from_spec(None, len(patterns), netlist)
        engine = PackedEngine(lanes=16)
        forward = engine.grade(
            netlist, patterns, fault_list, plan, only=reps
        )
        scrambled = engine.grade(
            netlist, patterns, fault_list, plan, only=shuffled
        )
        assert scrambled.detected == forward.detected
        assert set(scrambled.detections) == set(forward.detections)


class TestCollapsedPacked:
    def test_collapse_on_equals_off(self):
        netlist = build_alu(width=4)
        patterns = [
            dict(a=a * 5 % 16, b=a * 3 % 16, func=a % 16) for a in range(30)
        ]
        plain = grade(netlist, patterns,
                      options=GradeOptions(engine="packed"))
        collapsed = grade(
            netlist, patterns,
            options=GradeOptions(engine="packed", collapse=True),
        )
        assert collapsed.detected == plain.detected
        assert collapsed.fault_coverage == plain.fault_coverage
        assert collapsed.n_simulated <= plain.n_simulated
        assert collapsed.collapse_hash
