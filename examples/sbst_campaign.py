#!/usr/bin/env python3
"""The paper's full flow: classification, priority, Phase A/B programs,
fault-grading campaign, Tables 2-5.

By default the expensive sequential components are skipped so the demo
finishes in seconds; pass ``--full`` for the complete ten-component run
(a few minutes — this is what the Table 5 benchmark does).

Run with::

    python examples/sbst_campaign.py [--full] [--phases A|AB|ABC]
"""

import argparse

from repro.core.campaign import run_campaign
from repro.core.priority import accessibility, test_development_order
from repro.reporting.tables import (
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)

FAST_COMPONENTS = ["ALU", "BSH", "CTRL", "BMUX", "GL"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="grade all ten components (minutes)")
    parser.add_argument("--phases", default="AB",
                        help="final phase configuration (A, AB or ABC)")
    args = parser.parse_args()
    components = None if args.full else FAST_COMPONENTS

    print("=" * 64)
    print("Step 1 - component classification (Table 2)")
    print("=" * 64)
    print(render_table2())

    print()
    print("=" * 64)
    print("Step 2 - gate counts and test priority (Table 3 + Table 1)")
    print("=" * 64)
    print(render_table3())
    print("\ntest development order (class, size, accessibility):")
    for info in test_development_order():
        scores = accessibility(info.name)
        print(f"  {info.name:6s} {info.component_class.value:10s} "
              f"accessibility={scores.grade}")

    print()
    print("=" * 64)
    print("Step 3 - self-test programs + fault grading "
          f"(components: {'all' if args.full else ','.join(components)})")
    print("=" * 64)
    outcomes = {}
    for phases in ("A", args.phases) if args.phases != "A" else ("A",):
        print(f"\nPhase {phases} campaign:")
        outcomes[phases] = run_campaign(
            phases, components=components, verbose=True
        )

    print()
    print("=" * 64)
    print("Table 4 - self-test program statistics")
    print("=" * 64)
    print(render_table4(outcomes))

    print()
    print("=" * 64)
    print("Table 5 - fault coverage / MOFC per phase")
    print("=" * 64)
    print(render_table5(outcomes))
    if not args.full:
        print("\n(note: subset run; use --full for the complete Table 5)")


if __name__ == "__main__":
    main()
