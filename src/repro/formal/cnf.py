"""CNF formula container shared by the encoder, the solver and benches.

Variables are positive integers starting at 1; a literal is ``+v`` for
the variable and ``-v`` for its negation (DIMACS convention).  The
:class:`CNF` object is deliberately dumb storage: the Tseitin encoder
(:mod:`repro.formal.encode`) appends clauses through the
:class:`ClauseSink` protocol, and :class:`repro.formal.sat.SatSolver`
consumes them.  Keeping the formula materialised (rather than streaming
straight into the solver) costs a few megabytes on the largest miters
and buys reproducible artifacts: ``bench_sat`` can report formula sizes
and :meth:`CNF.to_dimacs` writes the standard exchange format.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Protocol


class ClauseSink(Protocol):
    """Anything that can allocate variables and accept clauses."""

    def new_var(self) -> int:
        """Return a fresh positive variable id."""
        ...  # pragma: no cover - protocol

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add the disjunction of ``lits`` (DIMACS-signed literals)."""
        ...  # pragma: no cover - protocol


class CNF:
    """A conjunction of clauses over DIMACS-signed integer literals."""

    def __init__(self) -> None:
        self.n_vars: int = 0
        self.clauses: list[tuple[int, ...]] = []

    def new_var(self) -> int:
        self.n_vars += 1
        return self.n_vars

    def add_clause(self, lits: Iterable[int]) -> None:
        clause = tuple(lits)
        for lit in clause:
            if lit == 0 or abs(lit) > self.n_vars:
                raise ValueError(f"literal {lit} names no allocated variable")
        self.clauses.append(clause)

    @property
    def n_clauses(self) -> int:
        return len(self.clauses)

    def to_dimacs(self) -> str:
        """Render the formula in DIMACS ``cnf`` format."""
        lines = [f"p cnf {self.n_vars} {len(self.clauses)}"]
        lines.extend(
            " ".join(str(lit) for lit in clause) + " 0"
            for clause in self.clauses
        )
        return "\n".join(lines) + "\n"
