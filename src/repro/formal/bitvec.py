"""Symbolic bit-vector DSL for writing behavioral golden models.

:class:`SpecBuilder` wraps a :class:`~repro.netlist.netlist.Netlist`
and hands out :class:`BV` words — immutable LSB-first bit vectors with
the usual operator algebra (``& | ^ ~ + -``, comparisons, muxes,
constant shifts, slicing/concatenation).  A golden model written in
this DSL *bit-blasts* into a plain gate netlist, which the CEC miter
(:mod:`repro.formal.cec`) then compares against the hand-built
structural implementation.

Sequential components use the combinational-cut convention: the spec
declares a ``_state`` input whose bits mirror the implementation's DFF
order (Q values) and a ``_state_next`` output carrying the D values.

The DSL intentionally produces *architecturally naive* logic — ripple
adders from the textbook equations, chains of 2:1 muxes for selects,
per-case equality decoders — so that proving a spec equivalent to the
optimised implementation netlist is a meaningful check rather than a
structural identity.  The one exception is :meth:`SpecBuilder.
tree_select`, which replicates the pruned mux-tree *function* of
:meth:`repro.netlist.builder.NetlistBuilder.mux_tree` (including its
out-of-range don't-care behaviour, which no reference model defines).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import CONST0, CONST1, Netlist

#: Reserved port names of the combinational-cut state convention.
STATE_IN = "_state"
STATE_OUT = "_state_next"


@dataclass(frozen=True)
class BV:
    """An immutable little-endian bit vector bound to a SpecBuilder."""

    spec: SpecBuilder
    nets: tuple[int, ...]

    @property
    def width(self) -> int:
        return len(self.nets)

    # -------------------------------------------------------- bitwise

    def _zip(self, other: BV | int) -> tuple[BV, BV]:
        rhs = self.spec.coerce(other, self.width)
        if rhs.width != self.width:
            raise NetlistError(
                f"width mismatch: {self.width} vs {rhs.width}"
            )
        return self, rhs

    def __and__(self, other: BV | int) -> BV:
        a, b = self._zip(other)
        builder = self.spec.builder
        return self.spec.bv(builder.and_word(list(a.nets), list(b.nets)))

    def __or__(self, other: BV | int) -> BV:
        a, b = self._zip(other)
        builder = self.spec.builder
        return self.spec.bv(builder.or_word(list(a.nets), list(b.nets)))

    def __xor__(self, other: BV | int) -> BV:
        a, b = self._zip(other)
        builder = self.spec.builder
        return self.spec.bv(builder.xor_word(list(a.nets), list(b.nets)))

    def __invert__(self) -> BV:
        return self.spec.bv(self.spec.builder.not_word(list(self.nets)))

    # ----------------------------------------------------- arithmetic

    def add_carry(self, other: BV | int, carry_in: int = 0) -> tuple[BV, BV]:
        """Ripple-carry sum and the carry-out bit."""
        a, b = self._zip(other)
        builder = self.spec.builder
        carry = CONST1 if carry_in else CONST0
        out = []
        for x, y in zip(a.nets, b.nets, strict=True):
            out.append(builder.xor(x, y, carry))
            carry = builder.or_(
                builder.and_(x, y),
                builder.and_(carry, builder.xor(x, y)),
            )
        return self.spec.bv(out), self.spec.bv([carry])

    def __add__(self, other: BV | int) -> BV:
        return self.add_carry(other)[0]

    def sub_carry(self, other: BV | int) -> tuple[BV, BV]:
        """``a - b`` and the carry-out (1 means no borrow, i.e. a >= b
        unsigned)."""
        rhs = self.spec.coerce(other, self.width)
        return self.add_carry(~rhs, carry_in=1)

    def __sub__(self, other: BV | int) -> BV:
        return self.sub_carry(other)[0]

    def negate(self) -> BV:
        return self.spec.const(0, self.width) - self

    # ---------------------------------------------------- comparisons

    def eq(self, other: BV | int) -> BV:
        a, b = self._zip(other)
        builder = self.spec.builder
        diff = builder.xor_word(list(a.nets), list(b.nets))
        return self.spec.bv([builder.is_zero(diff)])

    def ne(self, other: BV | int) -> BV:
        return ~self.eq(other)

    def ult(self, other: BV | int) -> BV:
        """Unsigned a < b (borrow out of a - b)."""
        _, carry = self.sub_carry(other)
        return ~carry

    def slt(self, other: BV | int) -> BV:
        """Signed a < b (two's complement)."""
        a, b = self._zip(other)
        diff = a - b
        sign_a, sign_b = a[-1], b[-1]
        # Signs differ: a < b iff a is negative.  Same sign: no
        # overflow is possible, the difference's sign decides.
        return self.spec.ite(sign_a ^ sign_b, sign_a, diff[-1])

    def is_zero(self) -> BV:
        return self.spec.bv([self.spec.builder.is_zero(list(self.nets))])

    def any(self) -> BV:
        return ~self.is_zero()

    def all(self) -> BV:
        return self.spec.bv([self.spec.builder.reduce_and(list(self.nets))])

    # -------------------------------------------------------- slicing

    def __getitem__(self, index: int | slice) -> BV:
        if isinstance(index, slice):
            return self.spec.bv(list(self.nets[index]))
        return self.spec.bv([self.nets[index]])

    def zext(self, width: int) -> BV:
        return self.spec.bv(
            self.spec.builder.zero_extend(list(self.nets), width)
        )

    def sext(self, width: int) -> BV:
        return self.spec.bv(
            self.spec.builder.sign_extend(list(self.nets), width)
        )

    def repeat(self, count: int) -> BV:
        """Replicate a 1-bit vector ``count`` times."""
        if self.width != 1:
            raise NetlistError("repeat() needs a 1-bit vector")
        return self.spec.bv(list(self.nets) * count)

    def shl(self, amount: int) -> BV:
        """Logical left shift by a constant, width preserved."""
        nets = [CONST0] * amount + list(self.nets)
        return self.spec.bv(nets[: self.width])

    def shr(self, amount: int, fill: BV | None = None) -> BV:
        """Right shift by a constant; ``fill`` (1-bit) feeds the MSBs."""
        fill_net = CONST0 if fill is None else fill.nets[0]
        nets = list(self.nets[amount:]) + [fill_net] * min(
            amount, self.width
        )
        return self.spec.bv(nets)

    def reversed_bits(self) -> BV:
        return self.spec.bv(list(reversed(self.nets)))


class SpecBuilder:
    """Builds a golden-model netlist through the :class:`BV` algebra."""

    def __init__(self, name: str) -> None:
        self.builder = NetlistBuilder(name)

    def bv(self, nets: Sequence[int]) -> BV:
        return BV(self, tuple(nets))

    def coerce(self, value: BV | int, width: int) -> BV:
        if isinstance(value, BV):
            return value
        return self.const(value, width)

    def const(self, value: int, width: int) -> BV:
        return self.bv(self.builder.constant(value, width))

    def input(self, name: str, width: int = 1) -> BV:
        return self.bv(self.builder.input(name, width))

    def output(self, name: str, value: BV) -> None:
        self.builder.output(name, list(value.nets))

    def state(self, width: int) -> BV:
        """Declare the cut-state input (implementation DFF order)."""
        return self.input(STATE_IN, width)

    def next_state(self, value: BV) -> None:
        """Declare the cut's next-state output (same DFF order)."""
        self.output(STATE_OUT, value)

    def build(self) -> Netlist:
        return self.builder.build()

    # ------------------------------------------------------ selection

    def ite(self, sel: BV, then: BV | int, else_: BV | int) -> BV:
        """``sel ? then : else_`` (sel must be 1 bit wide)."""
        if sel.width != 1:
            raise NetlistError("ite() selector must be 1 bit wide")
        width = then.width if isinstance(then, BV) else (
            else_.width if isinstance(else_, BV) else 0
        )
        if width == 0:
            raise NetlistError("ite() needs at least one BV branch")
        then_bv = self.coerce(then, width)
        else_bv = self.coerce(else_, width)
        word = self.builder.mux_word(
            sel.nets[0], list(else_bv.nets), list(then_bv.nets)
        )
        return self.bv(word)

    def tree_select(self, select: BV, choices: Sequence[BV]) -> BV:
        """N:1 select replicating ``NetlistBuilder.mux_tree`` semantics.

        ``choices[i]`` wins when the select bus encodes ``i``; a short
        choice list is pruned exactly like the implementation's mux
        tree, so out-of-range selects resolve to the same don't-care
        values on both sides of a miter.
        """
        if not choices:
            raise NetlistError("tree_select needs at least one choice")
        level = list(choices)
        for sel_i in range(select.width):
            sel_bit = select[sel_i]
            nxt: list[BV] = []
            for i in range(0, len(level), 2):
                if i + 1 < len(level):
                    nxt.append(self.ite(sel_bit, level[i + 1], level[i]))
                else:
                    nxt.append(level[i])
            level = nxt
            if len(level) == 1:
                break
        return level[0]

    def case_equals(self, word: BV, value: int) -> BV:
        """1-bit: ``word == value`` via per-bit match (decoder style)."""
        return self.bv(
            [self.builder.equals_const(list(word.nets), value)]
        )

    def cat(self, *parts: BV) -> BV:
        """Concatenate LSB-first: ``cat(lo, .., hi)``."""
        nets: list[int] = []
        for part in parts:
            nets.extend(part.nets)
        return self.bv(nets)
