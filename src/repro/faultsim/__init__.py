"""Single-stuck-at fault simulation engine.

The engine mirrors what a commercial tool (the paper used Mentor FlexTest)
does for fault grading:

* :mod:`~repro.faultsim.faults` — fault universe (stem faults on every net,
  branch faults on fanout gate pins) with structural equivalence collapsing;
* :mod:`~repro.faultsim.simulator` — pattern-parallel good-machine logic
  simulation over levelized netlists (one Python bitwise op evaluates a gate
  under every pattern at once);
* :mod:`~repro.faultsim.differential` — per-fault event-driven faulty
  simulation against stored good values, with fault dropping;
* :mod:`~repro.faultsim.harness` — component campaigns: apply a pattern set
  or a traced cycle sequence, honouring per-pattern/per-cycle observability;
* :mod:`~repro.faultsim.coverage` — FC / MOFC reports (the paper's Table 5
  quantities).
"""

from repro.faultsim.diagnosis import Candidate, FaultDictionary
from repro.faultsim.faults import Fault, FaultKind, FaultList, build_fault_list
from repro.faultsim.simulator import LogicSimulator, SimState
from repro.faultsim.differential import DifferentialFaultSimulator
from repro.faultsim.coverage import ComponentCoverage, CoverageSummary
from repro.faultsim.harness import (
    CombinationalCampaign,
    SequentialCampaign,
    run_combinational,
    run_sequential,
)

__all__ = [
    "Candidate",
    "FaultDictionary",
    "Fault",
    "FaultKind",
    "FaultList",
    "build_fault_list",
    "LogicSimulator",
    "SimState",
    "DifferentialFaultSimulator",
    "ComponentCoverage",
    "CoverageSummary",
    "CombinationalCampaign",
    "SequentialCampaign",
    "run_combinational",
    "run_sequential",
]
