"""Cross-engine equivalence and facade tests for the grade() API.

Every shipped Plasma component is graded with its traced phase-A stimulus
(truncated to keep tier-1 fast) through all four registered engines;
verdicts must agree fault by fault and the Table 5 rows must be
bit-identical.  The compiled engine's fault dropping and lane repacking
are additionally stress-tested against the differential engine with
deliberately tiny batch sizes and aggressive repack settings.
"""

import random
import warnings

import pytest

from repro.core.campaign import execute_self_test
from repro.core.methodology import SelfTestMethodology
from repro.errors import FaultSimError
from repro.faultsim import GradeOptions, build_fault_list, grade
from repro.faultsim.engine import (
    AUTO_MIN_DEPTH,
    CompiledEngine,
    default_engine_name,
    engine_names,
    get_engine,
)
from repro.faultsim.harness import run_combinational, run_sequential
from repro.faultsim.lowering import clear_program_cache
from repro.faultsim.observe import ObservePlan
from repro.faultsim.parallel import ParallelFaultSimulator
from repro.faultsim.trace_cache import global_trace_cache
from repro.library import build_register_file
from repro.netlist.builder import NetlistBuilder
from repro.netlist.levelize import depth
from repro.plasma.components import COMPONENTS, build_component
from repro.runtime import RuntimeConfig

ENGINES = ("differential", "batch", "compiled", "packed")

#: Stimulus truncation per component (cycles for sequential components,
#: patterns for combinational ones) — full traces make tier-1 too slow.
STIMULUS_CAP = {
    "RegF": 100, "MulD": 120, "MCTRL": 150, "PCL": 200, "PLN": 150,
    "GL": 300, "ALU": 150, "BSH": 200, "CTRL": 300, "BMUX": 300,
}

#: Fault-class sampling for the two largest components (the batch and
#: differential engines are too slow for their full universes here).
FAULT_SAMPLE = {"RegF": 350, "MulD": 400}


@pytest.fixture(scope="session")
def phase_a_specs():
    self_test = SelfTestMethodology().build_program("A")
    _, tracer, _ = execute_self_test(self_test)
    return tracer.finalize()


def _sample_skip(fault_list, sample):
    reps = fault_list.class_representatives()
    if sample is None or len(reps) <= sample:
        return frozenset()
    stride = len(reps) // sample
    keep = set(reps[::stride][:sample])
    return frozenset(r for r in reps if r not in keep)


def adder4():
    b = NetlistBuilder("adder4")
    a = b.input("a", 4)
    x = b.input("x", 4)
    cin = b.input("cin", 1)[0]
    from repro.library.adders import ripple_carry_adder

    total, cout = ripple_carry_adder(b, a, x, cin)
    b.output("sum", total)
    b.output("cout", cout)
    return b.build()


def regfile_cycles(n=40, seed=22):
    rng = random.Random(seed)
    return [
        dict(
            wr_addr=rng.randrange(4), wr_data=rng.getrandbits(4),
            wr_en=rng.randrange(2), rd_addr_a=rng.randrange(4),
            rd_addr_b=rng.randrange(4),
        )
        for _ in range(n)
    ]


class TestCrossEngineEquivalence:
    """Every component, every engine, identical verdicts and Table 5."""

    @pytest.mark.parametrize("name", [c.name for c in COMPONENTS])
    def test_engines_agree_on_component(self, name, phase_a_specs):
        stimulus, observe = phase_a_specs[name]
        cap = STIMULUS_CAP[name]
        stimulus = list(stimulus[:cap])
        if observe is not None:
            observe = list(observe[:cap])
        netlist = build_component(name)
        fault_list = build_fault_list(netlist)
        skip = _sample_skip(fault_list, FAULT_SAMPLE.get(name))
        plan = ObservePlan.from_spec(observe, len(stimulus), netlist)

        results = {
            engine: get_engine(engine).grade(
                netlist, stimulus, fault_list, plan, name=name, skip=skip
            )
            for engine in ENGINES
        }
        want = results["differential"]
        sequential = bool(netlist.dffs)
        for engine in ENGINES[1:]:
            got = results[engine]
            assert set(got.detections) == set(want.detections), engine
            for rep, d in want.detections.items():
                g = got.detections[rep]
                assert (g.detected, g.excited) == (d.detected, d.excited), (
                    engine, fault_list.fault(rep).describe(netlist)
                )
                if sequential and d.detected:
                    assert g.cycle == d.cycle, (engine, rep)
            assert got.detected == want.detected, engine
            assert got.fault_coverage == want.fault_coverage, engine
            # Bit-identical Table 5 row.
            assert got.to_component_coverage() == want.to_component_coverage()


class TestTraceCacheTransparency:
    def test_warm_regrade_bit_identical(self, phase_a_specs):
        stimulus, observe = phase_a_specs["BSH"]
        stimulus = list(stimulus[:200])
        observe = list(observe[:200]) if observe is not None else None
        netlist = build_component("BSH")
        cache = global_trace_cache()
        cache.clear()
        clear_program_cache()
        cache.reset_stats()

        opts = GradeOptions(engine="compiled", observe=observe)
        cold = grade(netlist, stimulus, options=opts)
        hits_after_cold = cache.stats.hits
        warm = grade(netlist, stimulus, options=opts)

        assert cache.stats.hits > hits_after_cold
        assert warm.detected == cold.detected
        assert warm.fault_coverage == cold.fault_coverage
        for rep, d in cold.detections.items():
            g = warm.detections[rep]
            assert (g.detected, g.cycle, g.lanes, g.excited) == (
                d.detected, d.cycle, d.lanes, d.excited
            )

    def test_rebuilt_netlist_shares_cache_entry(self):
        cycles = regfile_cycles()
        cache = global_trace_cache()
        cache.clear()
        opts = GradeOptions(engine="compiled")
        grade(build_register_file(n_registers=4, width=4), cycles,
              options=opts)
        misses = cache.stats.misses
        # A structurally identical netlist built from scratch must hit.
        grade(build_register_file(n_registers=4, width=4), cycles,
              options=opts)
        assert cache.stats.misses == misses
        assert cache.stats.hits >= 1


class TestDroppingAndRepacking:
    """Fault dropping and lane repacking never change verdicts."""

    def test_sequential_repack_verdicts_stable(self):
        netlist = build_register_file(n_registers=4, width=4)
        cycles = regfile_cycles()
        fault_list = build_fault_list(netlist)
        plan = ObservePlan.from_spec(None, len(cycles), netlist)
        want = get_engine("differential").grade(
            netlist, cycles, fault_list, plan
        )
        for batch_size, threshold, min_drop in (
            (7, 1.0, 1), (33, 0.9, 2), (64, 0.5, 8),
        ):
            engine = CompiledEngine(
                batch_size=batch_size,
                repack_threshold=threshold,
                min_repack_drop=min_drop,
            )
            got = engine.grade(netlist, cycles, fault_list, plan)
            for rep, d in want.detections.items():
                g = got.detections[rep]
                assert (g.detected, g.cycle if d.detected else None,
                        g.excited) == (
                    d.detected, d.cycle if d.detected else None, d.excited
                ), (batch_size, threshold, min_drop, rep)

    def test_combinational_chunked_dropping_matches_differential(self):
        # 512 exhaustive patterns span multiple lane chunks, so faults
        # detected in the first chunk are dropped before later ones.
        netlist = adder4()
        patterns = [dict(a=a, x=x, cin=c)
                    for a in range(16) for x in range(16) for c in (0, 1)]
        fault_list = build_fault_list(netlist)
        plan = ObservePlan.from_spec(None, len(patterns), netlist)
        want = get_engine("differential").grade(
            netlist, patterns, fault_list, plan
        )
        got = get_engine("compiled").grade(
            netlist, patterns, fault_list, plan
        )
        assert got.detected == want.detected
        assert {r: (d.detected, d.excited)
                for r, d in got.detections.items()} == {
            r: (d.detected, d.excited) for r, d in want.detections.items()
        }


class TestFacade:
    def test_registry_lists_shipped_engines(self):
        assert set(ENGINES) <= set(engine_names())

    def test_unknown_engine_rejected(self):
        with pytest.raises(FaultSimError, match="unknown engine"):
            get_engine("flextest")
        with pytest.raises(FaultSimError, match="unknown engine"):
            GradeOptions(engine="flextest")

    def test_auto_picks_differential_for_shallow_or_sequential(self):
        assert default_engine_name(build_component("BMUX")) == "differential"
        assert default_engine_name(build_component("RegF")) == "differential"
        assert depth(build_component("BMUX")) < AUTO_MIN_DEPTH

    def test_auto_picks_compiled_for_deep_combinational(self):
        assert default_engine_name(build_component("ALU")) == "compiled"
        assert depth(build_component("ALU")) >= AUTO_MIN_DEPTH

    def test_runtime_engine_honoured_only_under_auto(self):
        netlist = adder4()
        patterns = [dict(a=1, x=2, cin=0)]
        bogus = RuntimeConfig(engine="flextest")
        with pytest.raises(FaultSimError, match="unknown engine"):
            grade(netlist, patterns,
                  options=GradeOptions(engine="auto", runtime=bogus))
        # An explicit engine choice wins over the runtime config.
        result = grade(netlist, patterns,
                       options=GradeOptions(engine="differential",
                                            runtime=bogus))
        assert result.n_faults > 0

    def test_empty_stimulus_messages(self):
        with pytest.raises(FaultSimError, match="no patterns to apply"):
            grade(adder4(), [])
        with pytest.raises(FaultSimError, match="no cycles to apply"):
            grade(build_register_file(n_registers=4, width=4), [])

    def test_facade_matches_legacy_harness(self):
        netlist = adder4()
        patterns = [dict(a=a, x=15 - a, cin=a & 1) for a in range(16)]
        via_facade = grade(netlist, patterns,
                           options=GradeOptions(engine="differential"))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_combinational(netlist, patterns)
        assert via_facade.detected == legacy.detected
        assert via_facade.fault_coverage == legacy.fault_coverage


class TestDeprecatedEntryPoints:
    def test_run_combinational_warns(self):
        with pytest.warns(DeprecationWarning, match="grade"):
            run_combinational(adder4(), [dict(a=0, x=0, cin=0)])

    def test_run_sequential_warns(self):
        netlist = build_register_file(n_registers=4, width=4)
        with pytest.warns(DeprecationWarning, match="grade"):
            run_sequential(netlist, regfile_cycles(n=5))

    def test_parallel_run_campaign_warns(self):
        netlist = build_register_file(n_registers=4, width=4)
        sim = ParallelFaultSimulator(netlist, batch_size=16)
        with pytest.warns(DeprecationWarning, match="grade"):
            sim.run_campaign(regfile_cycles(n=5))
