"""GradeOptions: validation, folding, fingerprints and deprecation.

The API-consolidation contract: every grading entry point builds exactly
one validated :class:`~repro.faultsim.options.GradeOptions`, the legacy
per-keyword surface on :func:`~repro.faultsim.grade` still works for one
release but warns, and mixing the two conventions is an error rather
than a silent precedence rule.
"""

import pytest

from repro.errors import FaultSimError
from repro.faultsim import (
    DEFAULT_LANES,
    GradeOptions,
    TraceStore,
    grade,
)
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType
from repro.runtime import RuntimeConfig


def tiny_netlist():
    b = NetlistBuilder("tiny")
    x = b.input("x", 2)
    b.output("y", [b.gate(GateType.AND, x[0], x[1])])
    return b.build()


PATTERNS = [dict(x=0), dict(x=1), dict(x=2), dict(x=3)]


class TestValidation:
    def test_defaults_are_valid(self):
        opts = GradeOptions()
        assert opts.engine == "auto"
        assert opts.lanes == DEFAULT_LANES
        assert opts.store is None
        assert opts.collapse_map is None
        assert not opts.collapse_requested

    def test_unknown_engine_rejected_at_construction(self):
        with pytest.raises(FaultSimError, match="unknown engine"):
            GradeOptions(engine="flextest")

    @pytest.mark.parametrize("bad", ("maybe", "PROVEN", 2, None))
    def test_bad_prune_mode_rejected(self, bad):
        with pytest.raises(FaultSimError):
            GradeOptions(prune_untestable=bad)

    @pytest.mark.parametrize("bad", (0, 1, 1025, -64, True, "64", 3.0))
    def test_bad_lane_counts_rejected(self, bad):
        with pytest.raises(FaultSimError, match="lanes"):
            GradeOptions(lanes=bad)

    def test_subset_normalised_to_tuple(self):
        opts = GradeOptions(subset=[3, 1, 2])
        assert opts.subset == (3, 1, 2)

    def test_cache_path_normalised_to_store(self, tmp_path):
        opts = GradeOptions(cache=str(tmp_path / "cache"))
        assert isinstance(opts.cache, TraceStore)
        assert opts.store is opts.cache

    def test_replace_revalidates(self):
        opts = GradeOptions(engine="compiled")
        assert opts.replace(engine="packed").engine == "packed"
        with pytest.raises(FaultSimError, match="unknown engine"):
            opts.replace(engine="flextest")


class TestEffectiveEngine:
    def test_explicit_engine_wins_over_runtime(self):
        runtime = RuntimeConfig(engine="batch")
        opts = GradeOptions(engine="compiled", runtime=runtime)
        assert opts.effective_engine() == "compiled"

    def test_runtime_engine_fills_auto(self):
        runtime = RuntimeConfig(engine="batch")
        assert GradeOptions(runtime=runtime).effective_engine() == "batch"

    def test_auto_stays_auto_without_runtime(self):
        assert GradeOptions().effective_engine() == "auto"


class TestFingerprint:
    def test_verdict_invariant_knobs_do_not_change_it(self, tmp_path):
        base = GradeOptions().fingerprint()
        assert GradeOptions(engine="packed").fingerprint() == base
        assert GradeOptions(lanes=128).fingerprint() == base
        assert GradeOptions(collapse=True).fingerprint() == base
        assert GradeOptions(cache=tmp_path).fingerprint() == base

    def test_prune_modes_partition_the_journal(self):
        plain = GradeOptions().fingerprint()
        structural = GradeOptions(prune_untestable=True).fingerprint()
        proven = GradeOptions(prune_untestable="proven").fingerprint()
        assert len({plain, structural, proven}) == 3
        assert (
            GradeOptions(prune_untestable="structural").fingerprint()
            == structural
        )


class TestGradeConventions:
    def test_legacy_keywords_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="GradeOptions"):
            result = grade(tiny_netlist(), PATTERNS, engine="differential")
        assert result.n_faults > 0

    def test_options_object_does_not_warn(self, recwarn):
        result = grade(
            tiny_netlist(), PATTERNS,
            options=GradeOptions(engine="differential"),
        )
        assert result.n_faults > 0
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_mixing_conventions_raises(self):
        with pytest.raises(FaultSimError, match="not both"):
            grade(
                tiny_netlist(), PATTERNS,
                options=GradeOptions(), engine="differential",
            )

    def test_legacy_and_options_grades_agree(self):
        netlist = tiny_netlist()
        with pytest.warns(DeprecationWarning):
            legacy = grade(netlist, PATTERNS, engine="batch")
        modern = grade(netlist, PATTERNS,
                       options=GradeOptions(engine="batch"))
        assert legacy.detected == modern.detected
        assert legacy.fault_coverage == modern.fault_coverage
