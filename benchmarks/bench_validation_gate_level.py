"""Experiment V2 — the self-test program executed on gates alone.

The strongest end-to-end validation in the repository: the complete
Phase A+B self-test program runs on the *composed gate-level processor*
(every component netlist wired together; no behavioural shortcut anywhere
in the loop) and must produce a response stream bit-identical to the
behavioural model's.

This simultaneously validates the ISA substrate, every component netlist,
the composition, the pipeline/pause/interlock micro-architecture, and the
self-test program itself.
"""

from conftest import run_once, write_result

from repro.core.methodology import SelfTestMethodology
from repro.plasma.cosim import GateLevelPlasma
from repro.plasma.cpu import PlasmaCPU
from repro.netlist.stats import gate_count
from repro.plasma.toplevel import build_plasma_top


def cosim_self_test():
    self_test = SelfTestMethodology().build_program("AB")
    top = build_plasma_top()
    gate = GateLevelPlasma(top)
    gate.load_program(self_test.program)
    gate_result = gate.run(max_cycles=60_000)

    cpu = PlasmaCPU()
    cpu.load_program(self_test.program)
    beh_result = cpu.run()

    gate_words = gate.dump_words(self_test.response_base,
                                 self_test.response_words)
    beh_words = cpu.memory.dump_words(self_test.response_base,
                                      self_test.response_words)
    return self_test, top, gate_result, beh_result, gate_words, beh_words


def test_self_test_on_gate_level_processor(benchmark):
    (self_test, top, gate_result, beh_result,
     gate_words, beh_words) = run_once(benchmark, cosim_self_test)

    stats = gate_count(top)
    mismatches = sum(1 for g, b in zip(gate_words, beh_words, strict=False) if g != b)
    lines = [
        f"composed processor : {stats.n_gates:,} gates, "
        f"{stats.n_dffs:,} DFFs, {stats.nand2:,} NAND2 eq",
        f"self-test program  : {self_test.total_words} words (Phase A+B)",
        f"gate-level run     : {gate_result.cycles:,} cycles, "
        f"halted={gate_result.halted}",
        f"behavioural run    : {beh_result.cycles:,} cycles",
        f"response stream    : {len(gate_words)} words, "
        f"{mismatches} mismatches",
    ]
    text = "\n".join(lines)
    write_result("validation_v2_gate_level.txt", text)
    print("\n" + text)

    assert gate_result.halted
    assert mismatches == 0
    # Cycle counts agree up to the halt-detection window.
    assert abs(gate_result.cycles - beh_result.cycles) < 20
