"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import (
    EXIT_ANALYZE_COLLAPSE,
    EXIT_ANALYZE_FORMAL,
    EXIT_ANALYZE_NETLIST,
    EXIT_ANALYZE_PROGRAM,
    EXIT_ANALYZE_REACH,
    EXIT_DEGRADED,
    EXIT_WATCHDOG,
    main,
)

SAMPLE = """
.text
    li $t0, 7
    la $t1, out
    sw $t0, 0($t1)
halt: j halt
    nop
.data
out: .word 0
"""

RUNAWAY = """
.text
loop:
    addiu $t0, $t0, 1
    j loop
    nop
"""


@pytest.fixture
def sample_file(tmp_path):
    path = tmp_path / "sample.s"
    path.write_text(SAMPLE)
    return str(path)


class TestAsm:
    def test_stats(self, sample_file, capsys):
        assert main(["asm", sample_file]) == 0
        out = capsys.readouterr().out
        assert "code words" in out

    def test_listing(self, sample_file, capsys):
        assert main(["asm", sample_file, "--listing"]) == 0
        out = capsys.readouterr().out
        assert "addiu $t0, $zero, 7" in out

    def test_image(self, sample_file, capsys):
        assert main(["asm", sample_file, "--image"]) == 0
        out = capsys.readouterr().out
        assert "00000000" in out

    def test_assembly_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("bogus $1, $2\n")
        assert main(["asm", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["asm", "/nonexistent.s"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRun:
    def test_runs_and_reports(self, sample_file, capsys):
        assert main(["run", sample_file]) == 0
        out = capsys.readouterr().out
        assert "halted at pc=" in out

    def test_dump(self, sample_file, capsys):
        assert main(["run", sample_file, "--dump", "0x2000:1"]) == 0
        out = capsys.readouterr().out
        assert "00002000 00000007" in out

    def test_bad_dump_spec(self, sample_file):
        with pytest.raises(SystemExit):
            main(["run", sample_file, "--dump", "whatever"])

    def test_watchdog_max_cycles(self, tmp_path, capsys):
        runaway = tmp_path / "runaway.s"
        runaway.write_text(RUNAWAY)
        code = main(["run", str(runaway), "--max-cycles", "50"])
        assert code == EXIT_WATCHDOG
        err = capsys.readouterr().err
        assert "watchdog" in err
        assert "Traceback" not in err

    def test_watchdog_not_tripped_by_halting_program(self, sample_file):
        assert main(["run", sample_file, "--max-cycles", "10000"]) == 0


class TestSelftest:
    def test_prints_source(self, capsys):
        assert main(["selftest", "--phases", "A"]) == 0
        captured = capsys.readouterr()
        assert "selftest_start:" in captured.out
        assert "code words" in captured.err

    def test_writes_file(self, tmp_path, capsys):
        target = tmp_path / "st.s"
        assert main(["selftest", "--phases", "A", "-o", str(target)]) == 0
        assert "selftest_halt" in target.read_text()


class TestCampaign:
    def test_subset_campaign(self, capsys):
        assert main(["campaign", "--phases", "A",
                     "--components", "ALU,BSH"]) == 0
        out = capsys.readouterr().out
        assert "ALU" in out and "Plasma" in out
        assert "Clock Cycles" in out

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        args = ["campaign", "--phases", "A", "--components", "CTRL",
                "--checkpoint", ckpt]
        assert main(args) == 0
        assert (tmp_path / "ckpt" / "checkpoint.jsonl").exists()
        assert (tmp_path / "ckpt" / "events.jsonl").exists()
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        assert "CTRL" in capsys.readouterr().out

    def test_multiphase_checkpoint_keeps_all_phases(self, tmp_path, capsys):
        from repro.runtime.checkpoint import CheckpointStore

        ckpt = str(tmp_path / "ckpt")
        assert main(["campaign", "--phases", "A,AB",
                     "--components", "CTRL", "--checkpoint", ckpt]) == 0
        # The second phase must not wipe the first phase's journal.
        assert set(CheckpointStore(ckpt).load()) == {"A:CTRL", "AB:CTRL"}

    def test_degraded_campaign_distinct_exit_code(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.core.campaign as campaign_mod

        def exploding_job(name, *args, **kwargs):
            raise ValueError("synthetic grading failure")

        monkeypatch.setattr(campaign_mod, "_grading_job", exploding_job)
        code = main(["campaign", "--phases", "A", "--components", "CTRL",
                     "--checkpoint", str(tmp_path / "ckpt"),
                     "--retries", "1"])
        assert code == EXIT_DEGRADED
        captured = capsys.readouterr()
        assert "degraded" in captured.err
        assert "Traceback" not in captured.err
        assert "lower bound" in captured.out

    def test_prune_untestable_only_improves_table5_coverage(self, capsys):
        # --prune-untestable grades in "proven" mode: SAT-certified
        # redundant classes leave the FC denominator, so coverage may
        # only improve — and only through the denominator, never
        # through the detected set (tests/faultsim/test_proven.py pins
        # the set equality; here we check the CLI surface).
        def ctrl_fc(text):
            row = next(line for line in text.splitlines()
                       if line.startswith("CTRL"))
            return float(row.split("|")[1])

        assert main(["campaign", "--phases", "A",
                     "--components", "CTRL"]) == 0
        base = capsys.readouterr().out
        assert main(["campaign", "--phases", "A", "--components", "CTRL",
                     "--prune-untestable"]) == 0
        pruned = capsys.readouterr().out
        assert "pruned" in pruned
        assert ctrl_fc(pruned) >= ctrl_fc(base)

    def test_resume_requires_checkpoint(self, capsys):
        code = main(["campaign", "--phases", "A", "--components", "CTRL",
                     "--resume"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_cache_dir_makes_repeat_campaign_incremental(
        self, tmp_path, capsys
    ):
        import re

        cache = str(tmp_path / "cache")
        args = ["campaign", "--phases", "A", "--components", "CTRL,BSH",
                "--cache-dir", cache]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "persistent cache: 0/2 components reused" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "persistent cache: 2/2 components reused" in warm
        assert warm.count("store hit") == 2

        def table5(text):
            # Strip the timing-bearing progress lines and the hit-count
            # line itself; the tables must be bit-identical between the
            # cold and warm runs.
            text = re.sub(r"\d+\.\d+s[^)]*\)", ")", text)
            return re.sub(r"persistent cache: \d+", "persistent cache:",
                          text)

        assert table5(cold) == table5(warm)

    def test_cache_dir_composes_with_parallel_grading(
        self, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        args = ["campaign", "--phases", "A", "--components", "CTRL",
                "--cache-dir", cache, "--jobs", "2"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "persistent cache: 1/1 components reused" in warm

    def test_packed_engine_with_lanes_flag(self, capsys):
        assert main(["campaign", "--phases", "A", "--components", "CTRL",
                     "--engine", "packed", "--lanes", "16"]) == 0
        assert "CTRL" in capsys.readouterr().out

    def test_invalid_lanes_rejected(self, capsys):
        code = main(["campaign", "--phases", "A", "--components", "CTRL",
                     "--lanes", "1"])
        assert code == 1
        assert "lanes" in capsys.readouterr().err


class TestInventory:
    def test_tables(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "Register File" in out
        assert "17,459" in out


BAD_DELAY_SLOT = """
.text
start:
    beq $0, $0, done
    j start
done:
    j done
    nop
"""


class TestAnalyze:
    def test_named_netlist_ok(self, capsys):
        assert main(["analyze", "netlist", "CTRL"]) == 0
        out = capsys.readouterr().out
        assert "1 target(s) analyzed, 0 with errors" in out

    def test_all_shipped_artifacts_are_clean(self, capsys):
        assert main(["analyze", "--all"]) == 0
        out = capsys.readouterr().out
        assert "0 with errors" in out

    def test_seeded_delay_slot_hazard_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text(BAD_DELAY_SLOT)
        assert main(["analyze", "program", str(bad)]) == EXIT_ANALYZE_PROGRAM
        out = capsys.readouterr().out
        assert "PR002" in out
        assert "delay slot" in out

    def test_broken_netlist_fails_with_rule_id(self, capsys, monkeypatch):
        import dataclasses

        from repro.netlist.builder import NetlistBuilder
        from repro.netlist.gates import GateType
        from repro.plasma import components as components_mod

        def undriven_component():
            nb = NetlistBuilder("broken")
            a = nb.input("a", 1)[0]
            floating = nb.netlist.new_net("floating")
            nb.output("y", nb.gate(GateType.AND, a, floating))
            return nb.netlist

        info = dataclasses.replace(
            components_mod.component("CTRL"), builder=undriven_component
        )
        monkeypatch.setattr(components_mod, "component", lambda name: info)
        code = main(["analyze", "netlist", "CTRL"])
        assert code == EXIT_ANALYZE_NETLIST
        out = capsys.readouterr().out
        assert "NL002" in out
        assert "undriven" in out

    def test_json_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text(BAD_DELAY_SLOT)
        assert main(["analyze", "program", str(bad), "--json"]) \
            == EXIT_ANALYZE_PROGRAM
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        rules = [d["rule"] for r in doc["reports"]
                 for d in r["diagnostics"]]
        assert "PR002" in rules

    def test_all_with_targets_rejected(self, capsys):
        assert main(["analyze", "netlist", "CTRL", "--all"]) == 1
        assert "error:" in capsys.readouterr().err


class TestAnalyzeFormal:
    def test_exit_code_constant(self):
        assert EXIT_ANALYZE_FORMAL == 8

    def test_clean_component_passes_with_table(self, capsys):
        assert main(["analyze", "formal", "GL"]) == 0
        out = capsys.readouterr().out
        assert "FV203" in out
        assert "proven" in out  # the structural-vs-proven table

    def test_component_flag_merges_targets(self, capsys):
        assert main(["analyze", "formal", "--component", "GL",
                     "--component", "PLN"]) == 0
        out = capsys.readouterr().out
        assert "2 target(s) analyzed, 0 with errors" in out

    def test_json_output_carries_formal_report(self, capsys):
        assert main(["analyze", "formal", "GL", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        kinds = {r["kind"] for r in doc["reports"]}
        assert kinds == {"formal"}

    def test_mutant_netlist_exits_8(self, capsys, monkeypatch):
        import dataclasses

        from repro.netlist.gates import GateType
        from repro.plasma import components as components_mod

        build = components_mod.component("GL").builder

        def mutant_builder():
            netlist = build()
            swaps = {GateType.AND: GateType.OR, GateType.OR: GateType.AND}
            for i, gate in enumerate(netlist.gates):
                if gate.gtype in swaps:
                    netlist.gates[i] = dataclasses.replace(
                        gate, gtype=swaps[gate.gtype]
                    )
                    return netlist
            raise AssertionError("no swappable gate")

        info = dataclasses.replace(
            components_mod.component("GL"), builder=mutant_builder
        )
        monkeypatch.setattr(components_mod, "component", lambda name: info)
        assert main(["analyze", "formal", "GL"]) == EXIT_ANALYZE_FORMAL
        out = capsys.readouterr().out
        assert "FV201" in out


class TestEngineSelection:
    def test_campaign_engine_flag(self, capsys):
        assert main(["campaign", "--phases", "A", "--components",
                     "CTRL,BMUX", "--engine", "compiled"]) == 0
        out = capsys.readouterr().out
        assert "CTRL" in out and "BMUX" in out

    def test_campaign_tables_engine_invariant(self, capsys):
        import re

        def normalized(text):
            # The per-component progress line carries a wall-clock
            # duration; everything else must be engine-invariant.
            return re.sub(r"\d+\.\d+s", "_s", text)

        assert main(["campaign", "--phases", "A", "--components", "CTRL",
                     "--engine", "differential"]) == 0
        differential = capsys.readouterr().out
        assert main(["campaign", "--phases", "A", "--components", "CTRL",
                     "--engine", "compiled"]) == 0
        compiled = capsys.readouterr().out
        # Table 5 must be bit-identical whichever engine graded it.
        assert normalized(differential) == normalized(compiled)

    def test_unknown_engine_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--phases", "A", "--components", "CTRL",
                  "--engine", "flextest"])
        assert "invalid choice" in capsys.readouterr().err

    def test_selftest_coverage_report(self, capsys):
        assert main(["selftest", "--phases", "A", "--coverage",
                     "--engine", "auto"]) == 0
        out = capsys.readouterr().out
        assert "engine: auto" in out
        assert "overall FC" in out


class TestAnalyzeCollapse:
    def test_named_component_ok_with_summary_table(self, capsys):
        assert main(["analyze", "collapse", "GL"]) == 0
        out = capsys.readouterr().out
        assert "NL201" in out
        assert "supers" in out      # the collapse summary table header
        assert "refuted" in out
        assert "0 with errors" in out

    def test_component_flag_and_json(self, capsys):
        assert main(["analyze", "collapse", "--component", "GL",
                     "--json", "--sat-samples", "2"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        report, = doc["reports"]
        assert report["kind"] == "collapse"
        assert [d["rule"] for d in report["diagnostics"]] == ["NL201"]

    def test_refuted_claim_exits_with_collapse_code(
        self, capsys, monkeypatch
    ):
        from repro.analysis import collapse as collapse_mod

        def refute(netlist, cmap, samples=8):
            return collapse_mod.CollapseCheck(
                n_equivalence=1, n_dominance=0,
                refuted_equivalence=("forged claim",),
            )

        monkeypatch.setattr(collapse_mod, "sat_spot_check", refute)
        code = main(["analyze", "collapse", "GL"])
        assert code == EXIT_ANALYZE_COLLAPSE
        out = capsys.readouterr().out
        assert "NL202" in out
        assert "forged claim" in out


class TestAnalyzeReach:
    def test_exit_code_constant(self):
        assert EXIT_ANALYZE_REACH == 11

    def test_phase_a_over_components_with_table(self, capsys):
        assert main(["analyze", "reach", "--component", "GL",
                     "--component", "CTRL", "--sat-samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "RC301" in out
        assert "proven%" in out  # the reach summary table header
        assert "refuted" in out
        assert "0 with errors" in out

    def test_assembly_file_target(self, sample_file, capsys):
        assert main(["analyze", "reach", sample_file,
                     "--component", "GL", "--sat-samples", "2"]) == 0
        out = capsys.readouterr().out
        assert sample_file in out

    def test_json_output(self, capsys):
        assert main(["analyze", "reach", "--component", "GL",
                     "--sat-samples", "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        report, = doc["reports"]
        assert report["kind"] == "reach"
        row, = doc["reach"]
        assert row["component"] == "GL"
        assert row["proven_unexercised"] > 0
        assert row["sat_refuted"] == 0

    def test_refuted_claim_exits_with_reach_code(self, capsys, monkeypatch):
        from repro.analysis import reach as reach_mod

        def refute(netlist, report, samples=8):
            return reach_mod.ReachCheck(
                n_checked=1, refuted=("forged reach claim",)
            )

        monkeypatch.setattr(reach_mod, "reach_spot_check", refute)
        code = main(["analyze", "reach", "--component", "GL"])
        assert code == EXIT_ANALYZE_REACH
        out = capsys.readouterr().out
        assert "RC302" in out
        assert "forged reach claim" in out


class TestAnalyzeJsonEnvelope:
    """Every analyze subcommand emits the same versioned JSON envelope."""

    @pytest.mark.parametrize(
        "args, section",
        [
            (["program"], None),
            (["netlist", "GL"], None),
            (["formal", "GL"], "formal"),
            (["collapse", "GL", "--sat-samples", "2"], "collapse"),
            (["reach", "--component", "GL", "--sat-samples", "2"],
             "reach"),
        ],
    )
    def test_envelope_shape(self, args, section, capsys):
        assert main(["analyze", *args, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 1
        assert isinstance(doc["ok"], bool)
        assert isinstance(doc["reports"], list)
        for report in doc["reports"]:
            assert set(report) == {
                "target", "kind", "ok", "errors", "warnings",
                "diagnostics",
            }
        if section is not None:
            # The analyzer's summary table rides along in JSON mode too
            # (text mode prints it after the reports).
            rows = doc[section]
            assert rows and all("component" in row for row in rows)


class TestCampaignReach:
    def test_reach_flag_matches_plain_tables(self, capsys):
        import re

        def normalized(text):
            # Wall-clock durations and the reach accounting (the
            # "N reach-screened" note) may differ; the tables must not.
            text = re.sub(r"\d+\.\d+s", "_s", text)
            return re.sub(r", \d+ reach-screened", "", text)

        assert main(["campaign", "--phases", "A",
                     "--components", "GL", "--reach"]) == 0
        screened = capsys.readouterr().out
        assert "reach-screened" in screened
        assert main(["campaign", "--phases", "A",
                     "--components", "GL"]) == 0
        plain = capsys.readouterr().out
        assert normalized(screened) == normalized(plain)


class TestCampaignCollapse:
    def test_collapse_flag_matches_no_collapse_tables(self, capsys):
        import re

        def normalized(text):
            # Wall-clock durations and the collapse accounting (the
            # "N inferred" note) may differ; the tables must not.
            text = re.sub(r"\d+\.\d+s", "_s", text)
            return re.sub(r", \d+ inferred", "", text)

        assert main(["campaign", "--phases", "A",
                     "--components", "GL", "--collapse"]) == 0
        collapsed = capsys.readouterr().out
        assert main(["campaign", "--phases", "A",
                     "--components", "GL", "--no-collapse"]) == 0
        plain = capsys.readouterr().out
        assert normalized(collapsed) == normalized(plain)
