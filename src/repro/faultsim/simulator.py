"""Pattern-parallel good-machine logic simulation.

The simulator evaluates a levelized netlist with one arbitrary-precision
lane word per net: bit *i* of a net's word is the net's value under test
pattern *i* (see :mod:`repro.utils.lanes`).  A combinational pass therefore
costs one Python bitwise expression per gate regardless of how many patterns
are applied.

Sequential circuits are stepped cycle by cycle; lanes then represent
*independent parallel sessions* advancing in lockstep (used to fault-grade
combinational components with hundreds of patterns at once, and with a
single lane for traced sequential test application).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.errors import SimulationError
from repro.netlist.gates import GateType
from repro.netlist.levelize import levelize, levels
from repro.netlist.netlist import CONST1, Netlist, PortDirection
from repro.utils.lanes import LaneSet, pack_vectors, unpack_vectors


@dataclass
class SimState:
    """Flip-flop state: one lane word per DFF (indexed like Netlist.dffs)."""

    q: list[int]

    def copy(self) -> "SimState":
        return SimState(list(self.q))


@dataclass
class GoodTrace:
    """Recorded good-machine trajectory used by the differential simulator.

    Attributes:
        lanes: lane configuration of the run.
        values: per cycle, the full net-value array (index = net id).
        states: per cycle, the DFF state *entering* that cycle; has one
            extra final entry (the state after the last cycle).
    """

    lanes: LaneSet
    values: list[list[int]]
    states: list[SimState]

    @property
    def n_cycles(self) -> int:
        return len(self.values)


class LogicSimulator:
    """Levelized event-free logic simulator for one netlist."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.order = levelize(netlist)
        self.gate_levels = levels(netlist)
        self._input_nets: dict[str, tuple[int, ...]] = {
            p.name: p.nets
            for p in netlist.ports.values()
            if p.direction is PortDirection.INPUT
        }
        self._output_nets: dict[str, tuple[int, ...]] = {
            p.name: p.nets
            for p in netlist.ports.values()
            if p.direction is PortDirection.OUTPUT
        }

    # ---------------------------------------------------------- plumbing

    def initial_state(self, lanes: LaneSet) -> SimState:
        """Reset state: every DFF holds its init value in every lane."""
        return SimState([lanes.broadcast(d.init) for d in self.netlist.dffs])

    def pack_inputs(
        self, patterns: Sequence[Mapping[str, int]], lanes: LaneSet
    ) -> dict[str, list[int]]:
        """Transpose per-pattern port values into per-bit lane words.

        Args:
            patterns: one ``{port: value}`` mapping per pattern (lane).
            lanes: lane configuration (``lanes.count == len(patterns)``).

        Returns:
            ``{port: [lane word per bit, LSB first]}``.
        """
        if lanes.count != len(patterns):
            raise SimulationError(
                f"{len(patterns)} patterns but {lanes.count} lanes"
            )
        packed: dict[str, list[int]] = {}
        for name, nets in self._input_nets.items():
            values = [p.get(name, 0) for p in patterns]
            packed[name] = pack_vectors(values, len(nets))
        return packed

    # -------------------------------------------------------- evaluation

    def evaluate(
        self,
        inputs: Mapping[str, Sequence[int]],
        state: SimState,
        lanes: LaneSet,
    ) -> list[int]:
        """One combinational settle: compute every net's lane word.

        Args:
            inputs: per input port, lane words per bit (LSB first).
            state: current DFF state.
            lanes: lane configuration.

        Returns:
            Net-value array indexed by net id.
        """
        values = [0] * self.netlist.n_nets
        values[CONST1] = lanes.mask

        for name, nets in self._input_nets.items():
            words = inputs.get(name)
            if words is None:
                raise SimulationError(f"missing input port {name!r}")
            if len(words) != len(nets):
                raise SimulationError(
                    f"port {name!r} expects {len(nets)} bit words, "
                    f"got {len(words)}"
                )
            for net, word in zip(nets, words, strict=True):
                values[net] = word & lanes.mask

        for dff, q_word in zip(self.netlist.dffs, state.q, strict=True):
            values[dff.q] = q_word & lanes.mask

        mask = lanes.mask
        for gate in self.order:
            ins = gate.inputs
            gt = gate.gtype
            # Inline the hot gate types; fall back to eval_gate otherwise.
            if gt is GateType.MUX2:
                a, b, sel = values[ins[0]], values[ins[1]], values[ins[2]]
                out = (a & ~sel) | (b & sel)
            elif gt is GateType.AND:
                out = values[ins[0]]
                for n in ins[1:]:
                    out &= values[n]
            elif gt is GateType.XOR:
                out = values[ins[0]]
                for n in ins[1:]:
                    out ^= values[n]
            elif gt is GateType.NOT:
                out = ~values[ins[0]]
            elif gt is GateType.OR:
                out = values[ins[0]]
                for n in ins[1:]:
                    out |= values[n]
            elif gt is GateType.NAND:
                out = values[ins[0]]
                for n in ins[1:]:
                    out &= values[n]
                out = ~out
            elif gt is GateType.NOR:
                out = values[ins[0]]
                for n in ins[1:]:
                    out |= values[n]
                out = ~out
            elif gt is GateType.XNOR:
                out = values[ins[0]]
                for n in ins[1:]:
                    out ^= values[n]
                out = ~out
            elif gt is GateType.BUF:
                out = values[ins[0]]
            elif gt is GateType.AOI21:
                out = ~((values[ins[0]] & values[ins[1]]) | values[ins[2]])
            else:  # pragma: no cover - all types handled above
                raise SimulationError(f"unhandled gate type {gt}")
            values[gate.output] = out & mask
        return values

    def next_state(self, values: list[int], lanes: LaneSet) -> SimState:
        """Latch DFF inputs from a settled net-value array."""
        return SimState([values[d.d] & lanes.mask for d in self.netlist.dffs])

    def step(
        self,
        inputs: Mapping[str, Sequence[int]],
        state: SimState,
        lanes: LaneSet,
    ) -> tuple[list[int], SimState]:
        """Settle combinational logic, then clock the DFFs."""
        values = self.evaluate(inputs, state, lanes)
        return values, self.next_state(values, lanes)

    # ------------------------------------------------------- conveniences

    def outputs_from_values(
        self, values: list[int], lanes: LaneSet, count: int
    ) -> dict[str, list[int]]:
        """Extract per-pattern output port values from a net-value array."""
        result: dict[str, list[int]] = {}
        for name, nets in self._output_nets.items():
            words = [values[n] for n in nets]
            result[name] = unpack_vectors(words, count)
        return result

    def run_combinational(
        self, patterns: Sequence[Mapping[str, int]]
    ) -> dict[str, list[int]]:
        """Evaluate a combinational netlist over many patterns at once.

        Raises:
            SimulationError: if the netlist has flip-flops.
        """
        if self.netlist.dffs:
            raise SimulationError(
                f"{self.netlist.name!r} is sequential; use run_sequence"
            )
        lanes = LaneSet(len(patterns))
        inputs = self.pack_inputs(patterns, lanes)
        values = self.evaluate(inputs, self.initial_state(lanes), lanes)
        return self.outputs_from_values(values, lanes, len(patterns))

    def run_sequence(
        self,
        cycle_inputs: Sequence[Mapping[str, int]],
        record: bool = False,
    ) -> tuple[list[dict[str, int]], GoodTrace | None]:
        """Single-lane sequential run over a list of per-cycle input values.

        Args:
            cycle_inputs: per cycle, ``{port: value}``.
            record: also return the full :class:`GoodTrace` (needed for
                differential fault simulation).

        Returns:
            ``(per-cycle output values, trace-or-None)``.
        """
        lanes = LaneSet(1)
        state = self.initial_state(lanes)
        outputs: list[dict[str, int]] = []
        trace_values: list[list[int]] = []
        trace_states: list[SimState] = [state.copy()]
        for cycle in cycle_inputs:
            packed = self.pack_inputs([cycle], lanes)
            values, state = self.step(packed, state, lanes)
            out = {
                name: unpack_vectors([values[n] for n in nets], 1)[0]
                for name, nets in self._output_nets.items()
            }
            outputs.append(out)
            if record:
                trace_values.append(values)
                trace_states.append(state.copy())
        trace = GoodTrace(lanes, trace_values, trace_states) if record else None
        return outputs, trace

    def run_parallel_sessions(
        self, sessions: Sequence[Sequence[Mapping[str, int]]]
    ) -> GoodTrace:
        """Run many equal-length input sequences in parallel lanes.

        All sessions must have the same cycle count; lane *i* carries
        session *i*.  Used to fault-grade sequential components under many
        independent pattern sessions at once.
        """
        if not sessions:
            raise SimulationError("no sessions given")
        length = len(sessions[0])
        if any(len(s) != length for s in sessions):
            raise SimulationError("sessions must have equal length")
        lanes = LaneSet(len(sessions))
        state = self.initial_state(lanes)
        trace_values: list[list[int]] = []
        trace_states: list[SimState] = [state.copy()]
        for t in range(length):
            packed = self.pack_inputs([s[t] for s in sessions], lanes)
            values, state = self.step(packed, state, lanes)
            trace_values.append(values)
            trace_states.append(state.copy())
        return GoodTrace(lanes, trace_values, trace_states)
