"""Component-boundary tracing and taint-based observability.

While :class:`~repro.plasma.cpu.PlasmaCPU` executes a self-test program it
feeds this tracer two things:

* **traces** — for every component, the exact input vector applied at its
  boundary (per instruction for the combinational components, per cycle for
  the sequential ones);
* **taint** — every architectural value (register, HI/LO) carries a
  :class:`TaintNode` recording which component *applications* produced it
  and which earlier values it derives from.

A value becomes **observed** when it reaches the tester-visible surface:
a store to data memory (the paper's test-response area), or the control
flow (a branch/jump decision — corrupting it derails the program, which a
tester detects; this is the standard functional-observability argument for
SBST fault grading and is called out in DESIGN.md).  Observing a value
marks every application in its taint history, and those marks become the
per-pattern/per-cycle observability masks of the fault-grading campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.plasma.controls import BranchType, ControlBundle, WbSource

#: An application id: (component name, key).  Keys are pattern indices for
#: combinational components and (cycle, port) pairs for sequential ones.
AppId = tuple


class TaintNode:
    """A value's provenance: its applications and parent values.

    Each node carries a process-unique serial so the observability walk can
    memoise visited nodes safely (``id()`` is unusable here: CPython reuses
    addresses of collected nodes).
    """

    __slots__ = ("apps", "parents", "serial")

    _next_serial = 0

    def __init__(
        self,
        apps: Sequence[AppId] = (),
        parents: Sequence["TaintNode"] = (),
    ):
        self.apps = tuple(apps)
        self.parents = tuple(p for p in parents if p is not None)
        self.serial = TaintNode._next_serial
        TaintNode._next_serial += 1


class ObservabilityTracker:
    """Marks taint histories observed; memoises visited nodes."""

    def __init__(self) -> None:
        self.observed: set[AppId] = set()
        self._visited: set[int] = set()

    def node(
        self,
        apps: Sequence[AppId] = (),
        parents: Sequence[TaintNode | None] = (),
    ) -> TaintNode:
        return TaintNode(apps, [p for p in parents if p is not None])

    def observe(self, node: TaintNode | None) -> None:
        """Mark every application reachable from ``node`` as observed."""
        if node is None:
            return
        stack = [node]
        while stack:
            current = stack.pop()
            if current.serial in self._visited:
                continue
            self._visited.add(current.serial)
            self.observed.update(current.apps)
            stack.extend(current.parents)

    def is_observed(self, app: AppId) -> bool:
        return app in self.observed


def ctrl_sensitive_ports(bundle: ControlBundle) -> list[str]:
    """CTRL output ports whose corruption is architecturally visible for an
    instruction decoded as ``bundle`` (given the instruction is observed).

    The always-sensitive set covers fields whose flip corrupts register
    state, memory state, HI/LO state or the control flow; the conditional
    entries only matter when the good decode actually routes data through
    them.
    """
    ports = [
        "reg_write", "mem_write", "mem_read",
        "branch_type", "jump_reg", "jump_abs", "muldiv_op",
    ]
    uses_alu_result = (
        bundle.mem_read
        or bundle.mem_write
        or (bundle.reg_write and bundle.wb_source is WbSource.ALU)
        or (bundle.branch_type is not BranchType.NONE
            and not bundle.jump_reg and not bundle.jump_abs)
    )
    if uses_alu_result:
        ports += ["alu_func", "a_source", "b_source"]
    if bundle.reg_write and bundle.wb_source is WbSource.SHIFT:
        ports += ["use_shifter", "shift_left", "shift_arith", "shift_variable"]
    if bundle.mem_read or bundle.mem_write:
        ports += ["mem_size", "mem_signed"]
    if bundle.reg_write:
        ports += ["wb_source", "reg_dest"]
    return ports


@dataclass
class CombinationalTrace:
    """Pattern set + per-pattern candidate observe ports for one component."""

    patterns: list[dict[str, int]] = field(default_factory=list)
    candidate_ports: list[tuple[str, ...]] = field(default_factory=list)
    apps: list[AppId] = field(default_factory=list)


@dataclass
class SequentialTrace:
    """Cycle sequence + per-cycle observed ports for one component."""

    cycles: list[dict[str, int]] = field(default_factory=list)
    observe: list[set[str]] = field(default_factory=list)


class ComponentTracer:
    """Collects every component's boundary stimulus during a CPU run."""

    def __init__(self, tracker: ObservabilityTracker | None = None):
        self.tracker = tracker or ObservabilityTracker()
        # Combinational components: unordered pattern sets.
        self.alu = CombinationalTrace()
        self.bsh = CombinationalTrace()
        self.ctrl = CombinationalTrace()
        self.bmux = CombinationalTrace()
        # Sequential components: cycle-aligned traces.
        self.regf = SequentialTrace()
        self.muld = SequentialTrace()
        self.pcl = SequentialTrace()
        self.pln = SequentialTrace()
        self.gl = SequentialTrace()
        self.mctrl = SequentialTrace()

    # ---------------------------------------------- combinational tracing

    def trace_alu(self, a: int, b: int, func: int) -> AppId:
        app: AppId = ("ALU", len(self.alu.patterns))
        self.alu.patterns.append({"a": a, "b": b, "func": func})
        self.alu.candidate_ports.append(("result",))
        self.alu.apps.append(app)
        return app

    def trace_bsh(self, value: int, shamt: int, left: int, arith: int) -> AppId:
        app: AppId = ("BSH", len(self.bsh.patterns))
        self.bsh.patterns.append(
            {"value": value, "shamt": shamt, "left": left, "arith": arith}
        )
        self.bsh.candidate_ports.append(("result",))
        self.bsh.apps.append(app)
        return app

    def trace_ctrl(self, instr_word: int, bundle: ControlBundle) -> AppId:
        app: AppId = ("CTRL", len(self.ctrl.patterns))
        self.ctrl.patterns.append({"instr": instr_word})
        self.ctrl.candidate_ports.append(tuple(ctrl_sensitive_ports(bundle)))
        self.ctrl.apps.append(app)
        return app

    def trace_bmux(
        self, inputs: Mapping[str, int], bundle: ControlBundle
    ) -> AppId:
        app: AppId = ("BMUX", len(self.bmux.patterns))
        self.bmux.patterns.append(dict(inputs))
        ports: list[str] = []
        uses_alu = (
            bundle.mem_read
            or bundle.mem_write
            or (bundle.reg_write and bundle.wb_source is WbSource.ALU)
            or (bundle.branch_type is not BranchType.NONE
                and not bundle.jump_reg and not bundle.jump_abs)
        )
        if uses_alu:
            ports += ["a_bus", "b_bus"]
        if bundle.reg_write:
            ports.append("wb_data")
        self.bmux.candidate_ports.append(tuple(ports))
        self.bmux.apps.append(app)
        return app

    # ------------------------------------------------- sequential tracing

    def trace_regf(
        self, rs: int, rt: int, wr_addr: int, wr_data: int, wr_en: int
    ) -> tuple[AppId, AppId]:
        """One register-file cycle; returns the (port A, port B) app ids."""
        cycle = len(self.regf.cycles)
        self.regf.cycles.append(
            {
                "rd_addr_a": rs,
                "rd_addr_b": rt,
                "wr_addr": wr_addr,
                "wr_data": wr_data,
                "wr_en": wr_en,
            }
        )
        self.regf.observe.append(set())
        return ("RegF", (cycle, "rd_data_a")), ("RegF", (cycle, "rd_data_b"))

    def trace_muld_cycle(self, a: int, b: int, op: int) -> int:
        """Append one MulD cycle; returns its cycle index."""
        cycle = len(self.muld.cycles)
        self.muld.cycles.append({"a": a, "b": b, "op": op})
        self.muld.observe.append(set())
        return cycle

    def muld_read_app(self, cycle: int, port: str) -> AppId:
        """App id for reading ``hi``/``lo`` at an existing MulD cycle."""
        return ("MulD", (cycle, port))

    def trace_pcl_cycle(
        self,
        rs_data: int,
        rt_data: int,
        branch_type: int,
        branch_target: int,
        pause: int,
    ) -> None:
        self.pcl.cycles.append(
            {
                "rs_data": rs_data,
                "rt_data": rt_data,
                "branch_type": branch_type,
                "branch_target": branch_target,
                "pause": pause,
            }
        )
        # Control flow is tester-visible: observe the PC (and the decision)
        # every cycle.
        self.pcl.observe.append({"pc", "pc_plus4", "take_branch"})

    def trace_pln_cycle(
        self,
        instr: int,
        pc_snapshot: int,
        wb_value: int,
        wb_dest: int,
        ctrl: int,
        pause: int,
        flush: int,
    ) -> None:
        self.pln.cycles.append(
            {
                "instr_in": instr,
                "pc_snapshot_in": pc_snapshot,
                "wb_value_in": wb_value,
                "wb_dest_in": wb_dest,
                "ctrl_in": ctrl,
                "pause": pause,
                "flush": flush,
            }
        )
        self.pln.observe.append(
            {"instr_q", "pc_snapshot_q", "wb_value_q", "wb_dest_q", "ctrl_q"}
        )

    def trace_gl_cycle(
        self, pause_mem: int, pause_muldiv: int, branch_taken: int
    ) -> None:
        self.gl.cycles.append(
            {
                "irq": 0,
                "irq_mask_data": 0,
                "irq_mask_we": 0,
                "pause_mem": pause_mem,
                "pause_muldiv": pause_muldiv,
                "branch_taken": branch_taken,
            }
        )
        self.gl.observe.append(
            {"pause_cpu", "irq_pending", "irq_status", "reset_done"}
        )

    def trace_mctrl_access(
        self,
        addr: int,
        size: int,
        signed: int,
        re: int,
        we: int,
        wr_data: int,
        mem_rdata: int,
    ) -> AppId:
        """One memory access = two MCTRL cycles (request + completion).

        Returns the app id that gates ``load_result`` observability.
        """
        request = {
            "addr": addr,
            "size": size,
            "signed": signed,
            "re": re,
            "we": we,
            "wr_data": wr_data,
            "mem_rdata": 0,
        }
        completion = dict(request, mem_rdata=mem_rdata)
        self.mctrl.cycles.append(request)
        self.mctrl.observe.append(set())
        self.mctrl.cycles.append(completion)
        completion_cycle = len(self.mctrl.cycles) - 1
        observed: set[str] = {"mem_we"}
        if we:
            # Stores land in the tester-readable response area: the bus
            # address, steered data and byte enables are directly observed.
            observed |= {"mem_addr", "mem_wdata", "byte_en"}
        self.mctrl.observe.append(observed)
        return ("MCTRL", (completion_cycle, "load_result"))

    # ------------------------------------------------------- finalisation

    def _combinational_observe(
        self, trace: CombinationalTrace
    ) -> list[tuple[str, ...]]:
        observed = self.tracker.observed
        return [
            ports if app in observed else ()
            for ports, app in zip(trace.candidate_ports, trace.apps, strict=True)
        ]

    def finalize(self) -> dict[str, tuple[list, list]]:
        """Resolve observability into per-component campaign inputs.

        Returns:
            ``{component: (patterns-or-cycles, observe)}`` ready to feed
            :mod:`repro.faultsim.harness` campaigns.
        """
        observed = self.tracker.observed
        # Sequential app marks recorded as (component, (cycle, port)).
        for app in observed:
            name, key = app[0], app[1]
            if name == "RegF" and isinstance(key, tuple):
                cycle, port = key
                self.regf.observe[cycle].add(port)
            elif name == "MulD" and isinstance(key, tuple):
                cycle, port = key
                self.muld.observe[cycle].add(port)
                self.muld.observe[cycle].add("busy")
            elif name == "MCTRL" and isinstance(key, tuple):
                cycle, port = key
                self.mctrl.observe[cycle].add(port)

        return {
            "ALU": (self.alu.patterns, self._combinational_observe(self.alu)),
            "BSH": (self.bsh.patterns, self._combinational_observe(self.bsh)),
            "CTRL": (self.ctrl.patterns, self._combinational_observe(self.ctrl)),
            "BMUX": (self.bmux.patterns, self._combinational_observe(self.bmux)),
            "RegF": (self.regf.cycles, [sorted(s) for s in self.regf.observe]),
            "MulD": (self.muld.cycles, [sorted(s) for s in self.muld.observe]),
            "PCL": (self.pcl.cycles, [sorted(s) for s in self.pcl.observe]),
            "PLN": (self.pln.cycles, [sorted(s) for s in self.pln.observe]),
            "GL": (self.gl.cycles, [sorted(s) for s in self.gl.observe]),
            "MCTRL": (self.mctrl.cycles, [sorted(s) for s in self.mctrl.observe]),
        }
