"""SCOAP testability metrics and structural untestability screening.

Classic SCOAP (Goldstein 1979) over the gate primitives of
:mod:`repro.netlist.gates`:

* ``CC0(n)`` / ``CC1(n)`` — combinational+sequential *controllability*:
  the least number of circuit nodes that must be set to force net ``n``
  to 0 / 1.  Primary inputs cost 1, every gate traversed adds 1, a DFF
  adds 1 (its reset ``init`` value is free apart from the reset itself).
  ``inf`` means the value is structurally unreachable.
* ``CO(n)`` — *observability*: the least number of nodes that must be
  set to propagate the value of ``n`` to some output port, 0 at the
  outputs themselves.

The metrics are computed as a monotone min-relaxation to a least
fixpoint, which handles sequential feedback loops without levelization.

Two by-products are **sound** for fault-list pruning and drive
:func:`untestable_fault_classes`:

* ``CCv(n) = inf`` proves net ``n`` never takes value ``v`` (induction
  over time and topological level: any reachable value admits a finite
  justification, and every SCOAP transfer rule is finite on finite
  inputs).  A stuck-at-``v`` fault on a net that is structurally
  constant ``v`` leaves the circuit function unchanged — untestable.
* A net with no *structural path* (through gates and DFFs, ignoring
  controllability entirely) to any output port can never propagate a
  fault effect — untestable both polarities.

The finite CO values themselves are deliberately **not** used for
pruning: SCOAP observability folds side-input controllabilities in, and
on reconvergent constant cones (``y = AND(n, n)`` with ``n`` stuck)
``CO = inf`` does not imply undetectable.  CO is reporting/priority
data only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.netlist.gates import GateType
from repro.netlist.netlist import CONST0, CONST1, Gate, Netlist

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.faultsim.faults import FaultList

INF = math.inf


@dataclass
class ScoapAnalysis:
    """SCOAP metrics plus the structural screening sets for one netlist.

    Attributes:
        netlist: analyzed circuit.
        cc0: per-net cost of forcing the net to 0 (``inf`` = impossible).
        cc1: per-net cost of forcing the net to 1.
        co: per-net cost of observing the net at an output port.
        observable: nets with a structural path to an output port.
    """

    netlist: Netlist
    cc0: list[float]
    cc1: list[float]
    co: list[float]
    observable: set[int]

    def constant_value(self, net: int) -> int | None:
        """0/1 if the net is structurally constant, else None."""
        if self.cc1[net] == INF:
            return 0
        if self.cc0[net] == INF:
            return 1
        return None

    def constant_nets(self) -> dict[int, int]:
        """All structurally constant nets (constants 0/1 excluded)."""
        result: dict[int, int] = {}
        for net in range(2, self.netlist.n_nets):
            value = self.constant_value(net)
            if value is not None:
                result[net] = value
        return result

    def testability(self, net: int) -> float:
        """Combined difficulty score: max(CC0, CC1) + CO (inf-capped)."""
        return max(self.cc0[net], self.cc1[net]) + self.co[net]


def _cc_xor_pair(a0: float, a1: float, b0: float, b1: float,
                 invert: bool) -> tuple[float, float]:
    """(cc0, cc1) of a 2-input XOR (XNOR when ``invert``) of a and b."""
    odd = min(a0 + b1, a1 + b0)
    even = min(a0 + b0, a1 + b1)
    return (odd, even) if invert else (even, odd)


def _gate_cc(gtype: GateType, in0: list[float], in1: list[float]
             ) -> tuple[float, float]:
    """(cc0, cc1) of a gate output given its input controllabilities."""
    if gtype is GateType.NOT:
        return in1[0] + 1, in0[0] + 1
    if gtype is GateType.BUF:
        return in0[0] + 1, in1[0] + 1
    if gtype is GateType.AND:
        return min(in0) + 1, sum(in1) + 1
    if gtype is GateType.NAND:
        return sum(in1) + 1, min(in0) + 1
    if gtype is GateType.OR:
        return sum(in0) + 1, min(in1) + 1
    if gtype is GateType.NOR:
        return min(in1) + 1, sum(in0) + 1
    if gtype in (GateType.XOR, GateType.XNOR):
        c0, c1 = in0[0], in1[0]
        for a0, a1 in zip(in0[1:], in1[1:], strict=True):
            c0, c1 = _cc_xor_pair(c0, c1, a0, a1, invert=False)
        if gtype is GateType.XNOR:
            c0, c1 = c1, c0
        return c0 + 1, c1 + 1
    if gtype is GateType.MUX2:  # (a, b, sel) -> sel ? b : a
        a0, b0, s0 = in0
        a1, b1, s1 = in1
        return (min(s0 + a0, s1 + b0) + 1, min(s0 + a1, s1 + b1) + 1)
    if gtype is GateType.AOI21:  # ~((a & b) | c)
        a0, b0, c0 = in0
        a1, b1, c1 = in1
        return (min(a1 + b1, c1) + 1, min(a0, b0) + c0 + 1)
    raise ValueError(f"unhandled gate type {gtype}")  # pragma: no cover


def compute_scoap(netlist: Netlist) -> ScoapAnalysis:
    """Compute SCOAP CC0/CC1/CO and the structural observable set."""
    n = netlist.n_nets
    cc0 = [INF] * n
    cc1 = [INF] * n
    cc0[CONST0] = 0.0
    cc1[CONST1] = 0.0
    for port in netlist.input_ports():
        for net in port.nets:
            cc0[net] = cc1[net] = 1.0

    # Controllability: monotone min-relaxation to the least fixpoint.
    # Values are sums of integer gate costs, strictly decrease on every
    # relaxation and are bounded below by 0, so this terminates.
    changed = True
    while changed:
        changed = False
        for gate in netlist.gates:
            in0 = [cc0[i] for i in gate.inputs]
            in1 = [cc1[i] for i in gate.inputs]
            v0, v1 = _gate_cc(gate.gtype, in0, in1)
            if v0 < cc0[gate.output]:
                cc0[gate.output] = v0
                changed = True
            if v1 < cc1[gate.output]:
                cc1[gate.output] = v1
                changed = True
        for dff in netlist.dffs:
            v0 = min(1.0 if dff.init == 0 else INF, cc0[dff.d] + 1)
            v1 = min(1.0 if dff.init == 1 else INF, cc1[dff.d] + 1)
            if v0 < cc0[dff.q]:
                cc0[dff.q] = v0
                changed = True
            if v1 < cc1[dff.q]:
                cc1[dff.q] = v1
                changed = True

    co = _compute_co(netlist, cc0, cc1)
    observable = _structural_observable(netlist)
    return ScoapAnalysis(netlist, cc0, cc1, co, observable)


def _co_through_gate(gate: Gate, pin: int, co_out: float,
                     cc0: list[float], cc1: list[float]) -> float:
    """CO of ``gate.inputs[pin]`` through this gate."""
    gtype = gate.gtype
    others = [net for i, net in enumerate(gate.inputs) if i != pin]
    if gtype in (GateType.NOT, GateType.BUF):
        return co_out + 1
    if gtype in (GateType.AND, GateType.NAND):
        return co_out + sum(cc1[o] for o in others) + 1
    if gtype in (GateType.OR, GateType.NOR):
        return co_out + sum(cc0[o] for o in others) + 1
    if gtype in (GateType.XOR, GateType.XNOR):
        return co_out + sum(min(cc0[o], cc1[o]) for o in others) + 1
    if gtype is GateType.MUX2:  # (a, b, sel)
        a, b, sel = gate.inputs
        if pin == 0:
            return co_out + cc0[sel] + 1
        if pin == 1:
            return co_out + cc1[sel] + 1
        # Observing sel needs the two data inputs to differ.
        return co_out + min(cc0[a] + cc1[b], cc1[a] + cc0[b]) + 1
    if gtype is GateType.AOI21:  # ~((a & b) | c)
        a, b, c = gate.inputs
        if pin == 0:
            return co_out + cc1[b] + cc0[c] + 1
        if pin == 1:
            return co_out + cc1[a] + cc0[c] + 1
        return co_out + min(cc0[a], cc0[b]) + 1
    raise ValueError(f"unhandled gate type {gtype}")  # pragma: no cover


def _compute_co(netlist: Netlist, cc0: list[float],
                cc1: list[float]) -> list[float]:
    co = [INF] * netlist.n_nets
    for port in netlist.output_ports():
        for net in port.nets:
            co[net] = 0.0
    changed = True
    while changed:
        changed = False
        for gate in netlist.gates:
            co_out = co[gate.output]
            if co_out == INF:
                continue
            for pin, net in enumerate(gate.inputs):
                value = _co_through_gate(gate, pin, co_out, cc0, cc1)
                if value < co[net]:
                    co[net] = value
                    changed = True
        for dff in netlist.dffs:
            value = co[dff.q] + 1
            if value < co[dff.d]:
                co[dff.d] = value
                changed = True
    return co


def _structural_observable(netlist: Netlist) -> set[int]:
    """Nets with a path (through gates/DFFs) to any output port."""
    readers: dict[int, list[int]] = {}  # input net -> [sink net, ...]
    for gate in netlist.gates:
        for net in gate.inputs:
            readers.setdefault(net, []).append(gate.output)
    for dff in netlist.dffs:
        readers.setdefault(dff.d, []).append(dff.q)

    # Backward BFS from the output port nets over the reversed edges.
    observable = {n for p in netlist.output_ports() for n in p.nets}
    reverse: dict[int, list[int]] = {}  # sink net -> [source net, ...]
    for src, sinks in readers.items():
        for sink in sinks:
            reverse.setdefault(sink, []).append(src)
    stack = list(observable)
    while stack:
        for src in reverse.get(stack.pop(), ()):
            if src not in observable:
                observable.add(src)
                stack.append(src)
    return observable


def untestable_fault_classes(fault_list: FaultList,
                             analysis: ScoapAnalysis | None = None
                             ) -> set[int]:
    """Representative indices of provably untestable collapsed classes.

    Only the two sound structural arguments are applied (see module
    docstring): excitation-impossible (fault site structurally constant
    at the stuck value) and no structural propagation path from the
    fault's injection point to any output port.  Equivalence-collapsed
    classes share test sets, so screening the representative screens the
    class.
    """
    from repro.faultsim.faults import FaultKind

    if analysis is None:
        analysis = compute_scoap(fault_list.netlist)
    netlist = fault_list.netlist
    untestable: set[int] = set()
    for rep in fault_list.class_representatives():
        fault = fault_list.fault(rep)
        if analysis.constant_value(fault.net) == fault.stuck:
            untestable.add(rep)
            continue
        # Propagation entry point: the net itself for stem faults, the
        # reading gate's output / the DFF's Q for pin faults.
        if fault.kind is FaultKind.STEM:
            entry = fault.net
        elif fault.kind is FaultKind.BRANCH:
            entry = netlist.gates[fault.gate].output
        else:  # DFF_D: the DFF index is stored in ``gate``
            entry = netlist.dffs[fault.gate].q
        if entry not in analysis.observable and entry not in (CONST0, CONST1):
            untestable.add(rep)
    return untestable
