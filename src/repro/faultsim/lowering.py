"""Netlist lowering and code generation for the compiled fault-sim engine.

The compiled engine (:mod:`repro.faultsim.engine`) lowers a levelized
:class:`~repro.netlist.netlist.Netlist` **once** into a flat straight-line
program over lane words and executes it through generated Python code
(``exec``-compiled once, then called per fault or per cycle).  The lowering
pipeline:

1. **dead-net elimination** — a reverse-levelized cone walk keeps only the
   gates that can reach an observation root (observed output nets, plus
   every DFF ``D`` net for sequential circuits); logic feeding nothing
   observable is never evaluated;
2. **constant folding** — ``CONST0``/``CONST1`` *operands* are folded into
   the per-gate expressions (an AND with a tied-0 input becomes the
   literal ``0``, an XOR with a tied-1 input becomes an inversion, a MUX
   with a tied select collapses to one branch).  Folding is restricted to
   the literal constant nets: a net that is merely *structurally* constant
   may still carry an injected fault, so it must stay materialized;
3. **fusion** — each gate type lowers to its cheapest big-int form
   (``NOT`` as ``x ^ M``, ``NAND`` as ``(a & b) ^ M``, ``MUX2`` as
   ``a ^ ((a ^ b) & s)`` — three operations instead of four and no ``~``,
   which would leave the word domain);
4. **code generation** — two shapes share steps 1–3:

   * :func:`compile_comb` emits one function for the whole circuit with a
     per-net *local variable* (no list subscripts in the hot path) and a
     ``start`` level guard: levels below the fault site load recorded good
     values instead of recomputing, and the detection compare is fused
     into the return expression, grouped by observe mask so it
     short-circuits on the first difference;
   * :func:`compile_seq` emits one function per level writing the net
     array in place, so batched lane evaluation can interleave fault
     injection between levels.

Compiled programs are cached process-wide by ``(structural hash,
observation signature)`` — re-grading a component (cache-warm runs,
resumes, equivalence suites) skips both lowering and ``exec``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence
from typing import cast

from repro.errors import FaultSimError
from repro.netlist.gates import GateType
from repro.netlist.levelize import levelize, levels
from repro.netlist.netlist import CONST0, CONST1, Gate, Netlist
from repro.netlist.hashing import structural_hash

# --------------------------------------------------------------- operands
#
# An operand is ("zero" | "one" | "var", text).  "zero" folds as the
# constant 0 word, "one" as the all-lanes mask M; "var" text is always
# safe to embed without extra parentheses (atoms stay bare, compound
# results are parenthesized at build time).

_ZERO = ("zero", "0")
_ONE = ("one", "M")


def _wrap(text: str) -> str:
    """Parenthesize a compound expression for safe embedding."""
    return text if text.isidentifier() or text.isdigit() else f"({text})"


def _fold_and(ops: list[tuple[str, str]]) -> tuple[str, str]:
    keep = []
    for kind, text in ops:
        if kind == "zero":
            return _ZERO
        if kind != "one":
            keep.append(text)
    if not keep:
        return _ONE
    if len(keep) == 1:
        return ("var", keep[0])
    return ("var", " & ".join(_wrap(t) for t in keep))


def _fold_or(ops: list[tuple[str, str]]) -> tuple[str, str]:
    keep = []
    for kind, text in ops:
        if kind == "one":
            return _ONE
        if kind != "zero":
            keep.append(text)
    if not keep:
        return _ZERO
    if len(keep) == 1:
        return ("var", keep[0])
    return ("var", " | ".join(_wrap(t) for t in keep))


def _fold_xor(ops: list[tuple[str, str]], invert: bool = False) -> tuple[str, str]:
    keep = []
    for kind, text in ops:
        if kind == "one":
            invert = not invert
        elif kind != "zero":
            keep.append(text)
    if not keep:
        return _ONE if invert else _ZERO
    body = " ^ ".join(_wrap(t) for t in keep)
    if invert:
        body = f"{body} ^ M"
    elif len(keep) == 1:
        return ("var", keep[0])
    return ("var", body)


def _fold_not(op: tuple[str, str]) -> tuple[str, str]:
    kind, text = op
    if kind == "zero":
        return _ONE
    if kind == "one":
        return _ZERO
    return ("var", f"{_wrap(text)} ^ M")


def gate_expr(gtype: GateType, ops: list[tuple[str, str]]) -> str:
    """Cheapest folded big-int expression for one gate.

    Every produced expression stays within ``[0, M]`` provided the
    operands do (no ``~``), so no trailing ``& M`` is needed.
    """
    if gtype is GateType.AND:
        return _fold_and(ops)[1]
    if gtype is GateType.OR:
        return _fold_or(ops)[1]
    if gtype is GateType.XOR:
        return _fold_xor(ops)[1]
    if gtype is GateType.NOT:
        return _fold_not(ops[0])[1]
    if gtype is GateType.BUF:
        return ops[0][1]
    if gtype is GateType.NAND:
        return _fold_not(_fold_and(ops))[1]
    if gtype is GateType.NOR:
        return _fold_not(_fold_or(ops))[1]
    if gtype is GateType.XNOR:
        return _fold_xor(ops, invert=True)[1]
    if gtype is GateType.AOI21:
        a, b, c = ops
        return _fold_not(_fold_or([_fold_and([a, b]), c]))[1]
    if gtype is GateType.MUX2:
        a, b, s = ops
        if s[0] == "zero":
            return a[1]
        if s[0] == "one":
            return b[1]
        if a == b:
            return a[1]
        if a[0] == "zero":
            return _fold_and([b, s])[1]
        aw, bw, sw = _wrap(a[1]), _wrap(b[1]), _wrap(s[1])
        return f"{aw} ^ (({aw} ^ {bw}) & {sw})"
    raise FaultSimError(f"unhandled gate type {gtype}")  # pragma: no cover


# ---------------------------------------------------------- cone pruning


def cone_keep(netlist: Netlist, roots: Iterable[int]) -> set[int]:
    """Indices of gates that can reach any root net (reverse cone walk)."""
    need = set(roots)
    keep: set[int] = set()
    for gate in reversed(levelize(netlist)):
        if gate.output in need:
            keep.add(gate.index)
            need.update(gate.inputs)
    return keep


# ----------------------------------------------------------- compilation


@dataclass(frozen=True)
class CompiledComb:
    """One netlist lowered for per-fault PPSFP evaluation.

    Attributes:
        fn: generated ``fn(v, M, om, start) -> int`` — evaluates levels
            ``>= start`` against the (possibly fault-mutated) good-value
            array ``v`` and returns a non-zero lane word on detection
            (a *partial witness*: the first differing observe group).
        masks: unique full-width observe masks; ``om`` passes their
            chunk-relative slices positionally.
        obs_net_masks: observed net -> full-width observe mask.
        driven_at: net -> driving level (sources are level 0).
        gate_level: gate index -> level.
        has_reader: nets read by at least one kept gate.
        n_gates_kept / n_gates_total: dead-net elimination accounting.
        n_folded_operands: constant operand slots folded away.
        source: the generated Python source (debugging aid).
    """

    fn: Callable[[list[int], int, tuple[int, ...], int], int]
    masks: tuple[int, ...]
    obs_net_masks: dict[int, int]
    driven_at: dict[int, int]
    gate_level: dict[int, int]
    has_reader: frozenset[int]
    n_gates_kept: int
    n_gates_total: int
    n_folded_operands: int
    source: str


@dataclass(frozen=True)
class CompiledSeq:
    """One netlist lowered for batched-lane sequential evaluation.

    Attributes:
        level_fns: per level (1-based, index 0 unused) ``fn(v, M)``
            writing every kept gate output of that level into ``v``.
        driven_at: net -> driving level (sources are level 0).
        gate_level: gate index -> level.
        keep: kept gate indices (cone of the roots).
        max_level: deepest kept level.
        n_gates_kept / n_gates_total / n_folded_operands: accounting.
        source: concatenated generated source (debugging aid).
    """

    level_fns: tuple[Callable[[list[int], int], None], ...]
    driven_at: dict[int, int]
    gate_level: dict[int, int]
    keep: frozenset[int]
    max_level: int
    n_gates_kept: int
    n_gates_total: int
    n_folded_operands: int
    source: str


def _driven_at(netlist: Netlist, gate_level: dict[int, int]) -> dict[int, int]:
    return {g.output: gate_level[g.index] for g in netlist.gates}


def _count_folded(gates: Sequence[Gate]) -> int:
    return sum(
        1 for g in gates for n in g.inputs if n in (CONST0, CONST1)
    )


def compile_comb(
    netlist: Netlist, obs_net_masks: dict[int, int]
) -> CompiledComb:
    """Lower a combinational netlist for PPSFP grading (see module doc)."""
    gate_level = levels(netlist)
    order = levelize(netlist)
    obs_net_masks = {n: m for n, m in obs_net_masks.items() if m}
    keep = cone_keep(netlist, obs_net_masks)
    kept = [g for g in order if g.index in keep]
    driven_at = _driven_at(netlist, gate_level)

    by_level: dict[int, list[Gate]] = {}
    for g in kept:
        by_level.setdefault(gate_level[g.index], []).append(g)
    max_level = max(by_level, default=0)

    read_nets: set[int] = set(obs_net_masks)
    for g in kept:
        read_nets.update(g.inputs)
    read_nets.discard(CONST0)
    read_nets.discard(CONST1)

    def opnd(n: int) -> tuple[str, str]:
        if n == CONST0:
            return _ZERO
        if n == CONST1:
            return _ONE
        return ("var", f"n{n}")

    lines = ["def _run(v, M, om, start):"]
    for n in sorted(read_nets):
        if driven_at.get(n, 0) == 0:
            lines.append(f"    n{n} = v[{n}]")
    for level in range(1, max_level + 1):
        gates = by_level.get(level, [])
        computes = [
            f"        n{g.output} = "
            f"{gate_expr(g.gtype, [opnd(n) for n in g.inputs])}"
            for g in gates
        ]
        loads = [
            f"        n{g.output} = v[{g.output}]"
            for g in gates
            if g.output in read_nets
        ]
        if not computes and not loads:
            continue
        lines.append(f"    if start <= {level}:")
        lines.extend(computes or ["        pass"])
        if loads:
            lines.append("    else:")
            lines.extend(loads)

    # Detection fused into the return: observed nets grouped by their
    # (full-width) observe mask; groups short-circuit with `or`.
    masks = tuple(sorted(set(obs_net_masks.values())))
    mask_index = {m: i for i, m in enumerate(masks)}
    groups: dict[int, list[int]] = {}
    for n in sorted(obs_net_masks):
        groups.setdefault(mask_index[obs_net_masks[n]], []).append(n)
    parts = []
    for mi in sorted(groups):
        xors = " | ".join(f"(n{n} ^ v[{n}])" for n in groups[mi])
        parts.append(f"(({xors}) & om[{mi}])")
    lines.append("    return " + (" or ".join(parts) if parts else "0"))

    source = "\n".join(lines)
    namespace: dict[str, object] = {}
    exec(compile(source, "<faultsim-comb>", "exec"), namespace)

    has_reader: set[int] = set()
    for g in kept:
        has_reader.update(g.inputs)

    return CompiledComb(
        fn=cast(
            "Callable[[list[int], int, tuple[int, ...], int], int]",
            namespace["_run"],
        ),
        masks=masks,
        obs_net_masks=dict(obs_net_masks),
        driven_at=driven_at,
        gate_level=gate_level,
        has_reader=frozenset(has_reader),
        n_gates_kept=len(kept),
        n_gates_total=len(netlist.gates),
        n_folded_operands=_count_folded(kept),
        source=source,
    )


def compile_seq(netlist: Netlist, roots: Iterable[int]) -> CompiledSeq:
    """Lower a netlist for batched-lane cycle walks (see module doc).

    ``roots`` must contain every net whose value the driver reads back:
    observed output nets plus every DFF ``D`` net.
    """
    gate_level = levels(netlist)
    order = levelize(netlist)
    keep = cone_keep(netlist, roots)
    kept = [g for g in order if g.index in keep]
    driven_at = _driven_at(netlist, gate_level)

    by_level: dict[int, list[Gate]] = {}
    for g in kept:
        by_level.setdefault(gate_level[g.index], []).append(g)
    max_level = max(by_level, default=0)

    def opnd(n: int) -> tuple[str, str]:
        if n == CONST0:
            return _ZERO
        if n == CONST1:
            return _ONE
        return ("var", f"v[{n}]")

    sources: list[str] = []
    fns: list[Callable[[list[int], int], None]] = [lambda v, M: None]
    for level in range(1, max_level + 1):
        lines = [f"def _lvl{level}(v, M):"]
        for g in by_level.get(level, []):
            expr = gate_expr(g.gtype, [opnd(n) for n in g.inputs])
            lines.append(f"    v[{g.output}] = {expr}")
        if len(lines) == 1:
            lines.append("    pass")
        src = "\n".join(lines)
        sources.append(src)
        namespace: dict[str, object] = {}
        exec(compile(src, f"<faultsim-seq-l{level}>", "exec"), namespace)
        fns.append(
            cast(
                "Callable[[list[int], int], None]",
                namespace[f"_lvl{level}"],
            )
        )

    return CompiledSeq(
        level_fns=tuple(fns),
        driven_at=driven_at,
        gate_level=gate_level,
        keep=frozenset(keep),
        max_level=max_level,
        n_gates_kept=len(kept),
        n_gates_total=len(netlist.gates),
        n_folded_operands=_count_folded(kept),
        source="\n\n".join(sources),
    )


# ------------------------------------------------------ compiled-program cache

_MAX_PROGRAMS = 16
_CacheKey = tuple[str, str, tuple[object, ...]]
_programs: "OrderedDict[_CacheKey, CompiledComb | CompiledSeq]" = OrderedDict()


def _cached(
    key: _CacheKey, build: Callable[[], "CompiledComb | CompiledSeq"]
) -> CompiledComb | CompiledSeq:
    prog = _programs.get(key)
    if prog is not None:
        _programs.move_to_end(key)
        return prog
    prog = build()
    _programs[key] = prog
    while len(_programs) > _MAX_PROGRAMS:
        _programs.popitem(last=False)
    return prog


def cached_compile_comb(
    netlist: Netlist, obs_net_masks: dict[int, int]
) -> CompiledComb:
    """`compile_comb` through the process-wide program cache."""
    key = (
        "comb",
        structural_hash(netlist),
        tuple(sorted(obs_net_masks.items())),
    )
    prog = _cached(key, lambda: compile_comb(netlist, obs_net_masks))
    assert isinstance(prog, CompiledComb)
    return prog


def cached_compile_seq(
    netlist: Netlist, roots: Sequence[int]
) -> CompiledSeq:
    """`compile_seq` through the process-wide program cache."""
    key = ("seq", structural_hash(netlist), tuple(sorted(set(roots))))
    prog = _cached(key, lambda: compile_seq(netlist, roots))
    assert isinstance(prog, CompiledSeq)
    return prog


def clear_program_cache() -> None:
    _programs.clear()
