"""Unit tests for the pseudorandom-instruction baseline."""

from repro.baselines.random_instructions import RandomInstructionSelfTest
from repro.plasma.cpu import PlasmaCPU
from repro.plasma.tracer import ComponentTracer


def run(st):
    cpu = PlasmaCPU()
    cpu.load_program(st.program)
    result = cpu.run(max_instructions=2_000_000)
    return cpu, result


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = RandomInstructionSelfTest(n_instructions=50, seed=1)
        b = RandomInstructionSelfTest(n_instructions=50, seed=1)
        assert a.generate_source() == b.generate_source()

    def test_seeds_differ(self):
        a = RandomInstructionSelfTest(n_instructions=50, seed=1)
        b = RandomInstructionSelfTest(n_instructions=50, seed=2)
        assert a.generate_source() != b.generate_source()

    def test_program_size_scales_linearly(self):
        small = RandomInstructionSelfTest(n_instructions=100).build_program()
        large = RandomInstructionSelfTest(n_instructions=400).build_program()
        assert large.code_words > 3 * small.code_words


class TestExecution:
    def test_runs_and_halts(self):
        st = RandomInstructionSelfTest(n_instructions=200).build_program()
        cpu, result = run(st)
        assert result.halted

    def test_stores_responses(self):
        st = RandomInstructionSelfTest(
            n_instructions=64, store_period=8
        ).build_program()
        cpu, _ = run(st)
        window = cpu.memory.dump_words(st.response_base, 8 + 14)
        assert any(w != 0 for w in window)

    def test_muldiv_variant_runs(self):
        st = RandomInstructionSelfTest(
            n_instructions=100, include_muldiv=True
        ).build_program()
        cpu, result = run(st)
        assert result.halted
        assert result.cycles > 100  # mult/div latency shows up

    def test_traceable(self):
        st = RandomInstructionSelfTest(n_instructions=100).build_program()
        tracer = ComponentTracer()
        cpu = PlasmaCPU(tracer=tracer)
        cpu.load_program(st.program)
        cpu.run()
        specs = tracer.finalize()
        patterns, observe = specs["ALU"]
        assert patterns
        assert any(ports for ports in observe)
