"""SAT-based formal layer: CEC, redundancy proofs, witness ATPG.

Built on a dependency-free CDCL solver (:mod:`repro.formal.sat`) and a
structurally-hashed Tseitin encoder (:mod:`repro.formal.encode`), this
package provides three services over the gate netlists:

* :func:`check_equivalence` / :func:`check_component` — prove a
  component netlist equivalent to its behavioral golden model
  (:mod:`repro.formal.golden`), or return a replay-confirmed
  counterexample.
* :func:`prove_untestable` / :func:`proven_untestable_classes` — UNSAT
  certificates that a stuck-at fault is redundant; the only evidence
  the grading layer accepts for excluding faults from coverage
  denominators.
* :func:`generate_vectors` — deterministic test vectors extracted from
  SAT witnesses for the hardest-to-detect fault classes.

DESIGN.md §12 documents the encoding, the miter constructions and the
soundness arguments.
"""

from repro.formal.atpg import (
    AtpgResult,
    AtpgVector,
    fault_detection_cost,
    generate_vectors,
    hard_fault_targets,
)
from repro.formal.bitvec import BV, STATE_IN, STATE_OUT, SpecBuilder
from repro.formal.cec import (
    CecResult,
    Counterexample,
    FormalInternalError,
    check_component,
    check_equivalence,
)
from repro.formal.cnf import CNF, ClauseSink
from repro.formal.encode import LogicEncoder, encode_circuit, miter_lit
from repro.formal.evaluate import eval_cut, state_from_init
from repro.formal.golden import GOLDEN_SPECS, golden_model
from repro.formal.redundancy import (
    FaultMiterSession,
    FaultVerdict,
    UntestabilityScreen,
    Witness,
    prove_untestable,
    proven_untestable_classes,
)
from repro.formal.sat import SatSolver, SolverStats, luby, solve_cnf

__all__ = [
    "CNF",
    "AtpgResult",
    "AtpgVector",
    "BV",
    "STATE_IN",
    "STATE_OUT",
    "CecResult",
    "ClauseSink",
    "Counterexample",
    "FaultMiterSession",
    "FaultVerdict",
    "FormalInternalError",
    "GOLDEN_SPECS",
    "LogicEncoder",
    "SatSolver",
    "SolverStats",
    "SpecBuilder",
    "UntestabilityScreen",
    "Witness",
    "check_component",
    "check_equivalence",
    "encode_circuit",
    "eval_cut",
    "fault_detection_cost",
    "generate_vectors",
    "golden_model",
    "hard_fault_targets",
    "luby",
    "miter_lit",
    "prove_untestable",
    "proven_untestable_classes",
    "solve_cnf",
    "state_from_init",
]
