"""Direct evaluation of combinationally-cut netlists (the SAT oracle).

The formal layer never trusts a SAT witness on its own: every
counterexample (CEC mismatch, ATPG vector) is re-evaluated through this
module, which interprets the netlist gate-by-gate with
:func:`repro.netlist.gates.eval_gate` — a code path that shares nothing
with the CNF encoder.  The same cut convention applies: DFF Q values
come from a caller-supplied state vector, DFF D values are returned as
the next state.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.faultsim.faults import Fault, FaultKind
from repro.netlist.gates import eval_gate
from repro.netlist.levelize import levelize
from repro.netlist.netlist import CONST1, Gate, Netlist


def eval_cut(
    netlist: Netlist,
    inputs: Mapping[str, int],
    state: Sequence[int] = (),
    *,
    fault: Fault | None = None,
    order: Sequence[Gate] | None = None,
) -> tuple[dict[str, int], list[int]]:
    """Evaluate one combinational step of a (cut) netlist.

    Args:
        inputs: value per input port name (unlisted ports default to 0).
        state: Q bit per DFF index; must cover every DFF.
        fault: optional stuck-at fault to inject (same semantics as the
            CNF encoder and the fault simulators).
        order: pre-levelized gate order to amortise repeated calls.

    Returns:
        ``(outputs, next_state)``: value per output port name, and the
        D bit per DFF index.
    """
    values = [0] * netlist.n_nets
    values[CONST1] = 1
    for port in netlist.input_ports():
        word = inputs.get(port.name, 0)
        for i, net in enumerate(port.nets):
            values[net] = (word >> i) & 1
    dffs = netlist.dffs
    if len(state) != len(dffs):
        raise ValueError(
            f"state vector has {len(state)} bits but {netlist.name!r} "
            f"holds {len(dffs)} flip-flops"
        )
    for dff, bit in zip(dffs, state, strict=True):
        values[dff.q] = bit & 1

    branch_gate = branch_pin = stem_net = -1
    stuck = 0
    if fault is not None:
        stuck = fault.stuck
        if fault.kind is FaultKind.BRANCH:
            branch_gate, branch_pin = fault.gate, fault.pin
        elif fault.kind is FaultKind.STEM:
            stem_net = fault.net

    if order is None:
        order = levelize(netlist)
    for gate in order:
        ins = [
            stuck if n == stem_net else values[n] for n in gate.inputs
        ]
        if gate.index == branch_gate:
            ins[branch_pin] = stuck
        values[gate.output] = eval_gate(gate.gtype, ins, 1)

    def read(net: int) -> int:
        return stuck if net == stem_net else values[net]

    outputs = {
        port.name: sum(read(net) << i for i, net in enumerate(port.nets))
        for port in netlist.output_ports()
    }
    next_state = []
    for dff in dffs:
        if fault is not None and fault.kind is FaultKind.DFF_D \
                and fault.gate == dff.index:
            next_state.append(stuck)
        else:
            next_state.append(read(dff.d))
    return outputs, next_state


def state_from_init(netlist: Netlist) -> list[int]:
    """The reset state vector (each DFF's ``init`` value)."""
    return [dff.init for dff in netlist.dffs]
