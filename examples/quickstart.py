#!/usr/bin/env python3
"""Quickstart: assemble a program, run it on the Plasma model, and grade a
component with the stuck-at fault simulator.

Run with::

    python examples/quickstart.py
"""

from repro.core.campaign import grade_component
from repro.isa import assemble, disassemble_program
from repro.plasma import ComponentTracer, PlasmaCPU
from repro.plasma.components import component

SOURCE = """
# Sum the words of a small table, store the result, then square it with
# the multiplier and store that too.
.text
main:
    la   $t0, table          # table pointer
    li   $t1, 4              # element count
    li   $t2, 0              # accumulator
loop:
    lw   $t3, 0($t0)
    addu $t2, $t2, $t3
    addiu $t0, $t0, 4
    addiu $t1, $t1, -1
    bnez $t1, loop
    nop                      # branch delay slot
    la   $t9, results
    sw   $t2, 0($t9)         # results[0] = sum
    mult $t2, $t2
    mflo $t4                 # stalls until the 32-cycle multiply is done
    sw   $t4, 4($t9)         # results[1] = sum^2
halt:
    j halt
    nop

.data
table:   .word 10, 20, 30, 40
results: .word 0, 0
"""


def main() -> None:
    # 1. Assemble.  The two-pass assembler handles labels, pseudo-ops
    #    (li/la/bnez/nop) and data directives.
    program = assemble(SOURCE)
    print(f"assembled: {program.code_words} code words, "
          f"{program.data_words} data words")
    print("\nfirst instructions:")
    for line in disassemble_program(program)[:6]:
        print("  " + line)

    # 2. Execute on the Plasma model with component tracing enabled.
    tracer = ComponentTracer()
    cpu = PlasmaCPU(tracer=tracer)
    cpu.load_program(program)
    result = cpu.run()
    base = program.symbol("results")
    total = cpu.memory.read_word(base)
    squared = cpu.memory.read_word(base + 4)
    print(f"\nexecuted {result.instructions} instructions "
          f"in {result.cycles} cycles (3-stage-pipeline cost model)")
    print(f"results: sum={total}, sum^2={squared}")
    assert total == 100 and squared == 10_000

    # 3. Fault-grade the ALU against exactly the stimulus this program
    #    applied to it (with taint-derived observability).
    specs = tracer.finalize()
    stimulus, observe = specs["ALU"]
    campaign = grade_component(component("ALU"), stimulus, observe)
    print(f"\nALU stuck-at coverage from this little program alone: "
          f"{campaign.fault_coverage:.1f}% "
          f"({campaign.n_detected}/{campaign.n_faults} collapsed faults, "
          f"{len(stimulus)} traced patterns)")


if __name__ == "__main__":
    main()
