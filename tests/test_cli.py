"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main

SAMPLE = """
.text
    li $t0, 7
    la $t1, out
    sw $t0, 0($t1)
halt: j halt
    nop
.data
out: .word 0
"""


@pytest.fixture
def sample_file(tmp_path):
    path = tmp_path / "sample.s"
    path.write_text(SAMPLE)
    return str(path)


class TestAsm:
    def test_stats(self, sample_file, capsys):
        assert main(["asm", sample_file]) == 0
        out = capsys.readouterr().out
        assert "code words" in out

    def test_listing(self, sample_file, capsys):
        assert main(["asm", sample_file, "--listing"]) == 0
        out = capsys.readouterr().out
        assert "addiu $t0, $zero, 7" in out

    def test_image(self, sample_file, capsys):
        assert main(["asm", sample_file, "--image"]) == 0
        out = capsys.readouterr().out
        assert "00000000" in out

    def test_assembly_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("bogus $1, $2\n")
        assert main(["asm", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["asm", "/nonexistent.s"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRun:
    def test_runs_and_reports(self, sample_file, capsys):
        assert main(["run", sample_file]) == 0
        out = capsys.readouterr().out
        assert "halted at pc=" in out

    def test_dump(self, sample_file, capsys):
        assert main(["run", sample_file, "--dump", "0x2000:1"]) == 0
        out = capsys.readouterr().out
        assert "00002000 00000007" in out

    def test_bad_dump_spec(self, sample_file):
        with pytest.raises(SystemExit):
            main(["run", sample_file, "--dump", "whatever"])


class TestSelftest:
    def test_prints_source(self, capsys):
        assert main(["selftest", "--phases", "A"]) == 0
        captured = capsys.readouterr()
        assert "selftest_start:" in captured.out
        assert "code words" in captured.err

    def test_writes_file(self, tmp_path, capsys):
        target = tmp_path / "st.s"
        assert main(["selftest", "--phases", "A", "-o", str(target)]) == 0
        assert "selftest_halt" in target.read_text()


class TestCampaign:
    def test_subset_campaign(self, capsys):
        assert main(["campaign", "--phases", "A",
                     "--components", "ALU,BSH"]) == 0
        out = capsys.readouterr().out
        assert "ALU" in out and "Plasma" in out
        assert "Clock Cycles" in out


class TestInventory:
    def test_tables(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "Register File" in out
        assert "17,459" in out
