"""Multiplier/divider self-test routine (Phase A).

One loop walks the operand-pair table and issues all four operations,
reading HI and LO back after each (the read interlocks on the 32-cycle
iteration, so this routine dominates the self-test execution time — as the
paper notes for its MulD tests).  A short tail exercises the MTHI/MTLO
direct-write path.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.routines.base import RoutineResult, TestRoutine, _Emitter
from repro.core.testlib import MULDIV_HILO_VALUES, MULDIV_OPERAND_PAIRS

OPS: tuple[str, ...] = ("mult", "multu", "div", "divu")


class MulDivRoutine(TestRoutine):
    """Corner-operand sweep over MULT/MULTU/DIV/DIVU plus MTHI/MTLO."""

    component = "MulD"
    signature_registers = ("$s0",)

    def __init__(
        self, pairs: Iterable[tuple[int, int]] = MULDIV_OPERAND_PAIRS
    ):
        self.pairs = tuple(pairs)

    def generate(self, prefix: str, resp_base: int) -> RoutineResult:
        e = _Emitter(resp_base)
        per_iter = 2 * len(OPS)
        stride = 4 * per_iter

        e.comment("MulD: all operations over the corner-operand table")
        e.emit(f"{prefix}_start:")
        e.emit(f"    li $s0, {resp_base}")
        e.emit(f"    la $t8, {prefix}_pairs")
        e.emit(f"    li $t9, {len(self.pairs)}")
        e.emit(f"{prefix}_loop:")
        e.emit("    lw $t0, 0($t8)")
        e.emit("    lw $t1, 4($t8)")
        offset = 0
        for op in OPS:
            e.emit(f"    {op} $t0, $t1")
            e.emit("    mfhi $t2")
            e.emit("    mflo $t3")
            e.emit(f"    sw $t2, {offset}($s0)")
            e.emit(f"    sw $t3, {offset + 4}($s0)")
            offset += 8
        e.emit(f"    addiu $s0, $s0, {stride}")
        e.emit("    addiu $t8, $t8, 8")
        e.emit("    addiu $t9, $t9, -1")
        e.emit(f"    bnez $t9, {prefix}_loop")
        e.emit("    nop")

        for _ in range(per_iter * len(self.pairs)):
            e.next_response()

        e.comment("MTHI/MTLO direct writes")
        hi_val, lo_val = MULDIV_HILO_VALUES
        e.emit(f"    li $t0, {hi_val:#010x}")
        e.emit("    mthi $t0")
        e.emit(f"    li $t1, {lo_val:#010x}")
        e.emit("    mtlo $t1")
        e.emit("    mfhi $t2")
        e.store("$t2")
        e.emit("    mflo $t3")
        e.store("$t3")

        data_lines = [f"{prefix}_pairs:"]
        for a, b in self.pairs:
            data_lines.append(f"    .word {a:#010x}, {b:#010x}")
        return RoutineResult(
            text=e.text(),
            data="\n".join(data_lines) + "\n",
            response_words=e.response_words,
        )
