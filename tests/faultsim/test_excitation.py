"""Unit tests for the never-excited / excited-unobserved fault breakdown."""

from repro.faultsim.harness import run_combinational
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType


def two_path_circuit():
    """y1 = a & b (observed); y2 = a | b (sometimes unobserved)."""
    b = NetlistBuilder("paths")
    x = b.input("x", 2)
    b.output("y1", b.gate(GateType.AND, x[0], x[1]))
    b.output("y2", b.gate(GateType.OR, x[0], x[1]))
    return b.build()


class TestExcitationBreakdown:
    def test_partition_sums_to_undetected(self):
        netlist = two_path_circuit()
        result = run_combinational(netlist, [dict(x=0b01)])
        undetected = result.n_faults - result.n_detected
        assert result.n_never_excited + result.n_excited_unobserved == undetected

    def test_constant_stimulus_leaves_unexcited_faults(self):
        # With x held at 0b00, any s-a-0 whose good value is always 0 is
        # never excited.
        netlist = two_path_circuit()
        result = run_combinational(netlist, [dict(x=0)])
        assert result.n_never_excited > 0

    def test_unobserved_output_creates_excited_unobserved(self):
        netlist = two_path_circuit()
        patterns = [dict(x=v) for v in range(4)]
        # Observe only y1: faults on the OR path are excited (exhaustive
        # stimulus) but never observed.
        observe = [("y1",)] * len(patterns)
        result = run_combinational(netlist, patterns, observe)
        assert result.n_excited_unobserved > 0
        assert result.n_never_excited == 0  # exhaustive stimulus

    def test_exhaustive_fully_observed_has_no_residue(self):
        netlist = two_path_circuit()
        patterns = [dict(x=v) for v in range(4)]
        result = run_combinational(netlist, patterns)
        assert result.fault_coverage == 100.0
        assert result.n_never_excited == 0
        assert result.n_excited_unobserved == 0

    def test_report_line(self):
        netlist = two_path_circuit()
        result = run_combinational(netlist, [dict(x=0)])
        text = result.excitation_report()
        assert "never excited" in text and "FC" in text
