"""Pseudorandom-instruction self-test baseline (refs [2]-[5] style).

Generates a straight-line program of pseudorandom computation instructions
over pseudorandom register contents, storing an accumulated response
register to memory at a fixed period so results stay observable.  This is
the classic functional approach the paper's introduction criticises:
structural coverage saturates while program size (and thus tester download
time) keeps growing linearly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.methodology import SelfTestProgram
from repro.isa.assembler import assemble

#: Instruction population (mnemonic, kind) the generator samples from.
_RTYPE = ("addu", "subu", "and", "or", "xor", "nor", "slt", "sltu")
_ITYPE = ("addiu", "andi", "ori", "xori", "slti", "sltiu")
_SHIFT_IMM = ("sll", "srl", "sra")
_SHIFT_VAR = ("sllv", "srlv", "srav")

#: Registers the generator uses as a working set.
_WORK_REGS = tuple(range(2, 16))


@dataclass
class RandomInstructionSelfTest:
    """Pseudorandom-instruction program generator.

    Args:
        n_instructions: number of random compute instructions.
        seed: PRNG seed (deterministic output for a given seed).
        store_period: emit an observability store every N instructions.
        include_muldiv: mix in MULT/DIV (+HI/LO reads); costs many cycles.
    """

    n_instructions: int = 1000
    seed: int = 2003
    store_period: int = 8
    include_muldiv: bool = False

    def generate_source(self, resp_base: int = 0x4000) -> str:
        rng = random.Random(self.seed)
        lines = [".text", "rand_start:"]
        # Random initial register contents.
        for reg in _WORK_REGS:
            lines.append(f"    li ${reg}, {rng.getrandbits(32):#010x}")
        resp = resp_base

        def pick_reg() -> int:
            return rng.choice(_WORK_REGS)

        emitted = 0
        while emitted < self.n_instructions:
            kind = rng.random()
            rd, rs, rt = pick_reg(), pick_reg(), pick_reg()
            if kind < 0.40:
                op = rng.choice(_RTYPE)
                lines.append(f"    {op} ${rd}, ${rs}, ${rt}")
            elif kind < 0.65:
                op = rng.choice(_ITYPE)
                imm = rng.getrandbits(16)
                if op in ("addiu", "slti", "sltiu") and imm > 0x7FFF:
                    imm -= 0x10000
                lines.append(f"    {op} ${rd}, ${rs}, {imm}")
            elif kind < 0.80:
                op = rng.choice(_SHIFT_IMM)
                lines.append(f"    {op} ${rd}, ${rs}, {rng.randrange(32)}")
            elif kind < 0.90:
                op = rng.choice(_SHIFT_VAR)
                lines.append(f"    {op} ${rd}, ${rs}, ${rt}")
            elif self.include_muldiv and kind < 0.93:
                op = rng.choice(("mult", "multu", "div", "divu"))
                lines.append(f"    {op} ${rs}, ${rt}")
                lines.append(f"    mflo ${rd}")
                emitted += 1
            else:
                op = rng.choice(_RTYPE)
                lines.append(f"    {op} ${rd}, ${rs}, ${rt}")
            emitted += 1
            if emitted % self.store_period == 0:
                lines.append(f"    sw ${rd}, {resp}($0)")
                resp += 4

        # Final dump of the whole working set.
        for reg in _WORK_REGS:
            lines.append(f"    sw ${reg}, {resp}($0)")
            resp += 4
        lines += ["rand_halt: j rand_halt", "    nop"]
        return "\n".join(lines) + "\n"

    def build_program(self, resp_base: int = 0x4000) -> SelfTestProgram:
        """Assemble into the same container the methodology produces.

        Large programs would overlap a fixed response window, so the window
        is moved above the code when needed (keeping ``sw addr($0)``
        absolute addressing encodable).
        """
        program = assemble(self.generate_source(resp_base))
        code_end = max(s.end for s in program.segments if s.is_code)
        if code_end > resp_base:
            resp_base = (code_end + 0x100) & ~0xFF
            if resp_base > 0x7000:
                raise ValueError(
                    f"program too large for $0-relative responses "
                    f"({code_end:#x} bytes of code)"
                )
            program = assemble(self.generate_source(resp_base))
        source = self.generate_source(resp_base)
        return SelfTestProgram(
            phases=f"random({self.n_instructions})",
            source=source,
            program=program,
            response_base=resp_base,
        )
