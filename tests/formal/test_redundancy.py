"""SAT redundancy proofs: soundness gates for the untestability screen.

Two regression gates guard the coverage denominators:

* **FV202 soundness** — every fault class the SCOAP structural screen
  calls untestable must be SAT-confirmed redundant, on every shipped
  component.  The structural screen stays a certified subset of the
  complete criterion or the build fails.
* **No proven fault is ever detected** — the full self-test program,
  graded through all three engines, must leave every SAT-proven
  redundant class undetected (excluding them from the denominator can
  then only be sound).
"""

import pytest

from repro.core.campaign import execute_self_test
from repro.core.methodology import SelfTestMethodology
from repro.faultsim.engine import grade
from repro.faultsim.options import GradeOptions
from repro.faultsim.faults import build_fault_list
from repro.formal.redundancy import (
    FaultMiterSession,
    prove_untestable,
    proven_untestable_classes,
)
from repro.plasma.components import COMPONENTS, build_component

#: Components whose SCOAP screen finds candidates (with current netlists).
SCREENED = ("RegF", "MulD", "PCL", "CTRL")

ENGINES = ("differential", "batch", "compiled", "packed")


class TestSoundnessGate:
    @pytest.mark.parametrize(
        "name", [info.name for info in COMPONENTS]
    )
    def test_every_structural_candidate_is_sat_confirmed(self, name):
        screen = prove_untestable(build_component(name), component=name)
        assert not screen.unconfirmed, (
            f"{name}: structural screen is not SAT-confirmed for classes "
            f"{sorted(screen.unconfirmed)} — FV202 soundness regression"
        )
        assert not screen.witnessed
        assert screen.proven == screen.structural

    def test_screened_components_have_candidates(self):
        # The gate above is vacuous if the screen never fires; pin the
        # components where it must.
        for name in SCREENED:
            netlist = build_component(name)
            screen = prove_untestable(netlist, component=name)
            assert screen.structural, name


class TestProvenFaultsStayUndetected:
    @pytest.fixture(scope="class")
    def traced_specs(self):
        self_test = SelfTestMethodology().build_program("ABC")
        _, tracer, _ = execute_self_test(self_test)
        return tracer.finalize()

    @pytest.mark.parametrize("name", SCREENED)
    def test_full_program_never_detects_a_proven_fault(
        self, traced_specs, name
    ):
        netlist = build_component(name)
        fault_list = build_fault_list(netlist)
        proven = proven_untestable_classes(netlist, fault_list)
        assert proven
        stimulus, observe = traced_specs[name]
        assert stimulus, f"{name} not excited by the ABC program"
        for engine in ENGINES:
            result = grade(
                netlist, stimulus, fault_list,
                GradeOptions(engine=engine, observe=observe, name=name,
                             subset=sorted(proven)),
            )
            assert not (result.detected & proven), (
                f"{name}/{engine}: engine detected a SAT-proven "
                f"redundant fault — the proof or the engine is wrong"
            )


class TestSessionApi:
    def test_query_returns_witness_for_testable_fault(self):
        netlist = build_component("CTRL")
        fault_list = build_fault_list(netlist)
        session = FaultMiterSession(netlist)
        # Class 0 is a primary-input stem fault: certainly testable.
        reps = fault_list.class_representatives()
        screen = prove_untestable(netlist, fault_list)
        testable_rep = next(r for r in reps if r not in screen.structural)
        verdict = session.query(fault_list.fault(testable_rep), testable_rep)
        assert not verdict.redundant
        assert verdict.witness is not None  # replay-confirmed internally

    def test_incremental_session_matches_one_shot_queries(self):
        netlist = build_component("PCL")
        fault_list = build_fault_list(netlist)
        screen = prove_untestable(netlist, fault_list)
        session = FaultMiterSession(netlist)
        for rep in sorted(screen.structural):
            assert session.query(fault_list.fault(rep), rep).redundant
