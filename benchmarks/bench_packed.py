"""Gate G2 — packed fault-parallel grading and the persistent store.

The ``packed`` engine rides up to ``lanes - 1`` fault classes per big-int
word next to the good machine; the persistent :class:`TraceStore` makes
repeat campaigns incremental.  Neither is allowed to change a single
verdict.  This bench grades real traced components and enforces:

* **verdict equality (hard gate)** — packed verdicts, excitation flags
  and Table 5 rows must be bit-identical to the compiled engine, with
  collapse on and off, and a lane-aligned sharded merge must reproduce
  the serial run exactly;
* **warm-store replay (hard gate)** — an unchanged repeat campaign
  against a persistent cache directory must replay every component from
  the store (zero re-simulated classes) with identical coverage;
* **steady-state throughput (soft gate)** — cache-warm packed grading
  should be >= 4x the compiled engine.  Measured reality on this
  container: ~1.7-2.0x on the deep combinational cones (ALU, BSH) and
  parity elsewhere — the compiled engine is already pattern-parallel,
  so packing amortizes only the per-gate interpreter dispatch while the
  big-int limb work per fault is identical.  Components below the floor
  are reported as SKIP with the measured speedup rather than pretending
  to pass.

Runs two ways:

* ``PYTHONPATH=src python benchmarks/bench_packed.py [--quick]`` —
  standalone; exit 1 only on a hard-gate failure.  ``--quick`` (the CI
  gate) restricts to the fast components and one timing repetition.
* via the tier-2 pytest-benchmark suite (full mode).

A JSON artifact with the per-component measurements lands in
``benchmarks/results/packed_gate.json`` for trend tracking.
"""

import argparse
import json
import sys
import tempfile
import time

from repro.core.campaign import execute_self_test, run_campaign
from repro.faultsim import GradeOptions, TraceStore, build_fault_list, grade
from repro.core.methodology import SelfTestMethodology
from repro.plasma.components import build_component
from repro.runtime.sharding import plan_shards

#: Soft-gate floor: steady-state packed-vs-compiled speedup.  See the
#: module docstring — the floor is aspirational on this container and
#: misses report SKIP with the measured number.
THROUGHPUT_FLOOR = 4.0

#: Lane groups per word for every packed run in this bench.
LANES = 64

#: Quick mode: components that grade in a few seconds each.
QUICK_COMPONENTS = ("CTRL", "BSH")

#: Full mode: the deep combinational cones (where packing pays) plus
#: shallow and sequential components (where parity is the claim).
FULL_COMPONENTS = ("ALU", "BSH", "CTRL", "BMUX", "PLN", "MCTRL")

#: Warm-store campaign subset (kept small — the gate is about replay
#: semantics, not breadth).
STORE_COMPONENTS = ("CTRL", "BSH")


def traced_specs():
    self_test = SelfTestMethodology().build_program("A")
    _, tracer, _ = execute_self_test(self_test)
    return tracer.finalize()


def _verdicts(result):
    return {
        rep: (det.detected, det.excited)
        for rep, det in result.detections.items()
    }


def _timed(repeats, fn):
    """Best-of-N wall time (seconds) and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _bench_component(name, stimulus, observe, repeats, lines, failures,
                     records):
    netlist = build_component(name)
    fault_list = build_fault_list(netlist)

    def compiled():
        return grade(netlist, stimulus, fault_list,
                     GradeOptions(engine="compiled", observe=observe,
                                  name=name))

    def packed():
        return grade(netlist, stimulus, fault_list,
                     GradeOptions(engine="packed", observe=observe,
                                  name=name, lanes=LANES))

    def packed_collapsed():
        return grade(netlist, stimulus, fault_list,
                     GradeOptions(engine="packed", observe=observe,
                                  name=name, lanes=LANES, collapse=True))

    # Warm every cache (good trace, compiled kernels) outside the
    # timing: the gate measures steady-state campaign behaviour.
    compiled()
    packed()
    base_seconds, base = _timed(repeats, compiled)
    pack_seconds, pack = _timed(repeats, packed)
    coll = packed_collapsed()

    # --- hard gate: packed == compiled, fault by fault ------------------
    if _verdicts(pack) != _verdicts(base) or pack.detected != base.detected:
        failures.append(f"{name}: packed verdicts differ from compiled")
    if pack.to_component_coverage() != base.to_component_coverage():
        failures.append(f"{name}: packed Table 5 row differs from compiled")

    # --- hard gate: packed collapse on == off ---------------------------
    if coll.detected != base.detected:
        failures.append(f"{name}: packed+collapse changes the detected set")
    if coll.fault_coverage != base.fault_coverage:
        failures.append(f"{name}: packed+collapse changes FC")

    # --- hard gate: lane-aligned sharded merge == serial ----------------
    reps = fault_list.class_representatives()
    shards = plan_shards(len(reps), jobs=3, min_shard_size=16,
                         lane_align=LANES - 1)
    merged = set()
    for lo, hi in shards:
        merged |= grade(
            netlist, stimulus, fault_list,
            GradeOptions(engine="packed", observe=observe, name=name,
                         lanes=LANES, subset=reps[lo:hi]),
        ).detected
    if merged != base.detected:
        failures.append(
            f"{name}: sharded packed merge differs from the serial run"
        )

    # --- soft gate: steady-state throughput -----------------------------
    speedup = base_seconds / pack_seconds if pack_seconds else 0.0
    status = "PASS" if speedup >= THROUGHPUT_FLOOR else "SKIP"
    records.append({
        "component": name,
        "n_classes": fault_list.n_collapsed,
        "n_patterns": len(stimulus),
        "lanes": LANES,
        "n_shards": len(shards),
        "compiled_seconds": round(base_seconds, 4),
        "packed_seconds": round(pack_seconds, 4),
        "speedup": round(speedup, 4),
        "status": status,
    })
    lines.append(
        f"{name:6s} {fault_list.n_collapsed:7,} classes, "
        f"{len(stimulus):6,} entries  {base_seconds:6.2f}s -> "
        f"{pack_seconds:6.2f}s ({speedup:.2f}x)  {status}"
        + (
            f" (below the {THROUGHPUT_FLOOR:.0f}x floor: compiled is "
            "already pattern-parallel, packing only amortizes dispatch)"
            if status == "SKIP" else ""
        )
    )


def _bench_store(lines, failures, records):
    """Warm-store hard gate: an unchanged repeat campaign replays fully."""
    with tempfile.TemporaryDirectory() as cache_dir:
        opts = GradeOptions(cache=TraceStore(cache_dir), collapse=True)
        components = list(STORE_COMPONENTS)
        started = time.perf_counter()
        cold = run_campaign("A", components=components, options=opts)
        cold_seconds = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_campaign("A", components=components, options=opts)
        warm_seconds = time.perf_counter() - started

    replayed = sorted(warm.cached_components)
    resimulated = sum(r.n_simulated for r in warm.results.values())
    if replayed != sorted(components):
        failures.append(
            f"store: warm campaign replayed {replayed}, "
            f"expected all of {sorted(components)}"
        )
    if resimulated:
        failures.append(
            f"store: warm campaign re-simulated {resimulated} classes "
            "(must be 0)"
        )
    for name in components:
        if warm.results[name].detected != cold.results[name].detected:
            failures.append(f"store: {name} verdicts differ after replay")
    if warm.summary.overall_coverage != cold.summary.overall_coverage:
        failures.append("store: overall coverage differs after replay")
    records.append({
        "component": "persistent-store",
        "campaign_components": components,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "replayed": replayed,
        "resimulated_classes": resimulated,
        "status": "PASS" if replayed == sorted(components) else "FAIL",
    })
    lines.append(
        f"store  warm replay {len(replayed)}/{len(components)} components, "
        f"{resimulated} classes re-simulated  {cold_seconds:6.2f}s -> "
        f"{warm_seconds:6.2f}s"
    )


def run_bench(quick: bool) -> tuple[str, list[str], list[dict]]:
    """Grade components packed vs compiled, check the store, time both.

    Returns:
        ``(report text, hard failures, per-component records)``.
    """
    components = QUICK_COMPONENTS if quick else FULL_COMPONENTS
    repeats = 1 if quick else 3
    specs = traced_specs()
    lines: list[str] = []
    failures: list[str] = []
    records: list[dict] = []
    for name in components:
        stimulus, observe = specs[name]
        _bench_component(
            name, stimulus, observe, repeats, lines, failures, records
        )
    _bench_store(lines, failures, records)
    timed = [r for r in records if "speedup" in r]
    passed = sum(1 for r in timed if r["status"] == "PASS")
    lines.append(
        f"{passed}/{len(timed)} component(s) at or above the "
        f"{THROUGHPUT_FLOOR:.0f}x throughput floor; "
        f"{len(failures)} hard failure(s)"
    )
    return "\n".join(lines), failures, records


def _write_artifact(quick, records, failures) -> str:
    import os

    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "packed_gate.json")
    with open(path, "w") as handle:
        json.dump(
            {
                "bench": "packed_gate",
                "quick": quick,
                "throughput_floor": THROUGHPUT_FLOOR,
                "lanes": LANES,
                "components": records,
                "failures": failures,
                "ok": not failures,
            },
            handle, indent=2, sort_keys=True,
        )
        handle.write("\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: fast components only, single timing repetition",
    )
    args = parser.parse_args(argv)
    text, failures, records = run_bench(quick=args.quick)
    print(text)
    print(f"artifact: {_write_artifact(args.quick, records, failures)}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_packed_gate(benchmark):
    from conftest import write_result

    text, failures, records = benchmark.pedantic(
        lambda: run_bench(quick=False), rounds=1, iterations=1
    )
    write_result("packed_gate.txt", text)
    _write_artifact(False, records, failures)
    print("\n" + text)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    sys.exit(main())
