"""Chen & Dey [6]-style software-based self-test baseline.

Per-component **self-test signatures** (LFSR seed, tap configuration,
pattern count — a few downloaded data words) are expanded on-chip by a
software-emulated LFSR into pseudorandom patterns stored in an embedded
memory buffer; component-specific **test application programs** then loop
the buffered patterns through the component and store the responses.

This reproduces the methodology's cost structure faithfully:

* downloaded words — expansion routine + application loops + signatures;
* execution time — dominated by the software LFSR emulation (tens of
  cycles per generated pattern word) and the long pseudorandom sequences
  that random-pattern-resistant components need.

The deterministic methodology beats it on both axes at equal coverage,
which is exactly the paper's comparison argument (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.methodology import SelfTestProgram
from repro.errors import MethodologyError
from repro.isa.assembler import assemble

#: Default tap mask for the emulated 32-bit Fibonacci LFSR.  Taps
#: (32,30,26,25) in output-side numbering: mask bit = 32 - tap, so the
#: shifted-out bit (mask bit 0) always feeds back (maximal-length m-sequence,
#: same convention as :class:`repro.utils.lfsr.LFSR`).
DEFAULT_TAPS = 0x000000C5

#: Pattern buffer location (generated on-chip; NOT part of the download).
PATTERN_BUFFER = 0x3000


@dataclass
class ComponentSignature:
    """One component's self-test signature (the downloaded test data)."""

    component: str
    seed: int
    n_patterns: int  # pattern *words* expanded for this component
    taps: int = DEFAULT_TAPS


@dataclass
class ChenDeySelfTest:
    """Software-LFSR expansion self-test program generator.

    Args:
        signatures: per-component signatures; defaults to a standard set
            covering the four functional components.
        steps_per_word: LFSR shifts per generated pattern word (more steps
            decorrelate consecutive patterns at proportional cycle cost).
    """

    signatures: list[ComponentSignature] = field(default_factory=list)
    steps_per_word: int = 8

    def __post_init__(self) -> None:
        if not self.signatures:
            self.signatures = [
                ComponentSignature("ALU", 0xACE1ACE1, 64),
                ComponentSignature("BSH", 0xB5B5B5B5, 64),
                ComponentSignature("RegF", 0xC0FFEE11, 62),
                ComponentSignature("MulD", 0xD1CED1CE, 16),
            ]

    # ----------------------------------------------------------- helpers

    def _generator_routine(self) -> list[str]:
        """The shared software-LFSR expansion subroutine.

        Calling convention: ``$a0`` word count, ``$a1`` destination
        pointer, ``$a2`` seed, ``$a3`` tap mask; clobbers ``$t1``, ``$t2``,
        ``$t3``, ``$s0``.
        """
        return [
            "cd_gen:",
            "    move $s0, $a2",
            "cd_gen_word:",
            f"    li $t3, {self.steps_per_word}",
            "cd_gen_step:",
            "    and $t1, $s0, $a3",
            # XOR-fold $t1 down to its parity bit.
            "    srl $t2, $t1, 16",
            "    xor $t1, $t1, $t2",
            "    srl $t2, $t1, 8",
            "    xor $t1, $t1, $t2",
            "    srl $t2, $t1, 4",
            "    xor $t1, $t1, $t2",
            "    srl $t2, $t1, 2",
            "    xor $t1, $t1, $t2",
            "    srl $t2, $t1, 1",
            "    xor $t1, $t1, $t2",
            "    andi $t1, $t1, 1",
            # Shift the feedback bit in.
            "    srl $s0, $s0, 1",
            "    sll $t2, $t1, 31",
            "    or $s0, $s0, $t2",
            "    addiu $t3, $t3, -1",
            "    bnez $t3, cd_gen_step",
            "    nop",
            "    sw $s0, 0($a1)",
            "    addiu $a1, $a1, 4",
            "    addiu $a0, $a0, -1",
            "    bnez $a0, cd_gen_word",
            "    nop",
            "    jr $ra",
            "    nop",
        ]

    @staticmethod
    def _expand_call(sig_label: str, n_words: int) -> list[str]:
        """Expand one signature into the pattern buffer."""
        return [
            f"    li $a0, {n_words}",
            f"    li $a1, {PATTERN_BUFFER}",
            f"    la $t0, {sig_label}",
            "    lw $a2, 0($t0)",
            "    lw $a3, 4($t0)",
            "    jal cd_gen",
            "    nop",
        ]

    def _application(
        self, sig: ComponentSignature, resp: int, prefix: str
    ) -> tuple[list[str], int]:
        """Test-application loop for one component; returns (lines, words)."""
        lines: list[str] = []
        if sig.component == "ALU":
            n_pairs = sig.n_patterns // 2
            ops = ("addu", "subu", "and", "or", "xor", "nor", "slt", "sltu")
            stride = 4 * len(ops)
            lines += [
                f"    li $s1, {resp}",
                f"    li $t8, {PATTERN_BUFFER}",
                f"    li $t9, {n_pairs}",
                f"{prefix}_loop:",
                "    lw $t0, 0($t8)",
                "    lw $t1, 4($t8)",
            ]
            for k, op in enumerate(ops):
                lines.append(f"    {op} $t2, $t0, $t1")
                lines.append(f"    sw $t2, {4 * k}($s1)")
            lines += [
                f"    addiu $s1, $s1, {stride}",
                "    addiu $t8, $t8, 8",
                "    addiu $t9, $t9, -1",
                f"    bnez $t9, {prefix}_loop",
                "    nop",
            ]
            return lines, n_pairs * len(ops)
        if sig.component == "BSH":
            n_pairs = sig.n_patterns // 2
            stride = 12
            lines += [
                f"    li $s1, {resp}",
                f"    li $t8, {PATTERN_BUFFER}",
                f"    li $t9, {n_pairs}",
                f"{prefix}_loop:",
                "    lw $t0, 0($t8)",
                "    lw $t1, 4($t8)",
                "    andi $t1, $t1, 31",
                "    sllv $t2, $t0, $t1",
                "    sw $t2, 0($s1)",
                "    srlv $t2, $t0, $t1",
                "    sw $t2, 4($s1)",
                "    srav $t2, $t0, $t1",
                "    sw $t2, 8($s1)",
                f"    addiu $s1, $s1, {stride}",
                "    addiu $t8, $t8, 8",
                "    addiu $t9, $t9, -1",
                f"    bnez $t9, {prefix}_loop",
                "    nop",
            ]
            return lines, n_pairs * 3
        if sig.component == "RegF":
            # The sweep touches every register (including the usual pointer
            # registers), so it uses absolute $0-based addressing only.
            rounds = sig.n_patterns // 31
            if rounds < 1:
                raise MethodologyError("RegF signature needs >= 31 patterns")
            words = 0
            for r in range(rounds):
                base = PATTERN_BUFFER + 4 * 31 * r
                for reg in range(1, 32):
                    lines.append(f"    lw ${reg}, {base + 4 * (reg - 1)}($0)")
                for reg in range(1, 32):
                    lines.append(
                        f"    sw ${reg}, {resp + 4 * words + 4 * (reg - 1)}($0)"
                    )
                words += 31
            return lines, words
        if sig.component == "MulD":
            n_pairs = sig.n_patterns // 2
            ops = ("mult", "multu", "div", "divu")
            stride = 8 * len(ops)
            lines += [
                f"    li $s1, {resp}",
                f"    li $t8, {PATTERN_BUFFER}",
                f"    li $t9, {n_pairs}",
                f"{prefix}_loop:",
                "    lw $t0, 0($t8)",
                "    lw $t1, 4($t8)",
            ]
            offset = 0
            for op in ops:
                lines += [
                    f"    {op} $t0, $t1",
                    "    mfhi $t2",
                    "    mflo $t3",
                    f"    sw $t2, {offset}($s1)",
                    f"    sw $t3, {offset + 4}($s1)",
                ]
                offset += 8
            lines += [
                f"    addiu $s1, $s1, {stride}",
                "    addiu $t8, $t8, 8",
                "    addiu $t9, $t9, -1",
                f"    bnez $t9, {prefix}_loop",
                "    nop",
            ]
            return lines, n_pairs * 8
        raise MethodologyError(
            f"no Chen&Dey application loop for {sig.component!r}"
        )

    # ------------------------------------------------------------- build

    def generate_source(self, resp_base: int = 0x4800) -> str:
        text = [".text", "cd_start:"]
        data = [".data"]
        resp = resp_base
        for index, sig in enumerate(self.signatures):
            prefix = f"cd_{sig.component.lower()}{index}"
            sig_label = f"{prefix}_sig"
            text.append(f"    # {sig.component}: expand + apply")
            text += self._expand_call(sig_label, sig.n_patterns)
            app_lines, words = self._application(sig, resp, prefix)
            text += app_lines
            resp += 4 * words
            data.append(f"{sig_label}:")
            data.append(f"    .word {sig.seed:#010x}, {sig.taps:#010x}")
        text += ["cd_halt: j cd_halt", "    nop"]
        # The generator subroutine sits after the halt (reached via jal).
        text += self._generator_routine()
        return "\n".join(text + data) + "\n"

    def build_program(self, resp_base: int = 0x4800) -> SelfTestProgram:
        source = self.generate_source(resp_base)
        program = assemble(source)
        return SelfTestProgram(
            phases="chen-dey",
            source=source,
            program=program,
            response_base=resp_base,
        )
