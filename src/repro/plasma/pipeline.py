"""PLN component: the pipeline registers and squash/pause gating.

The Plasma 3-stage pipeline keeps the fetched instruction word, the
current-instruction PC snapshot, the pending write-back value and its
destination register in pipeline registers.  A taken branch flushes the
fetched instruction to the all-zero word (which conveniently *is* the MIPS
NOP, ``sll $0,$0,0``); a pause freezes every stage.

This is the paper's single *hidden-class* component: invisible to the
assembly programmer, but exercised by every instruction that flows through.
"""

from __future__ import annotations

from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist

#: Widths of the pipeline registers: (port basename, width).
PIPELINE_REGS: tuple[tuple[str, int], ...] = (
    ("instr", 32),
    ("pc_snapshot", 32),
    ("wb_value", 32),
    ("wb_dest", 5),
    ("ctrl", 8),
)


def build_pipeline(name: str = "PLN") -> Netlist:
    """Build the pipeline-register netlist.

    Ports:
        * in: ``<reg>_in`` for each register in :data:`PIPELINE_REGS`,
          plus ``pause`` (1) and ``flush`` (1).
        * out: ``<reg>_q`` for each register.
    """
    b = NetlistBuilder(name)
    inputs = {reg: b.input(f"{reg}_in", width) for reg, width in PIPELINE_REGS}
    pause = b.input("pause", 1)[0]
    flush = b.input("flush", 1)[0]

    advance = b.not_(pause)
    keep = b.not_(flush)

    for reg, width in PIPELINE_REGS:
        word = inputs[reg]
        if reg == "instr":
            # Squash to the all-zero word (= NOP) on flush.
            word = [b.and_(bit, keep) for bit in word]
        b.output(f"{reg}_q", b.register_word(word, enable=advance))
    return b.build()
