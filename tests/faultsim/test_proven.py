"""The ``"proven"`` pruning mode: SAT-certified denominator exclusions.

``prune_untestable`` accepts three settings with distinct contracts:

* ``False`` — grade everything;
* ``True`` / ``"structural"`` — skip SCOAP-screened faults but keep
  them in the denominator (coverage-neutral, the historical behavior,
  pinned by :mod:`tests.faultsim.test_pruning`);
* ``"proven"`` — additionally SAT-certify each screened class and
  exclude *only the certified ones* from the fault-coverage
  denominator.

These tests pin the mode plumbing, the invariant ``proven <= pruned``,
the denominator arithmetic, and the checkpoint/shard round-trips.
"""

import pytest

from repro.core import campaign as campaign_mod
from repro.core.sharded import (
    ShardVerdict,
    merge_shard_results,
    record_to_verdict,
    shard_record,
)
from repro.faultsim.engine import (
    FaultSimError,
    grade,
    prune_sets,
    resolve_prune_mode,
)
from repro.faultsim.options import GradeOptions
from repro.faultsim.faults import build_fault_list
from repro.plasma.components import build_component, component
from tests.faultsim.test_pruning import PATTERNS, tied_circuit


class TestModeResolution:
    def test_canonical_spellings(self):
        assert resolve_prune_mode(False) == ""
        assert resolve_prune_mode(True) == "structural"
        assert resolve_prune_mode("structural") == "structural"
        assert resolve_prune_mode("proven") == "proven"

    @pytest.mark.parametrize("bad", ("yes", "sat", "PROVEN", 2, None))
    def test_invalid_modes_raise(self, bad):
        with pytest.raises(FaultSimError):
            resolve_prune_mode(bad)

    def test_grade_rejects_invalid_mode(self):
        netlist = tied_circuit()
        with pytest.raises(FaultSimError):
            grade(netlist, PATTERNS,
                  options=GradeOptions(prune_untestable="maybe"))


class TestProvenMode:
    @pytest.mark.parametrize(
        "fixture", ("tied", "CTRL"), ids=("tied-circuit", "CTRL")
    )
    def test_proven_only_shrinks_the_denominator(self, fixture):
        if fixture == "tied":
            netlist, stimulus = tied_circuit(), PATTERNS
        else:
            netlist = build_component("CTRL")
            stimulus = [
                {p.name: 0 for p in netlist.input_ports()},
                {p.name: (1 << p.width) - 1 for p in netlist.input_ports()},
            ]
        base = grade(netlist, stimulus)
        structural = grade(netlist, stimulus,
                           options=GradeOptions(prune_untestable=True))
        proven = grade(netlist, stimulus,
                       options=GradeOptions(prune_untestable="proven"))

        assert base.proven == set() and structural.proven == set()
        assert proven.proven
        assert proven.proven <= proven.pruned
        assert proven.pruned == structural.pruned
        # Detection verdicts never depend on the pruning mode.
        assert proven.detected == structural.detected == base.detected
        # The only coverage effect is the denominator exclusion.
        assert proven.n_effective_faults == base.n_faults - len(
            proven.proven
        )
        assert structural.fault_coverage == base.fault_coverage
        assert proven.fault_coverage >= base.fault_coverage

    def test_proven_faults_are_not_detected(self):
        netlist = build_component("PCL")
        stimulus = [{p.name: 0 for p in netlist.input_ports()}]
        result = grade(netlist, stimulus,
                       options=GradeOptions(prune_untestable="proven"))
        assert result.proven
        assert not result.proven & result.detected

    def test_prune_sets_modes(self):
        netlist = tied_circuit()
        fault_list = build_fault_list(netlist)
        skip_off, proven_off = prune_sets(netlist, fault_list, "")
        assert skip_off == frozenset() and proven_off == frozenset()
        skip_s, proven_s = prune_sets(netlist, fault_list, "structural")
        assert skip_s and proven_s == frozenset()
        skip_p, proven_p = prune_sets(netlist, fault_list, "proven")
        assert skip_p == skip_s
        assert proven_p and proven_p <= skip_p


class TestCheckpointRoundTrip:
    def test_component_record_round_trips_proven(self):
        netlist = build_component("PCL")
        stimulus = [{p.name: 0 for p in netlist.input_ports()}]
        result = grade(
            netlist, stimulus,
            options=GradeOptions(name="PCL", prune_untestable="proven"),
        )
        record = campaign_mod._result_to_record((result, 123), elapsed=1.0)
        assert record["proven"] == sorted(result.proven)
        restored, nand2 = campaign_mod._record_to_result(
            record, component("PCL")
        )
        assert nand2 == 123
        assert restored.proven == result.proven
        assert restored.fault_coverage == result.fault_coverage
        assert restored.n_effective_faults == result.n_effective_faults

    def test_legacy_records_without_proven_still_load(self):
        netlist = build_component("PCL")
        stimulus = [{p.name: 0 for p in netlist.input_ports()}]
        result = grade(netlist, stimulus,
                       options=GradeOptions(name="PCL"))
        record = campaign_mod._result_to_record((result, 1))
        del record["proven"]  # a journal written before this layer
        restored, _ = campaign_mod._record_to_result(
            record, component("PCL")
        )
        assert restored.proven == set()


class TestShardRoundTrip:
    def _verdict(self):
        return ShardVerdict(
            component="PCL", lo=0, hi=5, n_classes=40, n_patterns=3,
            detected=(1, 3), pruned=(2, 4), proven=(2,),
        )

    def test_shard_record_round_trips_proven(self):
        verdict = self._verdict()
        record = shard_record(verdict)
        assert record["proven"] == [2]
        restored = record_to_verdict(record)
        assert restored.proven == (2,)
        assert restored.detected == verdict.detected
        assert restored.pruned == verdict.pruned

    def test_legacy_shard_records_default_to_no_proven(self):
        record = shard_record(self._verdict())
        del record["proven"]
        assert record_to_verdict(record).proven == ()

    def test_merge_unions_proven_across_shards(self):
        netlist = build_component("PCL")
        fault_list = build_fault_list(netlist)
        n = fault_list.n_collapsed
        a = ShardVerdict("PCL", 0, n // 2, n, 2, (0,), (1,), (1,))
        b = ShardVerdict("PCL", n // 2, n, n, 2, (5,), (6, 7), (7,))
        merged = merge_shard_results("PCL", fault_list, 2, (a, b))
        assert merged.proven == {1, 7}
        assert merged.pruned == {1, 6, 7}
        assert merged.detected == {0, 5}
        assert merged.n_effective_faults == n - 2
