"""repro — reproduction of "Low-Cost Software-Based Self-Testing of RISC
Processor Cores" (Kranitis, Xenoulis, Gizopoulos, Paschalis, Zorian;
DATE 2003).

The package provides:

* :mod:`repro.isa` — the Plasma-supported MIPS I subset (assembler,
  encoder/decoder, disassembler);
* :mod:`repro.netlist` / :mod:`repro.library` — a gate-level netlist
  substrate with structural generators for datapath components;
* :mod:`repro.plasma` — the Plasma/MIPS RT-level processor model with
  component-boundary tracing;
* :mod:`repro.faultsim` — a single-stuck-at fault simulator
  (collapsing, pattern-parallel good simulation, event-driven faulty
  simulation with dropping);
* :mod:`repro.core` — the paper's contribution: component classification,
  test-priority ordering, the deterministic component test-set library,
  self-test routine generators, and the Phase A/B/C methodology;
* :mod:`repro.baselines` — pseudorandom-instruction SBST and a
  Chen&Dey-style software-LFSR component SBST baseline;
* :mod:`repro.runtime` — resilient campaign execution: worker-process
  isolation, timeouts, retries, crash-safe checkpoint/resume;
* :mod:`repro.reporting` — renderers that regenerate the paper's tables.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
