"""Experiment T4 — regenerate the paper's Table 4 (program statistics).

Paper anchors: the Phase A self-test program executes in 3,393 cycles and
Phase A+B in 3,552 (same order of magnitude here); the whole download is
around 1K words; moving from Phase A to A+B adds only a small increment of
code and cycles.
"""

from conftest import write_result

from repro.core.campaign import execute_self_test
from repro.core.methodology import SelfTestMethodology


def build_and_run(phases: str):
    methodology = SelfTestMethodology()
    self_test = methodology.build_program(phases)
    result, _tracer, _memory = execute_self_test(self_test)
    return self_test, result


def test_table4_program_stats(benchmark):
    (st_a, run_a) = benchmark.pedantic(
        build_and_run, args=("A",), rounds=1, iterations=1
    )
    st_ab, run_ab = build_and_run("AB")

    lines = [
        f"{'':24s} {'Phase A':>10s} {'Phase A+B':>10s} {'paper A':>9s} {'paper A+B':>10s}",
        f"{'Test program (words)':24s} {st_a.code_words:>10,} {st_ab.code_words:>10,} {'~1K':>9s} {'~1K':>10s}",
        f"{'Test data (words)':24s} {st_a.data_words:>10,} {st_ab.data_words:>10,}",
        f"{'Total download (words)':24s} {st_a.total_words:>10,} {st_ab.total_words:>10,}",
        f"{'Clock cycles':24s} {run_a.cycles:>10,} {run_ab.cycles:>10,} {3393:>9,} {3552:>10,}",
    ]
    text = "\n".join(lines)
    write_result("table4_program_stats.txt", text)
    print("\n" + text)

    # Paper anchors.
    assert st_ab.total_words < 1200  # "approximately 1K words"
    assert st_a.code_words < st_ab.code_words  # B adds a small routine
    # Cycle counts in the paper's ballpark (same order, within ~2x).
    assert 1700 < run_a.cycles < 7000
    assert 0 < run_ab.cycles - run_a.cycles < 1500
