"""Phase A/B/C self-test program construction (paper Figure 3).

Phase A develops routines for the functional components in descending size
order (RegF, MulD, ALU, BSH on Plasma); Phase B targets the control class,
starting — as the paper does — with the Memory Controller, the control
component with the largest size and the largest missed-coverage share after
Phase A; Phase C adds the control-flow stress routine for the remaining
control/hidden structures.

The generated program stores every test response into a response window
above the program image (the tester reads it back, per Figure 1) and ends
with a completion marker plus the ``halt: j halt`` idiom.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.priority import test_development_order
from repro.core.routines import ROUTINES, TestRoutine
from repro.errors import MethodologyError
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.plasma.components import COMPONENTS, ComponentClass

#: Completion marker written as the final response word.
COMPLETION_MARKER = 0x600D600D

#: Default first byte address of the response window (must keep the whole
#: window below 0x8000 so ``sw reg, addr($0)`` absolute addressing encodes).
DEFAULT_RESPONSE_BASE = 0x4000


class Phase(enum.Enum):
    """Test-development phases (Figure 3)."""

    A = "A"  # functional components
    B = "B"  # control components
    C = "C"  # remaining control/hidden stress


def parse_phases(phases: str) -> list[Phase]:
    """Parse ``"A"`` / ``"AB"`` / ``"A+B"`` / ``"ABC"`` style specs."""
    cleaned = phases.replace("+", "").upper()
    if not cleaned:
        raise MethodologyError("no phases given")
    result = []
    for ch in cleaned:
        try:
            phase = Phase(ch)
        except ValueError:
            raise MethodologyError(f"unknown phase {ch!r}") from None
        if phase not in result:
            result.append(phase)
    if result != sorted(result, key=lambda p: p.value):
        raise MethodologyError(f"phases must be cumulative, got {phases!r}")
    if result[0] is not Phase.A:
        raise MethodologyError("phase development starts at Phase A")
    return result


@dataclass
class RoutinePlacement:
    """Where one routine landed in the final program."""

    component: str
    phase: Phase
    prefix: str
    response_base: int
    response_words: int
    code_words: int = 0


@dataclass
class SelfTestProgram:
    """A fully assembled self-test program plus its accounting."""

    phases: str
    source: str
    program: Program
    placements: list[RoutinePlacement] = field(default_factory=list)
    response_base: int = DEFAULT_RESPONSE_BASE
    response_words: int = 0

    @property
    def code_words(self) -> int:
        """Downloaded instruction words (Table 4's 'test program')."""
        return self.program.code_words

    @property
    def data_words(self) -> int:
        """Downloaded operand-table words (test data)."""
        return self.program.data_words

    @property
    def total_words(self) -> int:
        return self.program.total_words


class SelfTestMethodology:
    """Builds self-test programs following the paper's methodology."""

    def __init__(self, response_base: int = DEFAULT_RESPONSE_BASE):
        self.response_base = response_base

    # ------------------------------------------------------------- plan

    def routine_plan(self, phases: str) -> list[tuple[Phase, TestRoutine]]:
        """Routines in development order for the requested phases."""
        wanted = parse_phases(phases)
        order = test_development_order(COMPONENTS)
        plan: list[tuple[Phase, TestRoutine]] = []
        if Phase.A in wanted:
            for info in order:
                if info.component_class is ComponentClass.FUNCTIONAL:
                    plan.append((Phase.A, ROUTINES[info.name]()))
        if Phase.B in wanted:
            # The paper targets the Memory Controller first (largest size,
            # largest MOFC after Phase A) and stops there for Plasma.
            plan.append((Phase.B, ROUTINES["MCTRL"]()))
        if Phase.C in wanted:
            plan.append((Phase.C, ROUTINES["FLOW"]()))
        return plan

    # ------------------------------------------------------------ build

    def build_program(self, phases: str = "A") -> SelfTestProgram:
        """Generate and assemble the self-test program for ``phases``."""
        plan = self.routine_plan(phases)
        text_parts: list[str] = [".text", "selftest_start:"]
        data_parts: list[str] = []
        placements: list[RoutinePlacement] = []

        resp = self.response_base
        for index, (phase, routine) in enumerate(plan):
            prefix = f"{routine.component.lower()}{index}"
            result = routine.generate(prefix, resp)
            text_parts.append(result.text)
            if result.data:
                data_parts.append(result.data)
            placements.append(
                RoutinePlacement(
                    component=routine.component,
                    phase=phase,
                    prefix=prefix,
                    response_base=resp,
                    response_words=result.response_words,
                )
            )
            resp += 4 * result.response_words

        marker_addr = resp
        resp += 4
        if resp > 0x7FF8:
            raise MethodologyError(
                f"response window overflows absolute addressing: {resp:#x}"
            )
        text_parts += [
            "    # completion marker",
            f"    li $t0, {COMPLETION_MARKER:#010x}",
            f"    sw $t0, {marker_addr}($0)",
            "selftest_halt: j selftest_halt",
            "    nop",
        ]
        if data_parts:
            text_parts.append(".data")
            text_parts.extend(data_parts)

        source = "\n".join(text_parts) + "\n"
        program = assemble(source)
        return SelfTestProgram(
            phases=phases,
            source=source,
            program=program,
            placements=placements,
            response_base=self.response_base,
            response_words=(resp - self.response_base) // 4,
        )
