"""Unit tests for the ALU generator against its reference model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faultsim.simulator import LogicSimulator
from repro.library.alu import ALU_OPS, AluOp, alu_reference, build_alu
from repro.utils.bits import to_signed

u32 = st.integers(0, 0xFFFF_FFFF)

# Module-level simulator: the netlist is immutable, build once.
_SIM = LogicSimulator(build_alu())


def run(op: AluOp, a: int, b: int) -> int:
    out = _SIM.run_combinational([dict(a=a, b=b, func=int(op))])
    return out["result"][0]


class TestReferenceModel:
    """The reference itself, against plain Python semantics."""

    @given(u32, u32)
    def test_add_sub(self, a, b):
        assert alu_reference(AluOp.ADD, a, b) == (a + b) & 0xFFFF_FFFF
        assert alu_reference(AluOp.SUB, a, b) == (a - b) & 0xFFFF_FFFF

    @given(u32, u32)
    def test_logic(self, a, b):
        assert alu_reference(AluOp.AND, a, b) == a & b
        assert alu_reference(AluOp.OR, a, b) == a | b
        assert alu_reference(AluOp.XOR, a, b) == a ^ b
        assert alu_reference(AluOp.NOR, a, b) == 0xFFFF_FFFF & ~(a | b)

    @given(u32, u32)
    def test_slt(self, a, b):
        assert alu_reference(AluOp.SLT, a, b) == int(
            to_signed(a) < to_signed(b)
        )
        assert alu_reference(AluOp.SLTU, a, b) == int(a < b)

    def test_pass_through(self):
        # PASS_A is the idle encoding: no pass path exists, result is 0.
        assert alu_reference(AluOp.PASS_A, 5, 9) == 0
        assert alu_reference(AluOp.PASS_B, 5, 9) == 9


class TestNetlistMatchesReference:
    @settings(deadline=None, max_examples=30)
    @given(st.sampled_from(ALU_OPS), u32, u32)
    def test_random_property(self, op, a, b):
        assert run(op, a, b) == alu_reference(op, a, b)

    @pytest.mark.parametrize("op", ALU_OPS)
    def test_corner_operands(self, op):
        corners = (0, 1, 0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFFF, 0x5555_5555)
        pats = [dict(a=a, b=b, func=int(op)) for a in corners for b in corners]
        out = _SIM.run_combinational(pats)
        for p, r in zip(pats, out["result"], strict=True):
            assert r == alu_reference(op, p["a"], p["b"]), p

    def test_carry_chain_propagation(self):
        assert run(AluOp.ADD, 0xFFFF_FFFF, 1) == 0
        assert run(AluOp.ADD, 0x7FFF_FFFF, 1) == 0x8000_0000

    def test_sub_wraparound(self):
        assert run(AluOp.SUB, 0, 1) == 0xFFFF_FFFF

    def test_slt_sign_corners(self):
        assert run(AluOp.SLT, 0x8000_0000, 0) == 1  # INT_MIN < 0
        assert run(AluOp.SLT, 0, 0x8000_0000) == 0
        assert run(AluOp.SLTU, 0x8000_0000, 0) == 0  # big unsigned
        assert run(AluOp.SLTU, 0, 0x8000_0000) == 1

    def test_undefined_func_is_zero(self):
        out = _SIM.run_combinational([dict(a=0xFFFF_FFFF, b=0xFFFF_FFFF,
                                           func=15)])
        assert out["result"][0] == 0


class TestStructure:
    def test_reasonable_size(self):
        from repro.netlist.stats import gate_count

        nand2 = gate_count(build_alu()).nand2
        assert 500 < nand2 < 3000

    def test_parametric_width(self):
        sim = LogicSimulator(build_alu(width=8))
        out = sim.run_combinational(
            [dict(a=0xFF, b=1, func=int(AluOp.ADD))]
        )
        assert out["result"][0] == 0

    def test_reference_rejects_bad_op(self):
        with pytest.raises(ValueError):
            alu_reference("nope", 0, 0)  # type: ignore[arg-type]
