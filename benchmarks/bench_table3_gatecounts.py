"""Experiment T3 — regenerate the paper's Table 3 (gate counts).

Absolute NAND2 counts depend on the library mapping; the reproduction
anchors are the *shape*: RegF is by far the largest component, MulD second,
the functional class dominates the processor area, and the glue is tiny.
"""

from conftest import write_result

from repro.plasma.components import component_table
from repro.reporting.tables import PAPER_GATE_COUNTS, render_table3


def test_table3_gate_counts(benchmark):
    rows = benchmark.pedantic(component_table, rounds=1, iterations=1)
    text = render_table3(rows)
    write_result("table3_gate_counts.txt", text)
    print("\n" + text)

    sizes = {r["name"]: r["nand2"] for r in rows}
    total = sum(sizes.values())

    # Shape anchors from the paper's Table 3.
    assert max(sizes, key=sizes.get) == "RegF"
    ranked = sorted(sizes, key=sizes.get, reverse=True)
    assert ranked[0] == "RegF" and ranked[1] == "MulD"
    functional = sizes["RegF"] + sizes["MulD"] + sizes["ALU"] + sizes["BSH"]
    assert functional / total > 0.6  # functional class dominates
    assert sizes["GL"] == min(sizes.values())
    # Total in the same ballpark as the paper's 17,459.
    assert 0.7 * 17459 < total < 2.0 * 17459
    # MulD lands very close to the paper's figure (same architecture).
    assert abs(sizes["MulD"] - PAPER_GATE_COUNTS["MulD"]) < 500
