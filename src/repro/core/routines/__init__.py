"""Self-test routine generators.

Each generator emits a self-contained assembly snippet (plus any operand
table) that applies its component's library test set with compact
instruction loops and stores every response into a statically assigned
response window — the tester-readable area of Figure 1.

Register conventions inside routines: ``$t0``-``$t9``, ``$s0``-``$s2`` and
``$at`` are scratch; response addresses are either absolute 16-bit offsets
off ``$0`` or held in ``$s0`` inside loops.  No routine depends on state
left by another.
"""

from repro.core.routines.base import RoutineResult, TestRoutine
from repro.core.routines.alu_routine import AluRoutine
from repro.core.routines.bsh_routine import ShifterRoutine
from repro.core.routines.regf_routine import RegisterFileRoutine
from repro.core.routines.muld_routine import MulDivRoutine
from repro.core.routines.mctrl_routine import MemoryControlRoutine
from repro.core.routines.flow_routine import ControlFlowRoutine

#: Routine generator per component short name.
ROUTINES: dict[str, type[TestRoutine]] = {
    "ALU": AluRoutine,
    "BSH": ShifterRoutine,
    "RegF": RegisterFileRoutine,
    "MulD": MulDivRoutine,
    "MCTRL": MemoryControlRoutine,
    "FLOW": ControlFlowRoutine,  # Phase C: PCL/CTRL/PLN stress
}

__all__ = [
    "RoutineResult",
    "TestRoutine",
    "AluRoutine",
    "ShifterRoutine",
    "RegisterFileRoutine",
    "MulDivRoutine",
    "MemoryControlRoutine",
    "ControlFlowRoutine",
    "ROUTINES",
]
