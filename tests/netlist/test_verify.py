"""Unit tests for the netlist linter."""

import pytest

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.verify import lint


class TestLint:
    def test_clean_circuit_passes(self):
        b = NetlistBuilder("ok")
        x = b.input("x", 2)
        b.output("y", b.and_(x[0], x[1]))
        report = lint(b.build())
        assert report.ok
        assert report.warnings == []

    def test_undriven_gate_input(self):
        nl = Netlist("bad")
        floating = nl.new_net()
        dangling = nl.new_net()
        out = nl.add_gate(GateType.AND, [floating, dangling])
        nl.add_output("y", [out])
        report = lint(nl, strict=False)
        assert not report.ok
        assert any("undriven" in e for e in report.errors)

    def test_undriven_output_port(self):
        nl = Netlist("bad")
        ghost = nl.new_net()
        nl.add_output("y", [ghost])
        report = lint(nl, strict=False)
        assert any("undriven" in e for e in report.errors)

    def test_strict_raises(self):
        nl = Netlist("bad")
        ghost = nl.new_net()
        nl.add_output("y", [ghost])
        with pytest.raises(NetlistError):
            lint(nl)

    def test_floating_gate_output_warns(self):
        b = NetlistBuilder("warn")
        x = b.input("x", 2)
        b.and_(x[0], x[1])  # output never read, not a port
        b.output("y", x[0])
        report = lint(b.build(), strict=False)
        assert report.ok
        assert any("never read" in w for w in report.warnings)

    def test_cycle_reported(self):
        nl = Netlist("loop")
        a = nl.add_input("a", 1)[0]
        fb = nl.new_net()
        out = nl.add_gate(GateType.AND, [a, fb])
        nl.add_gate(GateType.NOT, [out], output=fb)
        nl.add_output("y", [out])
        report = lint(nl, strict=False)
        assert any("cycle" in e for e in report.errors)

    def test_all_plasma_components_lint_clean(self):
        from repro.plasma.components import COMPONENTS

        for info in COMPONENTS:
            report = lint(info.builder(), strict=False)
            assert report.ok, (info.name, report.errors)


class TestStructuredDiagnostics:
    def test_findings_carry_rule_ids(self):
        from repro.analysis.diagnostics import Severity

        nl = Netlist("bad")
        ghost = nl.new_net()
        nl.add_output("y", [ghost])
        report = lint(nl, strict=False)
        diags = report.error_diagnostics
        assert diags and all(d.rule_id == "NL002" for d in diags)
        assert all(d.severity is Severity.ERROR for d in diags)

    def test_floating_output_is_nl004_warning(self):
        b = NetlistBuilder("warn")
        x = b.input("x", 2)
        b.and_(x[0], x[1])
        b.output("y", x[0])
        report = lint(b.build(), strict=False)
        assert [d.rule_id for d in report.warning_diagnostics] == ["NL004"]

    def test_diagnostics_name_the_offending_net(self):
        nl = Netlist("bad")
        floating = nl.new_net()
        out = nl.add_gate(GateType.BUF, [floating])
        nl.add_output("y", [out])
        report = lint(nl, strict=False)
        (diag,) = report.error_diagnostics
        assert diag.net == floating
