"""Documentation is checked, not trusted.

Two gates keep the docs tree honest:

* ``docs/CLI.md`` is compared against :func:`repro.cli.build_parser` —
  every subcommand, every option string and every exit code must appear
  on the page, so a new flag cannot land undocumented;
* every relative markdown link in ``README.md`` and ``docs/`` must
  resolve (same checker CI runs via ``tools/check_docs_links.py``).
"""

import argparse
import importlib.util
from pathlib import Path

from repro.cli import build_parser

ROOT = Path(__file__).resolve().parents[1]
CLI_DOC = ROOT / "docs" / "CLI.md"

#: The documented exit-code space (0 = success .. 10 = service failure).
MAX_EXIT_CODE = 10


def _subcommands(parser: argparse.ArgumentParser) -> dict:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    raise AssertionError("build_parser() lost its subcommands")


def _option_strings(parser: argparse.ArgumentParser) -> list[str]:
    return [
        option
        for action in parser._actions
        for option in action.option_strings
        if option not in ("-h", "--help")
    ]


class TestCliDocs:
    def test_every_subcommand_documented(self):
        text = CLI_DOC.read_text()
        for name in _subcommands(build_parser()):
            assert f"repro {name}" in text, (
                f"docs/CLI.md does not document the {name!r} subcommand"
            )

    def test_every_flag_documented(self):
        text = CLI_DOC.read_text()
        parser = build_parser()
        missing = [
            f"{name}: {option}"
            for name, sub in _subcommands(parser).items()
            for option in _option_strings(sub)
            if f"`{option}" not in text
        ]
        missing.extend(
            f"(top level): {option}"
            for option in _option_strings(parser)
            if f"`{option}" not in text
        )
        assert not missing, (
            "docs/CLI.md is missing flags:\n  " + "\n  ".join(missing)
        )

    def test_every_exit_code_documented(self):
        text = CLI_DOC.read_text()
        for code in range(MAX_EXIT_CODE + 1):
            assert f"| {code} |" in text, (
                f"docs/CLI.md has no exit-code row for {code}"
            )

    def test_no_phantom_subcommands(self):
        # The page must not document commands that no longer exist:
        # every "repro <word>" heading on it names a real subcommand.
        import re

        text = CLI_DOC.read_text()
        real = set(_subcommands(build_parser()))
        documented = set(re.findall(r"^#+ `repro (\w+)", text, re.M))
        assert documented == real


class TestDocsLinks:
    def test_all_relative_links_resolve(self):
        spec = importlib.util.spec_from_file_location(
            "check_docs_links", ROOT / "tools" / "check_docs_links.py"
        )
        checker = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(checker)
        problems = checker.broken_links(ROOT)
        assert not problems, (
            "broken relative links:\n  "
            + "\n  ".join(f"{page}: {target}" for page, target in problems)
        )

    def test_docs_index_links_every_page(self):
        # docs/README.md is the index: every page in the tree must be
        # reachable from it.
        index = (ROOT / "docs" / "README.md").read_text()
        for page in (ROOT / "docs").rglob("*.md"):
            if page.name == "README.md":
                continue
            relative = page.relative_to(ROOT / "docs").as_posix()
            assert relative in index, (
                f"docs/README.md does not link {relative}"
            )
