"""Self-test routine generators.

Each generator emits a self-contained assembly snippet (plus any operand
table) that applies its component's library test set with compact
instruction loops and stores every response into a statically assigned
response window — the tester-readable area of Figure 1.

Register conventions inside routines: ``$t0``-``$t9``, ``$s0``-``$s2`` and
``$at`` are scratch; response addresses are either absolute 16-bit offsets
off ``$0`` or held in ``$s0`` inside loops.  No routine depends on state
left by another.
"""

from repro.core.routines.base import RoutineResult, TestRoutine
from repro.core.routines.alu_routine import AluRoutine
from repro.core.routines.bsh_routine import ShifterRoutine
from repro.core.routines.regf_routine import RegisterFileRoutine
from repro.core.routines.muld_routine import MulDivRoutine
from repro.core.routines.mctrl_routine import MemoryControlRoutine
from repro.core.routines.flow_routine import ControlFlowRoutine

#: Routine generator per component short name.
ROUTINES: dict[str, type[TestRoutine]] = {
    "ALU": AluRoutine,
    "BSH": ShifterRoutine,
    "RegF": RegisterFileRoutine,
    "MulD": MulDivRoutine,
    "MCTRL": MemoryControlRoutine,
    "FLOW": ControlFlowRoutine,  # Phase C: PCL/CTRL/PLN stress
}

#: Response window used by standalone (single-routine) programs; same
#: constraint as the methodology default — must stay below 0x8000 so the
#: ``sw reg, addr($0)`` absolute addressing encodes.
STANDALONE_RESPONSE_BASE = 0x4000


def standalone_program(name: str) -> tuple[str, TestRoutine]:
    """Wrap one routine into a complete halt-terminated program source.

    Used by the static analyzer CLI and the lint-gate/round-trip tests to
    exercise each routine in isolation, outside the phased methodology
    program.

    Args:
        name: routine key in :data:`ROUTINES`.

    Returns:
        ``(source, routine)`` — assembleable source text and the routine
        instance (for its declared ``signature_registers``).
    """
    routine = ROUTINES[name]()
    prefix = f"{name.lower()}0"
    result = routine.generate(prefix, STANDALONE_RESPONSE_BASE)
    parts = [".text", f"{prefix}_standalone_start:", result.text,
             f"{prefix}_standalone_halt: j {prefix}_standalone_halt",
             "    nop"]
    if result.data:
        parts += [".data", result.data]
    return "\n".join(parts) + "\n", routine


__all__ = [
    "RoutineResult",
    "TestRoutine",
    "AluRoutine",
    "ShifterRoutine",
    "RegisterFileRoutine",
    "MulDivRoutine",
    "MemoryControlRoutine",
    "ControlFlowRoutine",
    "ROUTINES",
    "standalone_program",
]
