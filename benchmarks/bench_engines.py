"""Experiment E1 — fault-simulation engine cross-check and throughput.

The repository ships two independent stuck-at engines with identical
detection semantics:

* the **differential** engine (per fault, event-driven against stored good
  values, with dropping) — used by all campaigns;
* the **parallel-fault** engine (a batch of faults in bit lanes per pass).

This bench grades the same component with the same traced stimulus and
observability through both, asserts fault-by-fault agreement, and reports
throughput.  Agreement between two engines with disjoint implementations is
strong evidence neither mis-simulates.
"""

import time

from conftest import write_result

from repro.core.campaign import execute_self_test
from repro.core.methodology import SelfTestMethodology
from repro.faultsim.harness import CombinationalCampaign
from repro.faultsim.parallel import ParallelFaultSimulator
from repro.plasma.components import build_component


def traced_specs():
    self_test = SelfTestMethodology().build_program("A")
    _, tracer, _ = execute_self_test(self_test)
    return tracer.finalize()


def test_engine_agreement_and_throughput(benchmark):
    specs = benchmark.pedantic(traced_specs, rounds=1, iterations=1)
    patterns, observe = specs["BSH"]
    netlist = build_component("BSH")

    started = time.perf_counter()
    differential = CombinationalCampaign(
        netlist, patterns, observe, name="BSH"
    ).run()
    diff_seconds = time.perf_counter() - started

    # The parallel engine consumes the same stimulus as single-lane cycles
    # with per-cycle observed ports.
    started = time.perf_counter()
    parallel = ParallelFaultSimulator(netlist, batch_size=255).run_campaign(
        [dict(p) for p in patterns],
        observe=[tuple(ports) for ports in observe],
        name="BSH",
    )
    par_seconds = time.perf_counter() - started

    n_faults = differential.n_faults
    lines = [
        f"{'engine':>14s} {'faults':>7s} {'detected':>9s} {'FC %':>7s} "
        f"{'seconds':>8s} {'faults/s':>9s}",
        f"{'differential':>14s} {n_faults:>7,} {differential.n_detected:>9,} "
        f"{differential.fault_coverage:>7.2f} {diff_seconds:>8.2f} "
        f"{n_faults / diff_seconds:>9,.0f}",
        f"{'parallel':>14s} {n_faults:>7,} {parallel.n_detected:>9,} "
        f"{parallel.fault_coverage:>7.2f} {par_seconds:>8.2f} "
        f"{n_faults / par_seconds:>9,.0f}",
    ]
    text = "\n".join(lines)
    write_result("engines_e1_crosscheck.txt", text)
    print("\n" + text)

    # Fault-by-fault agreement.
    assert parallel.detected == differential.detected
