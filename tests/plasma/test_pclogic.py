"""Unit tests for the PC-logic netlist."""

import random

from repro.faultsim.simulator import LogicSimulator
from repro.plasma.controls import BranchType
from repro.plasma.pclogic import branch_taken_reference, build_pclogic

_SIM = LogicSimulator(build_pclogic())


def idle(pause=0):
    return dict(rs_data=0, rt_data=0, branch_type=0, branch_target=0,
                pause=pause)


class TestPcRegister:
    def test_resets_to_zero(self):
        outs, _ = _SIM.run_sequence([idle()])
        assert outs[0]["pc"] == 0
        assert outs[0]["pc_plus4"] == 4

    def test_advances_by_four(self):
        outs, _ = _SIM.run_sequence([idle()] * 4)
        assert [o["pc"] for o in outs] == [0, 4, 8, 12]

    def test_pause_holds(self):
        outs, _ = _SIM.run_sequence([idle(), idle(pause=1), idle(pause=1),
                                     idle()])
        assert [o["pc"] for o in outs] == [0, 4, 4, 4]

    def test_branch_redirects(self):
        cycles = [idle(),
                  dict(rs_data=1, rt_data=1, branch_type=int(BranchType.EQ),
                       branch_target=0x100, pause=0),
                  idle()]
        outs, _ = _SIM.run_sequence(cycles)
        assert outs[1]["take_branch"] == 1
        assert outs[2]["pc"] == 0x100

    def test_not_taken_falls_through(self):
        cycles = [dict(rs_data=1, rt_data=2,
                       branch_type=int(BranchType.EQ),
                       branch_target=0x100, pause=0), idle()]
        outs, _ = _SIM.run_sequence(cycles)
        assert outs[0]["take_branch"] == 0
        assert outs[1]["pc"] == 4


class TestConditionEvaluator:
    def test_reference_sweep(self):
        rng = random.Random(13)
        cases = [(rng.getrandbits(32), rng.getrandbits(32))
                 for _ in range(20)]
        cases += [(0, 0), (5, 5), (0x8000_0000, 0), (0xFFFF_FFFF, 1)]
        for bt in BranchType:
            for rs, rt in cases:
                cycles = [dict(rs_data=rs, rt_data=rt, branch_type=int(bt),
                               branch_target=0x40, pause=0)]
                outs, _ = _SIM.run_sequence(cycles)
                expected = branch_taken_reference(int(bt), rs, rt)
                assert outs[0]["take_branch"] == int(expected), (bt, rs, rt)

    def test_reference_model_semantics(self):
        assert branch_taken_reference(int(BranchType.LEZ), 0, 0)
        assert branch_taken_reference(int(BranchType.LEZ), 0xFFFF_FFFF, 0)
        assert not branch_taken_reference(int(BranchType.LEZ), 1, 0)
        assert branch_taken_reference(int(BranchType.GTZ), 1, 0)
        assert branch_taken_reference(int(BranchType.LTZ), 0x8000_0000, 0)
        assert branch_taken_reference(int(BranchType.GEZ), 0, 0)
        assert branch_taken_reference(int(BranchType.ALWAYS), 0, 0)
        assert not branch_taken_reference(int(BranchType.NONE), 0, 0)
