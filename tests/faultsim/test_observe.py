"""Unit tests for the normalized ObservePlan shared by every engine."""

import pytest

from repro.errors import FaultSimError
from repro.faultsim.observe import ObservePlan
from repro.netlist.builder import NetlistBuilder


def two_output_netlist():
    b = NetlistBuilder("pair")
    a = b.input("a", 2)
    b.output("y", [a[0]])
    b.output("z", [a[1]])
    return b.build()


class TestConstruction:
    def test_none_observes_everything(self):
        plan = ObservePlan.from_spec(None, 3)
        assert plan.observes_everything
        assert plan.n_entries == 3
        assert plan.port_name_lists() is None
        assert plan.packed_net_masks(two_output_netlist()) is None

    def test_port_name_entries(self):
        plan = ObservePlan.from_spec([("y",), ("y", "z"), ()], 3)
        assert not plan.observes_everything
        assert plan.port_name_lists() == [("y",), ("y", "z"), ()]

    def test_mapping_entries_keep_lane_masks(self):
        plan = ObservePlan.from_spec([{"y": 0b101}], 1)
        assert plan.entries == ((("y", 0b101),),)

    def test_existing_plan_passes_through(self):
        plan = ObservePlan.from_spec([("y",)], 1)
        assert ObservePlan.from_spec(plan, 1) is plan

    def test_plan_length_mismatch(self):
        plan = ObservePlan.from_spec([("y",)], 1)
        with pytest.raises(FaultSimError, match="covers 1 entries for 2"):
            ObservePlan.from_spec(plan, 2)

    def test_list_length_mismatch(self):
        with pytest.raises(FaultSimError, match="has 1 entries for 2"):
            ObservePlan.from_spec([("y",)], 2)

    def test_negative_lane_mask_rejected(self):
        with pytest.raises(FaultSimError, match="negative lane mask"):
            ObservePlan.from_spec([{"y": -1}], 1)

    def test_non_output_port_rejected(self):
        with pytest.raises(FaultSimError, match="not an output port"):
            ObservePlan.from_spec([("a",)], 1, two_output_netlist())

    def test_unknown_port_rejected(self):
        with pytest.raises(FaultSimError, match="not an output port"):
            ObservePlan.from_spec([("nope",)], 1, two_output_netlist())


class TestEngineRepresentations:
    def test_zero_mask_ports_dropped_from_name_lists(self):
        plan = ObservePlan.from_spec([{"y": 0, "z": 1}], 1)
        assert plan.port_name_lists() == [("z",)]

    def test_net_masks_clip_to_full_mask(self):
        netlist = two_output_netlist()
        plan = ObservePlan.from_spec([{"y": 0b110}], 1, netlist)
        (masks,) = plan.net_masks(netlist, full_mask=0b011)
        y_net = netlist.port("y").nets[0]
        assert masks == {y_net: 0b010}

    def test_packed_masks_assign_pattern_bits(self):
        netlist = two_output_netlist()
        plan = ObservePlan.from_spec([("y",), ("z",), ("y", "z")], 3, netlist)
        masks = plan.packed_net_masks(netlist)
        y_net = netlist.port("y").nets[0]
        z_net = netlist.port("z").nets[0]
        assert masks[y_net] == 0b101  # patterns 0 and 2
        assert masks[z_net] == 0b110  # patterns 1 and 2

    def test_packed_masks_skip_explicit_zero(self):
        netlist = two_output_netlist()
        plan = ObservePlan.from_spec([{"y": 0}], 1, netlist)
        assert plan.packed_net_masks(netlist) == {}
