"""Flat whole-processor fault grading on the composed gate-level core.

This is the paper's own fault-grading setup: the complete processor
netlist executes the self-test program inside the fault simulator, and a
fault counts as detected when any *primary output* — the memory bus — ever
differs from the good machine (the tester snoops the bus and compares the
response stream, Figure 1).

Mechanically: a good gate-level run records the per-cycle primary inputs
(the instruction and data words the memories returned); the recorded
sequence is then graded by the lane-batched engine
(:class:`~repro.faultsim.engine.BatchEngine`) with every bus output
observed on every cycle.  Replaying recorded inputs is sound for
detection because any divergence a fault could cause in the fetch/data
streams must first appear on the observed bus outputs themselves.

Grading all ~30k collapsed faults of the full core this way costs hours in
pure Python, so :func:`flat_campaign` supports *sampling*: a uniform random
subset of fault classes gives an unbiased coverage estimate with a
quantifiable confidence interval — enough to validate the hierarchical
Table 5 number.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.faultsim.engine import BatchEngine
from repro.faultsim.faults import FaultList, build_fault_list
from repro.faultsim.observe import ObservePlan
from repro.isa.program import Program
from repro.netlist.netlist import Netlist
from repro.plasma.cosim import GateLevelPlasma
from repro.plasma.toplevel import build_plasma_top

#: Primary outputs the tester observes (the memory bus; debug pins are
#: not real pins and are excluded).
OBSERVED_OUTPUTS: tuple[str, ...] = (
    "imem_addr", "mem_addr", "mem_wdata", "byte_en", "mem_we",
)


@dataclass
class FlatResult:
    """Outcome of a (possibly sampled) flat campaign."""

    n_faults_total: int
    n_sampled: int
    n_detected: int
    cycles: int

    @property
    def coverage(self) -> float:
        """Estimated fault coverage in percent."""
        if self.n_sampled == 0:
            return 0.0
        return 100.0 * self.n_detected / self.n_sampled

    @property
    def confidence_95(self) -> float:
        """Half-width of the 95% CI on the coverage estimate (percent)."""
        if self.n_sampled == 0:
            return 100.0
        p = self.n_detected / self.n_sampled
        half = 1.96 * math.sqrt(max(p * (1 - p), 1e-9) / self.n_sampled)
        # Finite-population correction for sampling without replacement
        # (zero when the whole population was graded).
        if self.n_faults_total > 1:
            half *= math.sqrt(
                (self.n_faults_total - self.n_sampled)
                / (self.n_faults_total - 1)
            )
        return 100.0 * half


def record_good_run(
    program: Program, netlist: Netlist, max_cycles: int = 60_000
) -> list[dict[str, int]]:
    """Execute the program on gates, recording per-cycle primary inputs."""
    gate = GateLevelPlasma(netlist)
    gate.load_program(program)
    inputs: list[dict[str, int]] = []

    original_step = gate.step

    def recording_step():
        pc = gate._value_from_state(gate._pc_dffs)
        bus_addr = gate._value_from_state(gate._addr_dffs)
        inputs.append(
            {
                "imem_data": gate.read_ram(pc),
                "mem_rdata": gate.read_ram(bus_addr),
                "irq": 0,
            }
        )
        return original_step()

    gate.step = recording_step  # type: ignore[method-assign]
    result = gate.run(max_cycles=max_cycles)
    if not result.halted:
        raise RuntimeError("good gate-level run did not halt")
    return inputs


def flat_campaign(
    program: Program,
    netlist: Netlist | None = None,
    sample: int | None = 1000,
    seed: int = 2003,
    batch_size: int = 250,
    fault_list: FaultList | None = None,
) -> FlatResult:
    """Fault-grade the full processor executing ``program``.

    Args:
        program: assembled program (typically the self-test).
        netlist: composed processor (built fresh when omitted).
        sample: number of collapsed fault classes to grade (None = all).
        seed: sampling seed.
        batch_size: faults per parallel-simulation pass.

    Returns:
        The (sampled) flat coverage estimate.
    """
    netlist = netlist if netlist is not None else build_plasma_top()
    cycle_inputs = record_good_run(program, netlist)
    observe = [OBSERVED_OUTPUTS] * len(cycle_inputs)

    if fault_list is None:
        fault_list = build_fault_list(netlist)
    reps = fault_list.class_representatives()
    if sample is not None and sample < len(reps):
        rng = random.Random(seed)
        chosen = rng.sample(reps, sample)
    else:
        chosen = list(reps)

    engine = BatchEngine(batch_size=batch_size)
    plan = ObservePlan.from_spec(observe, len(cycle_inputs), netlist)
    skip = frozenset(set(reps) - set(chosen))
    result = engine.grade(
        netlist, cycle_inputs, fault_list, plan, name="flat", skip=skip
    )
    detected = len(result.detected)
    return FlatResult(
        n_faults_total=len(reps),
        n_sampled=len(chosen),
        n_detected=detected,
        cycles=len(cycle_inputs),
    )
