"""Unit tests for the reference control decoder."""

from repro.isa.encoding import decode, encode
from repro.isa.instruction import INSTRUCTION_SET
from repro.library.alu import AluOp
from repro.library.multiplier import MulDivOp
from repro.plasma.controls import (
    ASource,
    BranchType,
    BSource,
    CONTROL_FIELDS,
    MemSize,
    RegDest,
    WbSource,
    decode_controls,
)


def controls_for(mnemonic: str, **fields):
    return decode_controls(decode(encode(mnemonic, **fields)))


class TestEveryInstructionDecodes:
    def test_all_supported(self):
        for mnemonic in INSTRUCTION_SET:
            bundle = decode_controls(decode(encode(mnemonic)))
            fields = bundle.to_fields()
            for name, width in CONTROL_FIELDS:
                assert 0 <= fields[name] < (1 << width), (mnemonic, name)

    def test_field_layout_complete(self):
        bundle = controls_for("addu")
        assert set(bundle.to_fields()) == {name for name, _ in CONTROL_FIELDS}


class TestAluClass:
    def test_addu(self):
        b = controls_for("addu")
        assert b.alu_func is AluOp.ADD
        assert b.reg_dest is RegDest.RD
        assert b.reg_write
        assert b.b_source is BSource.RT

    def test_immediate_extension_split(self):
        assert controls_for("addiu").b_source is BSource.IMM_SIGN
        assert controls_for("andi").b_source is BSource.IMM_ZERO
        assert controls_for("lui").b_source is BSource.IMM_LUI
        assert controls_for("lui").alu_func is AluOp.PASS_B

    def test_slt_variants(self):
        assert controls_for("slt").alu_func is AluOp.SLT
        assert controls_for("sltiu").alu_func is AluOp.SLTU


class TestShifts:
    def test_immediate_shift(self):
        b = controls_for("sra")
        assert b.wb_source is WbSource.SHIFT
        assert b.shift_arith and not b.shift_left and not b.shift_variable

    def test_variable_shift(self):
        b = controls_for("sllv")
        assert b.shift_left and b.shift_variable


class TestMulDiv:
    def test_ops(self):
        assert controls_for("mult").muldiv_op is MulDivOp.MULT
        assert controls_for("divu").muldiv_op is MulDivOp.DIVU
        assert controls_for("mthi").muldiv_op is MulDivOp.MTHI

    def test_hilo_reads(self):
        assert controls_for("mfhi").wb_source is WbSource.HI
        assert controls_for("mflo").wb_source is WbSource.LO
        assert controls_for("mfhi").reg_write


class TestMemory:
    def test_load_variants(self):
        lb = controls_for("lb")
        assert lb.mem_read and lb.mem_signed and lb.mem_size is MemSize.BYTE
        lhu = controls_for("lhu")
        assert not lhu.mem_signed and lhu.mem_size is MemSize.HALF
        assert controls_for("lw").mem_size is MemSize.WORD

    def test_store_variants(self):
        sb = controls_for("sb")
        assert sb.mem_write and not sb.reg_write
        assert sb.mem_size is MemSize.BYTE

    def test_address_uses_alu(self):
        lw = controls_for("lw")
        assert lw.alu_func is AluOp.ADD
        assert lw.b_source is BSource.IMM_SIGN


class TestBranchesAndJumps:
    def test_branch_types(self):
        assert controls_for("beq").branch_type is BranchType.EQ
        assert controls_for("bne").branch_type is BranchType.NE
        assert controls_for("blez").branch_type is BranchType.LEZ
        assert controls_for("bgtz").branch_type is BranchType.GTZ
        assert controls_for("bltz").branch_type is BranchType.LTZ
        assert controls_for("bgez").branch_type is BranchType.GEZ

    def test_branch_target_through_alu(self):
        b = controls_for("beq")
        assert b.a_source is ASource.PC_PLUS4
        assert b.b_source is BSource.IMM_BRANCH
        assert b.alu_func is AluOp.ADD

    def test_jumps(self):
        assert controls_for("j").jump_abs
        assert controls_for("jr").jump_reg
        assert not controls_for("j").reg_write

    def test_linking_jumps(self):
        jal = controls_for("jal")
        assert jal.reg_write and jal.reg_dest is RegDest.RA
        assert jal.b_source is BSource.CONST_4
        jalr = controls_for("jalr")
        assert jalr.reg_dest is RegDest.RD
