"""Unit tests for the deterministic component test-set library."""

from repro.core.testlib import (
    ALU_IMMEDIATES,
    ALU_OPERAND_PAIRS,
    ALU_RTYPE_OPS,
    MCTRL_LOAD_CASES,
    MCTRL_STORE_CASES,
    MULDIV_OPERAND_PAIRS,
    REGFILE_PATTERNS,
    SHIFTER_VALUES,
    regfile_unique_value,
)


class TestAluPairs:
    def test_values_are_32bit(self):
        for a, b in ALU_OPERAND_PAIRS:
            assert 0 <= a <= 0xFFFF_FFFF and 0 <= b <= 0xFFFF_FFFF

    def test_full_carry_propagate_present(self):
        assert (0xFFFFFFFF, 0x00000001) in ALU_OPERAND_PAIRS

    def test_per_bit_logic_combinations_covered(self):
        """Each bit position must see a/b = 00, 01, 10 and 11 somewhere."""
        for bit in range(32):
            seen = set()
            for a, b in ALU_OPERAND_PAIRS:
                seen.add(((a >> bit) & 1, (b >> bit) & 1))
            assert seen == {(0, 0), (0, 1), (1, 0), (1, 1)}, bit

    def test_slt_sign_corners_present(self):
        assert (0x7FFFFFFF, 0x80000000) in ALU_OPERAND_PAIRS
        assert (0x80000000, 0x7FFFFFFF) in ALU_OPERAND_PAIRS

    def test_rtype_ops_cover_all_alu_functions(self):
        assert set(ALU_RTYPE_OPS) == {
            "addu", "subu", "and", "or", "xor", "nor", "slt", "sltu"
        }

    def test_immediates_within_16_bits(self):
        assert all(0 <= i <= 0xFFFF for i in ALU_IMMEDIATES)


class TestShifterValues:
    def test_sign_corner_present(self):
        assert any(v >> 31 for v in SHIFTER_VALUES)
        assert any(not (v >> 31) for v in SHIFTER_VALUES)

    def test_every_bit_column_distinguishable(self):
        """For each bit some pair of library values must differ there."""
        for bit in range(32):
            bits = {(v >> bit) & 1 for v in SHIFTER_VALUES}
            assert bits == {0, 1}, bit


class TestRegfilePatterns:
    def test_complementary(self):
        a, b = REGFILE_PATTERNS
        assert a ^ b == 0xFFFF_FFFF

    def test_unique_values_distinct(self):
        values = [regfile_unique_value(r) for r in range(32)]
        assert len(set(values)) == 32


class TestMulDivPairs:
    def test_divide_by_zero_case_present(self):
        assert any(b == 0 for _, b in MULDIV_OPERAND_PAIRS)

    def test_int_min_corner_present(self):
        assert any(a == 0x80000000 or b == 0x80000000
                   for a, b in MULDIV_OPERAND_PAIRS)

    def test_all_sign_combinations(self):
        signs = {(a >> 31, b >> 31) for a, b in MULDIV_OPERAND_PAIRS}
        assert signs == {(0, 0), (0, 1), (1, 0), (1, 1)}


class TestMctrlCases:
    def test_loads_cover_every_byte_lane(self):
        byte_lanes = {off for op, off in MCTRL_LOAD_CASES if op in ("lb", "lbu")}
        assert byte_lanes == {0, 1, 2, 3}

    def test_loads_cover_signed_and_unsigned(self):
        ops = {op for op, _ in MCTRL_LOAD_CASES}
        assert {"lb", "lbu", "lh", "lhu", "lw"} <= ops

    def test_stores_cover_every_byte_lane(self):
        lanes = {off for op, off, _ in MCTRL_STORE_CASES if op == "sb"}
        assert lanes == {0, 1, 2, 3}

    def test_store_alignment_legal(self):
        for op, off, _ in MCTRL_STORE_CASES:
            if op == "sh":
                assert off % 2 == 0
            if op == "sw":
                assert off % 4 == 0
