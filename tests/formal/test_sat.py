"""CDCL solver unit tests and brute-force cross-validation.

The solver is the root of trust for every formal result in the repo, so
besides the API contract it is fuzzed against exhaustive enumeration on
random small CNFs: the SAT/UNSAT answer must match brute force, and
every claimed model must actually satisfy the formula.
"""

import itertools
import random

from repro.formal.sat import SatSolver, luby, solve_cnf


def brute_force(n_vars: int, clauses: list[list[int]]) -> bool:
    for bits in itertools.product((False, True), repeat=n_vars):
        if all(
            any(bits[abs(lit) - 1] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def model_satisfies(solver: SatSolver, clauses: list[list[int]]) -> bool:
    return all(
        any(solver.lit_value(lit) for lit in clause) for clause in clauses
    )


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert SatSolver().solve()

    def test_single_unit(self):
        s = SatSolver()
        v = s.new_var()
        s.add_clause([v])
        assert s.solve()
        assert s.value(v) is True

    def test_contradicting_units_unsat(self):
        s = SatSolver()
        v = s.new_var()
        s.add_clause([v])
        s.add_clause([-v])
        assert not s.solve()

    def test_unit_propagation_chain(self):
        s = SatSolver()
        a, b, c = (s.new_var() for _ in range(3))
        s.add_clause([a])
        s.add_clause([-a, b])
        s.add_clause([-b, c])
        assert s.solve()
        assert s.value(a) and s.value(b) and s.value(c)

    def test_pigeonhole_2_into_1_unsat(self):
        # Two pigeons, one hole: x1 and x2 both true, but not both.
        s = SatSolver()
        x1, x2 = s.new_var(), s.new_var()
        s.add_clause([x1])
        s.add_clause([x2])
        s.add_clause([-x1, -x2])
        assert not s.solve()

    def test_stats_accumulate(self):
        s = SatSolver()
        vs = [s.new_var() for _ in range(8)]
        for a, b in itertools.combinations(vs, 2):
            s.add_clause([a, b])
        assert s.solve()
        assert s.stats.propagations >= 0
        as_dict = s.stats.as_dict()
        assert set(as_dict) >= {"decisions", "propagations", "conflicts"}


class TestAssumptions:
    def _xor_instance(self):
        # y <-> a xor b, plus nothing else: all four (a, b) combinations
        # reachable under assumptions.
        s = SatSolver()
        a, b, y = (s.new_var() for _ in range(3))
        s.add_clause([-a, -b, -y])
        s.add_clause([a, b, -y])
        s.add_clause([a, -b, y])
        s.add_clause([-a, b, y])
        return s, a, b, y

    def test_assumptions_drive_model(self):
        s, a, b, y = self._xor_instance()
        for va, vb in itertools.product((False, True), repeat=2):
            lits = [a if va else -a, b if vb else -b]
            assert s.solve(lits)
            assert s.value(a) == va and s.value(b) == vb
            assert s.value(y) == (va ^ vb)

    def test_unsat_under_assumptions_is_not_permanent(self):
        s = SatSolver()
        v = s.new_var()
        s.add_clause([v])
        assert not s.solve([-v])
        assert s.solve()
        assert s.solve([v])

    def test_conflicting_assumptions(self):
        s = SatSolver()
        v = s.new_var()
        assert not s.solve([v, -v])
        assert s.solve()


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8
        ]


class TestBruteForceFuzz:
    def test_random_3cnf_agrees_with_enumeration(self):
        rng = random.Random(0xC0FFEE)
        for trial in range(120):
            n_vars = rng.randint(1, 9)
            n_clauses = rng.randint(1, 4 * n_vars)
            clauses = []
            for _ in range(n_clauses):
                width = rng.randint(1, 3)
                lits = []
                for var in rng.sample(range(1, n_vars + 1),
                                      min(width, n_vars)):
                    lits.append(var if rng.random() < 0.5 else -var)
                clauses.append(lits)
            expected = brute_force(n_vars, clauses)
            solver = SatSolver()
            for _ in range(n_vars):
                solver.new_var()
            for clause in clauses:
                solver.add_clause(list(clause))
            got = solver.solve()
            assert got == expected, f"trial {trial}: {clauses}"
            if got:
                assert model_satisfies(solver, clauses)

    def test_incremental_assumption_queries_match_unit_addition(self):
        rng = random.Random(7)
        for _ in range(40):
            n_vars = rng.randint(2, 8)
            clauses = [
                [
                    var if rng.random() < 0.5 else -var
                    for var in rng.sample(
                        range(1, n_vars + 1), min(rng.randint(1, 3), n_vars)
                    )
                ]
                for _ in range(rng.randint(2, 2 * n_vars))
            ]
            incremental = SatSolver()
            for _ in range(n_vars):
                incremental.new_var()
            for clause in clauses:
                incremental.add_clause(list(clause))
            for _ in range(4):
                assumption = rng.randint(1, n_vars)
                if rng.random() < 0.5:
                    assumption = -assumption
                want, _ = solve_cnf(clauses + [[assumption]])
                assert incremental.solve([assumption]) == want


class TestSolveCnf:
    def test_returns_verdict_and_solver(self):
        sat, solver = solve_cnf([[1, 2], [-1]])
        assert sat and solver.value(2) is True
        sat, _ = solve_cnf([[1], [-1]])
        assert not sat
