"""Abstract 32-bit word domain for the reachability interpreter.

One :class:`AbstractWord` over-approximates the set of concrete 32-bit
values a register, bus or memory word can take at a program point.  It is
a *reduced product* of two classic domains:

* **known bits** — ``(mask, value)``: bit *i* is proven equal to
  ``value>>i & 1`` wherever ``mask>>i & 1`` is set (a 32-wide ternary
  word, the same 0/1/X lattice the netlist screen evaluates);
* **unsigned interval** — ``[lo, hi]`` inclusive bounds.

Construction normalises the two views against each other: the common
binary prefix of ``lo``/``hi`` yields known high bits, and the known
bits tighten the interval to ``[value, value | ~mask]``.  Every transfer
function is *sound*: the concretisation of the result contains every
value reachable by applying the concrete operator to members of the
operand concretisations.  Soundness is what the unexercised-fault screen
rests on (DESIGN.md §15), so transfer functions prefer losing precision
(returning :data:`TOP`) over any clever-but-unproven tightening.

The domain is a join semilattice ordered by precision; :meth:`join` is
the least upper bound used at control-flow merges and
:meth:`widen` jumps intervals to their bits-implied bounds so loop
fixpoints terminate without walking 2^32-step chains.
"""

from __future__ import annotations

from dataclasses import dataclass

MASK32 = 0xFFFF_FFFF
_SIGN = 0x8000_0000


def _signed(value: int) -> int:
    """Two's-complement reading of a 32-bit value."""
    return value - (1 << 32) if value & _SIGN else value


@dataclass(frozen=True)
class AbstractWord:
    """One abstract 32-bit value (known bits × unsigned interval).

    Invariants (established by :func:`make`, assumed everywhere):
    ``value & ~mask == 0``; ``value <= lo <= hi <= (value | ~mask)``
    within 32 bits; known bits and interval never contradict.
    """

    mask: int
    value: int
    lo: int
    hi: int

    # ------------------------------------------------------------ queries

    @property
    def is_const(self) -> bool:
        return self.mask == MASK32

    def as_const(self) -> int | None:
        """The single concrete value, or None if more than one remains."""
        return self.value if self.mask == MASK32 else None

    def bit(self, i: int) -> int | None:
        """Bit *i* as 0/1, or None when unknown."""
        if (self.mask >> i) & 1:
            return (self.value >> i) & 1
        return None

    def bits(self) -> tuple[int, int]:
        """The ternary view ``(mask, value)`` fed to the netlist screen."""
        return self.mask, self.value

    def signed_bounds(self) -> tuple[int, int]:
        """Sound signed bounds derived from the unsigned interval."""
        if self.hi < _SIGN:  # entirely non-negative
            return self.lo, self.hi
        if self.lo >= _SIGN:  # entirely negative
            return self.lo - (1 << 32), self.hi - (1 << 32)
        return -(1 << 31), (1 << 31) - 1

    # ------------------------------------------------------------ lattice

    def join(self, other: "AbstractWord") -> "AbstractWord":
        """Least upper bound (control-flow merge)."""
        mask = self.mask & other.mask & ~(self.value ^ other.value)
        return make(
            mask, self.value & mask,
            min(self.lo, other.lo), max(self.hi, other.hi),
        )

    def widen(self, new: "AbstractWord") -> "AbstractWord":
        """Join, but unstable interval bounds jump to their bit-implied
        extremes so loop chains converge in O(32) steps."""
        joined = self.join(new)
        lo, hi = joined.lo, joined.hi
        if new.lo < self.lo:
            lo = joined.value
        if new.hi > self.hi:
            hi = joined.value | (~joined.mask & MASK32)
        return make(joined.mask, joined.value, lo, hi)

    def covers(self, concrete: int) -> bool:
        """True when the concrete value lies in this concretisation."""
        concrete &= MASK32
        if (concrete & self.mask) != self.value:
            return False
        return self.lo <= concrete <= self.hi

    # ----------------------------------------------------------- bitwise

    def band(self, other: "AbstractWord") -> "AbstractWord":
        known0 = (self.mask & ~self.value) | (other.mask & ~other.value)
        known1 = (self.mask & self.value) & (other.mask & other.value)
        return from_bits(known0 | known1, known1)

    def bor(self, other: "AbstractWord") -> "AbstractWord":
        known1 = (self.mask & self.value) | (other.mask & other.value)
        known0 = (self.mask & ~self.value) & (other.mask & ~other.value)
        return from_bits(known0 | known1, known1)

    def bxor(self, other: "AbstractWord") -> "AbstractWord":
        mask = self.mask & other.mask
        return from_bits(mask, (self.value ^ other.value) & mask)

    def bnot(self) -> "AbstractWord":
        return from_bits(self.mask, ~self.value & self.mask)

    def bnor(self, other: "AbstractWord") -> "AbstractWord":
        return self.bor(other).bnot()

    # -------------------------------------------------------- arithmetic

    def add(self, other: "AbstractWord") -> "AbstractWord":
        a, b = self.as_const(), other.as_const()
        if a is not None and b is not None:
            return const((a + b) & MASK32)
        # Carries ripple upward only: with the trailing k bits of both
        # operands known, the trailing k bits of the sum are known.
        k = _trailing_known(self.mask & other.mask)
        low = (1 << k) - 1
        mask = low & MASK32
        value = (self.value + other.value) & mask
        lo, hi = 0, MASK32
        slo, shi = self.lo + other.lo, self.hi + other.hi
        if shi <= MASK32:
            lo, hi = slo, shi
        elif slo > MASK32:  # both bounds wrap exactly once
            lo, hi = slo - (1 << 32), shi - (1 << 32)
        return make(mask, value, lo, hi)

    def sub(self, other: "AbstractWord") -> "AbstractWord":
        a, b = self.as_const(), other.as_const()
        if a is not None and b is not None:
            return const((a - b) & MASK32)
        k = _trailing_known(self.mask & other.mask)
        mask = ((1 << k) - 1) & MASK32
        value = (self.value - other.value) & mask
        lo, hi = 0, MASK32
        dlo, dhi = self.lo - other.hi, self.hi - other.lo
        if dlo >= 0:
            lo, hi = dlo, dhi
        elif dhi < 0:  # both bounds wrap exactly once
            lo, hi = dlo + (1 << 32), dhi + (1 << 32)
        return make(mask, value, lo, hi)

    # ------------------------------------------------------------ shifts

    def shl(self, shamt: int) -> "AbstractWord":
        shamt &= 31
        mask = ((self.mask << shamt) | ((1 << shamt) - 1)) & MASK32
        return from_bits(mask, (self.value << shamt) & mask)

    def shr(self, shamt: int) -> "AbstractWord":
        shamt &= 31
        high = MASK32 & ~(MASK32 >> shamt)  # vacated bits are zero
        return from_bits((self.mask >> shamt) | high, self.value >> shamt)

    def sar(self, shamt: int) -> "AbstractWord":
        shamt &= 31
        mask = self.mask >> shamt
        value = self.value >> shamt
        sign = self.bit(31)
        if sign is not None:
            high = MASK32 & ~(MASK32 >> shamt)
            mask |= high
            if sign:
                value |= high
        return from_bits(mask, value)

    # -------------------------------------------------------- comparisons

    def sltu(self, other: "AbstractWord") -> "AbstractWord":
        if self.hi < other.lo:
            return const(1)
        if self.lo >= other.hi:
            return const(0)
        return BOOL_UNKNOWN

    def slt(self, other: "AbstractWord") -> "AbstractWord":
        a_lo, a_hi = self.signed_bounds()
        b_lo, b_hi = other.signed_bounds()
        if a_hi < b_lo:
            return const(1)
        if a_lo >= b_hi:
            return const(0)
        return BOOL_UNKNOWN

    def decide_eq(self, other: "AbstractWord") -> bool | None:
        """Whether self == other always/never holds (None = undecided)."""
        a, b = self.as_const(), other.as_const()
        if a is not None and b is not None:
            return a == b
        common = self.mask & other.mask
        if (self.value ^ other.value) & common:
            return False  # a known bit provably differs
        if self.hi < other.lo or other.hi < self.lo:
            return False
        return None

    # ------------------------------------------------- sub-word extraction

    def extract_byte(self, lane: int, signed: bool) -> "AbstractWord":
        byte = self.shr(8 * (lane & 3)).band(const(0xFF))
        return byte.sign_extend(8) if signed else byte

    def extract_half(self, half: int, signed: bool) -> "AbstractWord":
        value = self.shr(8 * (half & 2)).band(const(0xFFFF))
        return value.sign_extend(16) if signed else value

    def sign_extend(self, width: int) -> "AbstractWord":
        """Sign-extend from ``width`` bits (upper bits must be known 0)."""
        sign = self.bit(width - 1)
        high = MASK32 & ~((1 << width) - 1)
        mask = self.mask & ~high
        value = self.value & ~high
        if sign is not None:
            mask |= high
            if sign:
                value |= high
        return from_bits(mask, value)


def _trailing_known(mask: int) -> int:
    """Number of consecutive known bits starting at bit 0."""
    unknown = ~mask & MASK32
    if unknown == 0:
        return 32
    return (unknown & -unknown).bit_length() - 1


def make(mask: int, value: int, lo: int = 0, hi: int = MASK32) -> AbstractWord:
    """Normalised constructor: bits and interval refine each other."""
    mask &= MASK32
    value &= mask
    lo &= MASK32
    hi &= MASK32
    if lo > hi:  # empty/contradictory interval: fall back to the bits
        lo, hi = 0, MASK32
    # Common binary prefix of the bounds → known high bits.
    diff = lo ^ hi
    prefix = MASK32 & ~((1 << diff.bit_length()) - 1)
    add = prefix & ~mask
    mask |= add
    value |= lo & add
    # Known bits → interval bounds.
    bit_lo = value
    bit_hi = value | (~mask & MASK32)
    lo = max(lo, bit_lo)
    hi = min(hi, bit_hi)
    if lo > hi:  # the two views contradict; keep the (sound) bit bounds
        lo, hi = bit_lo, bit_hi
    return AbstractWord(mask, value, lo, hi)


def from_bits(mask: int, value: int) -> AbstractWord:
    """An abstract word from a ternary (known-bits) view alone."""
    return make(mask, value)


def const(value: int) -> AbstractWord:
    """The singleton abstraction of one concrete value."""
    value &= MASK32
    return AbstractWord(MASK32, value, value, value)


def from_range(lo: int, hi: int) -> AbstractWord:
    """An abstract word from unsigned interval bounds alone."""
    return make(0, 0, lo, hi)


#: No information: any 32-bit value.
TOP = AbstractWord(0, 0, 0, MASK32)

#: A boolean result whose low bit is undecided (bits 31..1 known zero).
BOOL_UNKNOWN = AbstractWord(MASK32 ^ 1, 0, 0, 1)


def join_all(words: list[AbstractWord]) -> AbstractWord:
    """Least upper bound of a non-empty list."""
    acc = words[0]
    for word in words[1:]:
        acc = acc.join(word)
    return acc
