"""Control-signal bundle: the interface between CTRL and the datapath.

:func:`decode_controls` is the bit-true reference decoder used by the
behavioural CPU and by the CTRL netlist's tests; the CTRL netlist
(:mod:`repro.plasma.control_unit`) implements exactly this mapping as
two-level logic.  The field layout (:data:`CONTROL_FIELDS`) defines the
CTRL component's output ports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.isa.encoding import Decoded
from repro.library.alu import AluOp
from repro.library.multiplier import MulDivOp


class ASource(enum.IntEnum):
    """ALU A-operand source select."""

    RS = 0
    PC_PLUS4 = 1


class BSource(enum.IntEnum):
    """ALU B-operand source select."""

    RT = 0
    IMM_SIGN = 1  # sign-extended 16-bit immediate
    IMM_ZERO = 2  # zero-extended 16-bit immediate
    IMM_LUI = 3  # immediate << 16
    IMM_BRANCH = 4  # sign-extended immediate << 2 (branch offset)
    CONST_4 = 5  # literal 4: link address = PC+4 + 4 = PC+8 (jal/jalr)


class WbSource(enum.IntEnum):
    """Write-back data source select."""

    ALU = 0
    SHIFT = 1
    MEM = 2
    LO = 3
    HI = 4


class RegDest(enum.IntEnum):
    """Destination register field select."""

    RD = 0
    RT = 1
    RA = 2  # $31 for jal


class BranchType(enum.IntEnum):
    """Branch condition evaluated by the PC logic."""

    NONE = 0
    EQ = 1
    NE = 2
    LEZ = 3
    GTZ = 4
    LTZ = 5
    GEZ = 6
    ALWAYS = 7


class MemSize(enum.IntEnum):
    BYTE = 0
    HALF = 1
    WORD = 2


@dataclass(frozen=True)
class ControlBundle:
    """One instruction's decoded control signals."""

    alu_func: AluOp = AluOp.PASS_A
    a_source: ASource = ASource.RS
    b_source: BSource = BSource.RT
    use_shifter: bool = False
    shift_left: bool = False
    shift_arith: bool = False
    shift_variable: bool = False  # shamt from rs (SLLV/SRLV/SRAV)
    muldiv_op: MulDivOp = MulDivOp.IDLE
    wb_source: WbSource = WbSource.ALU
    reg_dest: RegDest = RegDest.RD
    reg_write: bool = False
    mem_read: bool = False
    mem_write: bool = False
    mem_size: MemSize = MemSize.WORD
    mem_signed: bool = False
    branch_type: BranchType = BranchType.NONE
    jump_reg: bool = False  # target from rs (JR/JALR)
    jump_abs: bool = False  # target from the 26-bit index field (J/JAL)

    def to_fields(self) -> dict[str, int]:
        """Numeric field values, in :data:`CONTROL_FIELDS` layout."""
        return {
            "alu_func": int(self.alu_func),
            "a_source": int(self.a_source),
            "b_source": int(self.b_source),
            "use_shifter": int(self.use_shifter),
            "shift_left": int(self.shift_left),
            "shift_arith": int(self.shift_arith),
            "shift_variable": int(self.shift_variable),
            "muldiv_op": int(self.muldiv_op),
            "wb_source": int(self.wb_source),
            "reg_dest": int(self.reg_dest),
            "reg_write": int(self.reg_write),
            "mem_read": int(self.mem_read),
            "mem_write": int(self.mem_write),
            "mem_size": int(self.mem_size),
            "mem_signed": int(self.mem_signed),
            "branch_type": int(self.branch_type),
            "jump_reg": int(self.jump_reg),
            "jump_abs": int(self.jump_abs),
        }


#: CTRL output port layout: (field name, bit width).
CONTROL_FIELDS: tuple[tuple[str, int], ...] = (
    ("alu_func", 4),
    ("a_source", 1),
    ("b_source", 3),
    ("use_shifter", 1),
    ("shift_left", 1),
    ("shift_arith", 1),
    ("shift_variable", 1),
    ("muldiv_op", 3),
    ("wb_source", 3),
    ("reg_dest", 2),
    ("reg_write", 1),
    ("mem_read", 1),
    ("mem_write", 1),
    ("mem_size", 2),
    ("mem_signed", 1),
    ("branch_type", 3),
    ("jump_reg", 1),
    ("jump_abs", 1),
)

_ALU_RTYPE = {
    "add": AluOp.ADD,
    "addu": AluOp.ADD,
    "sub": AluOp.SUB,
    "subu": AluOp.SUB,
    "and": AluOp.AND,
    "or": AluOp.OR,
    "xor": AluOp.XOR,
    "nor": AluOp.NOR,
    "slt": AluOp.SLT,
    "sltu": AluOp.SLTU,
}

_ALU_ITYPE = {
    "addi": (AluOp.ADD, BSource.IMM_SIGN),
    "addiu": (AluOp.ADD, BSource.IMM_SIGN),
    "slti": (AluOp.SLT, BSource.IMM_SIGN),
    "sltiu": (AluOp.SLTU, BSource.IMM_SIGN),
    "andi": (AluOp.AND, BSource.IMM_ZERO),
    "ori": (AluOp.OR, BSource.IMM_ZERO),
    "xori": (AluOp.XOR, BSource.IMM_ZERO),
}

_SHIFTS = {
    # mnemonic: (left, arith, variable)
    "sll": (True, False, False),
    "srl": (False, False, False),
    "sra": (False, True, False),
    "sllv": (True, False, True),
    "srlv": (False, False, True),
    "srav": (False, True, True),
}

_MULDIV = {
    "mult": MulDivOp.MULT,
    "multu": MulDivOp.MULTU,
    "div": MulDivOp.DIV,
    "divu": MulDivOp.DIVU,
    "mthi": MulDivOp.MTHI,
    "mtlo": MulDivOp.MTLO,
}

_LOADS = {
    # mnemonic: (size, signed)
    "lb": (MemSize.BYTE, True),
    "lbu": (MemSize.BYTE, False),
    "lh": (MemSize.HALF, True),
    "lhu": (MemSize.HALF, False),
    "lw": (MemSize.WORD, False),
}

_STORES = {
    "sb": MemSize.BYTE,
    "sh": MemSize.HALF,
    "sw": MemSize.WORD,
}

_BRANCHES = {
    "beq": BranchType.EQ,
    "bne": BranchType.NE,
    "blez": BranchType.LEZ,
    "bgtz": BranchType.GTZ,
    "bltz": BranchType.LTZ,
    "bgez": BranchType.GEZ,
}


def decode_controls(decoded: Decoded) -> ControlBundle:
    """Reference control decoder for every supported instruction."""
    name = decoded.spec.mnemonic

    if name in _ALU_RTYPE:
        return ControlBundle(
            alu_func=_ALU_RTYPE[name], reg_dest=RegDest.RD, reg_write=True
        )
    if name in _ALU_ITYPE:
        func, b_src = _ALU_ITYPE[name]
        return ControlBundle(
            alu_func=func, b_source=b_src, reg_dest=RegDest.RT, reg_write=True
        )
    if name == "lui":
        return ControlBundle(
            alu_func=AluOp.PASS_B,
            b_source=BSource.IMM_LUI,
            reg_dest=RegDest.RT,
            reg_write=True,
        )
    if name in _SHIFTS:
        left, arith, variable = _SHIFTS[name]
        return ControlBundle(
            use_shifter=True,
            shift_left=left,
            shift_arith=arith,
            shift_variable=variable,
            wb_source=WbSource.SHIFT,
            reg_dest=RegDest.RD,
            reg_write=True,
        )
    if name in _MULDIV:
        return ControlBundle(muldiv_op=_MULDIV[name])
    if name == "mfhi":
        return ControlBundle(
            wb_source=WbSource.HI, reg_dest=RegDest.RD, reg_write=True
        )
    if name == "mflo":
        return ControlBundle(
            wb_source=WbSource.LO, reg_dest=RegDest.RD, reg_write=True
        )
    if name in _LOADS:
        size, signed = _LOADS[name]
        return ControlBundle(
            alu_func=AluOp.ADD,
            b_source=BSource.IMM_SIGN,
            wb_source=WbSource.MEM,
            reg_dest=RegDest.RT,
            reg_write=True,
            mem_read=True,
            mem_size=size,
            mem_signed=signed,
        )
    if name in _STORES:
        return ControlBundle(
            alu_func=AluOp.ADD,
            b_source=BSource.IMM_SIGN,
            mem_write=True,
            mem_size=_STORES[name],
        )
    if name in _BRANCHES:
        # The ALU computes the branch target: PC+4 + (sign imm << 2).
        return ControlBundle(
            alu_func=AluOp.ADD,
            a_source=ASource.PC_PLUS4,
            b_source=BSource.IMM_BRANCH,
            branch_type=_BRANCHES[name],
        )
    if name == "j":
        return ControlBundle(branch_type=BranchType.ALWAYS, jump_abs=True)
    if name == "jal":
        return ControlBundle(
            branch_type=BranchType.ALWAYS,
            jump_abs=True,
            alu_func=AluOp.ADD,
            a_source=ASource.PC_PLUS4,
            b_source=BSource.CONST_4,
            reg_dest=RegDest.RA,
            reg_write=True,
        )
    if name == "jr":
        return ControlBundle(branch_type=BranchType.ALWAYS, jump_reg=True)
    if name == "jalr":
        return ControlBundle(
            branch_type=BranchType.ALWAYS,
            jump_reg=True,
            alu_func=AluOp.ADD,
            a_source=ASource.PC_PLUS4,
            b_source=BSource.CONST_4,
            reg_dest=RegDest.RD,
            reg_write=True,
        )
    raise SimulationError(f"no control decode for {name!r}")
