#!/usr/bin/env python3
"""CI acceptance check for the campaign service.

Boots ``python -m repro serve`` on an ephemeral port, drives it with
the stdlib client (``examples/service_client.py --json``) and asserts
the three properties the service is allowed to promise:

1. **transport, not computation** — the coverage JSON for a GL,PLN
   Phase A campaign is byte-identical to a direct in-process
   ``grade_program`` run;
2. **idempotency** — resubmitting the identical campaign attaches to
   the finished job (same result, no re-grading);
3. **persistence** — after a full server restart on the same
   ``--cache-dir``, the resubmission is a warm-store replay:
   ``cache_hit`` with zero re-simulated fault classes.

Exit 0 on success, 1 with a diagnostic on any violation.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

PHASES = "A"
COMPONENTS = "GL,PLN"
LISTENING = re.compile(r"listening on http://[^:]+:(\d+)")


def start_server(cache_dir: str) -> tuple[subprocess.Popen, int]:
    env = {**os.environ, "PYTHONPATH": str(ROOT / "src")}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=ROOT,
    )
    line = proc.stdout.readline()
    match = LISTENING.search(line)
    if not match:
        proc.terminate()
        raise SystemExit(f"server never announced its port: {line!r}")
    return proc, int(match.group(1))


def stop_server(proc: subprocess.Popen) -> None:
    proc.terminate()
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


def run_client(port: int) -> dict:
    env = {**os.environ, "PYTHONPATH": str(ROOT / "src")}
    started = time.monotonic()
    result = subprocess.run(
        [sys.executable, str(ROOT / "examples" / "service_client.py"),
         "--port", str(port), "--phases", PHASES,
         "--components", COMPONENTS, "--json"],
        capture_output=True, text=True, env=env, cwd=ROOT, timeout=900,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"client exited {result.returncode}:\n{result.stdout}"
            f"{result.stderr}"
        )
    payload = json.loads(result.stdout.strip().splitlines()[-1])
    print(f"  campaign {payload['id']}: {payload['state']} "
          f"in {time.monotonic() - started:.1f}s "
          f"(simulated {payload['n_simulated']}, "
          f"cache_hit={payload['cache_hit']}, "
          f"attached={payload['attached']})")
    return payload


def direct_coverage() -> str:
    from repro.core.campaign import grade_program
    from repro.core.methodology import SelfTestMethodology
    from repro.reporting.tables import coverage_tables_json
    from repro.service.schemas import parse_campaign_request

    request = parse_campaign_request(
        {"phases": PHASES, "components": COMPONENTS}
    )
    outcome = grade_program(
        SelfTestMethodology().build_program(PHASES),
        components=list(request.components),
        options=request.to_options(),
    )
    return json.dumps(
        coverage_tables_json({PHASES: outcome}), sort_keys=True
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as cache_dir:
        print(f"smoke: serving with --cache-dir {cache_dir}")
        proc, port = start_server(cache_dir)
        try:
            print(f"smoke: cold run against port {port}")
            cold = run_client(port)
            assert cold["state"] == "done", cold.get("error")
            assert cold["n_simulated"] > 0, "cold run graded nothing"

            print("smoke: comparing against direct in-process grading")
            expected = direct_coverage()
            served = json.dumps(cold["coverage"], sort_keys=True)
            assert served == expected, (
                "service coverage diverged from direct grading:\n"
                f"  direct:  {expected[:200]}...\n"
                f"  service: {served[:200]}..."
            )

            print("smoke: idempotent resubmission (same server)")
            attached = run_client(port)
            assert attached["id"] == cold["id"], "resubmission re-graded"
            assert attached["attached"] >= 2
            assert json.dumps(attached["coverage"], sort_keys=True) == expected
        finally:
            stop_server(proc)

        print("smoke: restarting the server on the same cache dir")
        proc, port = start_server(cache_dir)
        try:
            warm = run_client(port)
            assert warm["state"] == "done", warm.get("error")
            assert warm["cache_hit"] is True, "restart lost the store"
            assert warm["n_simulated"] == 0, (
                f"warm run re-simulated {warm['n_simulated']} fault classes"
            )
            assert json.dumps(warm["coverage"], sort_keys=True) == expected, (
                "warm replay diverged from the cold run"
            )
        finally:
            stop_server(proc)

    print("smoke: OK — identical coverage, idempotent attach, warm replay")
    return 0


if __name__ == "__main__":
    sys.exit(main())
