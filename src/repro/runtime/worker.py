"""Process-isolated job execution with wall-clock timeouts.

One job = one worker process.  The worker runs a callable and ships the
(picklable) result back over a pipe; the parent enforces the wall-clock
budget and converts every way a worker can die into a structured exception:

* result arrives            -> returned to the caller;
* job raises                -> :class:`~repro.errors.JobFailed`;
* budget exhausted          -> :class:`~repro.errors.GradingTimeout`
  (the worker is terminated, escalating to SIGKILL);
* process dies silently     -> :class:`~repro.errors.WorkerCrash`
  (segfault, ``os._exit``, OOM-kill...).

The ``fork`` start method is preferred (no pickling of the callable, so
closures and netlist transforms work); ``spawn`` is the fallback where fork
is unavailable, at the cost of requiring picklable job functions.
"""

from __future__ import annotations

import contextlib

import multiprocessing as mp
import time
from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.errors import GradingTimeout, JobFailed, WorkerCrash

_START_METHOD = (
    "fork" if "fork" in mp.get_all_start_methods() else "spawn"
)
_CTX = mp.get_context(_START_METHOD)

#: Grace period for a terminated worker to exit before SIGKILL.
_TERMINATE_GRACE = 2.0

#: Callbacks run inside every freshly started worker before its job.
#: Used by process-wide caches (e.g. the fault-sim good-trace cache) to
#: reset per-process statistics that a fork would otherwise duplicate.
_CHILD_INIT_HOOKS: list[Callable[[], None]] = []


def register_child_init_hook(hook: Callable[[], None]) -> None:
    """Run ``hook()`` at the start of every worker process.

    Hooks must be cheap and exception-safe; a raising hook is swallowed
    (a broken cache reset must not take the job down with it).  Under the
    ``spawn`` start method hooks only run if their registering module is
    imported by the job itself.
    """
    if hook not in _CHILD_INIT_HOOKS:
        _CHILD_INIT_HOOKS.append(hook)


def run_child_init_hooks() -> None:
    """Run every registered child-init hook (called in fresh workers)."""
    for hook in _CHILD_INIT_HOOKS:
        with contextlib.suppress(Exception):
            hook()


def _worker_main(conn, fn, args, kwargs) -> None:
    """Worker entry point: run the job, report ('ok', ...) or ('error', ...)."""
    run_child_init_hooks()
    try:
        result = fn(*args, **kwargs)
    except BaseException as exc:  # report everything, incl. KeyboardInterrupt
        # parent gone or detail unpicklable -> suppressed; dies as a crash
        with contextlib.suppress(Exception):
            conn.send(("error", type(exc).__name__, str(exc)))
    else:
        try:
            conn.send(("ok", result))
        except Exception:
            try:
                conn.send(
                    ("error", "PicklingError", "job result is not picklable")
                )
            except Exception:
                pass
    finally:
        conn.close()


def _reap(proc: mp.Process) -> None:
    """Stop a worker that is no longer wanted, escalating politely."""
    if proc.is_alive():
        proc.terminate()
        proc.join(_TERMINATE_GRACE)
    if proc.is_alive():
        proc.kill()
        proc.join(_TERMINATE_GRACE)


def run_in_worker(
    fn: Callable[..., Any],
    args: Sequence = (),
    kwargs: Mapping[str, Any] | None = None,
    timeout: float | None = None,
    job: str = "",
) -> Any:
    """Execute ``fn(*args, **kwargs)`` in a dedicated worker process.

    Args:
        fn: the job callable.  With the ``fork`` start method any callable
            works; under ``spawn`` it must be importable/picklable.
        timeout: wall-clock budget in seconds (None = wait forever).
        job: label used in raised exceptions and logs.

    Returns:
        Whatever ``fn`` returned (must be picklable).

    Raises:
        GradingTimeout: budget exhausted; the worker has been killed.
        WorkerCrash: the process died without reporting anything.
        JobFailed: the job raised; carries the exception type and message.
    """
    label = job or getattr(fn, "__name__", "job")
    parent_conn, child_conn = _CTX.Pipe(duplex=False)
    proc = _CTX.Process(
        target=_worker_main,
        args=(child_conn, fn, tuple(args), dict(kwargs or {})),
        daemon=True,
    )
    started = time.monotonic()
    proc.start()
    child_conn.close()
    try:
        if not parent_conn.poll(timeout):
            _reap(proc)
            raise GradingTimeout(label, float(timeout))
        try:
            message = parent_conn.recv()
        except EOFError:
            # The pipe closed with nothing on it: the worker died before
            # (or while) reporting.
            proc.join(_TERMINATE_GRACE)
            raise WorkerCrash(label, proc.exitcode) from None
        if message[0] == "ok":
            remaining = None
            if timeout is not None:
                remaining = max(0.0, timeout - (time.monotonic() - started))
            proc.join(remaining)
            _reap(proc)
            return message[1]
        _, exc_type, detail = message
        proc.join(_TERMINATE_GRACE)
        _reap(proc)
        raise JobFailed(label, exc_type, detail)
    finally:
        _reap(proc)
        parent_conn.close()
