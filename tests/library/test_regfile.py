"""Unit tests for the register-file generator."""

from repro.faultsim.simulator import LogicSimulator
from repro.library.regfile import build_register_file

_SIM = LogicSimulator(build_register_file())


def idle(rd_a=0, rd_b=0):
    return dict(wr_addr=0, wr_data=0, wr_en=0, rd_addr_a=rd_a, rd_addr_b=rd_b)


def write(reg, value, rd_a=0, rd_b=0):
    return dict(wr_addr=reg, wr_data=value, wr_en=1,
                rd_addr_a=rd_a, rd_addr_b=rd_b)


class TestReadWrite:
    def test_write_then_read_both_ports(self):
        cycles = [write(5, 0xCAFE), idle(rd_a=5, rd_b=5)]
        outs, _ = _SIM.run_sequence(cycles)
        assert outs[1]["rd_data_a"] == 0xCAFE
        assert outs[1]["rd_data_b"] == 0xCAFE

    def test_all_registers_independent(self):
        cycles = [write(r, 0x100 + r) for r in range(1, 32)]
        cycles += [idle(rd_a=r, rd_b=32 - r) for r in range(1, 32)]
        outs, _ = _SIM.run_sequence(cycles)
        for i, r in enumerate(range(1, 32)):
            o = outs[31 + i]
            assert o["rd_data_a"] == 0x100 + r
            assert o["rd_data_b"] == 0x100 + (32 - r)

    def test_same_cycle_read_sees_old_value(self):
        cycles = [write(3, 0xAAAA), write(3, 0x5555, rd_a=3), idle(rd_a=3)]
        outs, _ = _SIM.run_sequence(cycles)
        # During the second write, the read port still sees the first value.
        assert outs[1]["rd_data_a"] == 0xAAAA
        assert outs[2]["rd_data_a"] == 0x5555


class TestZeroRegister:
    def test_reads_zero(self):
        outs, _ = _SIM.run_sequence([idle(rd_a=0, rd_b=0)])
        assert outs[0]["rd_data_a"] == 0
        assert outs[0]["rd_data_b"] == 0

    def test_write_ignored(self):
        cycles = [write(0, 0xFFFF_FFFF), idle(rd_a=0)]
        outs, _ = _SIM.run_sequence(cycles)
        assert outs[1]["rd_data_a"] == 0


class TestWriteEnable:
    def test_disabled_write_holds(self):
        cycles = [
            write(7, 0x1234),
            dict(wr_addr=7, wr_data=0xBAD, wr_en=0, rd_addr_a=7, rd_addr_b=0),
            idle(rd_a=7),
        ]
        outs, _ = _SIM.run_sequence(cycles)
        assert outs[2]["rd_data_a"] == 0x1234

    def test_write_targets_only_addressed_register(self):
        cycles = [write(9, 0x9999), write(10, 0xAAAA), idle(rd_a=9, rd_b=10)]
        outs, _ = _SIM.run_sequence(cycles)
        assert outs[2]["rd_data_a"] == 0x9999
        assert outs[2]["rd_data_b"] == 0xAAAA


class TestParametric:
    def test_small_configuration(self):
        sim = LogicSimulator(build_register_file(n_registers=8, width=8))
        cycles = [write(r, 0x10 + r) for r in range(1, 8)]
        cycles += [idle(rd_a=r) for r in range(8)]
        outs, _ = sim.run_sequence(cycles)
        assert outs[7]["rd_data_a"] == 0
        for r in range(1, 8):
            assert outs[7 + r]["rd_data_a"] == 0x10 + r
