"""The component test-set library (paper Section 2.3, Figure 4).

Small deterministic pattern sets that exploit each component's regular or
semi-regular structure.  These are the *data* of the methodology; the
routine generators in :mod:`repro.core.routines` wrap them in compact
instruction loops.

Rationale per set:

* **Adder/logic operand pairs** — a ripple-carry adder is an iterative
  array: all-propagate chains (``FFFF…+1``), alternate-generate patterns
  (``5555…+5555…``) and the sign corners test every full-adder cell and the
  carry chain; the same pairs put each bit of a two-input logic array
  through all four input combinations (00/01/10/11 via the 0/F/5/A masks).
* **Shift values** — a one-in-many pattern with the sign bit set plus an
  alternating pattern, swept across *every* shift amount and direction,
  toggles each mux level of the logarithmic shifter both ways.
* **Register-file march** — write/read-back of a pattern and its complement
  over all registers (cell stuck-ats) plus a register-unique value pass
  (address-decoder faults), the March-like test the paper describes for
  memory-element arrays.
* **Multiplier/divider operands** — corners (0, ±1, INT_MIN, INT_MAX) plus
  alternating patterns exercise the shared adder/subtractor, the sign
  pre/post-negation stages and the iteration control for every operation.
* **Memory-access cases** — every access size at every byte lane with
  sign-boundary data covers the byte-steering and extension muxes.
"""

from __future__ import annotations

from repro.utils.bits import MASK32

#: Operand pairs for the ALU routine (adder carry chains, per-bit logic
#: combinations, set-less-than sign corners).
ALU_OPERAND_PAIRS: tuple[tuple[int, int], ...] = (
    (0x00000000, 0x00000000),
    (0xFFFFFFFF, 0x00000001),  # full-length carry propagate
    (0x00000001, 0xFFFFFFFF),
    (0x55555555, 0x55555555),  # generate at every even stage
    (0xAAAAAAAA, 0xAAAAAAAA),
    (0xFFFFFFFF, 0xFFFFFFFF),
    (0x00000000, 0xFFFFFFFF),
    (0x55555555, 0xAAAAAAAA),  # logic 01/10 in every bit
    (0x80000000, 0x80000000),  # sign corner / overflow wrap
    (0x7FFFFFFF, 0x00000001),
    (0x7FFFFFFF, 0x80000000),  # SLT sign-differs corners
    (0x80000000, 0x7FFFFFFF),
    (0x0F0F0F0F, 0xF0F0F0F0),
    (0x33333333, 0xCCCCCCCC),
    (0xFFFF0000, 0x0000FFFF),
    (0x76543210, 0x89ABCDEF),
)

#: Immediates for the I-format ALU instructions (16-bit field corners).
ALU_IMMEDIATES: tuple[int, ...] = (0x0000, 0xFFFF, 0x5555, 0xAAAA, 0x8000, 0x7FFF)

#: R-format ALU instructions covered by the operand-pair loop.
ALU_RTYPE_OPS: tuple[str, ...] = (
    "addu", "subu", "and", "or", "xor", "nor", "slt", "sltu",
)

#: I-format ALU instructions covered by the immediate sweep.
ALU_ITYPE_OPS: tuple[str, ...] = (
    "addiu", "slti", "sltiu", "andi", "ori", "xori",
)

#: Values swept across every shift amount and direction by the shifter
#: routine.  A select-pin fault in mux stage *k* of the logarithmic
#: shifter is visible only when bits ``j`` and ``j + 2^k`` of the operand
#: differ, so the set combines:
#:
#: * 0x80000001 — sign/fill path and the end bits;
#: * a de Bruijn B(2,5) word and its complement — every 5-bit window
#:   distinct, so the word differs from *any* shifted copy of itself in
#:   many positions (covers the deep stages; a periodic pattern like
#:   0xA5A5A5A5 is invariant under 8/16-bit shifts and masks them);
#: * 0x0000FFFF — anti-palindromic (bit reversal equals complement), so
#:   the input/output reversal muxes see differing inputs in every column;
#: * 0x55555555 / 0x33333333 — adjacent bits (k=0) and bit pairs (k=1)
#:   differ in every column, covering the first two stages' select pins.
SHIFTER_VALUES: tuple[int, ...] = (
    0x80000001, 0x077CB531, 0xF8834ACE, 0x0000FFFF, 0x55555555, 0x33333333,
)

#: Fixed-amount shifts sampled in addition to the variable-shift sweep
#: (exercises the shamt-field path through CTRL/BSH).
SHIFTER_FIXED_CASES: tuple[tuple[str, int], ...] = (
    ("sll", 1), ("sll", 31), ("srl", 1), ("srl", 31), ("sra", 1), ("sra", 31),
    ("sll", 16), ("srl", 16), ("sra", 16), ("sra", 0),
)

#: March-style background patterns for the register file (pattern, then
#: complement, catches cell and data-line stuck-ats both ways).
REGFILE_PATTERNS: tuple[int, ...] = (0x55555555, 0xAAAAAAAA)

#: Multiplier/divider operand pairs (each run through MULT/MULTU/DIV/DIVU).
MULDIV_OPERAND_PAIRS: tuple[tuple[int, int], ...] = (
    (0x00000000, 0x00000001),
    (0x00000001, 0x00000000),  # division by zero (restoring-array case)
    (0xFFFFFFFF, 0xFFFFFFFF),  # -1 x -1 / -1 div -1
    (0x80000000, 0xFFFFFFFF),  # INT_MIN corners
    (0x7FFFFFFF, 0x7FFFFFFF),
    (0x55555555, 0xAAAAAAAA),
    (0xAAAAAAAA, 0x00000003),
    (0x00010002, 0x00030004),
    (0xFFFF0001, 0x0000FFFF),
    (0x12345678, 0x000ABCDE),
)

#: HI/LO direct-write values for the MTHI/MTLO path.
MULDIV_HILO_VALUES: tuple[int, ...] = (0x5A5A5A5A, 0xA5A5A5A5)

#: Data word stored/loaded by the memory-control routine; byte values have
#: distinct sign bits to exercise both extension fills.
MCTRL_DATA_WORDS: tuple[int, ...] = (0x807F017E, 0x00FF7E81)

#: (instruction, byte offset) cases for the load-extraction sweep.
MCTRL_LOAD_CASES: tuple[tuple[str, int], ...] = (
    ("lb", 0), ("lb", 1), ("lb", 2), ("lb", 3),
    ("lbu", 0), ("lbu", 1), ("lbu", 2), ("lbu", 3),
    ("lh", 0), ("lh", 2), ("lhu", 0), ("lhu", 2),
    ("lw", 0),
)

#: (instruction, byte offset, value) cases for the store-steering sweep.
MCTRL_STORE_CASES: tuple[tuple[str, int, int], ...] = (
    ("sb", 0, 0x81), ("sb", 1, 0x7E), ("sb", 2, 0x01), ("sb", 3, 0xFE),
    ("sh", 0, 0x8001), ("sh", 2, 0x7FFE),
    ("sw", 0, 0xC3A55A3C),
)


def regfile_unique_value(reg: int) -> int:
    """Register-unique background for the address-decoder pass.

    Distinct per register and with both halves populated, so any decoder
    fault that reads/writes the wrong register is visible on readback.
    """
    return ((reg * 0x01010101) ^ 0x0000FFFF) & MASK32
