"""Levelization: order gates for single-pass evaluation.

Gates are sorted so every gate appears after all gates driving its inputs.
Primary inputs, constants and DFF Q outputs are level-0 sources (a DFF's Q
is last cycle's state, so it never creates a combinational dependency).
Combinational cycles are reported as errors with the participating gates.
"""

from __future__ import annotations

from collections import deque

from repro.errors import NetlistError
from repro.netlist.netlist import Gate, Netlist


def levelize(netlist: Netlist) -> list[Gate]:
    """Topologically order combinational gates.

    Returns:
        Gates in an order safe for single-pass evaluation.

    Raises:
        NetlistError: if the netlist contains a combinational cycle.
    """
    driver_gate: dict[int, int] = {}  # net -> index of driving gate
    for gate in netlist.gates:
        driver_gate[gate.output] = gate.index

    # In-degree = number of inputs driven by not-yet-scheduled gates.
    indegree = [0] * len(netlist.gates)
    dependents: dict[int, list[int]] = {}  # gate index -> reader gate indices
    for gate in netlist.gates:
        for net in gate.inputs:
            src = driver_gate.get(net)
            if src is not None:
                indegree[gate.index] += 1
                dependents.setdefault(src, []).append(gate.index)

    ready = deque(g.index for g in netlist.gates if indegree[g.index] == 0)
    order: list[Gate] = []
    while ready:
        idx = ready.popleft()
        order.append(netlist.gates[idx])
        for reader in dependents.get(idx, ()):
            indegree[reader] -= 1
            if indegree[reader] == 0:
                ready.append(reader)

    if len(order) != len(netlist.gates):
        stuck = [g.index for g in netlist.gates if indegree[g.index] > 0]
        raise NetlistError(
            f"combinational cycle in {netlist.name!r}; "
            f"{len(stuck)} gates involved (e.g. gate indices {stuck[:8]})"
        )
    return order


def levels(netlist: Netlist) -> dict[int, int]:
    """Assign each gate its logic depth (longest path from a source)."""
    order = levelize(netlist)
    net_level: dict[int, int] = {}
    gate_level: dict[int, int] = {}
    for gate in order:
        lvl = 0
        for net in gate.inputs:
            lvl = max(lvl, net_level.get(net, 0))
        gate_level[gate.index] = lvl + 1
        net_level[gate.output] = lvl + 1
    return gate_level


def depth(netlist: Netlist) -> int:
    """Combinational depth of the netlist (0 for wire-only circuits)."""
    gate_level = levels(netlist)
    return max(gate_level.values(), default=0)
