"""The formal analyzer (FV201-FV203) and screen provenance reporting."""

import dataclasses

import pytest

from repro.analysis.diagnostics import RULES, Severity
from repro.analysis.formal import analyze_formal
from repro.analysis.netlist import analyze_netlist, untestable_provenance
from repro.formal.redundancy import prove_untestable
from repro.netlist.gates import GateType
from repro.plasma.components import build_component
from repro.reporting.analysis import render_formal_table


def mutate_component(name):
    """A component netlist with one gate type flipped (AND <-> OR)."""
    swaps = {GateType.AND: GateType.OR, GateType.OR: GateType.AND,
             GateType.XOR: GateType.XNOR, GateType.XNOR: GateType.XOR}
    netlist = build_component(name)
    for i, gate in enumerate(netlist.gates):
        if gate.gtype in swaps:
            netlist.gates[i] = dataclasses.replace(
                gate, gtype=swaps[gate.gtype]
            )
            return netlist
    raise AssertionError(f"no swappable gate in {name}")


class TestRuleRegistry:
    def test_fv_rules_registered(self):
        assert RULES["FV201"].severity is Severity.ERROR
        assert RULES["FV202"].severity is Severity.ERROR
        assert RULES["FV203"].severity is Severity.INFO


class TestAnalyzeFormal:
    def test_equivalent_component_is_ok_with_summary(self):
        report = analyze_formal(component="GL")
        assert report.kind == "formal"
        assert report.target == "GL"
        assert report.ok
        rules = [d.rule_id for d in report.diagnostics]
        assert rules == ["FV203"]
        assert "equivalent" in report.diagnostics[0].message

    def test_mutant_component_raises_fv201(self):
        report = analyze_formal(mutate_component("GL"), component="GL")
        assert not report.ok
        assert any(d.rule_id == "FV201" for d in report.errors)
        fv201 = next(d for d in report.errors if d.rule_id == "FV201")
        # The counterexample is embedded so the failure is actionable.
        assert "diverges" in fv201.message
        assert "inputs:" in fv201.message

    def test_precomputed_screen_is_reused(self):
        netlist = build_component("PCL")
        screen = prove_untestable(netlist, component="PCL")
        report = analyze_formal(netlist, component="PCL", screen=screen)
        assert report.ok
        summary = next(d for d in report.diagnostics
                       if d.rule_id == "FV203")
        assert str(len(screen.proven)) in summary.message

    def test_requires_netlist_or_component(self):
        with pytest.raises(ValueError):
            analyze_formal()


class TestProvenance:
    def test_structural_only_without_prove(self):
        netlist = build_component("CTRL")
        provenance = untestable_provenance(netlist)
        assert provenance
        assert set(provenance.values()) == {"structural"}

    def test_prove_upgrades_all_ctrl_classes(self):
        netlist = build_component("CTRL")
        provenance = untestable_provenance(netlist, prove=True)
        assert provenance
        assert set(provenance.values()) == {"proven"}

    def test_nl103_message_carries_provenance_counts(self):
        netlist = build_component("CTRL")
        report = analyze_netlist(netlist, prove=True)
        nl103 = next(d for d in report.diagnostics
                     if d.rule_id == "NL103")
        assert "provenance" in nl103.message
        assert "proven" in nl103.message

    def test_clean_component_has_empty_provenance(self):
        assert untestable_provenance(build_component("GL")) == {}


class TestFormalTable:
    def test_table_shape_and_totals(self):
        screens = [
            prove_untestable(build_component(n), component=n)
            for n in ("PCL", "GL")
        ]
        table = render_formal_table(screens)
        lines = table.splitlines()
        assert any("proven" in line for line in lines)
        assert any(line.lstrip().startswith("PCL") for line in lines)
        assert lines[-1].lstrip().startswith("total")
