"""Behavioural CPU tests: instruction semantics, delay slots, cycle model."""

import pytest

from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.plasma.cpu import MULDIV_LATENCY, PIPELINE_FILL, PlasmaCPU


def run_program(source: str, max_instructions: int = 100_000) -> PlasmaCPU:
    cpu = PlasmaCPU()
    cpu.load_program(assemble(source))
    cpu.run(max_instructions=max_instructions)
    return cpu


def run_and_read(source: str, *symbols: str) -> list[int]:
    program = assemble(source)
    cpu = PlasmaCPU()
    cpu.load_program(program)
    cpu.run()
    return [cpu.memory.read_word(program.symbol(s)) for s in symbols]


HALT = "halt: j halt\n    nop\n"


def harness(body: str, data: str = "out: .word 0, 0, 0, 0") -> str:
    return f".text\n{body}\n{HALT}.data\n{data}\n"


def result_of(body: str) -> int:
    """Run a snippet that leaves its result in $t2; store and return it."""
    src = harness(
        f"{body}\n    la $t9, out\n    sw $t2, 0($t9)"
    )
    return run_and_read(src, "out")[0]


class TestArithmetic:
    def test_addu_wraps(self):
        assert result_of("li $t0, 0xFFFFFFFF\nli $t1, 2\naddu $t2, $t0, $t1") == 1

    def test_subu_wraps(self):
        assert result_of("li $t0, 0\nli $t1, 1\nsubu $t2, $t0, $t1") == 0xFFFFFFFF

    def test_add_behaves_like_addu_no_exceptions(self):
        # Plasma has no exceptions: ADD wraps silently.
        assert result_of(
            "li $t0, 0x7FFFFFFF\nli $t1, 1\nadd $t2, $t0, $t1"
        ) == 0x80000000

    def test_addiu_negative_immediate(self):
        assert result_of("li $t0, 5\naddiu $t2, $t0, -7") == 0xFFFFFFFE

    def test_slt_signed(self):
        assert result_of("li $t0, -1\nli $t1, 1\nslt $t2, $t0, $t1") == 1
        assert result_of("li $t0, 1\nli $t1, -1\nslt $t2, $t0, $t1") == 0

    def test_sltu_unsigned(self):
        assert result_of("li $t0, -1\nli $t1, 1\nsltu $t2, $t0, $t1") == 0

    def test_slti_sltiu(self):
        assert result_of("li $t0, -5\nslti $t2, $t0, 0") == 1
        # sltiu sign-extends its immediate, then compares unsigned (MIPS):
        # 0xFFFFFFFB < 0xFFFFFFFF.
        assert result_of("li $t0, -5\nsltiu $t2, $t0, 0xFFFF") == 1
        assert result_of("li $t0, 5\nsltiu $t2, $t0, 4") == 0


class TestLogic:
    def test_bitwise_ops(self):
        assert result_of(
            "li $t0, 0xF0F0F0F0\nli $t1, 0x0FF00FF0\nand $t2, $t0, $t1"
        ) == 0x00F000F0
        assert result_of(
            "li $t0, 0xF0F0F0F0\nli $t1, 0x0FF00FF0\nor $t2, $t0, $t1"
        ) == 0xFFF0FFF0
        assert result_of(
            "li $t0, 0xF0F0F0F0\nli $t1, 0x0FF00FF0\nxor $t2, $t0, $t1"
        ) == 0xFF00FF00
        assert result_of(
            "li $t0, 0xF0F0F0F0\nli $t1, 0x0FF00FF0\nnor $t2, $t0, $t1"
        ) == 0x000F000F

    def test_immediates_zero_extend(self):
        assert result_of("li $t0, 0\nori $t2, $t0, 0x8000") == 0x8000
        assert result_of("li $t0, 0xFFFFFFFF\nandi $t2, $t0, 0x8000") == 0x8000
        assert result_of("li $t0, 0xFFFF0000\nxori $t2, $t0, 0xFFFF") == 0xFFFFFFFF

    def test_lui(self):
        assert result_of("lui $t2, 0xABCD") == 0xABCD0000


class TestShifts:
    def test_immediate_shifts(self):
        assert result_of("li $t0, 1\nsll $t2, $t0, 31") == 0x80000000
        assert result_of("li $t0, 0x80000000\nsrl $t2, $t0, 31") == 1
        assert result_of("li $t0, 0x80000000\nsra $t2, $t0, 4") == 0xF8000000

    def test_variable_shifts_mask_amount(self):
        # Shift amount comes from rs[4:0]: 33 & 31 == 1.
        assert result_of(
            "li $t0, 33\nli $t1, 1\nsllv $t2, $t1, $t0"
        ) == 2
        assert result_of(
            "li $t0, 4\nli $t1, 0x80000000\nsrav $t2, $t1, $t0"
        ) == 0xF8000000


class TestMulDiv:
    def test_multu_full_product(self):
        src = harness("""
    li $t0, 0xFFFFFFFF
    li $t1, 0xFFFFFFFF
    multu $t0, $t1
    mfhi $t2
    mflo $t3
    la $t9, out
    sw $t2, 0($t9)
    sw $t3, 4($t9)
        """)
        hi, lo = run_and_read(src, "out")[0], None
        program = assemble(src)
        cpu = PlasmaCPU()
        cpu.load_program(program)
        cpu.run()
        base = program.symbol("out")
        assert cpu.memory.read_word(base) == 0xFFFFFFFE
        assert cpu.memory.read_word(base + 4) == 0x00000001

    def test_mult_signed(self):
        src = harness("""
    li $t0, -3
    li $t1, 7
    mult $t0, $t1
    mflo $t2
    la $t9, out
    sw $t2, 0($t9)
        """)
        assert run_and_read(src, "out")[0] == 0xFFFFFFEB  # -21

    def test_div_quotient_remainder(self):
        src = harness("""
    li $t0, -7
    li $t1, 2
    div $t0, $t1
    mflo $t2
    mfhi $t3
    la $t9, out
    sw $t2, 0($t9)
    sw $t3, 4($t9)
        """)
        program = assemble(src)
        cpu = PlasmaCPU()
        cpu.load_program(program)
        cpu.run()
        base = program.symbol("out")
        assert cpu.memory.read_word(base) == 0xFFFFFFFD  # -3 (trunc to 0)
        assert cpu.memory.read_word(base + 4) == 0xFFFFFFFF  # rem -1

    def test_mthi_mtlo(self):
        src = harness("""
    li $t0, 0x1111
    mthi $t0
    li $t0, 0x2222
    mtlo $t0
    mfhi $t2
    mflo $t3
    la $t9, out
    sw $t2, 0($t9)
    sw $t3, 4($t9)
        """)
        program = assemble(src)
        cpu = PlasmaCPU()
        cpu.load_program(program)
        cpu.run()
        base = program.symbol("out")
        assert cpu.memory.read_word(base) == 0x1111
        assert cpu.memory.read_word(base + 4) == 0x2222

    def test_mflo_interlock_costs_cycles(self):
        with_read = run_program(harness("""
    li $t0, 3
    mult $t0, $t0
    mflo $t2
        """))
        without_read = run_program(harness("""
    li $t0, 3
    mult $t0, $t0
    addu $t2, $0, $0
        """))
        stall = with_read.cycles - without_read.cycles
        assert stall > MULDIV_LATENCY - 5  # nearly the whole latency


class TestMemoryAccess:
    def test_word_roundtrip(self):
        src = harness("""
    la $t9, out
    li $t0, 0xCAFEBABE
    sw $t0, 0($t9)
    lw $t2, 0($t9)
    sw $t2, 4($t9)
        """)
        values = run_and_read(src, "out")
        assert values[0] == 0xCAFEBABE

    def test_byte_sign_extension(self):
        src = harness("""
    la $t9, out
    li $t0, 0x80
    sb $t0, 0($t9)
    lb $t1, 0($t9)
    sw $t1, 4($t9)
    lbu $t2, 0($t9)
    sw $t2, 8($t9)
        """)
        program = assemble(src)
        cpu = PlasmaCPU()
        cpu.load_program(program)
        cpu.run()
        base = program.symbol("out")
        assert cpu.memory.read_word(base + 4) == 0xFFFFFF80
        assert cpu.memory.read_word(base + 8) == 0x80

    def test_half_access_lanes(self):
        src = harness("""
    la $t9, out
    li $t0, 0x8001
    sh $t0, 2($t9)
    lh $t1, 2($t9)
    sw $t1, 4($t9)
    lhu $t2, 2($t9)
    sw $t2, 8($t9)
        """)
        program = assemble(src)
        cpu = PlasmaCPU()
        cpu.load_program(program)
        cpu.run()
        base = program.symbol("out")
        assert cpu.memory.read_word(base) == 0x80010000
        assert cpu.memory.read_word(base + 4) == 0xFFFF8001
        assert cpu.memory.read_word(base + 8) == 0x8001

    def test_negative_offset(self):
        src = harness("""
    la $t9, out
    addiu $t9, $t9, 8
    li $t0, 77
    sw $t0, -8($t9)
        """)
        assert run_and_read(src, "out")[0] == 77

    def test_unaligned_word_access_raises(self):
        src = harness("""
    la $t9, out
    lw $t0, 2($t9)
        """)
        cpu = PlasmaCPU()
        cpu.load_program(assemble(src))
        with pytest.raises(SimulationError):
            cpu.run()


class TestControlFlow:
    def test_delay_slot_executes(self):
        src = harness("""
    la $t9, out
    li $t0, 0
    b skip
    addiu $t0, $t0, 1   # delay slot: must execute
    addiu $t0, $t0, 100 # skipped
skip:
    sw $t0, 0($t9)
        """)
        assert run_and_read(src, "out")[0] == 1

    def test_not_taken_branch_continues(self):
        src = harness("""
    la $t9, out
    li $t0, 1
    beq $t0, $0, nowhere
    nop
    li $t1, 42
    sw $t1, 0($t9)
nowhere:
        """)
        assert run_and_read(src, "out")[0] == 42

    def test_loop_counts(self):
        src = harness("""
    la $t9, out
    li $t0, 5
    li $t1, 0
loop:
    addiu $t1, $t1, 3
    addiu $t0, $t0, -1
    bnez $t0, loop
    nop
    sw $t1, 0($t9)
        """)
        assert run_and_read(src, "out")[0] == 15

    def test_jal_links_pc_plus_8(self):
        src = harness("""
    la $t9, out
    jal sub
    nop
    b done
    nop
sub:
    sw $ra, 0($t9)
    jr $ra
    nop
done:
        """)
        # jal at 0x8 (after the two-word la): link = 0x8 + 8.
        program = assemble(src)
        cpu = PlasmaCPU()
        cpu.load_program(program)
        cpu.run()
        assert cpu.memory.read_word(program.symbol("out")) == 0x10

    def test_jalr_uses_rd(self):
        src = harness("""
    la $t9, out
    la $t8, sub
    jalr $t7, $t8
    nop
    b done
    nop
sub:
    sw $t7, 0($t9)
    jr $t7
    nop
done:
    li $t0, 9
    sw $t0, 4($t9)
        """)
        program = assemble(src)
        cpu = PlasmaCPU()
        cpu.load_program(program)
        cpu.run()
        assert cpu.memory.read_word(program.symbol("out") + 4) == 9

    def test_branch_comparisons(self):
        src = harness("""
    la $t9, out
    li $s0, 0
    li $t0, -5
    bltz $t0, L1
    nop
    b L2
    nop
L1: ori $s0, $s0, 1
L2: li $t0, 0
    bgez $t0, L3
    nop
    b L4
    nop
L3: ori $s0, $s0, 2
L4: li $t0, 0
    blez $t0, L5
    nop
    b L6
    nop
L5: ori $s0, $s0, 4
L6: li $t0, 1
    bgtz $t0, L7
    nop
    b L8
    nop
L7: ori $s0, $s0, 8
L8: sw $s0, 0($t9)
        """)
        assert run_and_read(src, "out")[0] == 0b1111


class TestRegisterZero:
    def test_writes_to_zero_ignored(self):
        assert result_of("li $t0, 7\naddu $0, $t0, $t0\naddu $t2, $0, $0") == 0


class TestCycleModel:
    def test_pipeline_fill_charged(self):
        cpu = run_program(harness("nop"))
        # fill + nop + halting j (its delay slot is never executed).
        assert cpu.cycles == PIPELINE_FILL + 2

    def test_memory_pause_charged(self):
        base = run_program(harness("nop\nnop")).cycles
        with_load = run_program(harness("la $t9, out\nlw $t0, 0($t9)")).cycles
        # la = 2 instructions (vs the 2 nops); lw adds 1 issue cycle + 1
        # memory pause cycle.
        assert with_load == base + 2

    def test_instruction_count(self):
        cpu = run_program(harness("nop\nnop\nnop"))
        assert cpu.instructions == 3 + 1  # + the halting jump


class TestHalt:
    def test_j_self_halts(self):
        cpu = run_program(".text\nhalt: j halt\nnop")
        assert cpu.halted

    def test_b_self_halts(self):
        cpu = run_program(".text\nhalt: b halt\nnop")
        assert cpu.halted

    def test_runaway_raises(self):
        src = """
.text
loop:
    addiu $t0, $t0, 1
    b loop
    nop
"""
        cpu = PlasmaCPU()
        cpu.load_program(assemble(src))
        with pytest.raises(SimulationError):
            cpu.run(max_instructions=500)

    def test_max_cycles_raises(self):
        src = ".text\nloop: b loop2\nnop\nloop2: b loop\nnop"
        cpu = PlasmaCPU()
        cpu.load_program(assemble(src))
        with pytest.raises(SimulationError):
            cpu.run(max_cycles=100)
