"""Integration tests for the fault-grading campaign (fast subset).

The full ten-component campaign is exercised by the benchmarks; here we
grade the cheap components to validate the pipeline end to end, plus the
bookkeeping around it.
"""

import pytest

from repro.core.campaign import execute_self_test, run_campaign
from repro.core.methodology import SelfTestMethodology
from repro.netlist.remap import remap_to_nand

FAST = ["ALU", "BSH", "CTRL", "BMUX"]


@pytest.fixture(scope="module")
def outcome():
    return run_campaign("A", components=FAST)


class TestCampaignPipeline:
    def test_components_graded(self, outcome):
        assert set(outcome.results) == set(FAST)

    def test_functional_components_high_coverage(self, outcome):
        assert outcome.results["ALU"].fault_coverage > 90.0
        assert outcome.results["BSH"].fault_coverage > 88.0

    def test_summary_consistent_with_results(self, outcome):
        for cov in outcome.summary.components:
            result = outcome.results[cov.name]
            assert cov.n_faults == result.n_faults
            assert cov.n_detected == result.n_detected

    def test_table4_shape(self, outcome):
        t4 = outcome.table4()
        assert t4["code_words"] > 0
        assert t4["clock_cycles"] > t4["code_words"]
        assert t4["total_words"] == t4["code_words"] + t4["data_words"]

    def test_table5_rows(self, outcome):
        rows = outcome.table5()
        assert rows[-1]["name"] == "Plasma"
        mofc_sum = sum(r["mofc"] for r in rows[:-1])
        assert mofc_sum == pytest.approx(rows[-1]["mofc"])

    def test_grading_timings_recorded(self, outcome):
        assert set(outcome.grading_seconds) == set(FAST)
        assert all(t >= 0 for t in outcome.grading_seconds.values())


class TestExecuteSelfTest:
    def test_returns_trace_and_memory(self):
        st = SelfTestMethodology().build_program("A")
        result, tracer, memory = execute_self_test(st)
        assert result.halted
        specs = tracer.finalize()
        assert set(specs) == {
            "ALU", "BSH", "CTRL", "BMUX", "RegF", "MulD", "PCL", "PLN",
            "GL", "MCTRL",
        }
        assert memory.read_word(st.response_base) != 0


class TestPhaseProgression:
    def test_phase_b_improves_mctrl(self):
        a = run_campaign("A", components=["MCTRL"])
        ab = run_campaign("AB", components=["MCTRL"])
        assert (
            ab.results["MCTRL"].fault_coverage
            > a.results["MCTRL"].fault_coverage + 5
        )

    def test_phase_c_improves_ctrl(self):
        ab = run_campaign("AB", components=["CTRL"])
        abc = run_campaign("ABC", components=["CTRL"])
        assert (
            abc.results["CTRL"].fault_coverage
            > ab.results["CTRL"].fault_coverage
        )


class TestTechnologyRemap:
    def test_remapped_campaign_similar_coverage(self):
        plain = run_campaign("A", components=["ALU"])
        remapped = run_campaign(
            "A", components=["ALU"], netlist_transform=remap_to_nand
        )
        fc_plain = plain.results["ALU"].fault_coverage
        fc_remap = remapped.results["ALU"].fault_coverage
        # The paper's C3 claim: very similar coverage across libraries.
        assert abs(fc_plain - fc_remap) < 5.0


class TestCollapsedCampaign:
    @pytest.fixture(scope="class")
    def pair(self):
        wanted = ["CTRL", "BMUX"]
        plain = run_campaign("A", components=wanted)
        collapsed = run_campaign("A", components=wanted, collapse=True)
        return plain, collapsed

    def test_tables_bit_identical(self, pair):
        plain, collapsed = pair
        assert collapsed.table5() == plain.table5()
        assert collapsed.table4() == plain.table4()

    def test_detected_sets_identical(self, pair):
        plain, collapsed = pair
        for name, result in plain.results.items():
            assert collapsed.results[name].detected == result.detected

    def test_collapse_accounting_recorded(self, pair):
        plain, collapsed = pair
        for name in plain.results:
            got = collapsed.results[name]
            want = plain.results[name]
            assert got.collapse_hash
            assert not want.collapse_hash
            assert 0 < got.n_simulated < want.n_simulated
            assert got.n_inferred > 0
            assert (
                got.n_simulated + got.n_inferred <= want.n_simulated
            )
