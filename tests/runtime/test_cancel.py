"""Cooperative cancellation and EventLog subscriptions.

The service's DELETE endpoint rides entirely on two runtime hooks —
``RuntimeConfig.cancel`` and ``EventLog.subscribe`` — so their
contracts are pinned here at the runtime level, deterministically
(hanging shards, not real campaigns):

* a fired cancel hook raises :class:`JobCancelled` out of the runner /
  scheduler;
* busy pool workers are actually terminated, not abandoned;
* everything journaled before the cancellation resumes exactly;
* subscribers see every event, are dropped on pickle, and cannot break
  the emitter.
"""

import multiprocessing
import pickle
import time

import pytest

from repro.errors import JobCancelled
from repro.runtime import RetryPolicy, RuntimeConfig
from repro.runtime.events import EventLog
from repro.runtime.pool import ShardScheduler
from repro.runtime.runner import JobRunner
from repro.runtime.sharding import ShardTask


def _config(tmp_path=None, resume=False, cancel=None, jobs=2):
    return RuntimeConfig(
        retry=RetryPolicy(max_attempts=2, backoff_seconds=0),
        checkpoint_dir=tmp_path,
        resume=resume,
        isolate=True,
        jobs=jobs,
        cancel=cancel,
        sleep=lambda s: None,
    )


# Module-level: shipped to workers by pickle reference.

def _fast(x):
    return x * x


def _hang(_x):
    time.sleep(120)


class TestSchedulerCancel:
    def test_cancel_mid_run_stops_workers_and_keeps_journal(self, tmp_path):
        # t00 completes and is journaled; the hook fires as soon as the
        # journal exists, while the remaining shards hang in workers.
        journal = tmp_path / "checkpoint.jsonl"
        tasks = [ShardTask(key="t00", fn=_fast, args=(3,), size=1)] + [
            ShardTask(key=f"t{i:02d}", fn=_hang, args=(i,), size=1)
            for i in range(1, 4)
        ]
        scheduler = ShardScheduler(
            _config(tmp_path, cancel=journal.exists, jobs=2)
        )
        started = time.monotonic()
        with pytest.raises(JobCancelled):
            scheduler.run(tasks)
        # Cooperative, but prompt: the armed hook caps scheduler waits
        # at CANCEL_POLL_SECONDS, so nothing waited for the 120s hangs.
        assert time.monotonic() - started < 30
        # Workers actually stopped — no pool children left behind.
        assert multiprocessing.active_children() == []
        # The completed shard was journaled before the cancellation and
        # is replayed (not re-run) by a resumed scheduler.
        assert journal.exists()
        resumed = ShardScheduler(_config(tmp_path, resume=True, jobs=2))
        outcomes = resumed.run(
            [ShardTask(key=f"t{i:02d}", fn=_fast, args=(i,), size=1)
             for i in range(4)]
        )
        assert outcomes["t00"].status == "cached"
        assert all(outcomes[f"t{i:02d}"].status == "ok" for i in (1, 2, 3))

    def test_cancelled_shards_emit_events(self, tmp_path):
        journal = tmp_path / "checkpoint.jsonl"
        tasks = [ShardTask(key="t00", fn=_fast, args=(2,), size=1)] + [
            ShardTask(key=f"t{i:02d}", fn=_hang, args=(i,), size=1)
            for i in range(1, 4)
        ]
        scheduler = ShardScheduler(
            _config(tmp_path, cancel=journal.exists, jobs=2)
        )
        with pytest.raises(JobCancelled):
            scheduler.run(tasks)
        kinds = scheduler.events.kinds()
        assert "cancelled" in kinds
        # Busy and never-started shards are both accounted for.
        details = [e.detail for e in scheduler.events.events
                   if e.kind == "cancelled"]
        assert any("mid-run" in d for d in details)
        assert any("never started" in d for d in details)

    def test_no_cancel_hook_runs_to_completion(self, tmp_path):
        scheduler = ShardScheduler(_config(tmp_path, jobs=2))
        outcomes = scheduler.run(
            [ShardTask(key=f"t{i}", fn=_fast, args=(i,), size=1)
             for i in range(4)]
        )
        assert all(o.status == "ok" for o in outcomes.values())


class TestRunnerCancel:
    def test_cancel_before_start(self, tmp_path):
        runner = JobRunner(_config(tmp_path, cancel=lambda: True, jobs=1))
        with pytest.raises(JobCancelled):
            runner.run("job", _fast, args=(2,))
        assert "cancelled" in runner.events.kinds()

    def test_cancel_between_attempts(self, tmp_path):
        # Arm the hook from the backoff sleep after the first (failing)
        # attempt: the runner must cancel instead of retrying.
        fired = []

        def flaky(_x):
            raise ValueError("attempt fails")

        config = RuntimeConfig(
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.01),
            checkpoint_dir=tmp_path,
            isolate=True,
            cancel=lambda: bool(fired),
            sleep=fired.append,
        )
        runner = JobRunner(config)
        with pytest.raises(JobCancelled):
            runner.run("job", flaky, args=(1,))
        kinds = runner.events.kinds()
        assert "failure" in kinds and "cancelled" in kinds


class TestConfigPickling:
    def test_cancel_and_events_dropped_on_pickle(self):
        config = RuntimeConfig(
            cancel=lambda: True, events=EventLog(), isolate=True
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone.cancel is None
        assert clone.events is None
        assert clone.cancelled() is False
        assert config.cancelled() is True


class TestEventLogSubscribe:
    def test_subscriber_sees_events(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("j", "start")
        log.emit("j", "success")
        assert [e.kind for e in seen] == ["start", "success"]

    def test_unsubscribe(self):
        log = EventLog()
        seen = []
        callback = log.subscribe(seen.append)
        log.emit("j", "start")
        log.unsubscribe(callback)
        log.emit("j", "success")
        assert [e.kind for e in seen] == ["start"]
        # Unsubscribing twice is harmless.
        log.unsubscribe(callback)

    def test_broken_subscriber_cannot_fail_emit(self):
        log = EventLog()

        def broken(_event):
            raise RuntimeError("subscriber bug")

        log.subscribe(broken)
        event = log.emit("j", "start")
        assert event.kind == "start"
        assert log.kinds() == ["start"]

    def test_subscribers_dropped_on_pickle(self):
        log = EventLog()
        log.subscribe(lambda e: None)
        log.emit("j", "start")
        clone = pickle.loads(pickle.dumps(log))
        assert clone.kinds() == ["start"]
        # The clone has a fresh, working subscription mechanism.
        seen = []
        clone.subscribe(seen.append)
        clone.emit("j", "success")
        assert [e.kind for e in seen] == ["success"]

    def test_service_lifecycle_kinds_are_valid(self):
        log = EventLog()
        for kind in ("queued", "running", "finished", "cancelled"):
            log.emit("j", kind)
        assert log.summary()["queued"] == 1
