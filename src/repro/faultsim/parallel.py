"""Parallel-fault simulation: many faults per pass in bit lanes.

The differential engine (:mod:`repro.faultsim.differential`) simulates one
fault at a time against stored good values.  This module implements the
classic alternative: pack a *batch* of faults into the lanes of a single
sequential simulation — lane 0 carries the good machine, lane *i* carries
fault *i* — and evaluate the whole batch with one pass per cycle.

Fault injection is a per-net mask pair applied after the driving value is
computed (``value & ~clear | set``), a per-pin override for branch faults,
and a D-pin override at latch time.  Detection compares each lane against
lane 0 at the observed outputs.

The two engines implement identical detection semantics; the test suite
cross-checks their verdicts fault by fault, and a benchmark compares their
throughput (the differential engine wins when most faults drop quickly;
the batch engine wins on dense long traces).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import FaultSimError
from repro.faultsim.faults import Fault, FaultKind, FaultList, build_fault_list
from repro.faultsim.harness import CampaignResult
from repro.faultsim.differential import Detection
from repro.netlist.gates import GateType
from repro.netlist.levelize import levelize
from repro.netlist.netlist import CONST1, Netlist, PortDirection


class ParallelFaultSimulator:
    """Batched fault simulation over lane-packed sequential runs."""

    def __init__(self, netlist: Netlist, batch_size: int = 255):
        if batch_size < 1:
            raise FaultSimError("batch size must be positive")
        self.netlist = netlist
        self.batch_size = batch_size
        self.order = levelize(netlist)
        self._input_ports = {
            p.name: p.nets
            for p in netlist.ports.values()
            if p.direction is PortDirection.INPUT
        }
        self._output_ports = {
            p.name: p.nets
            for p in netlist.ports.values()
            if p.direction is PortDirection.OUTPUT
        }

    # ------------------------------------------------------------- batch

    def run_batch(
        self,
        faults: Sequence[Fault],
        cycle_inputs: Sequence[Mapping[str, int]],
        observe: Sequence[Mapping[str, int] | set | frozenset | tuple | list]
        | None = None,
    ) -> list[Detection]:
        """Simulate one batch of faults over a cycle sequence.

        Args:
            faults: up to ``batch_size`` faults; fault ``i`` rides lane
                ``i + 1``.
            cycle_inputs: per cycle, ``{port: value}`` (applied identically
                to every lane).
            observe: per cycle, the observed output port names (None =
                all outputs every cycle).

        Returns:
            One Detection per fault (first detecting cycle recorded).
        """
        if len(faults) > self.batch_size:
            raise FaultSimError(
                f"batch of {len(faults)} faults exceeds batch size "
                f"{self.batch_size}"
            )
        if observe is not None and len(observe) != len(cycle_inputs):
            raise FaultSimError(
                f"observe list must match cycle count "
                f"({len(observe)} != {len(cycle_inputs)})"
            )
        n_lanes = len(faults) + 1
        mask = (1 << n_lanes) - 1
        all_but_good = mask & ~1

        # Injection tables.
        net_set: dict[int, int] = {}
        net_clear: dict[int, int] = {}
        pin_set: dict[tuple[int, int], int] = {}
        pin_clear: dict[tuple[int, int], int] = {}
        dff_set: dict[int, int] = {}
        dff_clear: dict[int, int] = {}
        for i, fault in enumerate(faults):
            lane_bit = 1 << (i + 1)
            if fault.kind is FaultKind.STEM:
                table = net_set if fault.stuck else net_clear
                table[fault.net] = table.get(fault.net, 0) | lane_bit
            elif fault.kind is FaultKind.BRANCH:
                key = (fault.gate, fault.pin)
                table = pin_set if fault.stuck else pin_clear
                table[key] = table.get(key, 0) | lane_bit
            else:  # DFF_D
                table = dff_set if fault.stuck else dff_clear
                table[fault.gate] = table.get(fault.gate, 0) | lane_bit

        pin_gates = {g for g, _ in pin_set} | {g for g, _ in pin_clear}

        dffs = self.netlist.dffs
        state = [mask if d.init else 0 for d in dffs]
        detections: list[Detection | None] = [None] * len(faults)
        remaining = all_but_good

        for t, cycle in enumerate(cycle_inputs):
            values = [0] * self.netlist.n_nets
            values[CONST1] = mask
            for name, nets in self._input_ports.items():
                value = cycle.get(name, 0)
                for j, net in enumerate(nets):
                    bit = (value >> j) & 1
                    values[net] = mask if bit else 0
            for dff, q_word in zip(dffs, state, strict=True):
                values[dff.q] = q_word

            # Inject stem faults on source nets (inputs / DFF outputs).
            if net_set or net_clear:
                for net, bits in net_set.items():
                    values[net] |= bits
                for net, bits in net_clear.items():
                    values[net] &= ~bits

            for gate in self.order:
                ins = gate.inputs
                if gate.index in pin_gates:
                    vals = [values[n] for n in ins]
                    for pin in range(len(ins)):
                        key = (gate.index, pin)
                        if key in pin_set:
                            vals[pin] |= pin_set[key]
                        if key in pin_clear:
                            vals[pin] &= ~pin_clear[key]
                    out = _eval(gate.gtype, vals, mask)
                else:
                    out = _eval_direct(gate.gtype, values, ins, mask)
                net = gate.output
                if net in net_set:
                    out |= net_set[net]
                if net in net_clear:
                    out &= ~net_clear[net]
                values[net] = out

            # Detection: lanes differing from lane 0 at observed outputs.
            if observe is None:
                ports = self._output_ports.keys()
            else:
                ports = observe[t]
            diff_lanes = 0
            for port in ports:
                for net in self._output_ports[port]:
                    v = values[net]
                    good = mask if v & 1 else 0
                    diff_lanes |= (v ^ good) & remaining
                    if diff_lanes == remaining:
                        break
            if diff_lanes:
                for i in range(len(faults)):
                    lane_bit = 1 << (i + 1)
                    if diff_lanes & lane_bit and detections[i] is None:
                        detections[i] = Detection(True, t, lane_bit)
                remaining &= ~diff_lanes
                if not remaining:
                    break

            # Latch next state with D-pin overrides.
            new_state = []
            for idx, dff in enumerate(dffs):
                d_val = values[dff.d]
                if idx in dff_set:
                    d_val |= dff_set[idx]
                if idx in dff_clear:
                    d_val &= ~dff_clear[idx]
                new_state.append(d_val)
            state = new_state

        return [
            d if d is not None else Detection(False) for d in detections
        ]

    # ---------------------------------------------------------- campaign

    def run_campaign(
        self,
        cycle_inputs: Sequence[Mapping[str, int]],
        observe: Sequence[Sequence[str]] | None = None,
        fault_list: FaultList | None = None,
        name: str = "",
    ) -> CampaignResult:
        """Deprecated: call :func:`repro.faultsim.grade` with
        ``engine="batch"`` instead.

        Mirrors :class:`~repro.faultsim.harness.SequentialCampaign` but with
        the batch engine.
        """
        import warnings

        warnings.warn(
            "ParallelFaultSimulator.run_campaign() is deprecated; use "
            'repro.faultsim.grade(..., engine="batch")',
            DeprecationWarning,
            stacklevel=2,
        )
        if not cycle_inputs:
            raise FaultSimError("no cycles to apply")
        if observe is not None and len(observe) != len(cycle_inputs):
            raise FaultSimError("observe list must match cycle count")
        if fault_list is None:
            fault_list = build_fault_list(self.netlist)
        result = CampaignResult(
            name or self.netlist.name, fault_list,
            n_patterns=len(cycle_inputs),
        )
        reps = fault_list.class_representatives()
        for start in range(0, len(reps), self.batch_size):
            chunk = reps[start : start + self.batch_size]
            faults = [fault_list.fault(r) for r in chunk]
            for rep, detection in zip(
                chunk, self.run_batch(faults, cycle_inputs, observe),
                strict=True,
            ):
                result.detections[rep] = detection
                if detection.detected:
                    result.detected.add(rep)
        return result


def _eval_direct(
    gt: GateType, values: list[int], ins: tuple[int, ...], mask: int
) -> int:
    """Evaluate a gate reading straight from the net-value array."""
    if gt is GateType.MUX2:
        a, b, sel = values[ins[0]], values[ins[1]], values[ins[2]]
        return (a & ~sel) | (b & sel)
    if gt is GateType.AND:
        out = values[ins[0]]
        for n in ins[1:]:
            out &= values[n]
        return out
    if gt is GateType.XOR:
        out = values[ins[0]]
        for n in ins[1:]:
            out ^= values[n]
        return out
    if gt is GateType.NOT:
        return mask & ~values[ins[0]]
    if gt is GateType.OR:
        out = values[ins[0]]
        for n in ins[1:]:
            out |= values[n]
        return out
    if gt is GateType.NAND:
        out = values[ins[0]]
        for n in ins[1:]:
            out &= values[n]
        return mask & ~out
    if gt is GateType.NOR:
        out = values[ins[0]]
        for n in ins[1:]:
            out |= values[n]
        return mask & ~out
    if gt is GateType.XNOR:
        out = values[ins[0]]
        for n in ins[1:]:
            out ^= values[n]
        return mask & ~out
    if gt is GateType.BUF:
        return values[ins[0]]
    if gt is GateType.AOI21:
        return mask & ~((values[ins[0]] & values[ins[1]]) | values[ins[2]])
    raise FaultSimError(f"unhandled gate type {gt}")  # pragma: no cover


def _eval(gt: GateType, vals: list[int], mask: int) -> int:
    """Evaluate a gate from pre-fetched (possibly overridden) inputs."""
    if gt is GateType.MUX2:
        a, b, sel = vals
        return (a & ~sel) | (b & sel)
    if gt is GateType.AND:
        out = vals[0]
        for v in vals[1:]:
            out &= v
        return out
    if gt is GateType.XOR:
        out = vals[0]
        for v in vals[1:]:
            out ^= v
        return out
    if gt is GateType.NOT:
        return mask & ~vals[0]
    if gt is GateType.OR:
        out = vals[0]
        for v in vals[1:]:
            out |= v
        return out
    if gt is GateType.NAND:
        out = vals[0]
        for v in vals[1:]:
            out &= v
        return mask & ~out
    if gt is GateType.NOR:
        out = vals[0]
        for v in vals[1:]:
            out |= v
        return mask & ~out
    if gt is GateType.XNOR:
        out = vals[0]
        for v in vals[1:]:
            out ^= v
        return mask & ~out
    if gt is GateType.BUF:
        return vals[0]
    if gt is GateType.AOI21:
        return mask & ~((vals[0] & vals[1]) | vals[2])
    raise FaultSimError(f"unhandled gate type {gt}")  # pragma: no cover
