"""The campaign service, end to end over real HTTP.

One grading test drives the full stack (submit -> SSE -> result) and
pins the coverage JSON to a direct in-process ``grade_program`` run —
the service must be a transport, not a different computation.  Every
other test uses ``workers=0`` so jobs stay deterministically queued
while admission control, idempotent attach and queued-job cancellation
are exercised without grading anything.
"""

import asyncio
import contextlib
import json
import threading
import time
import urllib.error
import urllib.request

from repro.core.campaign import grade_program
from repro.core.methodology import SelfTestMethodology
from repro.reporting.tables import coverage_tables_json
from repro.service import ServiceConfig, ServiceServer
from repro.service.schemas import CampaignRequest


@contextlib.contextmanager
def running_server(**kwargs):
    """A live ``ServiceServer`` on an ephemeral port, loop in a thread."""
    config = ServiceConfig(port=0, **kwargs)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    server = ServiceServer(config)
    port = asyncio.run_coroutine_threadsafe(server.start(), loop).result(30)
    try:
        yield port
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


def request(port, method, path, body=None):
    """One HTTP round trip; returns (status, headers, parsed JSON)."""
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=None if body is None else json.dumps(body).encode(),
        method=method,
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def wait_terminal(port, job_id, timeout=300):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, _, payload = request(port, "GET", f"/v1/campaigns/{job_id}")
        if payload["state"] in ("done", "failed", "cancelled"):
            return payload
        time.sleep(0.2)
    raise AssertionError(f"campaign {job_id} never reached a terminal state")


def read_sse(port, job_id):
    """The full stream of a *terminal* job: (events by name, raw text)."""
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/v1/campaigns/{job_id}/events", timeout=60
    ) as resp:
        assert resp.headers["Content-Type"] == "text/event-stream"
        text = resp.read().decode()
    events = []
    name = ""
    for line in text.split("\n"):
        if line.startswith("event: "):
            name = line[len("event: "):]
        elif line.startswith("data: "):
            events.append((name, json.loads(line[len("data: "):])))
    return events, text


class TestGradingEndToEnd:
    def test_campaign_matches_direct_grading(self):
        with running_server(workers=1) as port:
            status, _, payload = request(
                port, "POST", "/v1/campaigns",
                {"phases": "A", "components": ["GL"]},
            )
            assert status == 202
            assert payload["state"] == "queued"
            assert payload["attached_to_existing"] is False
            job_id = payload["id"]

            final = wait_terminal(port, job_id)
            assert final["state"] == "done", final.get("error")
            assert final["n_simulated"] > 0
            assert final["cache_hit"] is False

            # The transport must not change the verdicts: identical
            # coverage JSON to an in-process run of the same campaign.
            outcome = grade_program(
                SelfTestMethodology().build_program("A"),
                components=["GL"],
                options=CampaignRequest().to_options(),
            )
            expected = coverage_tables_json({"A": outcome})
            assert (
                json.dumps(final["coverage"], sort_keys=True)
                == json.dumps(expected, sort_keys=True)
            )

            # The SSE stream replays the whole job history and ends
            # with the terminal frame.
            events, text = read_sse(port, job_id)
            kinds = [name for name, _ in events]
            for kind in ("queued", "running", "finished"):
                assert kind in kinds
            assert kinds[-1] == "end"
            assert events[-1][1] == {"id": job_id, "state": "done"}
            assert "id: 1\n" in text  # replay ids start at 1

            # Resubmitting the identical campaign replays the finished
            # job: same id, HTTP 200, result included.
            status, _, replay = request(
                port, "POST", "/v1/campaigns",
                {"phases": "A", "components": ["GL"]},
            )
            assert status == 200
            assert replay["attached_to_existing"] is True
            assert replay["id"] == job_id
            assert replay["state"] == "done"
            assert replay["coverage"] == final["coverage"]

            # Stats saw exactly one submission and one attach.
            _, _, stats = request(port, "GET", "/v1/stats")
            assert stats["jobs"]["submitted"] == 1
            assert stats["jobs"]["attached"] == 1
            assert stats["jobs"]["done"] == 1


class TestAdmissionControl:
    def test_queue_full_gets_429_with_retry_after(self):
        with running_server(workers=0, queue_limit=1, retry_after=7) as port:
            status, _, _ = request(
                port, "POST", "/v1/campaigns", {"components": ["GL"]}
            )
            assert status == 202
            status, headers, payload = request(
                port, "POST", "/v1/campaigns", {"components": ["PLN"]}
            )
            assert status == 429
            assert headers["Retry-After"] == "7"
            assert "queue" in payload["error"]
            _, _, stats = request(port, "GET", "/v1/stats")
            assert stats["jobs"]["rejected"] == 1
            assert stats["queue_depth"] == 1

    def test_tenant_quota(self):
        with running_server(
            workers=0, queue_limit=10, tenant_quota=1
        ) as port:
            body = {"components": ["GL"], "tenant": "alice"}
            assert request(port, "POST", "/v1/campaigns", body)[0] == 202
            status, _, payload = request(
                port, "POST", "/v1/campaigns",
                {"components": ["PLN"], "tenant": "alice"},
            )
            assert status == 429
            assert "'alice'" in payload["error"]
            # Another tenant still gets in.
            status, _, _ = request(
                port, "POST", "/v1/campaigns",
                {"components": ["PLN"], "tenant": "bob"},
            )
            assert status == 202

    def test_attach_bypasses_quota(self):
        # An idempotent attach creates no new work, so it is admitted
        # even when the tenant is at quota.
        with running_server(workers=0, tenant_quota=1) as port:
            body = {"components": ["GL"], "tenant": "alice"}
            first = request(port, "POST", "/v1/campaigns", body)
            second = request(port, "POST", "/v1/campaigns", body)
            assert first[0] == 202 and second[0] == 200
            assert second[2]["id"] == first[2]["id"]
            assert second[2]["attached"] == 2


class TestCancellation:
    def test_cancel_queued_job_releases_its_key(self):
        with running_server(workers=0) as port:
            _, _, payload = request(
                port, "POST", "/v1/campaigns", {"components": ["GL"]}
            )
            job_id = payload["id"]
            status, _, cancelled = request(
                port, "DELETE", f"/v1/campaigns/{job_id}"
            )
            assert status == 200
            assert cancelled["state"] == "cancelled"
            assert cancelled["error"] == "cancelled while queued"

            events, _ = read_sse(port, job_id)
            kinds = [name for name, _ in events]
            assert kinds.count("cancelled") >= 1
            assert events[-1][1]["state"] == "cancelled"

            # The key was released: the same campaign resubmits as a
            # brand-new job rather than attaching to the cancelled one.
            status, _, fresh = request(
                port, "POST", "/v1/campaigns", {"components": ["GL"]}
            )
            assert status == 202
            assert fresh["id"] != job_id

    def test_cancel_is_idempotent(self):
        with running_server(workers=0) as port:
            _, _, payload = request(
                port, "POST", "/v1/campaigns", {"components": ["GL"]}
            )
            job_id = payload["id"]
            request(port, "DELETE", f"/v1/campaigns/{job_id}")
            status, _, again = request(
                port, "DELETE", f"/v1/campaigns/{job_id}"
            )
            assert status == 200
            assert again["state"] == "cancelled"


class TestFailurePaths:
    def test_invalid_json_body(self):
        with running_server(workers=0) as port:
            req = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/campaigns",
                data=b"{not json", method="POST",
            )
            try:
                urllib.request.urlopen(req, timeout=30)
                raise AssertionError("expected HTTP 400")
            except urllib.error.HTTPError as exc:
                assert exc.code == 400
                payload = json.loads(exc.read())
            assert payload["error"] == "invalid campaign request"
            assert payload["issues"][0]["field"] == "$body"

    def test_structured_validation_diagnostics(self):
        with running_server(workers=0) as port:
            status, _, payload = request(
                port, "POST", "/v1/campaigns",
                {"phases": "Z", "componets": ["GL"], "jobs": 0},
            )
            assert status == 400
            fields = {issue["field"] for issue in payload["issues"]}
            assert fields == {"phases", "componets", "jobs"}

    def test_unknown_campaign_is_404(self):
        with running_server(workers=0) as port:
            for path in ("/v1/campaigns/nope", "/v1/campaigns/nope/events"):
                status, _, payload = request(port, "GET", path)
                assert status == 404
                assert "no campaign" in payload["error"]

    def test_unknown_path_is_404(self):
        with running_server(workers=0) as port:
            assert request(port, "GET", "/v2/healthz")[0] == 404
            assert request(port, "GET", "/v1/nope")[0] == 404

    def test_wrong_method_is_405(self):
        with running_server(workers=0) as port:
            assert request(port, "GET", "/v1/campaigns")[0] == 405
            _, _, payload = request(
                port, "POST", "/v1/campaigns", {"components": ["GL"]}
            )
            assert request(
                port, "PUT", f"/v1/campaigns/{payload['id']}", {}
            )[0] == 405

    def test_healthz(self):
        with running_server(workers=0) as port:
            status, _, payload = request(port, "GET", "/v1/healthz")
            assert status == 200
            assert payload == {"status": "ok"}

    def test_stats_shape(self, tmp_path):
        with running_server(workers=0, cache_dir=tmp_path) as port:
            _, _, stats = request(port, "GET", "/v1/stats")
            assert stats["queue_depth"] == 0
            assert stats["queue_limit"] == 16
            assert stats["workers"] == 0
            assert stats["store"]["root"] == str(tmp_path)
            assert stats["store"]["hit_rate"] == 0.0
