"""Per-fault event-driven differential fault simulation.

Given the recorded good-machine trajectory (:class:`GoodTrace`), each fault
is simulated by propagating only the *differences* it causes: the fault site
is forced, reader gates are re-evaluated in level order, and propagation
stops as soon as the difference front dies out or reaches an observed
output.  Most faults are either detected within a few events (and dropped)
or never excite any activity, so the cost per fault is far below a full
re-simulation.

Lanes are inherited from the good trace: with a pattern-parallel trace every
fault is graded against all patterns at once; with a single-lane sequential
trace the events walk the traced cycles.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.faultsim.faults import Fault, FaultKind
from repro.faultsim.simulator import GoodTrace, LogicSimulator
from repro.netlist.gates import GateType
from repro.netlist.netlist import Gate, Netlist, PortDirection


@dataclass(frozen=True)
class Detection:
    """Outcome of simulating one fault.

    Attributes:
        detected: True if any observed output differed in any lane.
        cycle: first detecting cycle index (None if undetected).
        lanes: lane word of the detecting lanes at that cycle (0 if none).
        excited: True if the stuck value ever differed from the good value
            at the fault site (a fault that is never excited cannot be
            detected by *any* observability — the stimulus simply never
            drives the site to the opposite value).
    """

    detected: bool
    cycle: int | None = None
    lanes: int = 0
    excited: bool = False


class DifferentialFaultSimulator:
    """Event-driven single-fault propagation against a good trace."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.sim = LogicSimulator(netlist)
        self._gate_level = self.sim.gate_levels
        # net -> tuple of reader gate indices
        readers: dict[int, list[int]] = {}
        for gate in netlist.gates:
            for net in gate.inputs:
                readers.setdefault(net, []).append(gate.index)
        self._readers: dict[int, tuple[int, ...]] = {
            net: tuple(g) for net, g in readers.items()
        }
        # net -> tuple of DFF indices latching it
        dff_readers: dict[int, list[int]] = {}
        for dff in netlist.dffs:
            dff_readers.setdefault(dff.d, []).append(dff.index)
        self._dff_readers: dict[int, tuple[int, ...]] = {
            net: tuple(d) for net, d in dff_readers.items()
        }
        self._gates = netlist.gates
        self._dffs = netlist.dffs
        self._eval_stamp = [0] * len(netlist.gates)
        self._version = 0
        #: All output-port nets (used when observe spec is None).
        self._all_output_nets: tuple[int, ...] = tuple(
            net
            for p in netlist.ports.values()
            if p.direction is PortDirection.OUTPUT
            for net in p.nets
        )

    # ----------------------------------------------------------- helpers

    def observe_nets_for(
        self, observe: Sequence[Mapping[str, int]] | None, n_cycles: int, mask: int
    ) -> list[dict[int, int]] | None:
        """Precompute per-cycle ``{net: observed-lane-mask}`` maps.

        Args:
            observe: per cycle, ``{port name: lane mask}`` of observed
                ports (missing port = unobserved that cycle).  ``None``
                means every output port observed in every lane each cycle.
            n_cycles: trace length (for validation).
            mask: all-lanes mask.

        Returns:
            One dict per cycle, or None to mean "everything, always".
        """
        if observe is None:
            return None
        if len(observe) != n_cycles:
            raise ValueError(
                f"observe has {len(observe)} entries for {n_cycles} cycles"
            )
        per_cycle: list[dict[int, int]] = []
        for entry in observe:
            nets: dict[int, int] = {}
            for port_name, lane_mask in entry.items():
                port = self.netlist.port(port_name)
                m = lane_mask & mask
                if not m:
                    continue
                for net in port.nets:
                    nets[net] = nets.get(net, 0) | m
            per_cycle.append(nets)
        return per_cycle

    # ------------------------------------------------------------- engine

    def simulate_fault(
        self,
        fault: Fault,
        trace: GoodTrace,
        observe_nets: list[dict[int, int]] | None = None,
        stop_at_first: bool = True,
    ) -> Detection:
        """Grade one fault against the recorded good trace.

        Args:
            fault: the stuck-at fault to inject.
            trace: good-machine trajectory from
                :meth:`LogicSimulator.run_sequence(record=True)` /
                :meth:`run_parallel_sessions`.
            observe_nets: per-cycle ``{net: lane mask}`` observability maps
                from :meth:`observe_nets_for` (None = all outputs, always).
            stop_at_first: return at the first detecting cycle.

        Returns:
            Detection record.
        """
        lanes = trace.lanes
        mask = lanes.mask
        forced = mask if fault.stuck else 0
        site = fault.net
        kind = fault.kind
        gates = self._gates
        dffs = self._dffs
        gate_level = self._gate_level
        readers = self._readers
        dff_readers = self._dff_readers
        stem_site = site if kind is FaultKind.STEM else -1

        faulty_q: dict[int, int] = {}
        detected_cycle: int | None = None
        detected_lanes = 0
        excited = False

        for t in range(trace.n_cycles):
            good = trace.values[t]

            # Fast skip: fault currently invisible and no state divergence.
            if not faulty_q and good[site] == forced:
                continue
            excited = True

            self._version += 1
            version = self._version
            stamp = self._eval_stamp
            diff: dict[int, int] = {}
            heap: list[tuple[int, int]] = []

            def schedule_readers(net: int) -> None:
                for g in readers.get(net, ()):
                    heapq.heappush(heap, (gate_level[g], g))

            # Seed: diverged flip-flop state.
            for dff_idx, q_word in faulty_q.items():
                q_net = dffs[dff_idx].q
                if q_word != good[q_net]:
                    diff[q_net] = q_word
                    schedule_readers(q_net)

            # Seed: fault injection.
            if kind is FaultKind.STEM:
                if diff.get(site, good[site]) != forced:
                    diff[site] = forced
                    if forced == good[site]:
                        del diff[site]
                    else:
                        schedule_readers(site)
                elif site in diff:
                    schedule_readers(site)
            elif kind is FaultKind.BRANCH:
                heapq.heappush(heap, (gate_level[fault.gate], fault.gate))
            # DFF_D faults act at latch time only.

            # Level-ordered propagation; each gate evaluated once per cycle.
            while heap:
                _, g_idx = heapq.heappop(heap)
                if stamp[g_idx] == version:
                    continue
                stamp[g_idx] = version
                gate = gates[g_idx]
                out_net = gate.output

                if out_net == stem_site:
                    out = forced
                else:
                    out = self._eval_faulty(gate, diff, good, mask, fault)

                old = diff.get(out_net, good[out_net])
                if out != old:
                    if out == good[out_net]:
                        del diff[out_net]
                    else:
                        diff[out_net] = out
                    schedule_readers(out_net)

            # Detection check at observed outputs.
            if diff:
                if observe_nets is None:
                    for net in self._all_output_nets:
                        d = diff.get(net)
                        if d is not None:
                            bad = (d ^ good[net]) & mask
                            if bad:
                                detected_lanes |= bad
                                detected_cycle = t
                else:
                    obs = observe_nets[t]
                    if obs:
                        if len(diff) < len(obs):
                            items = (
                                (net, obs.get(net, 0)) for net in diff
                            )
                        else:
                            items = ((net, m) for net, m in obs.items())
                        for net, m in items:
                            if not m:
                                continue
                            d = diff.get(net)
                            if d is not None:
                                bad = (d ^ good[net]) & m
                                if bad:
                                    detected_lanes |= bad
                                    detected_cycle = t
                if detected_cycle is not None and stop_at_first:
                    return Detection(
                        True, detected_cycle, detected_lanes, excited=True
                    )

            # Latch faulty next state.
            new_faulty_q: dict[int, int] = {}
            good_next = trace.states[t + 1]
            if diff:
                for net in diff:
                    for dff_idx in dff_readers.get(net, ()):
                        d_val = diff[net]
                        if d_val != good_next.q[dff_idx]:
                            new_faulty_q[dff_idx] = d_val
            if kind is FaultKind.DFF_D:
                # The D-pin force wins over whatever the net carries.
                if forced != good_next.q[fault.gate]:
                    new_faulty_q[fault.gate] = forced
                else:
                    new_faulty_q.pop(fault.gate, None)
            faulty_q = new_faulty_q

        if detected_cycle is not None:
            return Detection(True, detected_cycle, detected_lanes,
                             excited=True)
        return Detection(False, excited=excited)

    def _eval_faulty(
        self,
        gate: Gate,
        diff: dict[int, int],
        good: list[int],
        mask: int,
        fault: Fault,
    ) -> int:
        """Evaluate one gate under the current difference front."""
        ins = gate.inputs
        vals = [diff.get(n, good[n]) for n in ins]
        if (
            fault.kind is FaultKind.BRANCH
            and fault.gate == gate.index
        ):
            vals[fault.pin] = mask if fault.stuck else 0
        gt = gate.gtype
        if gt is GateType.MUX2:
            a, b, sel = vals
            return ((a & ~sel) | (b & sel)) & mask
        if gt is GateType.AND:
            out = vals[0]
            for v in vals[1:]:
                out &= v
            return out & mask
        if gt is GateType.XOR:
            out = vals[0]
            for v in vals[1:]:
                out ^= v
            return out & mask
        if gt is GateType.NOT:
            return mask & ~vals[0]
        if gt is GateType.OR:
            out = vals[0]
            for v in vals[1:]:
                out |= v
            return out & mask
        if gt is GateType.NAND:
            out = vals[0]
            for v in vals[1:]:
                out &= v
            return mask & ~out
        if gt is GateType.NOR:
            out = vals[0]
            for v in vals[1:]:
                out |= v
            return mask & ~out
        if gt is GateType.XNOR:
            out = vals[0]
            for v in vals[1:]:
                out ^= v
            return mask & ~out
        if gt is GateType.BUF:
            return vals[0] & mask
        if gt is GateType.AOI21:
            return mask & ~((vals[0] & vals[1]) | vals[2])
        raise ValueError(f"unhandled gate type {gt}")  # pragma: no cover
