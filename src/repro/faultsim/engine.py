"""Fault-simulation engines behind one facade: :func:`grade`.

Three interchangeable engines grade a fault universe against a stimulus:

* ``differential`` — per-fault event-driven difference propagation against
  the recorded good trace (:mod:`repro.faultsim.differential`).  Excels
  when most faults drop quickly or never excite (sequential traces,
  shallow circuits).
* ``batch`` — the lane-parallel interpreter
  (:mod:`repro.faultsim.parallel`): a batch of faults rides the bit lanes
  of one full-circuit walk.  The slow-but-simple cross-check engine.
* ``compiled`` — lowers the netlist once to generated Python
  (:mod:`repro.faultsim.lowering`) and grades faults against the cached
  good trace with pattern-parallel single-fault propagation
  (combinational) or batched lanes with fault dropping and lane
  repacking (sequential).  The fast engine for deep combinational cones.

All engines implement the :class:`FaultSimEngine` protocol and are
registered by name; ``engine="auto"`` picks per netlist (the compiled
engine wins on deep combinational circuits; the differential engine wins
on sequential and very shallow ones, where per-fault early exits beat
batch-wide evaluation).

Detection verdicts — the ``detected`` flag, the ``excited`` flag and (for
sequential stimulus) the first detecting cycle — are engine-invariant and
cross-checked by the equivalence test-suite.  ``Detection.lanes`` is a
*partial witness* (at least one detecting lane), not an exhaustive lane
set: engines that short-circuit or drop faults may report fewer lanes.

Structural collapsing (``grade(collapse=...)``) adds one caveat: a
dominator verdict inferred from a detected child reuses the child's
detecting cycle, which is an *upper bound* on the dominator's own first
detecting cycle (the dominator machine provably differs at that cycle,
but may already differ earlier).  Combinational detections always report
cycle 0, so the bound is exact there; sequential campaigns must treat
the cycle of an inferred verdict like ``lanes`` — a valid witness, not a
minimum.  Detected flags, coverage and excitation stay exact either way
(DESIGN.md §13).
"""

from __future__ import annotations

import dataclasses
import warnings
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import TYPE_CHECKING, Protocol

from repro.errors import FaultSimError
from repro.faultsim.differential import Detection, DifferentialFaultSimulator
from repro.faultsim.faults import Fault, FaultKind, FaultList, build_fault_list
from repro.faultsim.harness import CampaignResult
from repro.faultsim.lowering import cached_compile_comb, cached_compile_seq
from repro.faultsim.observe import ObservePlan, ObserveSpec
from repro.faultsim.options import (
    GradeOptions,
    resolve_prune_mode,
)
from repro.faultsim.parallel import ParallelFaultSimulator, _eval
from repro.faultsim.simulator import GoodTrace
from repro.faultsim.store import (
    result_from_payload,
    verdict_key_for,
    verdicts_payload,
)
from repro.faultsim.trace_cache import good_trace_for, set_active_store
from repro.netlist.levelize import depth
from repro.netlist.netlist import CONST1, DFF, Gate, Netlist, PortDirection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see grade())
    from repro.analysis.collapse import CollapseMap

__all__ = [
    "AUTO_MIN_DEPTH",
    "BatchEngine",
    "CompiledEngine",
    "DifferentialEngine",
    "FaultSimEngine",
    "GradeOptions",
    "default_engine_name",
    "engine_names",
    "get_engine",
    "grade",
    "prune_sets",
    "register_engine",
    "resolve_prune_mode",
]

Stimulus = Sequence[Mapping[str, int]]

#: Prefetched per-fault record of the combinational chunk loop:
#: (rep, stuck, site, start, site_mask, reader, gate, pin).
_CombEntry = tuple[int, int, int, int, int, bool, Gate | None, int]


class FaultSimEngine(Protocol):
    """What every registered engine provides."""

    name: str

    def grade(
        self,
        netlist: Netlist,
        stimulus: Stimulus,
        fault_list: FaultList,
        plan: ObservePlan,
        *,
        name: str = "",
        skip: frozenset[int] = frozenset(),
        only: Sequence[int] | None = None,
    ) -> CampaignResult:
        """Grade every collapsed fault class not in ``skip``.

        ``stimulus`` is a non-empty pattern set (combinational netlist —
        unordered, engines may pack or reorder) or cycle sequence
        (sequential netlist — applied in order from reset).

        ``only`` restricts grading to the listed class representatives
        (a *shard* of the universe); verdicts for graded faults are
        identical to a full-universe run — stuck-at detection is a
        per-fault property of the good trace, so sharding cannot change
        it (DESIGN.md §11).
        """
        ...  # pragma: no cover - protocol


# ------------------------------------------------------------------ shared


def _graded_reps(
    fault_list: FaultList,
    skip: frozenset[int],
    only: Sequence[int] | None = None,
) -> list[int]:
    reps = fault_list.class_representatives()
    if only is not None:
        wanted = set(only)
        reps = [r for r in reps if r in wanted]
    return [r for r in reps if r not in skip]


def _output_nets(netlist: Netlist) -> tuple[int, ...]:
    return tuple(
        net
        for p in netlist.ports.values()
        if p.direction is PortDirection.OUTPUT
        for net in p.nets
    )


def _excited_packed(fault: Fault, trace: GoodTrace) -> bool:
    forced = trace.lanes.mask if fault.stuck else 0
    return trace.values[0][fault.net] != forced


def _excited_sequence(fault: Fault, trace: GoodTrace) -> bool:
    site, forced = fault.net, fault.stuck
    return any(values[site] != forced for values in trace.values)


def _excited(fault: Fault, trace: GoodTrace, packed: bool) -> bool:
    """Differential-equivalent excitation: did the good machine ever put
    the opposite value on the fault site?  A pure good-trace property, so
    every engine reports the identical flag."""
    if packed:
        return _excited_packed(fault, trace)
    return _excited_sequence(fault, trace)


# ------------------------------------------------------------- differential


class DifferentialEngine:
    """Per-fault event-driven grading (the historical campaign engine)."""

    name = "differential"

    def grade(
        self,
        netlist: Netlist,
        stimulus: Stimulus,
        fault_list: FaultList,
        plan: ObservePlan,
        *,
        name: str = "",
        skip: frozenset[int] = frozenset(),
        only: Sequence[int] | None = None,
    ) -> CampaignResult:
        packed = not netlist.dffs
        trace = good_trace_for(netlist, stimulus, packed=packed)
        sim = DifferentialFaultSimulator(netlist)
        if plan.observes_everything:
            observe_nets = None
        elif packed:
            observe_nets = [plan.packed_net_masks(netlist)]
        else:
            observe_nets = plan.net_masks(netlist, trace.lanes.mask)
        result = CampaignResult(
            name or netlist.name, fault_list,
            n_patterns=len(stimulus), pruned=set(skip),
        )
        for rep in _graded_reps(fault_list, skip, only):
            detection = sim.simulate_fault(
                fault_list.fault(rep), trace, observe_nets
            )
            result.detections[rep] = detection
            if detection.detected:
                result.detected.add(rep)
        return result


# -------------------------------------------------------------------- batch


class BatchEngine:
    """Lane-parallel interpreted grading (cross-check engine).

    Detection comes from :meth:`ParallelFaultSimulator.run_batch` (lane 0
    carries the good machine); the ``excited`` flag is derived afterwards
    from the cached good trace so the verdict record matches the other
    engines field by field.
    """

    name = "batch"

    def __init__(self, batch_size: int = 255):
        self.batch_size = batch_size

    def grade(
        self,
        netlist: Netlist,
        stimulus: Stimulus,
        fault_list: FaultList,
        plan: ObservePlan,
        *,
        name: str = "",
        skip: frozenset[int] = frozenset(),
        only: Sequence[int] | None = None,
    ) -> CampaignResult:
        sim = ParallelFaultSimulator(netlist, batch_size=self.batch_size)
        observe_lists = plan.port_name_lists()
        result = CampaignResult(
            name or netlist.name, fault_list,
            n_patterns=len(stimulus), pruned=set(skip),
        )
        reps = _graded_reps(fault_list, skip, only)
        for start in range(0, len(reps), self.batch_size):
            chunk = reps[start : start + self.batch_size]
            faults = [fault_list.fault(r) for r in chunk]
            for rep, detection in zip(
                chunk, sim.run_batch(faults, stimulus, observe_lists),
                strict=True,
            ):
                result.detections[rep] = detection
                if detection.detected:
                    result.detected.add(rep)
        # Fill the excitation flag from the (cached) good trace; the
        # interpreted batch pass itself never tracks it.
        packed = not netlist.dffs
        trace = good_trace_for(netlist, stimulus, packed=packed)
        for rep, detection in result.detections.items():
            excited = detection.detected or _excited(
                fault_list.fault(rep), trace, packed
            )
            if excited != detection.excited:
                result.detections[rep] = dataclasses.replace(
                    detection, excited=excited
                )
        return result


# ----------------------------------------------------------------- compiled


#: "auto" prefers the compiled engine only on combinational circuits at
#: least this deep: below it (wide, shallow mux trees) recomputing the
#: whole cone per fault loses to the differential engine's early exits.
AUTO_MIN_DEPTH = 6

#: Combinational chunk schedule: a narrow first chunk detects the easy
#: ~90% of faults cheaply (faults drop out of later chunks), then widths
#: grow geometrically so stubborn faults see many patterns per pass.
CHUNK_SCHEDULE = (256, 1024, 4096)


def _chunk_spans(n_lanes: int) -> Iterable[tuple[int, int]]:
    base = 0
    first, second, rest = CHUNK_SCHEDULE
    for width in (first, second):
        if base >= n_lanes:
            return
        width = min(width, n_lanes - base)
        yield base, width
        base += width
    while base < n_lanes:
        width = min(rest, n_lanes - base)
        yield base, width
        base += width


class CompiledEngine:
    """Grading through generated code and the good-trace cache.

    Combinational: pattern-parallel single-fault propagation — the good
    values are mutated in place at the fault site and one generated
    function re-evaluates only levels at or above it, returning the fused
    detection word.  Faults drop out of later (wider) chunks once
    detected.

    Sequential: batches of faults ride bit lanes through per-level
    generated kernels with injection applied between levels; detected
    faults leave the live-lane mask immediately (fault dropping), and the
    batch is repacked onto fewer lanes when occupancy falls below
    ``repack_threshold`` (smaller lane words make every big-int op
    cheaper); an emptied batch exits the cycle walk early.
    """

    name = "compiled"

    def __init__(
        self,
        batch_size: int = 256,
        repack_threshold: float = 0.5,
        min_repack_drop: int = 8,
    ):
        if batch_size < 1:
            raise FaultSimError("batch size must be positive")
        if not 0.0 <= repack_threshold <= 1.0:
            raise FaultSimError("repack threshold must be within [0, 1]")
        self.batch_size = batch_size
        self.repack_threshold = repack_threshold
        self.min_repack_drop = min_repack_drop

    def grade(
        self,
        netlist: Netlist,
        stimulus: Stimulus,
        fault_list: FaultList,
        plan: ObservePlan,
        *,
        name: str = "",
        skip: frozenset[int] = frozenset(),
        only: Sequence[int] | None = None,
    ) -> CampaignResult:
        result = CampaignResult(
            name or netlist.name, fault_list,
            n_patterns=len(stimulus), pruned=set(skip),
        )
        if netlist.dffs:
            self._grade_sequential(
                netlist, stimulus, fault_list, plan, result, skip, only
            )
        else:
            self._grade_combinational(
                netlist, stimulus, fault_list, plan, result, skip, only
            )
        return result

    # ---------------------------------------------------- combinational

    def _grade_combinational(
        self,
        netlist: Netlist,
        patterns: Stimulus,
        fault_list: FaultList,
        plan: ObservePlan,
        result: CampaignResult,
        skip: frozenset[int],
        only: Sequence[int] | None = None,
    ) -> None:
        trace = good_trace_for(netlist, patterns, packed=True)
        good = trace.values[0]
        full_mask = trace.lanes.mask

        obs = plan.packed_net_masks(netlist)
        if obs is None:
            obs = {net: full_mask for net in _output_nets(netlist)}
        prog = cached_compile_comb(netlist, obs)
        fn = prog.fn
        driven_at = prog.driven_at
        gate_level = prog.gate_level
        has_reader = prog.has_reader
        obs_net_masks = prog.obs_net_masks
        gates = netlist.gates
        detections = result.detections
        detected = result.detected

        # Full-width excitation screen: a site the stimulus never drives
        # to the opposite value can never be detected (O(1) per fault).
        # Survivors are prefetched into flat tuples so the chunk loop does
        # no attribute or dict lookups per fault:
        # (rep, stuck, site, start, site_mask, reader, gate, pin).
        pending: list[_CombEntry] = []
        for rep in _graded_reps(fault_list, skip, only):
            fault = fault_list.fault(rep)
            if good[fault.net] == (full_mask if fault.stuck else 0):
                detections[rep] = Detection(False, excited=False)
                continue
            if fault.kind is FaultKind.STEM:
                site = fault.net
                start = driven_at.get(site, 0) + 1
                gate: Gate | None = None
                pin = 0
            else:  # BRANCH (combinational netlists have no DFF_D)
                gate = gates[fault.gate]
                site = gate.output
                start = gate_level[gate.index] + 1
                pin = fault.pin
            pending.append((
                rep, fault.stuck, site, start,
                obs_net_masks.get(site, 0), site in has_reader, gate, pin,
            ))

        for base, width in _chunk_spans(trace.lanes.count):
            if not pending:
                break
            chunk_mask = (1 << width) - 1
            gc = [(word >> base) & chunk_mask for word in good]
            om = tuple((m >> base) & chunk_mask for m in prog.masks)
            still: list[_CombEntry] = []
            for entry in pending:
                rep, stuck, site, start, site_mask, reader, gate, pin = entry
                forced = chunk_mask if stuck else 0
                old = gc[site]
                if gate is None:
                    if old == forced:
                        still.append(entry)
                        continue
                    new = forced
                else:
                    vals = [gc[n] for n in gate.inputs]
                    vals[pin] = forced
                    new = _eval(gate.gtype, vals, chunk_mask)
                    if new == old:
                        still.append(entry)
                        continue
                det = (new ^ old) & (site_mask >> base) & chunk_mask
                if not det and reader:
                    # Direct observation already proves detection when det
                    # is non-zero (lanes are a partial witness), so the
                    # downstream cone only needs evaluating when it is not.
                    gc[site] = new
                    det = fn(gc, chunk_mask, om, start)
                    gc[site] = old
                if det:
                    detections[rep] = Detection(True, 0, det << base,
                                                excited=True)
                    detected.add(rep)
                else:
                    still.append(entry)
            pending = still

        for entry in pending:
            # Survived every chunk despite being excited somewhere.
            detections[entry[0]] = Detection(False, excited=True)

    # -------------------------------------------------------- sequential

    def _grade_sequential(
        self,
        netlist: Netlist,
        cycles: Stimulus,
        fault_list: FaultList,
        plan: ObservePlan,
        result: CampaignResult,
        skip: frozenset[int],
        only: Sequence[int] | None = None,
    ) -> None:
        trace = good_trace_for(netlist, cycles, packed=False)
        good_values = trace.values
        dffs = netlist.dffs
        n_nets = netlist.n_nets

        all_obs = _output_nets(netlist)
        if plan.observes_everything:
            obs_per_cycle = None
        else:
            obs_per_cycle = [
                tuple(nets)
                for nets in plan.net_masks(netlist, 1)
            ]
        roots = set(all_obs if obs_per_cycle is None else
                    (n for nets in obs_per_cycle for n in nets))
        roots.update(d.d for d in dffs)
        prog = cached_compile_seq(netlist, sorted(roots))
        level_fns = prog.level_fns
        driven_at = prog.driven_at
        gate_level = prog.gate_level
        keep = prog.keep
        max_level = prog.max_level
        gates = netlist.gates

        input_ports = [
            (p.name, p.nets)
            for p in netlist.ports.values()
            if p.direction is PortDirection.INPUT
        ]
        detections = result.detections
        detected = result.detected

        reps = _graded_reps(fault_list, skip, only)
        for start in range(0, len(reps), self.batch_size):
            batch = reps[start : start + self.batch_size]
            self._run_seq_batch(
                batch, fault_list, cycles, good_values, dffs, n_nets,
                input_ports, level_fns, driven_at, gate_level, keep,
                max_level, gates, obs_per_cycle, all_obs,
                detections, detected,
            )
        for rep in reps:
            if rep not in detected:
                excited = _excited_sequence(fault_list.fault(rep), trace)
                detections[rep] = Detection(False, excited=excited)

    def _run_seq_batch(
        self,
        batch: Sequence[int],
        fault_list: FaultList,
        cycles: Stimulus,
        good_values: list[list[int]],
        dffs: Sequence[DFF],
        n_nets: int,
        input_ports: list[tuple[str, tuple[int, ...]]],
        level_fns: Sequence[Callable[[list[int], int], None]],
        driven_at: Mapping[int, int],
        gate_level: Mapping[int, int],
        keep: frozenset[int],
        max_level: int,
        gates: Sequence[Gate],
        obs_per_cycle: list[tuple[int, ...]] | None,
        all_obs: tuple[int, ...],
        detections: dict[int, Detection],
        detected: set[int],
    ) -> None:
        n_lanes = len(batch)
        mask = (1 << n_lanes) - 1
        lane_reps = list(batch)

        # Injection tables, grouped by the level after which they apply.
        net_fix: dict[int, dict[int, list[int]]] = {}  # level -> net -> [set, clear]
        pin_fix: dict[int, dict[int, dict[int, list[int]]]] = {}  # level -> gate -> pin -> [s, c]
        dff_fix: dict[int, list[int]] = {}  # dff index -> [set, clear]
        for lane, rep in enumerate(lane_reps):
            fault = fault_list.fault(rep)
            bit = 1 << lane
            slot = 0 if fault.stuck else 1
            if fault.kind is FaultKind.STEM:
                level = driven_at.get(fault.net, 0)
                entry = net_fix.setdefault(level, {}).setdefault(
                    fault.net, [0, 0]
                )
                entry[slot] |= bit
            elif fault.kind is FaultKind.BRANCH:
                if fault.gate not in keep:
                    continue  # unobservable cone: cannot be detected
                level = gate_level[fault.gate]
                entry = (
                    pin_fix.setdefault(level, {})
                    .setdefault(fault.gate, {})
                    .setdefault(fault.pin, [0, 0])
                )
                entry[slot] |= bit
            else:  # DFF_D
                entry = dff_fix.setdefault(fault.gate, [0, 0])
                entry[slot] |= bit

        state = [mask if d.init else 0 for d in dffs]
        live = mask
        alive = n_lanes

        for t, cycle in enumerate(cycles):
            values = [0] * n_nets
            values[CONST1] = mask
            for port_name, nets in input_ports:
                word = cycle.get(port_name, 0)
                for j, net in enumerate(nets):
                    values[net] = mask if (word >> j) & 1 else 0
            for dff, q_word in zip(dffs, state, strict=True):
                values[dff.q] = q_word

            source_fix = net_fix.get(0)
            if source_fix:
                for net, (f_set, f_clear) in source_fix.items():
                    values[net] = (values[net] & ~f_clear) | f_set

            for level in range(1, max_level + 1):
                level_fns[level](values, mask)
                gate_fixes = pin_fix.get(level)
                if gate_fixes:
                    for gate_index, pins in gate_fixes.items():
                        gate = gates[gate_index]
                        vals = [values[n] for n in gate.inputs]
                        for pin, (f_set, f_clear) in pins.items():
                            vals[pin] = (vals[pin] & ~f_clear) | f_set
                        values[gate.output] = _eval(gate.gtype, vals, mask)
                fixes = net_fix.get(level)
                if fixes:
                    for net, (f_set, f_clear) in fixes.items():
                        values[net] = (values[net] & ~f_clear) | f_set

            good = good_values[t]
            obs_nets = all_obs if obs_per_cycle is None else obs_per_cycle[t]
            diff = 0
            for net in obs_nets:
                diff |= (values[net] ^ (mask if good[net] else 0)) & live
                if diff == live:
                    break
            if diff:
                bits = diff
                while bits:
                    bit = bits & -bits
                    bits ^= bit
                    rep = lane_reps[bit.bit_length() - 1]
                    detections[rep] = Detection(True, t, bit, excited=True)
                    detected.add(rep)
                live &= ~diff
                alive = bin(live).count("1")
                if not live:
                    return  # whole batch detected: drop out early

            new_state = [values[d.d] for d in dffs]
            for dff_index, (f_set, f_clear) in dff_fix.items():
                new_state[dff_index] = (
                    (new_state[dff_index] & ~f_clear) | f_set
                )
            state = new_state

            if (
                alive <= n_lanes * self.repack_threshold
                and n_lanes - alive >= self.min_repack_drop
            ):
                survivors = [
                    lane for lane in range(n_lanes) if (live >> lane) & 1
                ]
                repack = _repack_word(survivors)
                state = [repack(w) for w in state]
                for fixes in net_fix.values():
                    for entry in fixes.values():
                        entry[0] = repack(entry[0])
                        entry[1] = repack(entry[1])
                for gate_fixes in pin_fix.values():
                    for pins in gate_fixes.values():
                        for entry in pins.values():
                            entry[0] = repack(entry[0])
                            entry[1] = repack(entry[1])
                for entry in dff_fix.values():
                    entry[0] = repack(entry[0])
                    entry[1] = repack(entry[1])
                lane_reps = [lane_reps[lane] for lane in survivors]
                n_lanes = len(survivors)
                mask = (1 << n_lanes) - 1
                live = mask
                alive = n_lanes


def _repack_word(survivors: list[int]) -> Callable[[int], int]:
    """Compaction closure: move surviving lanes down to a dense prefix."""

    def repack(word: int) -> int:
        out = 0
        for new_lane, old_lane in enumerate(survivors):
            out |= ((word >> old_lane) & 1) << new_lane
        return out

    return repack


# ------------------------------------------------------------ prune modes
#
# ``resolve_prune_mode`` moved to :mod:`repro.faultsim.options` (the
# options object validates prune modes at construction); it is re-exported
# here for existing importers.


def prune_sets(
    netlist: Netlist, fault_list: FaultList, mode: str
) -> tuple[frozenset[int], frozenset[int]]:
    """The ``(skip, proven)`` sets for a normalised prune mode.

    ``skip`` is what the engines do not simulate (the SCOAP structural
    screen); ``proven`` is the SAT-certified-redundant subset excluded
    from coverage denominators (empty unless ``mode == "proven"``).
    """
    if not mode:
        return frozenset(), frozenset()
    # Local imports: repro.analysis.scoap imports this package's fault
    # model and repro.formal sits above both, so the dependencies must
    # stay one-way at load time.
    from repro.analysis.scoap import compute_scoap, untestable_fault_classes

    analysis = compute_scoap(netlist)
    skip = frozenset(untestable_fault_classes(fault_list, analysis))
    if mode != "proven":
        return skip, frozenset()
    from repro.formal.redundancy import prove_untestable

    screen = prove_untestable(
        netlist, fault_list, candidates=skip, analysis=analysis
    )
    return skip, screen.proven


# ----------------------------------------------------------------- registry

_REGISTRY: dict[str, Callable[[], FaultSimEngine]] = {}


def register_engine(name: str, factory: Callable[[], FaultSimEngine]) -> None:
    """Register an engine class under ``name`` (instantiated per grade)."""
    _REGISTRY[name] = factory


def engine_names() -> tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_REGISTRY)


def get_engine(name: str) -> FaultSimEngine:
    """Instantiate the engine registered under ``name``."""
    factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(sorted({*_REGISTRY, "auto"}))
        raise FaultSimError(f"unknown engine {name!r} (choose from {known})")
    return factory()


def _packed_factory() -> FaultSimEngine:
    # Local import: the packed engine reuses this module's helpers, so
    # it can only load once the module body has finished executing.
    from repro.faultsim.packed import PackedEngine

    return PackedEngine()


register_engine("differential", DifferentialEngine)
register_engine("batch", BatchEngine)
register_engine("compiled", CompiledEngine)
register_engine("packed", _packed_factory)


def default_engine_name(netlist: Netlist) -> str:
    """The engine ``"auto"`` resolves to for one netlist.

    Sequential circuits and very shallow combinational ones go to the
    differential engine (per-fault early exits dominate); deep
    combinational cones go to the compiled engine.
    """
    if netlist.dffs or depth(netlist) < AUTO_MIN_DEPTH:
        return "differential"
    return "compiled"


# --------------------------------------------------------------- collapsing


def _grade_collapsed(
    selected: FaultSimEngine,
    netlist: Netlist,
    stimulus: Stimulus,
    fault_list: FaultList,
    plan: ObservePlan,
    cmap: CollapseMap,
    *,
    name: str = "",
    skip: frozenset[int] = frozenset(),
    supers: Sequence[int] | None = None,
    restrict: frozenset[int] | None = None,
) -> CampaignResult:
    """Grade super-class representatives only, then expand verdicts.

    Two engine passes at most:

    1. every non-dominator super-class simulates its *sim unit* — the
       first canonical-order member not in ``skip`` (a per-super choice,
       independent of sharding, so partitioned runs agree);
    2. dominators are walked children-before-parents: a detected child
       lets the dominator *infer* a detection (same cycle/lanes witness,
       see the module docstring caveat); dominators whose children are
       all undetected — or graded elsewhere (cross-shard) — fall into
       one second engine pass.

    Every engine verdict is then copied onto the super's members:
    detected verdicts verbatim (equivalent machines differ identically),
    undetected ones with the member's own good-trace excitation flag so
    the record is field-for-field what an uncollapsed run reports.

    ``supers`` restricts grading to the listed super-class keys (a shard
    of ``cmap.simulation_order()``); ``restrict`` additionally limits
    *expanded* verdicts to the listed class representatives (the
    ``grade(subset=...)`` contract).
    """
    ordered = list(supers) if supers is not None else cmap.simulation_order()
    unit_of: dict[int, int] = {}
    for s in ordered:
        for member in cmap.members(s):
            if member not in skip:
                unit_of[s] = member
                break
    graded = [s for s in ordered if s in unit_of]

    verdicts: dict[int, Detection] = {}
    n_simulated = 0

    def simulate(batch: list[int]) -> None:
        nonlocal n_simulated
        if not batch:
            return
        units = [unit_of[s] for s in batch]
        partial = selected.grade(
            netlist, stimulus, fault_list, plan,
            name=name or netlist.name, skip=skip, only=units,
        )
        for s, unit in zip(batch, units, strict=True):
            verdicts[s] = partial.detections[unit]
        n_simulated += len(units)

    simulate([s for s in graded if not cmap.is_dominator(s)])

    n_inferred = 0
    pending: list[int] = []
    graded_set = set(graded)
    for dom in cmap.dominator_order():
        if dom not in graded_set:
            continue
        inferred = None
        for child in cmap.children[dom]:
            child_verdict = verdicts.get(child)
            if child_verdict is not None and child_verdict.detected:
                inferred = Detection(
                    True, child_verdict.cycle, child_verdict.lanes,
                    excited=True,
                )
                break
        if inferred is None:
            # All children undetected, skipped, or graded in another
            # shard: simulate the dominator itself (exact, conservative).
            pending.append(dom)
        else:
            verdicts[dom] = inferred
            n_inferred += 1
    simulate(pending)

    result = CampaignResult(
        name or netlist.name, fault_list,
        n_patterns=len(stimulus), pruned=set(skip),
    )
    packed = not netlist.dffs
    trace = good_trace_for(netlist, stimulus, packed=packed)
    for s in graded:
        verdict = verdicts[s]
        unit = unit_of[s]
        for member in cmap.members(s):
            if member in skip:
                continue
            if restrict is not None and member not in restrict:
                continue
            if verdict.detected or member == unit:
                result.detections[member] = verdict
            else:
                result.detections[member] = Detection(
                    False,
                    excited=_excited(fault_list.fault(member), trace, packed),
                )
            if verdict.detected:
                result.detected.add(member)
    result.n_simulated = n_simulated
    result.n_inferred = n_inferred
    result.collapse_hash = cmap.collapse_hash
    return result


# ------------------------------------------------------------------- facade


_DEPRECATION_MESSAGE = (
    "passing grading options as individual keyword arguments to grade() "
    "is deprecated; build a GradeOptions and call "
    "grade(netlist, stimulus, faults, options) (docs/API.md §6 maps "
    "each keyword to its GradeOptions field)"
)


def _fold_legacy_kwargs(
    options: GradeOptions | None,
    legacy: dict[str, object],
) -> GradeOptions:
    """One options object from either calling convention.

    ``legacy`` holds only the keywords whose value differs from its
    default — a non-empty dict means the caller used the deprecated
    per-keyword surface.
    """
    if options is not None:
        if legacy:
            raise FaultSimError(
                "pass GradeOptions or legacy keyword arguments, not both "
                f"(got options plus {sorted(legacy)})"
            )
        return options
    if legacy:
        warnings.warn(
            _DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=3
        )
    return GradeOptions(**legacy)  # type: ignore[arg-type]


def grade(
    netlist: Netlist,
    stimulus: Stimulus,
    faults: FaultList | None = None,
    options: GradeOptions | None = None,
    *,
    engine: str = "auto",
    observe: ObserveSpec = None,
    runtime: object | None = None,
    name: str = "",
    prune_untestable: bool | str = False,
    subset: Sequence[int] | None = None,
    collapse: bool | CollapseMap = False,
    cache: object | None = None,
    lanes: int | None = None,
) -> CampaignResult:
    """Grade a fault universe against a stimulus — the one entry point.

    Canonical call::

        grade(netlist, stimulus, faults, GradeOptions(engine="packed"))

    Every grading knob lives on :class:`GradeOptions` (see its field
    docs); the per-keyword surface after ``options`` is deprecated — it
    still works for one release, emits :class:`DeprecationWarning`, and
    is folded into an options object internally.  Mixing both
    conventions raises.

    Args:
        netlist: the circuit.  DFF-free netlists take ``stimulus`` as an
            unordered pattern set; sequential ones as an in-order cycle
            sequence applied from reset.
        stimulus: per entry, ``{input port: value}``.
        faults: the fault universe (default: build and collapse it).
        options: the validated grading options (engine selection,
            observability, pruning, subsetting, collapsing, persistent
            caching, packed-lane width).

    Returns:
        The campaign result; verdicts are engine-invariant.  When
        ``options.cache`` is set and the store holds a record for this
        exact (netlist, stimulus, observability, prune mode, collapse)
        fingerprint, the result is replayed from disk with
        ``cache_hit=True`` and zero simulated classes.
    """
    legacy: dict[str, object] = {}
    if engine != "auto":
        legacy["engine"] = engine
    if observe is not None:
        legacy["observe"] = observe
    if runtime is not None:
        legacy["runtime"] = runtime
    if name:
        legacy["name"] = name
    if prune_untestable is not False:
        legacy["prune_untestable"] = prune_untestable
    if subset is not None:
        legacy["subset"] = subset
    if collapse is not False:
        legacy["collapse"] = collapse
    if cache is not None:
        legacy["cache"] = cache
    if lanes is not None:
        legacy["lanes"] = lanes
    opts = _fold_legacy_kwargs(options, legacy)
    if opts.reach is True:
        raise FaultSimError(
            "grade() has no program to analyze; reach=True is a "
            "campaign-level request — pass a precomputed ReachReport "
            "(repro.analysis.reach.build_reach_report) instead"
        )

    combinational = not netlist.dffs
    if not stimulus:
        raise FaultSimError(
            "no patterns to apply" if combinational else "no cycles to apply"
        )
    cmap = opts.collapse_map
    if cmap is not None:
        if faults is not None and cmap.fault_list is not faults:
            raise FaultSimError(
                "collapse map was computed over a different fault list; "
                "pass the map's own fault_list (or neither)"
            )
        fault_list = cmap.fault_list
    else:
        fault_list = (
            faults if faults is not None else build_fault_list(netlist)
        )
        if opts.collapse is True:
            # Local import: repro.analysis.collapse imports this
            # package's fault model, so the dependency stays one-way.
            from repro.analysis.collapse import compute_collapse

            cmap = compute_collapse(netlist, fault_list)
    plan = ObservePlan.from_spec(opts.observe, len(stimulus), netlist)
    label = opts.name or netlist.name
    spec = opts.effective_engine()
    if spec == "auto":
        spec = default_engine_name(netlist)
    selected = get_engine(spec)
    configure = getattr(selected, "configure", None)
    if configure is not None:
        configure(opts)
    mode = opts.prune_mode

    # Persistent store: activate it for good-trace sharing either way,
    # and replay the whole verdict record when this exact grade (same
    # structure, stimulus, observability, pruning, collapse universe)
    # already ran.  Subset grades are shard-local and never stored —
    # the campaign layer caches the merged full-universe result instead.
    store = opts.store
    previous_store = set_active_store(store) if store is not None else None
    try:
        store_key = ""
        if store is not None and opts.subset is None:
            store_key = verdict_key_for(
                store, netlist, stimulus, plan, fault_list,
                prune_mode=mode,
                collapse_hash=cmap.collapse_hash if cmap is not None else "",
            )
            payload = store.load_verdicts(store_key)
            if payload is not None:
                try:
                    if int(payload["n_classes"]) == fault_list.n_collapsed:  # type: ignore[arg-type]
                        return result_from_payload(
                            payload, label, fault_list
                        )
                except (KeyError, TypeError, ValueError):
                    pass  # malformed record: fall through and re-grade

        skip, proven = prune_sets(netlist, fault_list, mode)

        # Program-aware reach screen: classes the static screen proved
        # unexercised never diverge from the good machine, so their
        # simulation is skipped and the verdict every engine would
        # report — Detection(False, excited=False) — is synthesised.
        # Verdicts stay bit-identical to a reach-off run by construction
        # (DESIGN.md §15); only the workload accounting changes.
        reach = opts.reach_report
        rdrop: frozenset[int] = frozenset()
        if reach is not None:
            # Local import: repro.analysis.reach imports this package's
            # fault model, so the dependency stays one-way.
            from repro.analysis.reach import reach_reduction

            reach.validate_for(netlist, fault_list)
            rdrop = reach_reduction(reach, fault_list, cmap, skip)
        n_reach_skipped = 0

        if cmap is not None:
            supers: Sequence[int] | None = None
            restrict: frozenset[int] | None = None
            if opts.subset is not None:
                restrict = frozenset(opts.subset)
                wanted = {
                    cmap.super_of[r] for r in restrict if r in cmap.super_of
                }
                supers = [s for s in cmap.simulation_order() if s in wanted]
            if rdrop:
                supers = [
                    s
                    for s in (
                        supers if supers is not None
                        else cmap.simulation_order()
                    )
                    if s not in rdrop
                ]
            result = _grade_collapsed(
                selected, netlist, stimulus, fault_list, plan, cmap,
                name=label, skip=skip, supers=supers, restrict=restrict,
            )
            for s in sorted(rdrop):
                for member in cmap.members(s):
                    if member in skip:
                        continue
                    if restrict is not None and member not in restrict:
                        continue
                    result.detections[member] = Detection(
                        False, excited=False
                    )
                    n_reach_skipped += 1
        else:
            result = selected.grade(
                netlist, stimulus, fault_list, plan,
                name=label, skip=skip | rdrop, only=opts.subset,
            )
            result.pruned = set(skip)
            result.n_simulated = len(
                _graded_reps(fault_list, skip | rdrop, opts.subset)
            )
            only = (
                None if opts.subset is None else frozenset(opts.subset)
            )
            for rep in sorted(rdrop):
                if only is not None and rep not in only:
                    continue
                result.detections[rep] = Detection(False, excited=False)
                n_reach_skipped += 1
        result.n_reach_skipped = n_reach_skipped
        result.proven = set(proven)
        if store is not None and store_key:
            store.save_verdicts(store_key, verdicts_payload(result))
        return result
    finally:
        if store is not None:
            set_active_store(previous_store)
