"""Technology remapping: re-express a netlist in a different cell library.

Used by experiment C3 (the paper's "similar fault coverage on a different
technology library" claim): :func:`remap_to_nand` rewrites every
combinational gate into the two-cell {NAND2, NOT} library, preserving net
ids for ports and flip-flops so existing traces replay unchanged.  The
resulting netlist computes the same function but has a different gate/fault
population — exactly what a different synthesis target produces.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.gates import GateType
from repro.netlist.netlist import DFF, Gate, Netlist


class _Rewriter:
    """Builds the remapped netlist, preserving original net ids."""

    def __init__(self, source: Netlist):
        self.out = Netlist(f"{source.name}_nand")
        self.out._n_nets = source.n_nets
        self.out.net_names = dict(source.net_names)
        self.out.ports = dict(source.ports)
        for dff in source.dffs:
            self.out.dffs.append(DFF(len(self.out.dffs), dff.d, dff.q, dff.init))

    def nand(self, a: int, b: int, output: int | None = None) -> int:
        return self.out.add_gate(GateType.NAND, [a, b], output)

    def inv(self, a: int, output: int | None = None) -> int:
        return self.out.add_gate(GateType.NOT, [a], output)

    def and2(self, a: int, b: int, output: int | None = None) -> int:
        return self.inv(self.nand(a, b), output)

    def or2(self, a: int, b: int, output: int | None = None) -> int:
        return self.nand(self.inv(a), self.inv(b), output)

    def xor2(self, a: int, b: int, output: int | None = None) -> int:
        # Classic 4-NAND XOR.
        nab = self.nand(a, b)
        return self.nand(self.nand(a, nab), self.nand(b, nab), output)

    def _fold(self, op, inputs: tuple[int, ...]) -> int:
        """Reduce an n-ary input list with a binary op (balanced tree)."""
        level = list(inputs)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(op(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def rewrite(self, gate: Gate) -> None:
        gt = gate.gtype
        ins = gate.inputs
        out = gate.output
        if gt is GateType.NOT:
            self.inv(ins[0], out)
        elif gt is GateType.BUF:
            self.inv(self.inv(ins[0]), out)
        elif gt is GateType.NAND:
            if len(ins) == 2:
                self.nand(ins[0], ins[1], out)
            else:
                self.inv(self._fold(self.and2, ins), out)
        elif gt is GateType.AND:
            if len(ins) == 2:
                self.and2(ins[0], ins[1], out)
            else:
                self._fold_into(self.and2, ins, out)
        elif gt is GateType.OR:
            if len(ins) == 2:
                self.or2(ins[0], ins[1], out)
            else:
                self._fold_into(self.or2, ins, out)
        elif gt is GateType.NOR:
            self.inv(self._fold(self.or2, ins), out)
        elif gt is GateType.XOR:
            if len(ins) == 2:
                self.xor2(ins[0], ins[1], out)
            else:
                self._fold_into(self.xor2, ins, out)
        elif gt is GateType.XNOR:
            self.inv(self._fold(self.xor2, ins), out)
        elif gt is GateType.MUX2:
            a, b, sel = ins
            self.nand(self.nand(a, self.inv(sel)), self.nand(b, sel), out)
        elif gt is GateType.AOI21:
            a, b, c = ins
            self.inv(self.or2(self.and2(a, b), c), out)
        else:  # pragma: no cover
            raise NetlistError(f"cannot remap gate type {gt}")

    def _fold_into(self, op, inputs: tuple[int, ...], output: int) -> None:
        """Fold n-ary inputs, placing the final result on ``output``."""
        level = list(inputs)
        while len(level) > 2:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(op(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        op(level[0], level[1], output)


def remap_to_nand(netlist: Netlist) -> Netlist:
    """Rewrite a netlist into the {NAND2, NOT} library.

    Net ids of ports, DFF pins and original gate outputs are preserved, so
    input stimuli and port-level observation apply unchanged.
    """
    rewriter = _Rewriter(netlist)
    for gate in netlist.gates:
        rewriter.rewrite(gate)
    return rewriter.out
