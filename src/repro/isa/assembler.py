"""Two-pass MIPS assembler.

Supports the full Plasma instruction subset plus the pseudo-instructions and
data directives the self-test routine generators rely on:

* labels, ``#``/``;``/``//`` comments, ``.equ`` constants;
* segments: ``.text [addr]`` / ``.data [addr]`` / ``.org addr`` /
  ``.align n`` / ``.word ...`` / ``.space bytes``;
* expressions: decimal/hex/binary literals, symbols, ``+``/``-``,
  ``%hi(expr)`` / ``%lo(expr)``;
* pseudo-instructions: ``nop``, ``move``, ``li``, ``la``, ``b``, ``beqz``,
  ``bnez``, ``not``, ``neg``, ``clear``, ``blt``/``bge``/``bgt``/``ble``
  (expanded with ``$at``).

The assembler is deliberately strict: unknown mnemonics, out-of-range fields
and overlapping segments raise :class:`~repro.errors.AssemblyError` instead
of silently producing a wrong image.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import AssemblyError
from repro.isa.encoding import encode
from repro.isa.instruction import (
    INSTRUCTION_SET,
    SIGN_EXTENDED_IMM,
    Syntax,
    lookup_mnemonic,
)
from repro.isa.program import Program, Segment
from repro.isa.registers import register_number
from repro.utils.bits import mask

_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_HI_LO_RE = re.compile(r"%(hi|lo)\(([^()]*)\)")

#: Default memory layout: code at 0, data at 8 KiB (Plasma's small on-chip
#: RAM is a unified address space; the split just keeps the two apart).
DEFAULT_TEXT_BASE = 0x0000
DEFAULT_DATA_BASE = 0x2000

PSEUDO_MNEMONICS = frozenset(
    {"nop", "move", "li", "la", "b", "beqz", "bnez", "not", "neg", "clear",
     "blt", "bge", "bgt", "ble"}
)


@dataclass
class _Statement:
    """One source line after lexing."""

    line: int
    label: str | None = None
    op: str | None = None  # mnemonic or directive (with leading '.')
    args: str = ""


@dataclass
class _Location:
    """Location counter during a layout pass."""

    addr: int
    is_code: bool


class Assembler:
    """Two-pass assembler producing a :class:`~repro.isa.program.Program`.

    Args:
        text_base: default byte address of the first ``.text`` segment.
        data_base: default byte address of the first ``.data`` segment.
    """

    def __init__(
        self, text_base: int = DEFAULT_TEXT_BASE, data_base: int = DEFAULT_DATA_BASE
    ):
        self.text_base = text_base
        self.data_base = data_base

    # ------------------------------------------------------------- lexing

    @staticmethod
    def _strip_comment(line: str) -> str:
        for marker in ("#", ";", "//"):
            idx = line.find(marker)
            if idx >= 0:
                line = line[:idx]
        return line.strip()

    def _lex(self, source: str) -> list[_Statement]:
        statements: list[_Statement] = []
        for line_no, raw in enumerate(source.splitlines(), start=1):
            text = self._strip_comment(raw)
            if not text:
                continue
            label = None
            if ":" in text:
                head, _, rest = text.partition(":")
                head = head.strip()
                if not _LABEL_RE.match(head):
                    raise AssemblyError(f"invalid label {head!r}", line_no)
                label = head
                text = rest.strip()
            if not text:
                statements.append(_Statement(line_no, label=label))
                continue
            parts = text.split(None, 1)
            op = parts[0].lower()
            args = parts[1].strip() if len(parts) > 1 else ""
            statements.append(_Statement(line_no, label=label, op=op, args=args))
        return statements

    # -------------------------------------------------------- expressions

    def _eval_expr(
        self, expr: str, symbols: dict[str, int], line: int, strict: bool
    ) -> int | None:
        """Evaluate an assembler expression.

        Returns None if a symbol is unresolved and ``strict`` is False.
        """
        expr = expr.strip()
        if not expr:
            raise AssemblyError("empty expression", line)

        # %hi/%lo operators first (they wrap a sub-expression).
        m = _HI_LO_RE.fullmatch(expr)
        if m:
            inner = self._eval_expr(m.group(2), symbols, line, strict)
            if inner is None:
                return None
            inner &= mask(32)
            if m.group(1) == "hi":
                # Plain (non-carry-adjusted) %hi: pairs with ori, not addiu.
                return (inner >> 16) & 0xFFFF
            return inner & 0xFFFF

        # Split on top-level + and - (no parentheses in plain expressions).
        tokens = re.split(r"([+-])", expr)
        total = 0
        sign = 1
        expecting_term = True
        for tok in tokens:
            tok = tok.strip()
            if tok == "":
                continue
            if tok in "+-":
                if expecting_term and tok == "+":
                    raise AssemblyError(f"misplaced {tok!r} in {expr!r}", line)
                if expecting_term:
                    sign = -sign
                else:
                    sign = 1 if tok == "+" else -1
                    expecting_term = True
                continue
            value = self._eval_atom(tok, symbols, line, strict)
            if value is None:
                return None
            total += sign * value
            sign = 1
            expecting_term = False
        if expecting_term:
            raise AssemblyError(f"dangling operator in {expr!r}", line)
        return total

    def _eval_atom(
        self, tok: str, symbols: dict[str, int], line: int, strict: bool
    ) -> int | None:
        try:
            return int(tok, 0)
        except ValueError:
            pass
        if _LABEL_RE.match(tok):
            if tok in symbols:
                return symbols[tok]
            if strict:
                raise AssemblyError(f"undefined symbol {tok!r}", line)
            return None
        raise AssemblyError(f"cannot parse expression atom {tok!r}", line)

    # ----------------------------------------------------- operand parsing

    @staticmethod
    def _split_args(args: str, line: int, expected: int) -> list[str]:
        parts = [p.strip() for p in args.split(",")] if args else []
        if len(parts) != expected or any(not p for p in parts):
            raise AssemblyError(
                f"expected {expected} comma-separated operand(s), got {args!r}", line
            )
        return parts

    @staticmethod
    def _parse_mem_operand(operand: str, line: int) -> tuple[str, str]:
        """Split ``offset($base)`` into (offset_expr, base_register_token)."""
        m = re.fullmatch(r"(.*)\((\$\w+)\)", operand.strip())
        if not m:
            raise AssemblyError(f"expected offset($base), got {operand!r}", line)
        offset = m.group(1).strip() or "0"
        return offset, m.group(2)

    # ---------------------------------------------------------- pseudo-ops

    def _pseudo_size(
        self, op: str, args: str, symbols: dict[str, int], line: int
    ) -> int:
        """Number of machine words a pseudo-instruction expands to (pass 1)."""
        if op in ("nop", "move", "b", "beqz", "bnez", "not", "neg", "clear"):
            return 1
        if op in ("blt", "bge", "bgt", "ble"):
            return 2
        if op == "la":
            return 2
        if op == "li":
            parts = self._split_args(args, line, 2)
            value = self._eval_expr(parts[1], symbols, line, strict=False)
            if value is None:
                return 2
            return 1 if self._li_fits_one(value) else 2
        raise AssemblyError(f"unknown pseudo-instruction {op!r}", line)

    @staticmethod
    def _li_fits_one(value: int) -> bool:
        return -32768 <= value <= 32767 or 0 <= value <= 0xFFFF

    def _expand_pseudo(
        self,
        op: str,
        args: str,
        symbols: dict[str, int],
        line: int,
        forced_size: int,
    ) -> list[tuple[str, str]]:
        """Expand a pseudo-op into (mnemonic, args) pairs of real instructions.

        ``forced_size`` pins the expansion length chosen in pass 1 so label
        addresses cannot shift between passes.
        """
        if op == "nop":
            if args:
                raise AssemblyError("nop takes no operands", line)
            return [("sll", "$0, $0, 0")]
        if op == "move":
            rd, rs = self._split_args(args, line, 2)
            return [("addu", f"{rd}, {rs}, $0")]
        if op == "clear":
            (rt,) = self._split_args(args, line, 1)
            return [("addu", f"{rt}, $0, $0")]
        if op == "not":
            rd, rs = self._split_args(args, line, 2)
            return [("nor", f"{rd}, {rs}, $0")]
        if op == "neg":
            rd, rs = self._split_args(args, line, 2)
            return [("subu", f"{rd}, $0, {rs}")]
        if op == "b":
            (label,) = self._split_args(args, line, 1)
            return [("beq", f"$0, $0, {label}")]
        if op == "beqz":
            rs, label = self._split_args(args, line, 2)
            return [("beq", f"{rs}, $0, {label}")]
        if op == "bnez":
            rs, label = self._split_args(args, line, 2)
            return [("bne", f"{rs}, $0, {label}")]
        if op in ("blt", "bge", "bgt", "ble"):
            rs, rt, label = self._split_args(args, line, 3)
            if op in ("blt", "bge"):
                cmp_args = f"$at, {rs}, {rt}"
            else:
                cmp_args = f"$at, {rt}, {rs}"
            branch = "bne" if op in ("blt", "bgt") else "beq"
            return [("slt", cmp_args), (branch, f"$at, $0, {label}")]
        if op == "la":
            rt, sym = self._split_args(args, line, 2)
            return [
                ("lui", f"{rt}, %hi({sym})"),
                ("ori", f"{rt}, {rt}, %lo({sym})"),
            ]
        if op == "li":
            rt, expr = self._split_args(args, line, 2)
            value = self._eval_expr(expr, symbols, line, strict=True)
            assert value is not None
            value &= mask(32)
            if forced_size == 1:
                if value >= 0x8000 and value <= 0xFFFF:
                    return [("ori", f"{rt}, $0, {value}")]
                return [("addiu", f"{rt}, $0, {self._as_signed16(value)}")]
            return [
                ("lui", f"{rt}, {(value >> 16) & 0xFFFF}"),
                ("ori", f"{rt}, {rt}, {value & 0xFFFF}"),
            ]
        raise AssemblyError(f"unknown pseudo-instruction {op!r}", line)

    @staticmethod
    def _as_signed16(value: int) -> int:
        value &= mask(32)
        if value & 0x8000_0000:
            return value - (1 << 32)
        return value

    # ------------------------------------------------------------ encoding

    def _encode_real(
        self,
        mnemonic: str,
        args: str,
        pc: int,
        symbols: dict[str, int],
        line: int,
        strict: bool,
    ) -> int:
        """Encode one real instruction at address ``pc``."""
        spec = lookup_mnemonic(mnemonic)
        if spec is None:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line)
        syn = spec.syntax
        fields: dict[str, int] = {}

        def expr(text: str) -> int:
            value = self._eval_expr(text, symbols, line, strict)
            return 0 if value is None else value

        def imm16(value: int, signed_ok: bool) -> int:
            if signed_ok and -32768 <= value < 0:
                return value & 0xFFFF
            if 0 <= value <= 0xFFFF:
                return value
            raise AssemblyError(
                f"immediate {value} out of 16-bit range for {mnemonic}", line
            )

        def branch_offset(label: str) -> int:
            target = self._eval_expr(label, symbols, line, strict)
            if target is None:
                return 0
            delta = target - (pc + 4)
            if delta % 4:
                raise AssemblyError(f"branch target {label!r} not word aligned", line)
            words = delta // 4
            if not -32768 <= words <= 32767:
                raise AssemblyError(f"branch to {label!r} out of range", line)
            return words & 0xFFFF

        if syn is Syntax.RD_RS_RT:
            rd, rs, rt = self._split_args(args, line, 3)
            fields = dict(rd=register_number(rd), rs=register_number(rs),
                          rt=register_number(rt))
        elif syn is Syntax.RD_RT_SA:
            rd, rt, sa = self._split_args(args, line, 3)
            shamt = expr(sa)
            if not 0 <= shamt <= 31:
                raise AssemblyError(f"shift amount {shamt} out of range", line)
            fields = dict(rd=register_number(rd), rt=register_number(rt), shamt=shamt)
        elif syn is Syntax.RD_RT_RS:
            rd, rt, rs = self._split_args(args, line, 3)
            fields = dict(rd=register_number(rd), rt=register_number(rt),
                          rs=register_number(rs))
        elif syn is Syntax.RS_RT:
            rs, rt = self._split_args(args, line, 2)
            fields = dict(rs=register_number(rs), rt=register_number(rt))
        elif syn is Syntax.RD:
            (rd,) = self._split_args(args, line, 1)
            fields = dict(rd=register_number(rd))
        elif syn is Syntax.RS:
            (rs,) = self._split_args(args, line, 1)
            fields = dict(rs=register_number(rs))
        elif syn is Syntax.RD_RS:
            parts = [p.strip() for p in args.split(",") if p.strip()]
            if len(parts) == 1:  # "jalr $rs" defaults rd = $ra
                fields = dict(rd=31, rs=register_number(parts[0]))
            elif len(parts) == 2:
                fields = dict(rd=register_number(parts[0]),
                              rs=register_number(parts[1]))
            else:
                raise AssemblyError(f"bad operands for {mnemonic}: {args!r}", line)
        elif syn is Syntax.RT_RS_IMM:
            rt, rs, imm = self._split_args(args, line, 3)
            signed = mnemonic in SIGN_EXTENDED_IMM
            fields = dict(rt=register_number(rt), rs=register_number(rs),
                          imm=imm16(expr(imm), signed_ok=signed))
        elif syn is Syntax.RT_IMM:
            rt, imm = self._split_args(args, line, 2)
            fields = dict(rt=register_number(rt), imm=imm16(expr(imm), False))
        elif syn is Syntax.RS_RT_LABEL:
            rs, rt, label = self._split_args(args, line, 3)
            fields = dict(rs=register_number(rs), rt=register_number(rt),
                          imm=branch_offset(label))
        elif syn is Syntax.RS_LABEL:
            rs, label = self._split_args(args, line, 2)
            fields = dict(rs=register_number(rs), imm=branch_offset(label))
        elif syn is Syntax.RT_OFF_RS:
            rt, mem = self._split_args(args, line, 2)
            offset, base = self._parse_mem_operand(mem, line)
            fields = dict(rt=register_number(rt), rs=register_number(base),
                          imm=imm16(expr(offset), signed_ok=True))
        elif syn is Syntax.TARGET:
            (label,) = self._split_args(args, line, 1)
            addr = expr(label)
            if addr % 4:
                raise AssemblyError(f"jump target {label!r} not word aligned", line)
            fields = dict(target=(addr >> 2) & mask(26))
        else:  # pragma: no cover - NONE has no real instruction
            raise AssemblyError(f"unsupported syntax for {mnemonic}", line)

        return encode(mnemonic, **fields)

    # --------------------------------------------------------------- pass

    def _layout(
        self,
        statements: list[_Statement],
        symbols: dict[str, int],
        pseudo_sizes: dict[int, int],
        strict: bool,
    ) -> Program:
        """Run one layout pass.

        In the first pass (``strict=False``) symbols may be unresolved:
        placeholder words are emitted, symbol addresses and pseudo expansion
        sizes are recorded.  The second pass encodes for real.
        """
        program = Program(entry=self.text_base)
        segment: Segment | None = None
        loc = _Location(self.text_base, is_code=True)
        data_loc = self.data_base
        text_loc = self.text_base

        def new_segment(addr: int, is_code: bool) -> None:
            nonlocal segment
            segment = Segment(base=addr, is_code=is_code)
            program.segments.append(segment)
            loc.addr = addr
            loc.is_code = is_code

        current_line: list[int | None] = [None]

        def emit(word: int) -> None:
            nonlocal segment
            if segment is None:
                new_segment(loc.addr, loc.is_code)
            assert segment is not None
            segment.words.append(word & mask(32))
            if segment.is_code and current_line[0] is not None:
                program.line_map[loc.addr] = current_line[0]
            loc.addr += 4

        for idx, stmt in enumerate(statements):
            current_line[0] = stmt.line
            if stmt.label is not None:
                if strict:
                    # Pass 1 already defined it; just sanity-check stability.
                    if symbols.get(stmt.label) != loc.addr:
                        raise AssemblyError(
                            f"label {stmt.label!r} moved between passes "
                            f"({symbols.get(stmt.label)} -> {loc.addr})",
                            stmt.line,
                        )
                else:
                    if stmt.label in symbols:
                        raise AssemblyError(
                            f"duplicate label {stmt.label!r}", stmt.line
                        )
                    symbols[stmt.label] = loc.addr
            if stmt.op is None:
                continue

            op = stmt.op
            if op.startswith("."):
                if op in (".text", ".data", ".org"):
                    # Save the current mode's resume point before switching.
                    if loc.is_code:
                        text_loc = loc.addr
                    else:
                        data_loc = loc.addr
                self._directive(
                    op, stmt, symbols, strict, emit, new_segment, loc,
                    lambda: (text_loc, data_loc),
                )
                continue

            if op in PSEUDO_MNEMONICS:
                if strict:
                    size = pseudo_sizes[idx]
                    for mnem, sub_args in self._expand_pseudo(
                        op, stmt.args, symbols, stmt.line, size
                    ):
                        emit(
                            self._encode_real(
                                mnem, sub_args, loc.addr, symbols, stmt.line, strict
                            )
                        )
                else:
                    size = self._pseudo_size(op, stmt.args, symbols, stmt.line)
                    pseudo_sizes[idx] = size
                    for _ in range(size):
                        emit(0)
                continue

            if op in INSTRUCTION_SET:
                if strict:
                    emit(
                        self._encode_real(
                            op, stmt.args, loc.addr, symbols, stmt.line, strict
                        )
                    )
                else:
                    # Still parse operands (cheap syntax check), emit filler.
                    self._encode_real(op, stmt.args, loc.addr, symbols,
                                      stmt.line, strict=False)
                    emit(0)
                continue

            raise AssemblyError(f"unknown mnemonic or directive {op!r}", stmt.line)

        program.symbols = dict(symbols)
        self._check_overlaps(program)
        return program

    def _directive(
        self, op, stmt, symbols, strict, emit, new_segment, loc, bases
    ) -> None:
        text_loc, data_loc = bases()
        if op == ".text":
            addr = (
                self._require(stmt.args, symbols, stmt.line, strict)
                if stmt.args
                else text_loc
            )
            new_segment(addr, is_code=True)
        elif op == ".data":
            addr = (
                self._require(stmt.args, symbols, stmt.line, strict)
                if stmt.args
                else data_loc
            )
            new_segment(addr, is_code=False)
        elif op == ".org":
            addr = self._require(stmt.args, symbols, stmt.line, strict)
            new_segment(addr, loc.is_code)
        elif op == ".align":
            power = self._require(stmt.args, symbols, stmt.line, strict)
            step = 1 << power
            while loc.addr % step:
                emit(0)
        elif op == ".word":
            if not stmt.args:
                raise AssemblyError(".word needs at least one value", stmt.line)
            for part in stmt.args.split(","):
                value = self._eval_expr(part, symbols, stmt.line, strict)
                emit(0 if value is None else value)
        elif op == ".space":
            nbytes = self._require(stmt.args, symbols, stmt.line, strict)
            if nbytes % 4:
                raise AssemblyError(".space size must be a multiple of 4", stmt.line)
            for _ in range(nbytes // 4):
                emit(0)
        elif op == ".equ":
            parts = stmt.args.split(",", 1)
            if len(parts) != 2:
                raise AssemblyError(".equ needs NAME, VALUE", stmt.line)
            name = parts[0].strip()
            if not _LABEL_RE.match(name):
                raise AssemblyError(f"invalid .equ name {name!r}", stmt.line)
            value = self._eval_expr(parts[1], symbols, stmt.line, strict)
            if value is not None:
                symbols[name] = value
            elif strict:
                raise AssemblyError(f"unresolved .equ {name!r}", stmt.line)
        elif op == ".globl":
            pass  # accepted for compatibility; symbols are all global here
        else:
            raise AssemblyError(f"unknown directive {op!r}", stmt.line)

    def _require(self, expr: str, symbols, line: int, strict: bool) -> int:
        """Evaluate an expression that must resolve even in pass 1.

        Segment placement cannot depend on forward references.
        """
        value = self._eval_expr(expr, symbols, line, strict=True)
        assert value is not None
        return value

    @staticmethod
    def _check_overlaps(program: Program) -> None:
        placed: list[Segment] = []
        for seg in program.segments:
            if not seg.words:
                continue
            for other in placed:
                if seg.overlaps(other):
                    raise AssemblyError(
                        f"segment at {seg.base:#x}..{seg.end:#x} overlaps "
                        f"segment at {other.base:#x}..{other.end:#x}"
                    )
            placed.append(seg)

    # ----------------------------------------------------------------- API

    def assemble(self, source: str) -> Program:
        """Assemble MIPS source text into a :class:`Program`.

        Raises:
            AssemblyError: on any syntax, range or layout problem.
        """
        statements = self._lex(source)
        symbols: dict[str, int] = {}
        pseudo_sizes: dict[int, int] = {}
        # Pass 1: define symbols, fix pseudo expansion sizes.
        self._layout(statements, symbols, pseudo_sizes, strict=False)
        # Pass 2: real encoding with the complete symbol table.
        return self._layout(statements, symbols, pseudo_sizes, strict=True)


def assemble(
    source: str,
    text_base: int = DEFAULT_TEXT_BASE,
    data_base: int = DEFAULT_DATA_BASE,
) -> Program:
    """Convenience wrapper: assemble ``source`` with default bases."""
    return Assembler(text_base=text_base, data_base=data_base).assemble(source)
