"""Unit tests for repro.utils.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    MASK32,
    bit,
    bits_of,
    checkerboard,
    extract,
    from_bits,
    from_signed,
    insert,
    mask,
    parity,
    popcount,
    rotate_left,
    sign_extend,
    to_signed,
    walking_ones,
    walking_zeros,
)

u32 = st.integers(min_value=0, max_value=MASK32)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small(self):
        assert mask(3) == 0b111

    def test_word(self):
        assert mask(32) == MASK32

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitAccess:
    def test_bit_lsb(self):
        assert bit(0b1010, 0) == 0
        assert bit(0b1010, 1) == 1

    def test_bits_of_roundtrip(self):
        assert from_bits(bits_of(0xDEADBEEF, 32)) == 0xDEADBEEF

    @given(u32)
    def test_bits_roundtrip_property(self, value):
        assert from_bits(bits_of(value, 32)) == value

    def test_bits_of_width_truncates(self):
        assert bits_of(0xFF, 4) == [1, 1, 1, 1]


class TestFields:
    def test_extract_nibble(self):
        assert extract(0xABCD, 15, 12) == 0xA

    def test_extract_single_bit(self):
        assert extract(0x8000_0000, 31, 31) == 1

    def test_extract_invalid_order(self):
        with pytest.raises(ValueError):
            extract(0, 0, 5)

    def test_insert_replaces_field(self):
        assert insert(0xABCD, 15, 12, 0x5) == 0x5BCD

    def test_insert_extract_roundtrip(self):
        value = insert(0, 20, 16, 0x15)
        assert extract(value, 20, 16) == 0x15

    @given(u32, st.integers(0, 31), st.integers(0, 31), u32)
    def test_insert_then_extract(self, value, a, b, field):
        high, low = max(a, b), min(a, b)
        inserted = insert(value, high, low, field)
        assert extract(inserted, high, low) == field & mask(high - low + 1)


class TestSignedness:
    def test_sign_extend_negative_byte(self):
        assert sign_extend(0x80, 8) == 0xFFFF_FF80

    def test_sign_extend_positive_byte(self):
        assert sign_extend(0x7F, 8) == 0x7F

    def test_sign_extend_masks_input(self):
        assert sign_extend(0x1FF, 8) == 0xFFFF_FFFF

    def test_to_signed_negative(self):
        assert to_signed(0xFFFF_FFFF) == -1

    def test_to_signed_positive(self):
        assert to_signed(0x7FFF_FFFF) == 0x7FFF_FFFF

    def test_to_signed_16(self):
        assert to_signed(0x8000, 16) == -32768

    def test_from_signed_roundtrip(self):
        assert from_signed(-1, 16) == 0xFFFF

    def test_from_signed_out_of_range(self):
        with pytest.raises(ValueError):
            from_signed(1 << 32, 32)
        with pytest.raises(ValueError):
            from_signed(-(1 << 31) - 1, 32)

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_signed_roundtrip_property(self, value):
        assert to_signed(from_signed(value, 32), 32) == value


class TestCounting:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(MASK32) == 32
        assert popcount(0b1011) == 3

    def test_popcount_negative_raises(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_parity(self):
        assert parity(0b11) == 0
        assert parity(0b111) == 1

    @given(u32, u32)
    def test_parity_xor_additive(self, a, b):
        # Parity of disjoint unions adds mod 2.
        assert parity(a ^ b) == parity(a) ^ parity(b)


class TestRotate:
    def test_rotate_identity(self):
        assert rotate_left(0x1234, 0) == 0x1234

    def test_rotate_wraps(self):
        assert rotate_left(0x8000_0000, 1) == 1

    @given(u32, st.integers(0, 64))
    def test_rotate_full_circle(self, value, amount):
        rotated = rotate_left(value, amount)
        back = rotate_left(rotated, (32 - amount) % 32)
        assert back == value


class TestPatternGenerators:
    def test_walking_ones(self):
        patterns = list(walking_ones(4))
        assert patterns == [1, 2, 4, 8]

    def test_walking_zeros(self):
        patterns = list(walking_zeros(4))
        assert patterns == [0b1110, 0b1101, 0b1011, 0b0111]

    def test_checkerboard(self):
        a, b = checkerboard(8)
        assert a == 0b01010101
        assert b == 0b10101010
        assert a ^ b == 0xFF
