"""Tseitin encoding of levelized netlists into CNF, with strashing.

Two layers live here:

* :class:`LogicEncoder` — a structurally-hashed boolean function
  algebra over a :class:`~repro.formal.cnf.ClauseSink`.  Every
  operation folds constants, normalises its operands (sorted inputs for
  commutative gates, positive selector for muxes, sign-factored XOR)
  and consults a hash table before allocating a Tseitin variable.  When
  two circuit copies are encoded through the *same* ``LogicEncoder``,
  any cone that is structurally identical in both collapses to the same
  literal — which is what makes miters cheap: only the logic that
  genuinely differs between the two sides reaches the SAT solver.
* :func:`encode_circuit` — walks a levelized
  :class:`~repro.netlist.netlist.Netlist` and maps every net to a
  literal.  Sequential circuits are encoded *combinationally cut*: each
  DFF's Q is a free (or caller-supplied) literal and its D is exposed as
  a next-state output.  A single stuck-at fault can be injected, which
  reuses the good copy's literals everywhere outside the fault's fanout
  cone (the strash table does this automatically).

Fault injection follows the fault model of
:mod:`repro.faultsim.faults`: a STEM fault replaces the net's value for
*every* reader (and for the net's own port/D observation), a BRANCH
fault replaces one gate's input pin, and a DFF_D fault replaces one
flip-flop's D pin.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.faultsim.faults import Fault, FaultKind
from repro.formal.cnf import ClauseSink
from repro.netlist.gates import GateType
from repro.netlist.levelize import levelize
from repro.netlist.netlist import CONST0, CONST1, Gate, Netlist

_Key = tuple[object, ...]


class LogicEncoder:
    """Structurally-hashed Tseitin encoder over a clause sink."""

    def __init__(self, sink: ClauseSink) -> None:
        self.sink = sink
        self.true_lit = sink.new_var()
        sink.add_clause([self.true_lit])
        self._cache: dict[_Key, int] = {}

    @property
    def false_lit(self) -> int:
        return -self.true_lit

    def const(self, value: int) -> int:
        return self.true_lit if value else self.false_lit

    def is_const(self, lit: int) -> int | None:
        """0/1 when the literal is the constant, else None."""
        if lit == self.true_lit:
            return 1
        if lit == -self.true_lit:
            return 0
        return None

    def new_input(self) -> int:
        """A fresh unconstrained literal (circuit input / free state)."""
        return self.sink.new_var()

    # ------------------------------------------------------- primitives

    def and_(self, lits: Sequence[int]) -> int:
        ins: set[int] = set()
        for lit in lits:
            if lit == self.false_lit:
                return self.false_lit
            if lit == self.true_lit:
                continue
            if -lit in ins:
                return self.false_lit
            ins.add(lit)
        if not ins:
            return self.true_lit
        if len(ins) == 1:
            return next(iter(ins))
        key: _Key = ("&", tuple(sorted(ins)))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        out = self.sink.new_var()
        for lit in ins:
            self.sink.add_clause([-out, lit])
        self.sink.add_clause([out] + [-lit for lit in ins])
        self._cache[key] = out
        return out

    def or_(self, lits: Sequence[int]) -> int:
        return -self.and_([-lit for lit in lits])

    def xor_(self, lits: Sequence[int]) -> int:
        invert = False
        vars_odd: set[int] = set()
        for lit in lits:
            value = self.is_const(lit)
            if value is not None:
                invert ^= value == 1
                continue
            if lit < 0:
                invert = not invert
                lit = -lit
            if lit in vars_odd:
                vars_odd.remove(lit)  # x ^ x = 0
            else:
                vars_odd.add(lit)
        result = self.const(0)
        for var in sorted(vars_odd):
            result = self._xor2(result, var)
        return -result if invert else result

    def _xor2(self, a: int, b: int) -> int:
        value = self.is_const(a)
        if value is not None:
            return -b if value else b
        value = self.is_const(b)
        if value is not None:
            return -a if value else a
        if a == b:
            return self.false_lit
        if a == -b:
            return self.true_lit
        invert = False
        if a < 0:
            a, invert = -a, not invert
        if b < 0:
            b, invert = -b, not invert
        if a > b:
            a, b = b, a
        key: _Key = ("^", a, b)
        out = self._cache.get(key)
        if out is None:
            out = self.sink.new_var()
            self.sink.add_clause([-a, -b, -out])
            self.sink.add_clause([a, b, -out])
            self.sink.add_clause([-a, b, out])
            self.sink.add_clause([a, -b, out])
            self._cache[key] = out
        return -out if invert else out

    def mux(self, sel: int, a: int, b: int) -> int:
        """``sel ? b : a`` (the MUX2 gate's operand convention)."""
        value = self.is_const(sel)
        if value is not None:
            return b if value else a
        if a == b:
            return a
        if a == -b:
            # sel=1 -> b, sel=0 -> -b: XNOR of sel and b.
            return -self.xor_([sel, b])
        value = self.is_const(a)
        if value == 0:
            return self.and_([sel, b])
        if value == 1:
            return self.or_([-sel, b])
        value = self.is_const(b)
        if value == 0:
            return self.and_([-sel, a])
        if value == 1:
            return self.or_([sel, a])
        if sel < 0:
            sel, a, b = -sel, b, a
        key: _Key = ("m", sel, a, b)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        out = self.sink.new_var()
        self.sink.add_clause([-sel, -b, out])
        self.sink.add_clause([-sel, b, -out])
        self.sink.add_clause([sel, -a, out])
        self.sink.add_clause([sel, a, -out])
        self.sink.add_clause([-a, -b, out])
        self.sink.add_clause([a, b, -out])
        self._cache[key] = out
        return out

    # ------------------------------------------------------ gate dispatch

    def gate_lit(self, gtype: GateType, ins: Sequence[int]) -> int:
        if gtype is GateType.NOT:
            return -ins[0]
        if gtype is GateType.BUF:
            return ins[0]
        if gtype is GateType.AND:
            return self.and_(ins)
        if gtype is GateType.NAND:
            return -self.and_(ins)
        if gtype is GateType.OR:
            return self.or_(ins)
        if gtype is GateType.NOR:
            return -self.or_(ins)
        if gtype is GateType.XOR:
            return self.xor_(ins)
        if gtype is GateType.XNOR:
            return -self.xor_(ins)
        if gtype is GateType.MUX2:
            a, b, sel = ins
            return self.mux(sel, a, b)
        if gtype is GateType.AOI21:
            a, b, c = ins
            return -self.or_([self.and_([a, b]), c])
        raise ValueError(f"unhandled gate type {gtype}")  # pragma: no cover


@dataclass
class EncodedCircuit:
    """One (possibly faulty) combinationally-cut copy of a netlist.

    ``lit(net)`` returns the literal a *reader* of the net sees — for a
    STEM fault that is the stuck constant, which also applies to output
    ports and D pins fed by the faulted net.
    """

    netlist: Netlist
    logic: LogicEncoder
    fault: Fault | None = None
    _lits: dict[int, int] = field(default_factory=dict)

    def lit(self, net: int) -> int:
        fault = self.fault
        if (
            fault is not None
            and fault.kind is FaultKind.STEM
            and net == fault.net
        ):
            return self.logic.const(fault.stuck)
        return self._lits[net]

    def input_lits(self, name: str) -> list[int]:
        """Literals of an input port, LSB first (pre-fault values)."""
        return [self._lits[n] for n in self.netlist.port(name).nets]

    def output_lits(self, name: str) -> list[int]:
        return [self.lit(n) for n in self.netlist.port(name).nets]

    def state_lits(self) -> list[int]:
        """Q literals per DFF index (the cut's pseudo-inputs)."""
        return [self._lits[dff.q] for dff in self.netlist.dffs]

    def next_state_lits(self) -> list[int]:
        """D literals per DFF index (the cut's pseudo-outputs)."""
        fault = self.fault
        result = []
        for dff in self.netlist.dffs:
            if (
                fault is not None
                and fault.kind is FaultKind.DFF_D
                and fault.gate == dff.index
            ):
                result.append(self.logic.const(fault.stuck))
            else:
                result.append(self.lit(dff.d))
        return result

    def compared_lits(self) -> list[int]:
        """Output-port literals then next-state literals (miter pairs)."""
        result = []
        for port in self.netlist.output_ports():
            result.extend(self.lit(n) for n in port.nets)
        result.extend(self.next_state_lits())
        return result


def encode_circuit(
    logic: LogicEncoder,
    netlist: Netlist,
    *,
    inputs: Mapping[int, int] | None = None,
    state: Sequence[int] | None = None,
    fault: Fault | None = None,
    order: Sequence[Gate] | None = None,
) -> EncodedCircuit:
    """Encode one combinationally-cut copy of ``netlist``.

    Args:
        logic: the shared strashed encoder (shared across copies).
        inputs: input-port net id -> literal; missing nets get fresh
            free variables.
        state: literal per DFF index for the Q pseudo-inputs; None
            allocates fresh free variables.
        fault: optional single stuck-at fault to inject.
        order: pre-levelized gate order (pass when encoding many copies
            of the same netlist to amortise levelization).

    Returns:
        The encoded copy; read nets through :class:`EncodedCircuit`.
    """
    copy = EncodedCircuit(netlist, logic, fault)
    lits = copy._lits
    lits[CONST0] = logic.const(0)
    lits[CONST1] = logic.const(1)
    for port in netlist.input_ports():
        for net in port.nets:
            given = None if inputs is None else inputs.get(net)
            lits[net] = logic.new_input() if given is None else given
    for i, dff in enumerate(netlist.dffs):
        lits[dff.q] = logic.new_input() if state is None else state[i]

    branch_gate = branch_pin = stem_net = -1
    stuck_lit = 0
    if fault is not None:
        stuck_lit = logic.const(fault.stuck)
        if fault.kind is FaultKind.BRANCH:
            branch_gate, branch_pin = fault.gate, fault.pin
        elif fault.kind is FaultKind.STEM:
            stem_net = fault.net

    if order is None:
        order = levelize(netlist)
    for gate in order:
        if stem_net >= 0:
            ins = [
                stuck_lit if n == stem_net else lits[n]
                for n in gate.inputs
            ]
        else:
            ins = [lits[n] for n in gate.inputs]
        if gate.index == branch_gate:
            ins[branch_pin] = stuck_lit
        lits[gate.output] = logic.gate_lit(gate.gtype, ins)
    return copy


def miter_lit(logic: LogicEncoder, left: Sequence[int],
              right: Sequence[int]) -> int:
    """OR of pairwise XORs: true iff the two sides disagree somewhere."""
    if len(left) != len(right):
        raise ValueError(
            f"miter sides have different widths ({len(left)} vs {len(right)})"
        )
    diffs = [logic.xor_([a, b]) for a, b in zip(left, right, strict=True)]
    return logic.or_(diffs)
