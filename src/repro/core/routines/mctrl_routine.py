"""Memory-controller self-test routine (Phase B).

Phase B's first (and, for Plasma, only needed) target: MCTRL has the
largest size and the biggest missed-coverage share after Phase A (paper
Section 4).  The routine sweeps:

* every load size at every byte lane, signed and unsigned, over data words
  whose byte sign bits alternate (extension-fill coverage);
* every store size at every byte lane, writing straight into the response
  window (sub-word stores leave their neighbours' zeroes visible);
* word read-back of the stored lanes (store-then-load path).
"""

from __future__ import annotations

from repro.core.routines.base import RoutineResult, TestRoutine, _Emitter
from repro.core.testlib import (
    MCTRL_DATA_WORDS,
    MCTRL_LOAD_CASES,
    MCTRL_STORE_CASES,
)


class MemoryControlRoutine(TestRoutine):
    """Load/store size/lane/sign sweep."""

    component = "MCTRL"

    def generate(self, prefix: str, resp_base: int) -> RoutineResult:
        e = _Emitter(resp_base)

        e.comment("MCTRL: load extraction sweep (size x lane x sign)")
        e.emit(f"{prefix}_start:")
        e.emit(f"    la $t8, {prefix}_data")
        for word_index in range(len(MCTRL_DATA_WORDS)):
            base = 4 * word_index
            for op, off in MCTRL_LOAD_CASES:
                e.emit(f"    {op} $t0, {base + off}($t8)")
                e.store("$t0")

        e.comment("store steering sweep (writes land in the response area)")
        for op, off, value in MCTRL_STORE_CASES:
            target = e.next_response()  # one clean response word per case
            e.emit(f"    li $t1, {value:#x}")
            e.emit(f"    {op} $t1, {(target & ~3) + off}($0)")

        e.comment("word read-back of the stored lanes")
        read_back_base = e._resp - 4 * len(MCTRL_STORE_CASES)
        for i in range(len(MCTRL_STORE_CASES)):
            e.emit(f"    lw $t2, {read_back_base + 4 * i}($0)")
            e.store("$t2")

        data_lines = [f"{prefix}_data:"]
        for word in MCTRL_DATA_WORDS:
            data_lines.append(f"    .word {word:#010x}")
        return RoutineResult(
            text=e.text(),
            data="\n".join(data_lines) + "\n",
            response_words=e.response_words,
        )
