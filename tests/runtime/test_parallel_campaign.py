"""Integration tests: the sharded parallel campaign path.

The acceptance bar for parallel grading is *bit-identical* results: any
worker count, shard layout or completion order must merge to the same
Table 5 as the serial run.  On top of that, the resilience contract holds
at shard granularity — a crashed shard degrades only its own fault range,
and resume re-grades exactly the shards missing from the journal.
"""

import json
import os

import pytest

import repro.core.sharded as sharded_mod
from repro.core.campaign import run_campaign
from repro.reporting.tables import render_table5
from repro.runtime import RetryPolicy, RuntimeConfig
from repro.runtime.checkpoint import CheckpointStore

FAST = ["CTRL", "BMUX"]

_real_grade_shard = sharded_mod.grade_shard


def _config(tmp_path=None, resume=False, attempts=2, timeout=None, jobs=2):
    return RuntimeConfig(
        timeout_seconds=timeout,
        retry=RetryPolicy(max_attempts=attempts, backoff_seconds=0),
        checkpoint_dir=tmp_path,
        resume=resume,
        isolate=True,
        jobs=jobs,
        sleep=lambda s: None,
    )


def _crash_bmux(name, lo, hi):
    if name == "BMUX":
        os._exit(11)
    return _real_grade_shard(name, lo, hi)


def _crash_first_bmux_shard(name, lo, hi):
    if name == "BMUX" and lo == 0:
        os._exit(11)
    return _real_grade_shard(name, lo, hi)


class TestParallelMatchesSerial:
    def test_bit_identical_table5(self):
        serial = run_campaign("A", components=FAST)
        parallel = run_campaign("A", components=FAST, jobs=2)
        assert render_table5({"A": parallel}) == render_table5(
            {"A": serial}
        )
        assert not parallel.degraded
        for name in FAST:
            a, b = serial.results[name], parallel.results[name]
            assert a.detected == b.detected
            assert a.pruned == b.pruned
            assert a.n_patterns == b.n_patterns
            # Per-fault verdicts, not just the aggregate sets.
            assert set(a.detections) == set(b.detections)
            for rep, d in a.detections.items():
                assert (d.detected, d.cycle) == (
                    b.detections[rep].detected, b.detections[rep].cycle,
                )
        assert serial.table5() == parallel.table5()

    def test_shard_events_and_throughput(self):
        outcome = run_campaign("A", components=["CTRL"], jobs=2)
        successes = [e for e in outcome.events if e.kind == "success"]
        # CTRL's 1032 classes split into jobs * oversubscription shards.
        assert len(successes) == 6
        assert all(e.job.startswith("A:CTRL#") for e in successes)
        assert all(e.throughput and e.throughput > 0 for e in successes)
        assert outcome.grading_seconds["CTRL"] > 0

    def test_runtime_jobs_field_enables_parallelism(self):
        outcome = run_campaign(
            "A", components=["CTRL"], runtime=_config(jobs=2)
        )
        assert any("#" in e.job for e in outcome.events)

    def test_parallel_requires_isolation(self):
        from repro.errors import ReproRuntimeError

        config = RuntimeConfig(isolate=False)
        with pytest.raises(ReproRuntimeError):
            run_campaign(
                "A", components=["CTRL"], runtime=config, jobs=2
            )


class TestShardResume:
    def test_resume_skips_completed_shards(self, tmp_path):
        run_campaign(
            "A", components=FAST, runtime=_config(tmp_path), jobs=2
        )
        resumed = run_campaign(
            "A", components=FAST,
            runtime=_config(tmp_path, resume=True), jobs=2,
        )
        kinds = [e.kind for e in resumed.events]
        assert set(kinds) == {"cached"}
        assert len(kinds) == 12  # 6 shards per component
        assert not resumed.degraded
        serial = run_campaign("A", components=FAST)
        assert render_table5({"A": resumed}) == render_table5(
            {"A": serial}
        )

    def test_resume_regrades_only_missing_shards(self, tmp_path):
        run_campaign(
            "A", components=["CTRL"], runtime=_config(tmp_path), jobs=2
        )
        store = CheckpointStore(tmp_path)
        lines = store.path.read_text().splitlines()
        assert len(lines) == 6
        # Drop one shard from the journal (simulates a kill mid-campaign).
        # Journal lines append in *completion* order, so pick the victim
        # by its shard key, not by position.
        dropped = "A:CTRL#04/06"
        kept = [ln for ln in lines if json.loads(ln)["key"] != dropped]
        assert len(kept) == 5
        store.path.write_text("\n".join(kept) + "\n")

        resumed = run_campaign(
            "A", components=["CTRL"],
            runtime=_config(tmp_path, resume=True), jobs=2,
        )
        per_shard = {}
        for e in resumed.events:
            per_shard.setdefault(e.job, []).append(e.kind)
        regraded = [k for k, v in per_shard.items() if "success" in v]
        assert regraded == [dropped]
        assert sum(v == ["cached"] for v in per_shard.values()) == 5
        serial = run_campaign("A", components=["CTRL"])
        assert resumed.results["CTRL"].detected == (
            serial.results["CTRL"].detected
        )


class TestShardDegradation:
    def test_crashed_component_degrades_only_itself(self, monkeypatch):
        monkeypatch.setattr(sharded_mod, "grade_shard", _crash_bmux)
        outcome = run_campaign(
            "A", components=FAST, runtime=_config(attempts=1), jobs=2
        )
        assert outcome.degraded_components == ["BMUX"]
        assert outcome.results["BMUX"].n_detected == 0
        assert outcome.results["CTRL"].n_detected > 0
        assert not outcome.summary.component("CTRL").degraded
        assert outcome.summary.component("BMUX").degraded

    def test_single_crashed_shard_keeps_partial_coverage(self, monkeypatch):
        monkeypatch.setattr(
            sharded_mod, "grade_shard", _crash_first_bmux_shard
        )
        outcome = run_campaign(
            "A", components=["BMUX"], runtime=_config(attempts=1), jobs=2
        )
        serial = run_campaign("A", components=["BMUX"])
        assert outcome.degraded_components == ["BMUX"]
        partial = outcome.results["BMUX"].detected
        full = serial.results["BMUX"].detected
        # The surviving shards' verdicts are kept: a strict, non-empty
        # subset of the serial result (a coverage lower bound).
        assert partial
        assert partial < full
        kinds = [e.kind for e in outcome.events if e.job == "A:BMUX#01/06"]
        assert kinds == ["start", "crash", "degraded"]


class TestCollapsedShards:
    def test_parallel_collapsed_matches_serial_plain(self):
        serial = run_campaign("A", components=FAST)
        parallel = run_campaign(
            "A", components=FAST, jobs=2, collapse=True
        )
        assert render_table5({"A": parallel}) == render_table5({"A": serial})
        for name in FAST:
            got = parallel.results[name]
            assert got.detected == serial.results[name].detected
            assert got.collapse_hash
            assert got.n_simulated < serial.results[name].n_simulated

    def test_mixed_collapse_hashes_refused_by_merge(self):
        from repro.core.sharded import ShardVerdict, merge_shard_results
        from repro.errors import CheckpointCorrupt
        from repro.faultsim.faults import build_fault_list
        from repro.plasma.components import component

        fault_list = build_fault_list(component("GL").builder())
        n = fault_list.n_collapsed

        def verdict(lo, hi, chash):
            return ShardVerdict(
                component="GL", lo=lo, hi=hi, n_classes=n, n_patterns=1,
                detected=(), pruned=(), collapse_hash=chash,
            )

        with pytest.raises(CheckpointCorrupt, match="collapse maps"):
            merge_shard_results(
                "GL", fault_list, 1,
                [verdict(0, n // 2, "aaaa"), verdict(n // 2, n, "bbbb")],
            )

    def test_collapsed_resume_reuses_journal(self, tmp_path):
        first = run_campaign(
            "A", components=["CTRL"], runtime=_config(tmp_path),
            jobs=2, collapse=True,
        )
        resumed = run_campaign(
            "A", components=["CTRL"],
            runtime=_config(tmp_path, resume=True), jobs=2, collapse=True,
        )
        assert resumed.results["CTRL"].detected == \
            first.results["CTRL"].detected
        assert resumed.results["CTRL"].collapse_hash == \
            first.results["CTRL"].collapse_hash
        kinds = {e.kind for e in resumed.events}
        assert kinds == {"cached"}
