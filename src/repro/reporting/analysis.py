"""Renderers for static-analysis reports (``repro analyze``).

Turns :class:`~repro.analysis.diagnostics.Report` lists into the
summary/testability tables printed by the CLI, next to the Table 2-5
renderers in :mod:`repro.reporting.tables`.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Report, render_text


def render_analysis_summary(reports: list[Report]) -> str:
    """One row per analyzed target: kind, target, status, counts."""
    lines = [
        f"{'kind':8s} {'target':16s} {'status':6s} {'errors':>6s} "
        f"{'warnings':>8s}",
        "-" * 48,
    ]
    for report in reports:
        lines.append(
            f"{report.kind:8s} {report.target:16s} "
            f"{'OK' if report.ok else 'FAIL':6s} "
            f"{len(report.errors):6d} {len(report.warnings):8d}"
        )
    n_fail = sum(1 for r in reports if not r.ok)
    lines.append("-" * 48)
    lines.append(
        f"{len(reports)} target(s) analyzed, {n_fail} with errors"
    )
    return "\n".join(lines)


def render_analysis_reports(
    reports: list[Report], max_diagnostics: int | None = 20
) -> str:
    """Full text rendering: per-target findings, then the summary table."""
    parts = [
        render_text(r, max_diagnostics=max_diagnostics)
        for r in reports
        if r.diagnostics
    ]
    parts.append(render_analysis_summary(reports))
    return "\n\n".join(parts)


def render_formal_table(screens) -> str:
    """Structural-screen vs SAT-proven counts per component.

    Args:
        screens: iterable of
            :class:`~repro.formal.redundancy.UntestabilityScreen`, one
            per component (any order; rendered as given).

    The ``proven`` column is the only set a coverage denominator may
    drop; ``unconfirmed`` must be 0 everywhere or the structural screen
    has lost soundness (rule FV202).
    """
    lines = [
        f"{'name':6s} {'classes':>8s} {'structural':>11s} {'proven':>7s} "
        f"{'witnessed':>10s} {'unconfirmed':>12s} {'conflicts':>10s}",
        "-" * 68,
    ]
    totals = [0, 0, 0, 0, 0, 0]
    for screen in screens:
        row = (
            screen.n_classes,
            len(screen.structural),
            len(screen.proven),
            len(screen.witnessed),
            len(screen.unconfirmed),
            screen.conflicts,
        )
        totals = [t + v for t, v in zip(totals, row, strict=True)]
        lines.append(
            f"{screen.component:6s} {row[0]:8d} {row[1]:11d} {row[2]:7d} "
            f"{row[3]:10d} {row[4]:12d} {row[5]:10d}"
        )
    lines.append("-" * 68)
    lines.append(
        f"{'total':6s} {totals[0]:8d} {totals[1]:11d} {totals[2]:7d} "
        f"{totals[3]:10d} {totals[4]:12d} {totals[5]:10d}"
    )
    return "\n".join(lines)


def render_collapse_table(entries) -> str:
    """Structural-collapse summary per component.

    Args:
        entries: iterable of ``(CollapseMap, CollapseCheck)`` pairs (see
            :mod:`repro.analysis.collapse`), one per component, rendered
            in the given order.

    ``ratio`` is classes per simulation unit — the steady-state shrink
    factor every campaign gets from ``--collapse``.  The SAT column
    counts spot-checked claims; ``refuted`` must be 0 everywhere or the
    static analysis is unsound (rules NL202/NL203).
    """
    lines = [
        f"{'name':6s} {'classes':>8s} {'supers':>7s} {'ratio':>6s} "
        f"{'merges':>7s} {'dom edges':>10s} {'SAT ok':>7s} "
        f"{'refuted':>8s}",
        "-" * 64,
    ]
    totals = [0, 0, 0, 0, 0, 0]
    for cmap, check in entries:
        refuted = len(check.refuted_equivalence) + len(
            check.refuted_dominance
        )
        checked = check.n_equivalence + check.n_dominance
        row = (
            cmap.n_classes, cmap.n_supers, len(cmap.merges),
            len(cmap.edges), checked - refuted, refuted,
        )
        totals = [t + v for t, v in zip(totals, row, strict=True)]
        lines.append(
            f"{cmap.netlist.name:6s} {row[0]:8d} {row[1]:7d} "
            f"{cmap.ratio:6.2f} {row[2]:7d} {row[3]:10d} {row[4]:7d} "
            f"{row[5]:8d}"
        )
    lines.append("-" * 64)
    ratio = totals[0] / totals[1] if totals[1] else 0.0
    lines.append(
        f"{'total':6s} {totals[0]:8d} {totals[1]:7d} {ratio:6.2f} "
        f"{totals[2]:7d} {totals[3]:10d} {totals[4]:7d} {totals[5]:8d}"
    )
    return "\n".join(lines)


def render_reach_table(entries) -> str:
    """Program-aware reach-screen summary per component.

    Args:
        entries: iterable of ``(ReachReport, ReachCheck)`` pairs (see
            :mod:`repro.analysis.reach`), one per component, rendered in
            the given order.

    ``proven`` is the share of the class universe the screen certifies
    as unexercised by the analyzed program — exactly the classes a
    ``reach``-enabled campaign skips simulating.  The SAT column counts
    spot-checked constant-net claims; ``refuted`` must be 0 everywhere
    or the abstract interpretation is unsound (rule RC302).  Degraded
    components (abstraction gave up) decide nothing and grade normally.
    """
    lines = [
        f"{'name':6s} {'classes':>8s} {'exercised':>10s} {'proven':>7s} "
        f"{'unknown':>8s} {'proven%':>8s} {'patterns':>9s} "
        f"{'SAT ok':>7s} {'refuted':>8s}",
        "-" * 68,
    ]
    totals = [0, 0, 0, 0, 0, 0]
    for report, check in entries:
        if report.degraded:
            lines.append(
                f"{report.component:6s} {report.n_classes:8d} "
                f"{'- degraded: ' + report.degrade_reason}"
            )
            totals[0] += report.n_classes
            continue
        pct = (
            100.0 * report.n_proven / report.n_classes
            if report.n_classes else 0.0
        )
        row = (
            report.n_classes, report.n_exercised, report.n_proven,
            report.n_unknown, check.n_checked, len(check.refuted),
        )
        totals = [t + v for t, v in zip(totals, row, strict=True)]
        lines.append(
            f"{report.component:6s} {row[0]:8d} {row[1]:10d} {row[2]:7d} "
            f"{row[3]:8d} {pct:7.1f}% {report.n_patterns:9d} "
            f"{row[4] - row[5]:7d} {row[5]:8d}"
        )
    lines.append("-" * 68)
    pct = 100.0 * totals[2] / totals[0] if totals[0] else 0.0
    lines.append(
        f"{'total':6s} {totals[0]:8d} {totals[1]:10d} {totals[2]:7d} "
        f"{totals[3]:8d} {pct:7.1f}% {'':9s} "
        f"{totals[4] - totals[5]:7d} {totals[5]:8d}"
    )
    return "\n".join(lines)


def formal_table_json(screens) -> list[dict]:
    """:func:`render_formal_table` rows as JSON-safe dicts (``--json``)."""
    return [
        {
            "component": screen.component,
            "classes": screen.n_classes,
            "structural": len(screen.structural),
            "proven": len(screen.proven),
            "witnessed": len(screen.witnessed),
            "unconfirmed": len(screen.unconfirmed),
            "conflicts": screen.conflicts,
        }
        for screen in screens
    ]


def collapse_table_json(entries) -> list[dict]:
    """:func:`render_collapse_table` rows as JSON-safe dicts."""
    rows = []
    for cmap, check in entries:
        refuted = len(check.refuted_equivalence) + len(
            check.refuted_dominance
        )
        rows.append(
            {
                "component": cmap.netlist.name,
                "classes": cmap.n_classes,
                "supers": cmap.n_supers,
                "ratio": round(cmap.ratio, 4),
                "merges": len(cmap.merges),
                "dominance_edges": len(cmap.edges),
                "sat_checked": check.n_equivalence + check.n_dominance,
                "sat_refuted": refuted,
            }
        )
    return rows


def reach_table_json(entries) -> list[dict]:
    """:func:`render_reach_table` rows as JSON-safe dicts."""
    rows = []
    for report, check in entries:
        rows.append(
            {
                "component": report.component,
                "program_digest": report.program_digest,
                "classes": report.n_classes,
                "exercised": report.n_exercised,
                "proven_unexercised": report.n_proven,
                "unknown": report.n_unknown,
                "patterns": report.n_patterns,
                "degraded": report.degraded,
                "degrade_reason": report.degrade_reason,
                "reach_hash": report.reach_hash,
                "sat_checked": check.n_checked,
                "sat_refuted": len(check.refuted),
            }
        )
    return rows


def render_testability_table() -> str:
    """Per-component testability: Section 2.2 scores made quantitative.

    Columns: the hand-derived instruction-sequence costs from
    ``core.priority.ACCESSIBILITY``, the measured SCOAP averages, and the
    structurally untestable share of the collapsed fault universe.
    """
    from repro.analysis.scoap import compute_scoap, untestable_fault_classes
    from repro.core.priority import quantitative_accessibility
    from repro.faultsim.faults import build_fault_list
    from repro.plasma.components import COMPONENTS

    lines = [
        f"{'name':6s} {'grade':6s} {'instr C/O':>9s} {'SCOAP CC':>9s} "
        f"{'SCOAP CO':>9s} {'untestable':>12s}",
        "-" * 56,
    ]
    for info in COMPONENTS:
        scores = quantitative_accessibility(info.name)
        netlist = info.builder()
        fault_list = build_fault_list(netlist)
        untestable = untestable_fault_classes(
            fault_list, compute_scoap(netlist)
        )
        cc = f"{scores.scoap_cc:9.1f}" if scores.scoap_cc is not None \
            else f"{'-':>9s}"
        co = f"{scores.scoap_co:9.1f}" if scores.scoap_co is not None \
            else f"{'-':>9s}"
        lines.append(
            f"{info.name:6s} {scores.grade:6s} "
            f"{scores.control_cost}/{scores.observe_cost:>7d} {cc} {co} "
            f"{len(untestable):5d}/{fault_list.n_collapsed:<6d}"
        )
    return "\n".join(lines)
