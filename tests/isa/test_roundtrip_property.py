"""Property tests: assembler <-> disassembler <-> CPU consistency on
randomly generated instruction streams."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_program
from repro.isa.encoding import decode, encode
from repro.isa.instruction import INSTRUCTION_SET, Format, Kind, Syntax

_NON_CONTROL = sorted(
    m for m, s in INSTRUCTION_SET.items()
    if s.kind not in (Kind.BRANCH, Kind.JUMP)
    and s.kind not in (Kind.LOAD, Kind.STORE)
)


_USED_FIELDS = {
    Syntax.RD_RS_RT: ("rs", "rt", "rd"),
    Syntax.RD_RT_SA: ("rt", "rd", "shamt"),
    Syntax.RD_RT_RS: ("rs", "rt", "rd"),
    Syntax.RS_RT: ("rs", "rt"),
    Syntax.RD: ("rd",),
    Syntax.RS: ("rs",),
    Syntax.RD_RS: ("rd", "rs"),
    Syntax.RT_RS_IMM: ("rs", "rt", "imm"),
    Syntax.RT_IMM: ("rt", "imm"),
}


def random_word(rng: random.Random) -> int:
    """Random instruction with zeroed don't-care fields (a disassembly
    listing cannot preserve bits no operand carries)."""
    mnemonic = rng.choice(_NON_CONTROL)
    spec = INSTRUCTION_SET[mnemonic]
    used = _USED_FIELDS[spec.syntax]
    fields = dict(
        rs=rng.randrange(32),
        rt=rng.randrange(32) if spec.fmt is not Format.REGIMM else 0,
        rd=rng.randrange(32),
        shamt=rng.randrange(32),
        imm=rng.getrandbits(16),
    )
    fields = {k: (v if k in used else 0) for k, v in fields.items()}
    return encode(mnemonic, **fields)


class TestListingRoundtrip:
    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 100_000), st.integers(5, 60))
    def test_disassembled_listing_reassembles_identically(self, seed, n):
        """words -> disassemble -> reassemble -> identical words.

        Restricted to non-control instructions: branch/jump targets render
        as absolute addresses, which only reassemble identically from the
        same placement (covered separately).
        """
        rng = random.Random(seed)
        words = [random_word(rng) for _ in range(n)]
        source = ".text\n" + "\n".join(
            line.split(": ", 1)[1]
            for line in disassemble_program(_program_of(words))
        )
        program = assemble(source)
        code = [s for s in program.segments if s.is_code][0]
        # Don't-care fields may legitimately differ; decoded meaning must
        # not.
        for original, reassembled in zip(words, code.words, strict=True):
            a, b = decode(original), decode(reassembled)
            assert a.mnemonic == b.mnemonic
            assert (a.rs, a.rt, a.rd, a.imm) == (b.rs, b.rt, b.rd, b.imm)


def _program_of(words):
    from repro.isa.program import Program, Segment

    return Program(segments=[Segment(base=0, words=list(words))])


class TestExecutionOfRandomStreams:
    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 100_000))
    def test_random_compute_streams_execute(self, seed):
        """Any stream of compute instructions executes without error and
        halts (no control flow, so it falls through to the halt idiom)."""
        from repro.plasma.cpu import PlasmaCPU
        from repro.isa.program import Program, Segment

        rng = random.Random(seed)
        words = [random_word(rng) for _ in range(40)]
        # Avoid MULT-family stalls dominating: keep them, they're legal.
        halt = [encode("j", target=(len(words) * 4) >> 2), 0]
        program = Program(segments=[Segment(base=0, words=words + halt)])
        cpu = PlasmaCPU()
        cpu.load_program(program)
        result = cpu.run(max_instructions=10_000)
        assert result.halted
