"""Unit tests for stable structural and stimulus hashing."""

from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType
from repro.netlist.hashing import stimulus_hash, structural_hash


def and_netlist(name="n", out_port="y"):
    b = NetlistBuilder(name)
    a = b.input("a", 1)
    c = b.input("c", 1)
    b.output(out_port, [b.gate(GateType.AND, a[0], c[0])])
    return b.build()


class TestStructuralHash:
    def test_deterministic_across_builds(self):
        assert structural_hash(and_netlist()) == structural_hash(and_netlist())

    def test_display_name_excluded(self):
        assert structural_hash(and_netlist("alpha")) \
            == structural_hash(and_netlist("beta"))

    def test_gate_type_changes_hash(self):
        b = NetlistBuilder("n")
        a = b.input("a", 1)
        c = b.input("c", 1)
        b.output("y", [b.gate(GateType.OR, a[0], c[0])])
        assert structural_hash(b.build()) != structural_hash(and_netlist())

    def test_port_name_changes_hash(self):
        # Port names are simulation-relevant (stimulus binds by name).
        assert structural_hash(and_netlist(out_port="y")) \
            != structural_hash(and_netlist(out_port="z"))

    def test_dangling_net_changes_hash(self):
        b = NetlistBuilder("n")
        a = b.input("a", 1)
        c = b.input("c", 1)
        b.output("y", [b.gate(GateType.AND, a[0], c[0])])
        netlist = b.build()
        plain = and_netlist()
        assert structural_hash(netlist) == structural_hash(plain)
        b2 = NetlistBuilder("n")
        a2 = b2.input("a", 1)
        c2 = b2.input("c", 1)
        b2.output("y", [b2.gate(GateType.AND, a2[0], c2[0])])
        b2.netlist.new_net()  # extra dangling net
        assert structural_hash(b2.build()) != structural_hash(plain)


class TestStimulusHash:
    def test_insertion_order_within_entry_irrelevant(self):
        assert stimulus_hash([dict(a=1, b=2)]) \
            == stimulus_hash([dict(b=2, a=1)])

    def test_entry_order_sensitive(self):
        assert stimulus_hash([dict(a=1), dict(a=2)]) \
            != stimulus_hash([dict(a=2), dict(a=1)])

    def test_values_sensitive(self):
        assert stimulus_hash([dict(a=1)]) != stimulus_hash([dict(a=2)])

    def test_entry_boundaries_disambiguated(self):
        # Two one-port entries must not collide with one two-port entry.
        assert stimulus_hash([dict(a=1), dict(b=2)]) \
            != stimulus_hash([dict(a=1, b=2)])
