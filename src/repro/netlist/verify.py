"""Netlist lint: structural sanity checks run before simulation.

Checks (rule IDs from :mod:`repro.analysis.diagnostics`):

* ``NL001`` every net has exactly one driver (constant, input port,
  gate, or DFF Q);
* ``NL002`` every gate/DFF/output-port input net is driven;
* ``NL003`` no combinational cycles (via
  :func:`~repro.netlist.levelize.levelize`);
* ``NL004`` floating (driven but never read, non-port) nets are
  reported as warnings.

Findings are structured :class:`~repro.analysis.diagnostics.Diagnostic`
objects carrying net/gate locations; :attr:`LintReport.errors` and
:attr:`LintReport.warnings` remain plain-string views for callers that
only want messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, Severity, make_diagnostic
from repro.errors import NetlistError
from repro.netlist.levelize import levelize
from repro.netlist.netlist import Netlist, PortDirection


@dataclass
class LintReport:
    """Outcome of linting one netlist.

    Attributes:
        name: netlist name.
        diagnostics: structured findings in discovery order.
    """

    name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, rule_id: str, message: str, **location) -> None:
        self.diagnostics.append(make_diagnostic(rule_id, message, **location))

    @property
    def error_diagnostics(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warning_diagnostics(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def errors(self) -> list[str]:
        """Error messages as strings (back-compat view)."""
        return [d.message for d in self.error_diagnostics]

    @property
    def warnings(self) -> list[str]:
        """Warning messages as strings (back-compat view)."""
        return [d.message for d in self.warning_diagnostics]

    @property
    def ok(self) -> bool:
        return not self.error_diagnostics


def lint(netlist: Netlist, strict: bool = True) -> LintReport:
    """Lint a netlist.

    Args:
        netlist: circuit to check.
        strict: raise :class:`~repro.errors.NetlistError` on errors instead
            of returning a failing report.

    Returns:
        The lint report (always returned when ``strict`` is False).
    """
    report = LintReport(netlist.name)

    # Single-driver rule (Netlist.drivers raises on double-drive).
    try:
        drivers = netlist.drivers()
    except NetlistError as exc:
        report.add("NL001", str(exc))
        if strict:
            raise
        return report

    # Everything read must be driven.
    read_nets: set[int] = set()
    for gate in netlist.gates:
        for net in gate.inputs:
            read_nets.add(net)
            if net not in drivers:
                report.add(
                    "NL002",
                    f"gate {gate.index} reads undriven net {net}",
                    net=net, gate=gate.index,
                )
    for dff in netlist.dffs:
        read_nets.add(dff.d)
        if dff.d not in drivers:
            report.add(
                "NL002",
                f"dff {dff.index} reads undriven net {dff.d}",
                net=dff.d,
            )
    for port in netlist.ports.values():
        if port.direction is PortDirection.OUTPUT:
            for net in port.nets:
                read_nets.add(net)
                if net not in drivers:
                    report.add(
                        "NL002",
                        f"output port {port.name} exposes undriven net {net}",
                        net=net,
                    )

    # Combinational cycles.
    try:
        levelize(netlist)
    except NetlistError as exc:
        report.add("NL003", str(exc))

    # Floating nets: driven by a gate but never read and not a port bit.
    port_nets = {n for p in netlist.ports.values() for n in p.nets}
    for gate in netlist.gates:
        net = gate.output
        if net not in read_nets and net not in port_nets:
            report.add(
                "NL004",
                f"gate {gate.index} output net {net} is never read",
                net=net, gate=gate.index,
            )

    if strict and report.errors:
        raise NetlistError(
            f"lint failed for {netlist.name!r}: " + "; ".join(report.errors[:5])
        )
    return report
