"""Persistent worker pool and the sharded campaign scheduler.

:mod:`repro.runtime.worker` isolates *one job per process* — perfect for
containing a crash, wasteful for throughput: every job pays a process
start plus a cold rebuild of everything the job needs.  This module adds
the throughput half of the runtime:

* :class:`WorkerPool` — ``jobs`` long-lived worker processes.  Each
  worker receives ``(fn, args)`` tasks over its own duplex pipe and keeps
  executing tasks until told to stop, so per-process state (built
  netlists, compiled engine programs, good-trace caches) is paid once per
  worker and amortized over every shard it grades.
* :class:`ShardScheduler` — drives a list of
  :class:`~repro.runtime.sharding.ShardTask` through the pool with the
  same resilience contract as :class:`~repro.runtime.runner.JobRunner`:
  journaled shards are reused (``cached``), each attempt has a wall-clock
  budget, timeouts / crashes / job errors are retried with backoff, and a
  shard that exhausts its attempts yields a ``failed`` outcome instead of
  aborting the run.  Successes are journaled at shard granularity, so a
  resumed campaign skips exactly the shards that completed.

Load balancing is parent-driven: the scheduler keeps a FIFO of eligible
tasks and hands the next one to whichever worker goes idle first, so a
slow shard on one worker never stalls the rest of the queue
(oversubscription — more shards than workers — gives the queue room to
balance; see :func:`repro.runtime.sharding.plan_shards`).

A worker that times out or crashes is killed and **replaced**; only the
shard it was executing is affected (retried, then degraded), never the
shards other workers already completed.

The ``fork`` start method is preferred (workers inherit the parent's
memory, so the campaign context — traced stimulus, netlist transforms —
needs no pickling); under ``spawn`` the pool initializer and every task
must be picklable, mirroring :mod:`repro.runtime.worker`.
"""

from __future__ import annotations

import contextlib

import time
from dataclasses import dataclass
from multiprocessing import connection
from collections.abc import Callable, Sequence
from typing import Any

from repro.errors import CheckpointCorrupt, JobCancelled, ReproRuntimeError
from repro.runtime.policy import RuntimeConfig
from repro.runtime.runner import JobOutcome, JobRunner
from repro.runtime.sharding import ShardTask
from repro.runtime.worker import _CTX, _reap, run_child_init_hooks


def _pool_worker(conn, initializer, initargs) -> None:
    """Worker main loop: execute ``(fn, args)`` tasks until ``None``."""
    run_child_init_hooks()
    if initializer is not None:
        initializer(*initargs)
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if message is None:
            break
        fn, args = message
        started = time.perf_counter()
        try:
            value = fn(*args)
        except BaseException as exc:
            try:
                conn.send(("error", type(exc).__name__, str(exc)))
            except Exception:
                break  # parent gone; die quietly (reported as a crash)
        else:
            elapsed = time.perf_counter() - started
            try:
                conn.send(("ok", value, elapsed))
            except Exception:
                try:
                    conn.send((
                        "error", "PicklingError",
                        "shard result is not picklable",
                    ))
                except Exception:
                    break
    conn.close()


class _Worker:
    """Parent-side handle for one pool process."""

    def __init__(self, initializer, initargs):
        self.conn, child_conn = _CTX.Pipe(duplex=True)
        self.proc = _CTX.Process(
            target=_pool_worker,
            args=(child_conn, initializer, initargs),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.pending = None  # the _Pending currently executing, if any
        self.started = 0.0  # monotonic dispatch time of that task

    @property
    def busy(self) -> bool:
        return self.pending is not None

    def dispatch(self, pending: "_Pending", now: float) -> None:
        self.conn.send((pending.task.fn, pending.task.args))
        self.pending = pending
        self.started = now

    def stop(self) -> None:
        """Shut the worker down, politely then firmly."""
        with contextlib.suppress(BrokenPipeError, OSError):
            if self.proc.is_alive():
                self.conn.send(None)
        with contextlib.suppress(OSError):
            self.conn.close()
        _reap(self.proc)


@dataclass
class _Pending:
    """One not-yet-completed task with its retry bookkeeping."""

    task: ShardTask
    attempt: int = 0  # attempts already consumed
    eligible_at: float = 0.0  # monotonic time before which it must wait
    last_error: str = ""


class WorkerPool:
    """A fixed-size set of persistent task workers.

    Thin lifecycle wrapper used by :class:`ShardScheduler`; exposed for
    tests and for callers that want raw pooled execution without the
    checkpoint/retry layer.
    """

    def __init__(
        self,
        jobs: int,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ):
        if jobs < 1:
            raise ReproRuntimeError("a worker pool needs at least 1 worker")
        self.jobs = jobs
        self.initializer = initializer
        self.initargs = initargs
        self.workers: list[_Worker] = []

    def start(self, n: int | None = None) -> None:
        for _ in range(n if n is not None else self.jobs):
            self.workers.append(self._spawn())

    def _spawn(self) -> _Worker:
        return _Worker(self.initializer, self.initargs)

    def replace(self, worker: _Worker) -> _Worker:
        """Kill ``worker`` and put a fresh process in its slot."""
        worker.stop()
        fresh = self._spawn()
        self.workers[self.workers.index(worker)] = fresh
        return fresh

    def stop(self) -> None:
        for worker in self.workers:
            worker.stop()
        self.workers.clear()

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class ShardScheduler:
    """Run shard tasks over a :class:`WorkerPool` with the resilience
    contract of :class:`~repro.runtime.runner.JobRunner`.

    The scheduler owns a :class:`JobRunner` purely for its checkpoint /
    event-log plumbing (journal loading honours ``resume``, records are
    fingerprint-guarded, malformed entries surface as
    :class:`~repro.errors.CheckpointCorrupt`); execution itself is pooled
    rather than one-process-per-job.
    """

    def __init__(
        self,
        config: RuntimeConfig | None = None,
        jobs: int | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ):
        self.config = config or RuntimeConfig()
        self.jobs = jobs if jobs is not None else max(1, self.config.jobs)
        self.initializer = initializer
        self.initargs = initargs
        self.runner = JobRunner(self.config)

    @property
    def events(self):
        """The structured event log (shared with the inner runner)."""
        return self.runner.events

    # ------------------------------------------------------------- run

    def run(
        self,
        tasks: Sequence[ShardTask],
        serialize: Callable[[Any], dict] | None = None,
    ) -> dict[str, JobOutcome]:
        """Execute every task; never raises for per-shard failures.

        Returns:
            ``{task.key: JobOutcome}`` — ``cached`` (journaled result
            reused), ``ok`` (graded in a pool worker) or ``failed``
            (attempts exhausted; only this shard is lost).
        """
        keys = [t.key for t in tasks]
        if len(set(keys)) != len(keys):
            dup = sorted({k for k in keys if keys.count(k) > 1})
            raise CheckpointCorrupt(
                f"duplicate shard keys would collide in the journal: {dup}",
                key=dup[0],
                path=getattr(self.runner.checkpoint, "path", None),
            )
        outcomes: dict[str, JobOutcome] = {}
        pending: list[_Pending] = []
        for task in tasks:
            try:
                record = self.runner.cached_record(task.key, task.fingerprint)
            except CheckpointCorrupt:
                # Journal entry unusable: distrust it and re-grade the
                # shard (the fresh record wins on the next resume).
                self.runner.invalidate(task.key)
                record = None
            if record is not None:
                self.events.emit(
                    task.key, "cached", detail="journaled shard reused"
                )
                outcomes[task.key] = JobOutcome(
                    task.key, "cached", record=record
                )
            else:
                pending.append(_Pending(task))
        if not pending:
            return outcomes

        pool = WorkerPool(
            max(1, min(self.jobs, len(pending))),
            self.initializer, self.initargs,
        )
        pool.start()
        try:
            self._drive(pool, pending, outcomes, serialize)
        finally:
            pool.stop()
        return outcomes

    # ----------------------------------------------------------- loop

    def _drive(self, pool, pending, outcomes, serialize) -> None:
        while pending or any(w.busy for w in pool.workers):
            if self.config.cancelled():
                # Cooperative cancellation: kill the busy workers (their
                # in-flight shards are abandoned, not journaled) and
                # surface JobCancelled.  Completed shards are already in
                # the journal, so a resumed run re-grades exactly the
                # abandoned + never-started ones.
                interrupted = [
                    w.pending.task.key for w in pool.workers if w.busy
                ]
                for key in interrupted:
                    self.events.emit(
                        key, "cancelled", detail="shard abandoned mid-run"
                    )
                for entry in pending:
                    self.events.emit(
                        entry.task.key, "cancelled",
                        detail="shard never started",
                    )
                pool.stop()  # terminates busy workers (SIGTERM, then KILL)
                raise JobCancelled(interrupted[0] if interrupted else "")
            now = time.monotonic()
            for worker in pool.workers:
                if worker.busy:
                    continue
                nxt = self._next_eligible(pending, now)
                if nxt is None:
                    break
                pending.remove(nxt)
                nxt.attempt += 1
                self.events.emit(nxt.task.key, "start", attempt=nxt.attempt)
                worker.dispatch(nxt, now)

            busy = [w for w in pool.workers if w.busy]
            if not busy:
                # Everything eligible is blocked on backoff.
                delay = min(p.eligible_at for p in pending) - time.monotonic()
                if self.config.cancel is not None:
                    delay = min(delay, self.CANCEL_POLL_SECONDS)
                if delay > 0:
                    self.config.sleep(delay)
                continue

            handles = []
            for worker in busy:
                handles.append(worker.conn)
                handles.append(worker.proc.sentinel)
            ready = set(
                connection.wait(handles, self._wait_timeout(busy, pending))
            )
            for worker in busy:
                if worker.conn in ready:
                    self._collect(worker, pool, pending, outcomes, serialize)
                elif worker.proc.sentinel in ready:
                    self._fail_attempt(
                        worker, pool, pending, outcomes, "crash",
                        f"worker for shard {worker.pending.task.key!r} "
                        f"died (exit code {worker.proc.exitcode})",
                    )
            budget = self.config.timeout_seconds
            if budget is not None:
                now = time.monotonic()
                for worker in pool.workers:
                    if worker.busy and now - worker.started >= budget:
                        self._fail_attempt(
                            worker, pool, pending, outcomes, "timeout",
                            f"shard {worker.pending.task.key!r} exceeded "
                            f"its {budget:g}s wall-clock budget",
                        )

    def _next_eligible(self, pending, now) -> _Pending | None:
        for entry in pending:
            if entry.eligible_at <= now:
                return entry
        return None

    #: Poll interval while a cancellation hook is armed: the scheduler
    #: may otherwise block in ``connection.wait`` for as long as the
    #: slowest shard runs, which would defer cancellation indefinitely.
    CANCEL_POLL_SECONDS = 0.25

    def _wait_timeout(self, busy, pending) -> float | None:
        """How long ``connection.wait`` may block before the scheduler
        must wake up (per-shard deadline, a backoff expiring, or the
        cancellation poll)."""
        candidates = []
        now = time.monotonic()
        if self.config.timeout_seconds is not None:
            candidates.extend(
                worker.started + self.config.timeout_seconds - now
                for worker in busy
            )
        if pending:
            candidates.append(min(p.eligible_at for p in pending) - now)
        if self.config.cancel is not None:
            candidates.append(self.CANCEL_POLL_SECONDS)
        if not candidates:
            return None
        return max(0.0, min(candidates))

    # -------------------------------------------------------- outcomes

    def _collect(self, worker, pool, pending, outcomes, serialize) -> None:
        entry = worker.pending
        task = entry.task
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            self._fail_attempt(
                worker, pool, pending, outcomes, "crash",
                f"worker for shard {task.key!r} died "
                f"(exit code {worker.proc.exitcode})",
            )
            return
        if message[0] == "ok":
            _, value, elapsed = message
            worker.pending = None
            throughput = task.size / elapsed if elapsed > 0 else None
            self.events.emit(
                task.key, "success", attempt=entry.attempt,
                duration=elapsed, throughput=throughput,
                detail=f"{task.size} fault classes",
            )
            record = serialize(value) if serialize is not None else {}
            self.runner.journal(task.key, record, task.fingerprint)
            outcomes[task.key] = JobOutcome(
                task.key, "ok", value=value, record=record or None,
                attempts=entry.attempt, elapsed=elapsed,
            )
        else:
            _, exc_type, detail = message
            worker.pending = None
            self._retry_or_fail(
                entry, pending, outcomes, "failure",
                f"shard {task.key!r} failed: {exc_type}: {detail}",
            )

    def _fail_attempt(
        self, worker, pool, pending, outcomes, kind, error
    ) -> None:
        """A worker died or overran its budget: replace it, and retry or
        degrade the one shard it was executing."""
        entry = worker.pending
        worker.pending = None
        pool.replace(worker)
        self._retry_or_fail(entry, pending, outcomes, kind, error)

    def _retry_or_fail(self, entry, pending, outcomes, kind, error) -> None:
        task = entry.task
        self.events.emit(
            task.key, kind, attempt=entry.attempt, detail=error,
        )
        entry.last_error = error
        policy = self.config.retry
        if entry.attempt < policy.max_attempts:
            delay = policy.delay_before_retry(entry.attempt)
            entry.eligible_at = time.monotonic() + delay
            pending.append(entry)
            self.events.emit(
                task.key, "retry", attempt=entry.attempt + 1,
                detail=f"backoff {delay:g}s",
            )
        else:
            self.events.emit(
                task.key, "degraded", attempt=entry.attempt, detail=error,
            )
            outcomes[task.key] = JobOutcome(
                task.key, "failed", attempts=entry.attempt, error=error,
            )
