"""Witness-driven ATPG: SAT models become deterministic test vectors.

The SBST methodology develops tests from component regularity, which
leaves a tail of *hard-to-detect* faults — deep in the logic, high
SCOAP controllability/observability cost, missed by the regular
pattern sets.  This module closes that tail deterministically: the
hardest fault classes (ranked by SCOAP detection cost) are fed through
the incremental good/faulty miter of
:class:`repro.formal.redundancy.FaultMiterSession`; a satisfiable miter
hands back a *witness* — a concrete input assignment that provably
detects the fault — and an unsatisfiable one is a redundancy proof, so
every target resolves one way or the other.

Witness vectors use the test-set library convention of
:mod:`repro.core.testlib` and the campaign harness: one
``{input port: value}`` mapping per vector, directly consumable by
:func:`repro.faultsim.grade`.  Every emitted vector has been replayed
through :func:`repro.formal.evaluate.eval_cut` (good vs faulty) before
it is returned.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.scoap import ScoapAnalysis, compute_scoap
from repro.faultsim.faults import Fault, FaultKind, FaultList, build_fault_list
from repro.formal.redundancy import FaultMiterSession
from repro.netlist.netlist import CONST0, CONST1, Netlist


def fault_detection_cost(
    fault: Fault, analysis: ScoapAnalysis, netlist: Netlist
) -> float:
    """SCOAP estimate of how hard a fault is to detect.

    Excitation cost (drive the site to the opposite of the stuck value)
    plus observation cost of the fault's propagation entry point.
    ``inf`` marks faults SCOAP cannot justify — prime redundancy
    suspects, ranked hardest of all.
    """
    cc = analysis.cc0 if fault.stuck == 1 else analysis.cc1
    excite = cc[fault.net]
    if fault.kind is FaultKind.STEM:
        entry = fault.net
    elif fault.kind is FaultKind.BRANCH:
        entry = netlist.gates[fault.gate].output
    else:  # DFF_D
        entry = netlist.dffs[fault.gate].q
    observe = analysis.co[entry] if entry not in (CONST0, CONST1) else 0.0
    return excite + observe


def hard_fault_targets(
    fault_list: FaultList,
    analysis: ScoapAnalysis,
    n_targets: int,
) -> list[int]:
    """The ``n_targets`` hardest collapsed classes, hardest first."""
    netlist = fault_list.netlist
    ranked = sorted(
        fault_list.class_representatives(),
        key=lambda rep: (
            -fault_detection_cost(fault_list.fault(rep), analysis, netlist),
            rep,
        ),
    )
    return ranked[:n_targets]


@dataclass(frozen=True)
class AtpgVector:
    """One deterministic test vector produced from a SAT witness."""

    rep: int
    fault: str
    pattern: dict[str, int]
    state: tuple[int, ...]
    cost: float


@dataclass(frozen=True)
class AtpgResult:
    """Vectors plus redundancy proofs for the targeted fault classes.

    Every target lands in exactly one of ``vectors`` (testable, with a
    confirmed detecting pattern) or ``proven_redundant`` (UNSAT miter).
    """

    component: str
    n_targets: int
    vectors: tuple[AtpgVector, ...]
    proven_redundant: frozenset[int]
    conflicts: int

    def patterns(self) -> list[dict[str, int]]:
        """Deduplicated vectors in the campaign pattern format."""
        seen: set[tuple[tuple[str, int], ...]] = set()
        result: list[dict[str, int]] = []
        for vec in self.vectors:
            key = tuple(sorted(vec.pattern.items()))
            if key not in seen:
                seen.add(key)
                result.append(dict(vec.pattern))
        return result


def generate_vectors(
    netlist: Netlist,
    *,
    n_targets: int = 32,
    fault_list: FaultList | None = None,
    analysis: ScoapAnalysis | None = None,
    component: str | None = None,
) -> AtpgResult:
    """Resolve the hardest fault classes into vectors or proofs.

    For combinational netlists each vector's ``pattern`` is complete;
    for sequential cuts the vector also carries the witness ``state``
    (Q bit per DFF), which a wrapping routine must justify before the
    pattern applies.
    """
    if fault_list is None:
        fault_list = build_fault_list(netlist)
    if analysis is None:
        analysis = compute_scoap(netlist)
    targets = hard_fault_targets(fault_list, analysis, n_targets)

    session = FaultMiterSession(netlist, analysis=analysis)
    vectors: list[AtpgVector] = []
    redundant: set[int] = set()
    conflicts = 0
    for rep in targets:
        fault = fault_list.fault(rep)
        verdict = session.query(fault, rep)
        conflicts += verdict.conflicts
        if verdict.redundant:
            redundant.add(rep)
            continue
        witness = verdict.witness
        assert witness is not None
        cost = fault_detection_cost(fault, analysis, netlist)
        vectors.append(
            AtpgVector(
                rep=rep,
                fault=fault.describe(netlist),
                pattern=dict(witness.inputs),
                state=witness.state,
                cost=math.inf if cost == math.inf else round(cost, 1),
            )
        )
    return AtpgResult(
        component=component or netlist.name,
        n_targets=len(targets),
        vectors=tuple(vectors),
        proven_redundant=frozenset(redundant),
        conflicts=conflicts,
    )
