"""Fault-parallel bit-packed grading: the ``packed`` engine.

The compiled engine (:mod:`repro.faultsim.engine`) is *pattern*-parallel:
one fault at a time rides a whole chunk of patterns through generated
code.  This engine is additionally *fault*-parallel — the classic
parallel-fault trick: up to ``lanes - 1`` fault classes are packed into
one Python big-int next to the good machine, so each generated kernel
evaluation serves a whole group of faults at once and the per-gate
interpreter overhead is amortized across the group.

Data layout (combinational).  One word carries ``G`` *lane groups* of
``W`` pattern lanes each — group 0 is the good machine, group ``i >= 1``
is one fault class::

    word = sum(group_value[i] << (i * W) for i in range(G))

The good chunk value of net ``n`` is broadcast into every group by one
multiplication with the replication constant
``R = sum(1 << i*W for i in range(G))``; faults are injected between
levelized kernel evaluations with set/clear masks spanning their group;
detection is one XOR against the replicated good value masked by the
replicated observe mask — a non-zero sub-word in group ``i`` convicts
fault ``i`` on exactly the differing patterns.

Lane repacking.  Detected faults leave the pending list after every
pattern chunk, and the next chunk re-packs the survivors densely into
fresh groups — wider chunks only ever carry the stubborn faults.

Cone fusion.  Unlike the other engines this one preserves the *caller's*
``only`` order instead of re-canonicalising: collapsed grading passes
super-class sim units in :meth:`CollapseMap.simulation_order`, which
keeps dominance clusters (shared fanout cones, PR 6) contiguous — so the
members of one cone land in the same word and one kernel evaluation
serves the whole super-class group.  Verdicts are order-independent, so
this is purely a locality win.

Sequential netlists run the compiled engine's batched cycle walk with
the good machine packed into lane 0 — the detection reference is read
out of the word itself instead of the recorded trace.

Verdicts are bit-identical to the other engines (the cross-engine
equivalence suite and ``benchmarks/bench_packed.py`` gate this):
``detected``, ``excited`` and the first detecting cycle agree;
``Detection.lanes`` remains a partial witness as documented in
:mod:`repro.faultsim.engine`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import FaultSimError
from repro.faultsim.differential import Detection
from repro.faultsim.engine import (
    Stimulus,
    _excited_sequence,
    _graded_reps,
    _output_nets,
    _repack_word,
)
from repro.faultsim.faults import FaultKind, FaultList
from repro.faultsim.harness import CampaignResult
from repro.faultsim.lowering import cached_compile_seq
from repro.faultsim.observe import ObservePlan
from repro.faultsim.options import DEFAULT_LANES, GradeOptions
from repro.faultsim.parallel import _eval
from repro.faultsim.trace_cache import good_trace_for
from repro.netlist.netlist import CONST0, CONST1, Netlist, PortDirection

#: Pending combinational fault: (rep, stuck, inject level, net, gate, pin);
#: ``gate`` is -1 for stem faults.
_PackedEntry = tuple[int, int, int, int, int, int]

#: Pattern widths per combinational pass.  Narrower than the compiled
#: engine's chunk schedule on purpose: every per-chunk cost here — good
#: value replication, kernel evaluation, injection masks — scales with
#: ``lane groups x width`` bits, and the vast majority of faults are
#: detected within the first few dozen patterns, so starting narrow and
#: growing geometrically lets the cheap passes kill the easy faults
#: before any wide word is ever built.
PACKED_CHUNK_SCHEDULE = (32, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def _packed_spans(n_lanes: int) -> Iterable[tuple[int, int]]:
    """Yield ``(base, width)`` pattern spans with byte-aligned widths.

    The final span is padded up to a multiple of 8 so detection words can
    be carved out of the accumulator with one ``int.to_bytes`` pass; the
    padding lanes read zeros from the good trace and carry no observe
    mask bits, so they can never convict a fault.
    """
    base = 0
    schedule = iter(PACKED_CHUNK_SCHEDULE)
    rest = PACKED_CHUNK_SCHEDULE[-1]
    while base < n_lanes:
        width = min(next(schedule, rest), n_lanes - base)
        yield base, (width + 7) // 8 * 8
        base += width


def _replicate(value: int, width: int, n_groups: int, full: int) -> int:
    """Broadcast a ``width``-bit chunk value into every lane group.

    Doubling (shift-or) instead of multiplying by the replication
    constant: the multiply costs ``digits(value) * digits(constant)``
    limb operations per net, the doubling ladder only ``O(groups *
    width)`` bits total — an order of magnitude cheaper on wide chunks.
    """
    rep = value
    g = 1
    while g < n_groups:
        rep |= rep << (g * width)
        g *= 2
    return rep & full


class PackedEngine:
    """Fault-parallel bit-packed grading over generated level kernels."""

    name = "packed"

    def __init__(
        self,
        lanes: int = DEFAULT_LANES,
        repack_threshold: float = 0.5,
        min_repack_drop: int = 8,
    ):
        if lanes < 2:
            raise FaultSimError("packed engine needs at least 2 lane groups")
        self.lanes = lanes
        self.repack_threshold = repack_threshold
        self.min_repack_drop = min_repack_drop

    def configure(self, options: GradeOptions) -> None:
        """Engine-config hook called by the grading facade."""
        self.lanes = options.lanes

    # ------------------------------------------------------------- facade

    def grade(
        self,
        netlist: Netlist,
        stimulus: Stimulus,
        fault_list: FaultList,
        plan: ObservePlan,
        *,
        name: str = "",
        skip: frozenset[int] = frozenset(),
        only: Sequence[int] | None = None,
    ) -> CampaignResult:
        result = CampaignResult(
            name or netlist.name, fault_list,
            n_patterns=len(stimulus), pruned=set(skip),
        )
        reps = self._ordered_reps(fault_list, skip, only)
        if netlist.dffs:
            self._grade_sequential(
                netlist, stimulus, fault_list, plan, result, reps
            )
        else:
            self._grade_combinational(
                netlist, stimulus, fault_list, plan, result, reps
            )
        return result

    @staticmethod
    def _ordered_reps(
        fault_list: FaultList,
        skip: frozenset[int],
        only: Sequence[int] | None,
    ) -> list[int]:
        if only is None:
            return _graded_reps(fault_list, skip)
        # Preserve the caller's order (cone fusion, see module docstring).
        classes = fault_list.classes
        seen: set[int] = set()
        reps = []
        for r in only:
            if r in classes and r not in skip and r not in seen:
                seen.add(r)
                reps.append(r)
        return reps

    # ---------------------------------------------------- combinational

    def _grade_combinational(
        self,
        netlist: Netlist,
        patterns: Stimulus,
        fault_list: FaultList,
        plan: ObservePlan,
        result: CampaignResult,
        reps: Sequence[int],
    ) -> None:
        trace = good_trace_for(netlist, patterns, packed=True)
        good = trace.values[0]
        full_mask = trace.lanes.mask

        obs_masks = plan.packed_net_masks(netlist)
        if obs_masks is None:
            obs_masks = {net: full_mask for net in _output_nets(netlist)}
        obs_masks = {n: m for n, m in obs_masks.items() if m}
        prog = cached_compile_seq(netlist, sorted(obs_masks))
        level_fns = prog.level_fns
        driven_at = prog.driven_at
        gate_level = prog.gate_level
        keep = prog.keep
        max_level = prog.max_level
        gates = netlist.gates
        detections = result.detections
        detected = result.detected

        # Every net the kernels or the detection compare read: kept-gate
        # inputs plus observed nets.  Only these need good-value
        # replication; grouped by driving level for eval_from preloads.
        needed: set[int] = set(obs_masks)
        for g in gates:
            if g.index in keep:
                needed.update(g.inputs)
        needed.discard(CONST0)
        needed.discard(CONST1)
        by_level: dict[int, list[int]] = {}
        for n in sorted(needed):
            by_level.setdefault(driven_at.get(n, 0), []).append(n)

        # Full-width excitation screen (identical to the compiled
        # engine), then dead-cone screen: a fault whose effect no kernel
        # reads and no entry observes can never be detected.
        pending: list[_PackedEntry] = []
        for rep in reps:
            fault = fault_list.fault(rep)
            if good[fault.net] == (full_mask if fault.stuck else 0):
                detections[rep] = Detection(False, excited=False)
                continue
            if fault.kind is FaultKind.STEM:
                if fault.net not in needed and fault.net not in obs_masks:
                    detections[rep] = Detection(False, excited=True)
                    continue
                entry = (
                    rep, fault.stuck, driven_at.get(fault.net, 0),
                    fault.net, -1, 0,
                )
            else:  # BRANCH (combinational netlists have no DFF_D)
                if fault.gate not in keep:
                    detections[rep] = Detection(False, excited=True)
                    continue
                entry = (
                    rep, fault.stuck, gate_level[fault.gate],
                    fault.net, fault.gate, fault.pin,
                )
            pending.append(entry)

        # Stable level sort: batches become injection-level homogeneous,
        # so the shared preload skips the most kernels per batch, while
        # same-level cone clusters (the caller's ``only`` order) stay
        # adjacent inside one word.
        pending.sort(key=lambda e: e[2])

        capacity = self.lanes - 1
        n_groups = capacity + 1
        obs_items = sorted(obs_masks.items())
        source_nets = by_level.get(0, [])

        for base, width in _packed_spans(trace.lanes.count):
            if not pending:
                break
            chunk_mask = (1 << width) - 1
            full = (1 << (n_groups * width)) - 1
            spans = [chunk_mask << (gi * width) for gi in range(n_groups)]
            # The replicated good chunk of every preloaded net is shared
            # by all batches in the chunk.  With many batches the full
            # preload pays for itself (each batch skips every kernel
            # below its injection level); once the survivors fit a
            # couple of words, replicate only the source nets and
            # evaluate from level 1 instead.
            heavy = len(pending) > capacity * 2
            preload = needed if heavy else source_nets
            good_rep: dict[int, int] = {
                n: _replicate((good[n] >> base) & chunk_mask,
                              width, n_groups, full)
                for n in preload
            }
            for n in obs_masks:
                if n not in good_rep:
                    good_rep[n] = _replicate(
                        (good[n] >> base) & chunk_mask, width, n_groups, full
                    )
            obs_pack = []
            for n, m in obs_items:
                om = (m >> base) & chunk_mask
                if om:
                    obs_pack.append((
                        n, good_rep[n],
                        _replicate(om, width, n_groups, full),
                    ))
            still: list[_PackedEntry] = []
            for at in range(0, len(pending), capacity):
                batch = pending[at : at + capacity]
                survivors = self._run_comb_batch(
                    batch, good_rep, obs_pack, by_level, level_fns,
                    gates, netlist.n_nets, max_level, width, base,
                    full, spans, heavy, detections, detected,
                )
                still.extend(survivors)
            pending = still

        for entry in pending:
            # Survived every chunk despite being excited somewhere.
            detections[entry[0]] = Detection(False, excited=True)

    def _run_comb_batch(
        self,
        batch: list[_PackedEntry],
        good_rep: dict[int, int],
        obs_pack: list[tuple[int, int, int]],
        by_level: dict[int, list[int]],
        level_fns: Sequence[object],
        gates: Sequence[object],
        n_nets: int,
        max_level: int,
        width: int,
        base: int,
        full: int,
        spans: Sequence[int],
        heavy: bool,
        detections: dict[int, Detection],
        detected: set[int],
    ) -> list[_PackedEntry]:
        """One word, one chunk: good machine + ``len(batch)`` faults."""
        # Injection tables: span masks per group, applied between levels
        # exactly like the compiled sequential walk.
        net_fix: dict[int, dict[int, list[int]]] = {}
        pin_fix: dict[int, dict[int, dict[int, list[int]]]] = {}
        min_level = max_level
        for gi, (_rep, stuck, level, net, gate, pin) in enumerate(
            batch, start=1
        ):
            span = spans[gi]
            if level < min_level:
                min_level = level
            slot = 0 if stuck else 1
            if gate < 0:
                entry = net_fix.setdefault(level, {}).setdefault(
                    net, [0, 0]
                )
            else:
                entry = (
                    pin_fix.setdefault(level, {})
                    .setdefault(gate, {})
                    .setdefault(pin, [0, 0])
                )
            entry[slot] |= span

        # Levels below the earliest injection carry pure good values in
        # every group: with the full (heavy) preload they come straight
        # from the shared replicated good word instead of being
        # evaluated; the light preload only covers the source nets, so
        # evaluation must start at level 1.
        eval_from = min_level + 1 if heavy else 1
        v = [0] * n_nets
        v[CONST1] = full
        for level, nets in by_level.items():
            if level < eval_from:
                for n in nets:
                    v[n] = good_rep[n]

        for level in sorted(set(net_fix) | set(pin_fix)):
            if level >= eval_from:
                break
            self._apply_fixes(
                v, pin_fix.get(level), net_fix.get(level), gates, full
            )

        for level in range(eval_from, max_level + 1):
            level_fns[level](v, full)  # type: ignore[operator]
            if level in pin_fix or level in net_fix:
                self._apply_fixes(
                    v, pin_fix.get(level), net_fix.get(level), gates, full
                )

        acc = 0
        for net, ref, obs_word in obs_pack:
            acc |= (v[net] ^ ref) & obs_word

        if not acc:
            return batch
        # One linear to_bytes pass replaces a quadratic ladder of
        # ``acc >> gi*width`` big-int shifts (widths are byte-aligned).
        lane_bytes = width // 8
        acc_bytes = acc.to_bytes((len(batch) + 1) * lane_bytes, "little")
        survivors: list[_PackedEntry] = []
        for gi, entry in enumerate(batch, start=1):
            det = int.from_bytes(
                acc_bytes[gi * lane_bytes : (gi + 1) * lane_bytes], "little"
            )
            if det:
                detections[entry[0]] = Detection(
                    True, 0, det << base, excited=True
                )
                detected.add(entry[0])
            else:
                survivors.append(entry)
        return survivors

    @staticmethod
    def _apply_fixes(
        v: list[int],
        gate_fixes: dict[int, dict[int, list[int]]] | None,
        fixes: dict[int, list[int]] | None,
        gates: Sequence[object],
        full: int,
    ) -> None:
        if gate_fixes:
            for gate_index, pins in gate_fixes.items():
                gate = gates[gate_index]
                vals = [v[n] for n in gate.inputs]  # type: ignore[attr-defined]
                for pin, (f_set, f_clear) in pins.items():
                    vals[pin] = (vals[pin] & ~f_clear) | f_set
                v[gate.output] = _eval(  # type: ignore[attr-defined]
                    gate.gtype, vals, full  # type: ignore[attr-defined]
                )
        if fixes:
            for net, (f_set, f_clear) in fixes.items():
                v[net] = (v[net] & ~f_clear) | f_set

    # -------------------------------------------------------- sequential

    def _grade_sequential(
        self,
        netlist: Netlist,
        cycles: Stimulus,
        fault_list: FaultList,
        plan: ObservePlan,
        result: CampaignResult,
        reps: Sequence[int],
    ) -> None:
        dffs = netlist.dffs
        n_nets = netlist.n_nets

        all_obs = _output_nets(netlist)
        if plan.observes_everything:
            obs_per_cycle = None
        else:
            obs_per_cycle = [
                tuple(nets) for nets in plan.net_masks(netlist, 1)
            ]
        roots = set(all_obs if obs_per_cycle is None else
                    (n for nets in obs_per_cycle for n in nets))
        roots.update(d.d for d in dffs)
        prog = cached_compile_seq(netlist, sorted(roots))

        input_ports = [
            (p.name, p.nets)
            for p in netlist.ports.values()
            if p.direction is PortDirection.INPUT
        ]
        detections = result.detections
        detected = result.detected

        # The compiled engine's sequential walk is already fault-parallel
        # (256 lanes per word); narrower words would just multiply the
        # number of cycle walks, so never go below its batch size.
        capacity = max(self.lanes - 1, 255)
        for start in range(0, len(reps), capacity):
            batch = reps[start : start + capacity]
            self._run_seq_batch(
                batch, fault_list, cycles, dffs, n_nets, input_ports,
                prog, netlist.gates, obs_per_cycle, all_obs,
                detections, detected,
            )
        undetected = [r for r in reps if r not in detected]
        if undetected:
            trace = good_trace_for(netlist, cycles, packed=False)
            for rep in undetected:
                excited = _excited_sequence(fault_list.fault(rep), trace)
                detections[rep] = Detection(False, excited=excited)

    def _run_seq_batch(
        self,
        batch: Sequence[int],
        fault_list: FaultList,
        cycles: Stimulus,
        dffs: Sequence[object],
        n_nets: int,
        input_ports: list[tuple[str, tuple[int, ...]]],
        prog: object,
        gates: Sequence[object],
        obs_per_cycle: list[tuple[int, ...]] | None,
        all_obs: tuple[int, ...],
        detections: dict[int, Detection],
        detected: set[int],
    ) -> None:
        """Compiled-style cycle walk with the good machine in lane 0.

        Lane ``i + 1`` carries fault ``batch[i]``; lane 0 gets no
        injection, so its trajectory *is* the good machine and the
        detection reference is read out of the word (bit 0) instead of
        the recorded trace.  Lane values match the compiled engine's
        lane-for-lane, so first detecting cycles are identical.
        """
        level_fns = prog.level_fns  # type: ignore[attr-defined]
        driven_at = prog.driven_at  # type: ignore[attr-defined]
        gate_level = prog.gate_level  # type: ignore[attr-defined]
        keep = prog.keep  # type: ignore[attr-defined]
        max_level = prog.max_level  # type: ignore[attr-defined]

        n_lanes = len(batch) + 1
        mask = (1 << n_lanes) - 1
        lane_reps: list[int | None] = [None, *batch]

        net_fix: dict[int, dict[int, list[int]]] = {}
        pin_fix: dict[int, dict[int, dict[int, list[int]]]] = {}
        dff_fix: dict[int, list[int]] = {}
        for lane, rep in enumerate(lane_reps):
            if rep is None:
                continue
            fault = fault_list.fault(rep)
            bit = 1 << lane
            slot = 0 if fault.stuck else 1
            if fault.kind is FaultKind.STEM:
                level = driven_at.get(fault.net, 0)
                entry = net_fix.setdefault(level, {}).setdefault(
                    fault.net, [0, 0]
                )
                entry[slot] |= bit
            elif fault.kind is FaultKind.BRANCH:
                if fault.gate not in keep:
                    continue  # unobservable cone: cannot be detected
                level = gate_level[fault.gate]
                entry = (
                    pin_fix.setdefault(level, {})
                    .setdefault(fault.gate, {})
                    .setdefault(fault.pin, [0, 0])
                )
                entry[slot] |= bit
            else:  # DFF_D
                entry = dff_fix.setdefault(fault.gate, [0, 0])
                entry[slot] |= bit

        state = [
            mask if d.init else 0  # type: ignore[attr-defined]
            for d in dffs
        ]
        live = mask & ~1  # lane 0 is the reference, never "detected"
        alive = n_lanes - 1

        for t, cycle in enumerate(cycles):
            values = [0] * n_nets
            values[CONST1] = mask
            for port_name, nets in input_ports:
                word = cycle.get(port_name, 0)
                for j, net in enumerate(nets):
                    values[net] = mask if (word >> j) & 1 else 0
            for dff, q_word in zip(dffs, state, strict=True):
                values[dff.q] = q_word  # type: ignore[attr-defined]

            source_fix = net_fix.get(0)
            if source_fix:
                for net, (f_set, f_clear) in source_fix.items():
                    values[net] = (values[net] & ~f_clear) | f_set

            for level in range(1, max_level + 1):
                level_fns[level](values, mask)
                gate_fixes = pin_fix.get(level)
                if gate_fixes:
                    for gate_index, pins in gate_fixes.items():
                        gate = gates[gate_index]
                        vals = [
                            values[n]
                            for n in gate.inputs  # type: ignore[attr-defined]
                        ]
                        for pin, (f_set, f_clear) in pins.items():
                            vals[pin] = (vals[pin] & ~f_clear) | f_set
                        values[gate.output] = _eval(  # type: ignore[attr-defined]
                            gate.gtype, vals, mask  # type: ignore[attr-defined]
                        )
                fixes = net_fix.get(level)
                if fixes:
                    for net, (f_set, f_clear) in fixes.items():
                        values[net] = (values[net] & ~f_clear) | f_set

            obs_nets = all_obs if obs_per_cycle is None else obs_per_cycle[t]
            diff = 0
            for net in obs_nets:
                word = values[net]
                # Lane 0 carries the good value: replicate its bit as
                # the reference instead of reading the recorded trace.
                diff |= (word ^ (mask if word & 1 else 0)) & live
                if diff == live:
                    break
            if diff:
                bits = diff
                while bits:
                    bit = bits & -bits
                    bits ^= bit
                    rep = lane_reps[bit.bit_length() - 1]
                    assert rep is not None
                    detections[rep] = Detection(True, t, bit, excited=True)
                    detected.add(rep)
                live &= ~diff
                alive = bin(live).count("1")
                if not live:
                    return  # every fault lane detected: drop out early

            new_state = [
                values[d.d]  # type: ignore[attr-defined]
                for d in dffs
            ]
            for dff_index, (f_set, f_clear) in dff_fix.items():
                new_state[dff_index] = (
                    (new_state[dff_index] & ~f_clear) | f_set
                )
            state = new_state

            if (
                alive <= (n_lanes - 1) * self.repack_threshold
                and (n_lanes - 1) - alive >= self.min_repack_drop
            ):
                survivors = [0] + [
                    lane for lane in range(1, n_lanes) if (live >> lane) & 1
                ]
                repack = _repack_word(survivors)
                state = [repack(w) for w in state]
                for fixes in net_fix.values():
                    for entry in fixes.values():
                        entry[0] = repack(entry[0])
                        entry[1] = repack(entry[1])
                for gate_fixes in pin_fix.values():
                    for pins in gate_fixes.values():
                        for entry in pins.values():
                            entry[0] = repack(entry[0])
                            entry[1] = repack(entry[1])
                for entry in dff_fix.values():
                    entry[0] = repack(entry[0])
                    entry[1] = repack(entry[1])
                lane_reps = [lane_reps[lane] for lane in survivors]
                n_lanes = len(survivors)
                mask = (1 << n_lanes) - 1
                live = mask & ~1
                alive = n_lanes - 1
