"""Unit tests for fault enumeration and equivalence collapsing."""

from repro.faultsim.faults import FaultKind, build_fault_list
from repro.netlist.builder import NetlistBuilder


def inverter_chain(n=3):
    b = NetlistBuilder("chain")
    x = b.input("x", 1)[0]
    for _ in range(n):
        x = b.not_(x)
    b.output("y", x)
    return b.build()


class TestEnumeration:
    def test_stem_faults_on_every_net(self):
        nl = inverter_chain(3)
        fl = build_fault_list(nl, collapse=False)
        stems = [f for f in fl.faults if f.kind is FaultKind.STEM]
        # Nets: input + 3 gate outputs = 4 nets, 2 polarities each.
        assert len(stems) == 8

    def test_no_branch_faults_without_fanout(self):
        fl = build_fault_list(inverter_chain(), collapse=False)
        assert all(f.kind is FaultKind.STEM for f in fl.faults)

    def test_branch_faults_on_fanout(self):
        b = NetlistBuilder("fan")
        x = b.input("x", 1)[0]
        b.output("y1", b.not_(x))
        b.output("y2", b.not_(x))
        fl = build_fault_list(b.build(), collapse=False)
        branches = [f for f in fl.faults if f.kind is FaultKind.BRANCH]
        assert len(branches) == 4  # 2 pins x 2 polarities

    def test_constants_not_faulted(self):
        b = NetlistBuilder("c")
        x = b.input("x", 1)[0]
        b.output("y", b.and_(x, b.constant(1, 1)[0]))
        fl = build_fault_list(b.build(), collapse=False)
        assert all(f.net > 1 for f in fl.faults)

    def test_dff_d_pin_faults(self):
        b = NetlistBuilder("seq")
        x = b.input("x", 1)[0]
        inv = b.not_(x)
        b.output("q1", b.dff(inv))
        b.output("q2", b.dff(inv))  # inv fans out to two D pins
        fl = build_fault_list(b.build(), collapse=False)
        dffd = [f for f in fl.faults if f.kind is FaultKind.DFF_D]
        assert len(dffd) == 4

    def test_describe_readable(self):
        nl = inverter_chain()
        fl = build_fault_list(nl)
        text = fl.faults[0].describe(nl)
        assert "s-a-" in text


class TestCollapsing:
    def test_inverter_chain_collapses_fully(self):
        # All faults in an inverter chain are pairwise equivalent along the
        # chain: 4 nets x 2 -> exactly 2 classes.
        fl = build_fault_list(inverter_chain(3))
        assert fl.n_prime == 8
        assert fl.n_collapsed == 2

    def test_and_gate_classes(self):
        b = NetlistBuilder("and2")
        x = b.input("x", 2)
        b.output("y", b.and_(x[0], x[1]))
        fl = build_fault_list(b.build())
        # Prime: 3 nets x 2 = 6.  a-sa0 == b-sa0 == y-sa0 -> 4 classes.
        assert fl.n_prime == 6
        assert fl.n_collapsed == 4

    def test_xor_gate_no_collapse(self):
        b = NetlistBuilder("xor2")
        x = b.input("x", 2)
        b.output("y", b.xor(x[0], x[1]))
        fl = build_fault_list(b.build())
        assert fl.n_collapsed == fl.n_prime == 6

    def test_collapse_can_be_disabled(self):
        nl = inverter_chain(2)
        fl = build_fault_list(nl, collapse=False)
        assert fl.n_collapsed == fl.n_prime

    def test_classes_partition_faults(self):
        from repro.library import build_alu

        fl = build_fault_list(build_alu(width=4))
        members = sorted(i for m in fl.classes.values() for i in m)
        assert members == list(range(fl.n_prime))

    def test_representative_self_consistent(self):
        fl = build_fault_list(inverter_chain(4))
        for i, rep in enumerate(fl.representative):
            assert fl.representative[rep] == rep
            assert i in fl.classes[rep]


class TestCanonicalOrdering:
    """The documented fault-ordering contract: net, then polarity.

    ``class_representatives()`` is the order every consumer sees (grading
    engines, shard planners, collapse hashing), so it must be a pure
    function of the circuit — sorted by ``fault_sort_key`` rather than by
    raw enumeration index.
    """

    def test_sort_key_orders_net_then_polarity_then_kind(self):
        from repro.faultsim.faults import Fault, fault_sort_key

        ordered = [
            Fault(FaultKind.STEM, net=2, stuck=0),
            Fault(FaultKind.BRANCH, net=2, stuck=0, gate=1, pin=0),
            Fault(FaultKind.DFF_D, net=2, stuck=0, gate=0),
            Fault(FaultKind.STEM, net=2, stuck=1),
            Fault(FaultKind.STEM, net=3, stuck=0),
        ]
        keys = [fault_sort_key(f) for f in ordered]
        assert keys == sorted(keys)

    def test_representatives_sorted_by_canonical_key(self):
        from repro.faultsim.faults import fault_sort_key
        from repro.library import build_alu

        fl = build_fault_list(build_alu(width=4))
        reps = fl.class_representatives()
        keys = [fault_sort_key(fl.faults[r]) for r in reps]
        assert keys == sorted(keys)
        assert sorted(reps) == sorted(fl.classes)

    def test_order_is_reproducible_across_rebuilds(self):
        from repro.library import build_alu

        one = build_fault_list(build_alu(width=4))
        two = build_fault_list(build_alu(width=4))
        assert one.class_representatives() == two.class_representatives()
        assert [
            (f.kind, f.net, f.stuck, f.gate, f.pin) for f in one.faults
        ] == [(f.kind, f.net, f.stuck, f.gate, f.pin) for f in two.faults]
