"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``asm FILE``       — assemble a MIPS source file, print statistics and
  (optionally) a listing or a memory image.
* ``run FILE``       — assemble and execute on the Plasma model.
* ``selftest``       — generate a Phase A/AB/ABC self-test program.
* ``campaign``       — run the fault-grading campaign and print the tables.
* ``inventory``      — print the component classification and gate counts
  (Tables 2 and 3).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.campaign import run_campaign
from repro.core.methodology import SelfTestMethodology
from repro.errors import ReproError
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_program
from repro.plasma.cpu import PlasmaCPU
from repro.reporting.tables import (
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)


def _cmd_asm(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        program = assemble(handle.read())
    print(
        f"{args.file}: {program.code_words} code words, "
        f"{program.data_words} data words"
    )
    if args.listing:
        for line in disassemble_program(program):
            print(line)
    if args.image:
        for addr, word in sorted(program.to_image().items()):
            print(f"{addr:08x} {word:08x}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        program = assemble(handle.read())
    cpu = PlasmaCPU()
    cpu.load_program(program)
    result = cpu.run(max_instructions=args.max_instructions)
    print(
        f"halted at pc={result.pc:#010x} after {result.instructions} "
        f"instructions / {result.cycles} cycles"
    )
    if args.dump:
        base, count = args.dump
        for i, word in enumerate(cpu.memory.dump_words(base, count)):
            print(f"{base + 4 * i:08x} {word:08x}")
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    self_test = SelfTestMethodology().build_program(args.phases)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(self_test.source)
        print(f"wrote {args.output}")
    else:
        print(self_test.source)
    print(
        f"# phases={args.phases}: {self_test.code_words} code words, "
        f"{self_test.data_words} data words, "
        f"{self_test.response_words} response words",
        file=sys.stderr,
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    components = args.components.split(",") if args.components else None
    outcomes = {}
    for phases in args.phases.split(","):
        print(f"== campaign: phases {phases} ==")
        outcomes[phases] = run_campaign(
            phases, components=components, verbose=True
        )
    print()
    print(render_table4(outcomes))
    print()
    print(render_table5(outcomes))
    return 0


def _cmd_inventory(_args: argparse.Namespace) -> int:
    print(render_table2())
    print()
    print(render_table3())
    return 0


def _parse_dump(text: str) -> tuple[int, int]:
    try:
        base, count = text.split(":")
        return int(base, 0), int(count, 0)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected BASE:COUNT (e.g. 0x4000:16), got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_asm = sub.add_parser("asm", help="assemble a MIPS source file")
    p_asm.add_argument("file")
    p_asm.add_argument("--listing", action="store_true",
                       help="print a disassembly listing")
    p_asm.add_argument("--image", action="store_true",
                       help="print the memory image (addr word per line)")
    p_asm.set_defaults(func=_cmd_asm)

    p_run = sub.add_parser("run", help="assemble and execute a program")
    p_run.add_argument("file")
    p_run.add_argument("--max-instructions", type=int, default=2_000_000)
    p_run.add_argument("--dump", type=_parse_dump, metavar="BASE:COUNT",
                       help="dump memory words after the run")
    p_run.set_defaults(func=_cmd_run)

    p_st = sub.add_parser("selftest", help="generate a self-test program")
    p_st.add_argument("--phases", default="AB")
    p_st.add_argument("-o", "--output")
    p_st.set_defaults(func=_cmd_selftest)

    p_c = sub.add_parser("campaign", help="run the fault-grading campaign")
    p_c.add_argument("--phases", default="A",
                     help="comma-separated phase configs (e.g. A,AB)")
    p_c.add_argument("--components",
                     help="comma-separated subset (e.g. ALU,BSH)")
    p_c.set_defaults(func=_cmd_campaign)

    p_inv = sub.add_parser("inventory", help="print Tables 2 and 3")
    p_inv.set_defaults(func=_cmd_inventory)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that exited early — not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
