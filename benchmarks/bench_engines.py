"""Experiment E1 — fault-simulation engine cross-check and throughput.

The repository ships three engines behind :func:`repro.faultsim.grade`
with identical verdict semantics:

* **differential** — per fault, event-driven against stored good values,
  with dropping (the historical campaign engine);
* **batch** — a batch of faults rides bit lanes through one interpreted
  full-circuit walk per cycle;
* **compiled** — the netlist lowered once to generated code, graded
  against the cached good trace.

This bench grades the same components with the same traced stimulus and
observability through all three, asserts fault-by-fault agreement,
checks that cache-warm re-grades are bit-identical to cache-cold ones,
and reports throughput plus good-trace cache hit rates.  Agreement
between engines with disjoint implementations is strong evidence none
mis-simulates.

Runs two ways:

* ``PYTHONPATH=src python benchmarks/bench_engines.py [--quick]`` —
  standalone; exit code 1 on any agreement or throughput failure.
  ``--quick`` (the CI gate) samples the slow batch engine and only
  requires the compiled engine to beat it; the full run also requires
  the compiled engine to be >= 3x the differential engine on ALU and
  BSH at steady state (cache-warm — trace build and lowering are
  one-time costs the good-trace and program caches amortize away; the
  cache-cold time is still reported).
* via the tier-2 pytest-benchmark suite (full mode).
"""

import argparse
import sys
import time

from repro.core.campaign import execute_self_test
from repro.core.methodology import SelfTestMethodology
from repro.faultsim import build_fault_list
from repro.faultsim.engine import grade, get_engine
from repro.faultsim.lowering import clear_program_cache
from repro.faultsim.observe import ObservePlan
from repro.faultsim.trace_cache import global_trace_cache
from repro.plasma.components import build_component

#: Components the throughput gate runs on (deep combinational cones —
#: the compiled engine's home turf and the acceptance target).
GATE_COMPONENTS = ("ALU", "BSH")

#: Quick mode grades the batch engine on this many sampled fault classes
#: (it is ~50x slower than the compiled engine; CI should not pay for a
#: full pass).
QUICK_BATCH_SAMPLE = 510

#: Full-mode throughput floor: compiled (cache-warm) vs differential.
FULL_SPEEDUP_FLOOR = 3.0


def traced_specs():
    self_test = SelfTestMethodology().build_program("A")
    _, tracer, _ = execute_self_test(self_test)
    return tracer.finalize()


def _verdicts(result):
    """Engine-invariant verdict map: rep -> (detected, excited)."""
    return {
        rep: (det.detected, det.excited)
        for rep, det in result.detections.items()
    }


def _bench_component(name, patterns, observe, quick, lines, failures):
    netlist = build_component(name)
    fault_list = build_fault_list(netlist)
    n_faults = fault_list.n_collapsed
    cache = global_trace_cache()

    # Cold start: neither the good trace nor the compiled program cached.
    cache.clear()
    clear_program_cache()

    started = time.perf_counter()
    differential = grade(netlist, patterns, fault_list,
                         engine="differential", observe=observe, name=name)
    diff_seconds = time.perf_counter() - started

    # Batch engine: interpreted and slow; quick mode samples fault classes.
    reps = fault_list.class_representatives()
    if quick and len(reps) > QUICK_BATCH_SAMPLE:
        stride = len(reps) // QUICK_BATCH_SAMPLE
        sampled = set(reps[::stride][:QUICK_BATCH_SAMPLE])
        batch_skip = frozenset(r for r in reps if r not in sampled)
    else:
        batch_skip = frozenset()
    n_batch = len(reps) - len(batch_skip)
    plan = ObservePlan.from_spec(observe, len(patterns), netlist)
    started = time.perf_counter()
    batch = get_engine("batch").grade(
        netlist, patterns, fault_list, plan, name=name, skip=batch_skip
    )
    batch_seconds = time.perf_counter() - started

    # Compiled, cache-cold (trace + program compiled inside the timing).
    cache.clear()
    clear_program_cache()
    cache.reset_stats()
    started = time.perf_counter()
    cold = grade(netlist, patterns, fault_list,
                 engine="compiled", observe=observe, name=name)
    cold_seconds = time.perf_counter() - started
    cold_lookups = cache.stats.lookups
    cold_hits = cache.stats.hits

    # Compiled, cache-warm: the good trace and program are reused.
    started = time.perf_counter()
    warm = grade(netlist, patterns, fault_list,
                 engine="compiled", observe=observe, name=name)
    warm_seconds = time.perf_counter() - started
    warm_hits = cache.stats.hits - cold_hits
    warm_lookups = cache.stats.lookups - cold_lookups
    hit_rate = warm_hits / warm_lookups if warm_lookups else 0.0

    diff_rate = n_faults / diff_seconds
    batch_rate = n_batch / batch_seconds
    cold_rate = n_faults / cold_seconds
    warm_rate = n_faults / warm_seconds

    lines.append(
        f"{name}: {n_faults:,} fault classes, "
        f"{len(patterns):,} patterns"
    )
    rows = [
        ("differential", n_faults, differential.n_detected, diff_seconds,
         diff_rate),
        (f"batch[{n_batch}]", n_batch, batch.n_detected, batch_seconds,
         batch_rate),
        ("compiled cold", n_faults, cold.n_detected, cold_seconds,
         cold_rate),
        ("compiled warm", n_faults, warm.n_detected, warm_seconds,
         warm_rate),
    ]
    lines.append(
        f"  {'engine':>14s} {'graded':>7s} {'detected':>9s} "
        f"{'seconds':>8s} {'faults/s':>9s}"
    )
    for label, graded, detected, seconds, rate in rows:
        lines.append(
            f"  {label:>14s} {graded:>7,} {detected:>9,} "
            f"{seconds:>8.2f} {rate:>9,.0f}"
        )
    lines.append(
        f"  trace cache: warm hit rate {hit_rate:.0%} "
        f"({warm_hits}/{warm_lookups} lookups), "
        f"compiled speedup {diff_seconds / cold_seconds:.2f}x "
        f"(cold) / {diff_seconds / warm_seconds:.2f}x (warm) "
        f"vs differential"
    )

    # --- agreement gates -------------------------------------------------
    want = _verdicts(differential)
    if _verdicts(cold) != want:
        failures.append(f"{name}: compiled (cold) disagrees with differential")
    if _verdicts(warm) != want or warm.detected != cold.detected:
        failures.append(f"{name}: cache-warm grade differs from cache-cold")
    batch_want = {
        rep: verdict for rep, verdict in want.items()
        if rep not in batch_skip
    }
    if _verdicts(batch) != batch_want:
        failures.append(f"{name}: batch engine disagrees with differential")
    if cold.fault_coverage != differential.fault_coverage:
        failures.append(f"{name}: FC differs between engines")
    if warm_hits < 1:
        failures.append(f"{name}: warm re-grade did not hit the trace cache")

    # --- throughput gates ------------------------------------------------
    if cold_rate <= batch_rate:
        failures.append(
            f"{name}: compiled ({cold_rate:,.0f} faults/s) is not faster "
            f"than the batch engine ({batch_rate:,.0f} faults/s)"
        )
    if not quick and diff_seconds / warm_seconds < FULL_SPEEDUP_FLOOR:
        failures.append(
            f"{name}: compiled steady-state speedup "
            f"{diff_seconds / warm_seconds:.2f}x is below the "
            f"{FULL_SPEEDUP_FLOOR:.0f}x floor"
        )


def run_bench(quick: bool) -> tuple[str, list[str]]:
    """Grade the gate components through every engine.

    Returns:
        ``(report text, failure messages)`` — empty failures = pass.
    """
    specs = traced_specs()
    lines: list[str] = []
    failures: list[str] = []
    for name in GATE_COMPONENTS:
        patterns, observe = specs[name]
        _bench_component(name, patterns, observe, quick, lines, failures)
    return "\n".join(lines), failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: sample the batch engine and skip the 3x floor",
    )
    args = parser.parse_args(argv)
    text, failures = run_bench(quick=args.quick)
    print(text)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_engine_agreement_and_throughput(benchmark):
    from conftest import write_result

    text, failures = benchmark.pedantic(
        lambda: run_bench(quick=False), rounds=1, iterations=1
    )
    write_result("engines_e1_crosscheck.txt", text)
    print("\n" + text)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    sys.exit(main())
