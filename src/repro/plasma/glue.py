"""GL component: residual glue logic.

Models the handful of gates and flip-flops that surround the named Plasma
components (the paper's "Glue Logic" row): the interrupt mask/status
synchronisers, the reset synchroniser and the CPU pause combiner.  The
self-test program never raises interrupts, so — as in any real glue block —
a sizeable share of these faults stays uncovered, which is exactly the
behaviour the paper's Table 5 shows for small control/glue structures.
"""

from __future__ import annotations

from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import CONST1, Netlist

IRQ_LINES = 8


def build_glue(name: str = "GL") -> Netlist:
    """Build the glue-logic netlist.

    Ports:
        * in: ``irq`` (8), ``irq_mask_data`` (8), ``irq_mask_we`` (1),
          ``pause_mem`` (1), ``pause_muldiv`` (1), ``branch_taken`` (1).
        * out: ``pause_cpu`` (1), ``irq_pending`` (1), ``irq_status`` (8),
          ``reset_done`` (1).
    """
    b = NetlistBuilder(name)
    irq = b.input("irq", IRQ_LINES)
    mask_data = b.input("irq_mask_data", IRQ_LINES)
    mask_we = b.input("irq_mask_we", 1)[0]
    pause_mem = b.input("pause_mem", 1)[0]
    pause_muldiv = b.input("pause_muldiv", 1)[0]
    branch_taken = b.input("branch_taken", 1)[0]

    # Two-stage input synchronisers on the asynchronous IRQ lines.
    sync1 = b.register_word(irq)
    sync2 = b.register_word(sync1)

    mask = b.register_word(mask_data, enable=mask_we)
    status = b.and_word(sync2, mask)
    pending_now = b.reduce_or(status)
    # Interrupts are not taken in a branch delay slot (Plasma quirk).
    pending = b.dff(b.and_(pending_now, b.not_(branch_taken)))

    # Reset synchroniser: two flops fed by constant 1 (observability
    # output; the pause combiner must stay live from cycle 0 so a memory
    # access in the very first instruction still stalls correctly).
    rst1 = b.dff(CONST1)
    reset_done = b.dff(rst1)

    pause_cpu = b.or_(pause_mem, pause_muldiv)

    b.output("pause_cpu", pause_cpu)
    b.output("irq_pending", pending)
    b.output("irq_status", status)
    b.output("reset_done", reset_done)
    return b.build()
