"""Tseitin encoder cross-validated against direct evaluation.

Every CNF claim ultimately reduces to ``encode_circuit`` being a
faithful translation of the netlist semantics, so these tests pin the
encoding to :func:`repro.formal.evaluate.eval_cut` (an independent
interpreter) on random circuits, random components and random faults.
"""

import random

from repro.formal.encode import LogicEncoder, encode_circuit, miter_lit
from repro.formal.evaluate import eval_cut
from repro.formal.sat import SatSolver
from repro.faultsim.faults import build_fault_list
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType
from repro.plasma.components import build_component

_GATES2 = (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
           GateType.XOR, GateType.XNOR)


def random_circuit(rng: random.Random, n_inputs: int, n_gates: int,
                   n_dffs: int = 0) -> "NetlistBuilder":
    b = NetlistBuilder("rand")
    nets = [b.input(f"i{k}", 1)[0] for k in range(n_inputs)]
    for _ in range(n_dffs):
        # DFF D inputs are patched after the combinational cloud exists.
        nets.append(b.netlist.add_dff(0, init=rng.randint(0, 1)))
    for _ in range(n_gates):
        gtype = rng.choice(_GATES2 + (GateType.NOT, GateType.MUX2,
                                      GateType.AOI21))
        if gtype is GateType.NOT:
            out = b.gate(gtype, rng.choice(nets))
        elif gtype is GateType.MUX2 or gtype is GateType.AOI21:
            out = b.gate(gtype, *(rng.choice(nets) for _ in range(3)))
        else:
            out = b.gate(gtype, rng.choice(nets), rng.choice(nets))
        nets.append(out)
    import dataclasses

    for k, dff in enumerate(b.netlist.dffs):
        b.netlist.dffs[k] = dataclasses.replace(dff, d=rng.choice(nets))
    b.output("y", [rng.choice(nets) for _ in range(3)])
    return b.build()


def assignment_assumptions(circuit, encoded, inputs, state):
    lits = []
    for port in circuit.input_ports():
        value = inputs[port.name]
        for i, lit in enumerate(encoded.input_lits(port.name)):
            lits.append(lit if (value >> i) & 1 else -lit)
    for bit, lit in zip(state, encoded.state_lits(), strict=True):
        lits.append(lit if bit else -lit)
    return lits


def check_encoding(circuit, rng, trials=16, fault=None):
    solver = SatSolver()
    logic = LogicEncoder(solver)
    encoded = encode_circuit(logic, circuit, fault=fault)
    for _ in range(trials):
        inputs = {
            p.name: rng.getrandbits(p.width) for p in circuit.input_ports()
        }
        state = tuple(rng.randint(0, 1) for _ in circuit.dffs)
        assert solver.solve(assignment_assumptions(
            circuit, encoded, inputs, state
        ))
        want_out, want_next = eval_cut(
            circuit, inputs, state, fault=fault
        )
        for port in circuit.output_ports():
            got = sum(
                (1 if solver.lit_value(lit) else 0) << i
                for i, lit in enumerate(encoded.output_lits(port.name))
            )
            assert got == want_out[port.name], (port.name, inputs, state)
        got_next = tuple(
            1 if solver.lit_value(lit) else 0
            for lit in encoded.next_state_lits()
        )
        assert got_next == tuple(want_next), (inputs, state)


class TestRandomCircuits:
    def test_combinational_clouds_match_eval(self):
        rng = random.Random(11)
        for _ in range(20):
            circuit = random_circuit(rng, rng.randint(1, 6),
                                     rng.randint(1, 25))
            check_encoding(circuit, rng)

    def test_sequential_cuts_match_eval(self):
        rng = random.Random(12)
        for _ in range(12):
            circuit = random_circuit(rng, rng.randint(1, 4),
                                     rng.randint(1, 20),
                                     n_dffs=rng.randint(1, 4))
            check_encoding(circuit, rng)

    def test_faulty_encodings_match_faulty_eval(self):
        rng = random.Random(13)
        for _ in range(10):
            circuit = random_circuit(rng, rng.randint(2, 5),
                                     rng.randint(4, 20),
                                     n_dffs=rng.randint(0, 2))
            fault_list = build_fault_list(circuit)
            reps = fault_list.class_representatives()
            for rep in rng.sample(reps, min(4, len(reps))):
                check_encoding(circuit, rng, trials=8,
                               fault=fault_list.fault(rep))


class TestStrashing:
    def test_identical_copies_collapse_to_identical_literals(self):
        circuit = build_component("CTRL")
        solver = SatSolver()
        logic = LogicEncoder(solver)
        first = encode_circuit(logic, circuit)
        inputs = {
            net: lit
            for port in circuit.input_ports()
            for net, lit in zip(
                port.nets, first.input_lits(port.name), strict=True
            )
        }
        n_before = solver.n_vars
        second = encode_circuit(logic, circuit, inputs=inputs)
        # Hash-consing: the second copy introduces no new variables and
        # lands on exactly the same literals.
        assert solver.n_vars == n_before
        assert first.compared_lits() == second.compared_lits()

    def test_self_miter_is_unsat_without_search(self):
        circuit = build_component("BMUX")
        solver = SatSolver()
        logic = LogicEncoder(solver)
        first = encode_circuit(logic, circuit)
        inputs = {
            net: lit
            for port in circuit.input_ports()
            for net, lit in zip(
                port.nets, first.input_lits(port.name), strict=True
            )
        }
        second = encode_circuit(logic, circuit, inputs=inputs)
        miter = miter_lit(logic, first.compared_lits(),
                          second.compared_lits())
        assert not solver.solve([miter])
        assert solver.stats.conflicts == 0

    def test_component_encoding_matches_eval(self):
        rng = random.Random(14)
        for name in ("CTRL", "GL", "PCL"):
            check_encoding(build_component(name), rng, trials=8)
