"""Test-priority ordering (paper Section 2.2, Table 1).

Priority is decided by two component characteristics:

1. **class** — functional components first (highest controllability and
   observability through instructions), then control, then hidden;
2. **relative size** — within a class, larger components first, since they
   contribute the most faults to the overall coverage.

Controllability/observability are quantified as the length of the shortest
instruction sequence that applies a pattern to the component
(controllability) or propagates its outputs to the primary outputs
(observability) — Section 2.2's definitions — and the class ordering
follows from those scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.netlist.stats import gate_count
from repro.plasma.components import COMPONENTS, ComponentClass, ComponentInfo

#: Class rank for test development (lower = earlier), per the paper's
#: Table 1.  Glue is residual and never individually targeted.
CLASS_RANK: dict[ComponentClass, int] = {
    ComponentClass.FUNCTIONAL: 0,
    ComponentClass.CONTROL: 1,
    ComponentClass.HIDDEN: 2,
    ComponentClass.GLUE: 3,
}

#: Shortest instruction sequences for applying a pattern to the component
#: inputs (controllability) and propagating its outputs to the processor
#: outputs (observability), counted on the Plasma ISA.  These are the
#: Section 2.2 metrics behind Table 1's High/Medium/Low entries.
ACCESSIBILITY: dict[str, tuple[int, int]] = {
    # (instructions to control, instructions to observe)
    "RegF": (1, 1),  # any write / sw of any register
    "ALU": (1, 1),  # R-type op on loaded operands / sw of the result
    "BSH": (1, 1),
    "MulD": (1, 2),  # mult strobes it / mflo + sw reads it out
    "MCTRL": (1, 2),  # lb-style access / load into register + sw
    "PCL": (2, 3),  # branch with crafted operands / effect on the flow
    "CTRL": (1, 3),  # any instruction / observable only via its effects
    "BMUX": (1, 2),
    "PLN": (2, 4),  # needs crafted back-to-back sequences
    "GL": (4, 5),  # interrupt paths are barely reachable in user code
}


@dataclass(frozen=True)
class Accessibility:
    """Controllability/observability scores for one component.

    ``control_cost``/``observe_cost`` are the instruction-sequence
    lengths of Section 2.2.  ``scoap_cc``/``scoap_co`` — present when
    computed via :func:`quantitative_accessibility` — are the circuit-
    level counterparts: average SCOAP controllability/observability over
    the component's nets, so the High/Medium/Low judgement is backed by
    a measured number instead of only the hand-derived table.
    """

    name: str
    control_cost: int
    observe_cost: int
    scoap_cc: float | None = None
    scoap_co: float | None = None

    @property
    def grade(self) -> str:
        """Coarse High/Medium/Low grade as printed in the paper's Table 1."""
        total = self.control_cost + self.observe_cost
        if total <= 3:
            return "high"
        if total <= 5:
            return "medium"
        return "low"


def accessibility(name: str) -> Accessibility:
    """Accessibility scores for a component (KeyError if unknown)."""
    control_cost, observe_cost = ACCESSIBILITY[name]
    return Accessibility(name, control_cost, observe_cost)


def quantitative_accessibility(name: str) -> Accessibility:
    """Accessibility with measured SCOAP averages attached.

    Builds the component netlist and averages, over its driven
    non-constant nets, ``max(CC0, CC1)`` (how hard the hardest value is
    to set) and ``CO`` (how hard the net is to observe at the component
    boundary).  Structurally impossible (infinite) terms are excluded
    from the averages — they are reported by the netlist analyzer's
    NL101/NL102 rules instead.
    """
    from repro.analysis.scoap import compute_scoap
    from repro.plasma.components import build_component

    base = accessibility(name)
    netlist = build_component(name)
    analysis = compute_scoap(netlist)
    driven = {g.output for g in netlist.gates}
    driven.update(d.q for d in netlist.dffs)
    driven.update(n for p in netlist.input_ports() for n in p.nets)
    cc_terms = [
        max(analysis.cc0[n], analysis.cc1[n])
        for n in driven
        if max(analysis.cc0[n], analysis.cc1[n]) != float("inf")
    ]
    co_terms = [
        analysis.co[n] for n in driven if analysis.co[n] != float("inf")
    ]
    return Accessibility(
        base.name,
        base.control_cost,
        base.observe_cost,
        scoap_cc=sum(cc_terms) / len(cc_terms) if cc_terms else None,
        scoap_co=sum(co_terms) / len(co_terms) if co_terms else None,
    )


def component_priority(
    info: ComponentInfo, nand2: int
) -> tuple[int, int, int]:
    """Sort key: (class rank, -size, accessibility cost).

    Lower sorts earlier.  The class carries the controllability/
    observability distinction (Table 1); within a class the paper sorts by
    descending size, with accessibility as the tie-breaker.
    """
    scores = accessibility(info.name)
    return (
        CLASS_RANK[info.component_class],
        -nand2,
        scores.control_cost + scores.observe_cost,
    )


def test_development_order(
    components: Sequence[ComponentInfo] | None = None,
    sizes: dict[str, int] | None = None,
) -> list[ComponentInfo]:
    """Order components for test development.

    Args:
        components: registry entries (defaults to the Plasma inventory).
        sizes: known NAND2 gate counts by name; measured from the netlists
            when omitted (the paper's Section 2.2 fallback assumptions —
            register file and multiplier largest — hold either way).

    Returns:
        Components sorted by descending test priority.
    """
    if components is None:
        components = COMPONENTS
    if sizes is None:
        sizes = {c.name: gate_count(c.builder()).nand2 for c in components}
    return sorted(
        components, key=lambda c: component_priority(c, sizes.get(c.name, 0))
    )
