"""Unit tests for the LRU good-trace cache."""

from repro.faultsim.trace_cache import (
    CacheStats,
    GoodTraceCache,
    good_trace_for,
    global_trace_cache,
)
from repro.library import build_register_file
from repro.netlist.builder import NetlistBuilder


def buffer_netlist(name="buf"):
    b = NetlistBuilder(name)
    a = b.input("a", 2)
    b.output("y", list(a))
    return b.build()


def patterns(k):
    return [dict(a=v) for v in range(k)]


class TestStats:
    def test_hit_rate_before_any_lookup(self):
        assert CacheStats().hit_rate == 0.0

    def test_miss_then_hit(self):
        cache = GoodTraceCache()
        netlist = buffer_netlist()
        good_trace_for(netlist, patterns(2), packed=True, cache=cache)
        good_trace_for(netlist, patterns(2), packed=True, cache=cache)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == 0.5

    def test_reset_stats_keeps_entries(self):
        cache = GoodTraceCache()
        netlist = buffer_netlist()
        good_trace_for(netlist, patterns(2), packed=True, cache=cache)
        cache.reset_stats()
        assert len(cache) == 1
        good_trace_for(netlist, patterns(2), packed=True, cache=cache)
        assert cache.stats == CacheStats(hits=1)


class TestLRUBound:
    def test_eviction_at_capacity(self):
        cache = GoodTraceCache(max_entries=2)
        netlist = buffer_netlist()
        for k in (1, 2, 3):
            good_trace_for(netlist, patterns(k), packed=True, cache=cache)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest entry (k=1) was evicted; k=3 and k=2 are resident.
        good_trace_for(netlist, patterns(3), packed=True, cache=cache)
        assert cache.stats.hits == 1
        good_trace_for(netlist, patterns(1), packed=True, cache=cache)
        assert cache.stats.misses == 4

    def test_hit_refreshes_recency(self):
        cache = GoodTraceCache(max_entries=2)
        netlist = buffer_netlist()
        good_trace_for(netlist, patterns(1), packed=True, cache=cache)
        good_trace_for(netlist, patterns(2), packed=True, cache=cache)
        good_trace_for(netlist, patterns(1), packed=True, cache=cache)  # hit
        good_trace_for(netlist, patterns(3), packed=True, cache=cache)
        # k=2 (least recently used) was evicted, k=1 survived.
        good_trace_for(netlist, patterns(1), packed=True, cache=cache)
        assert cache.stats.hits == 2


class TestKeying:
    def test_rebuilt_netlist_same_key(self):
        cache = GoodTraceCache()
        key_a = cache.key_for(buffer_netlist(), patterns(2), "packed")
        key_b = cache.key_for(buffer_netlist(), patterns(2), "packed")
        assert key_a == key_b

    def test_netlist_name_irrelevant(self):
        cache = GoodTraceCache()
        assert cache.key_for(buffer_netlist("x"), patterns(2), "packed") \
            == cache.key_for(buffer_netlist("y"), patterns(2), "packed")

    def test_mode_distinguishes_trace_shapes(self):
        cache = GoodTraceCache()
        netlist = build_register_file(n_registers=2, width=2)
        stim = [dict(wr_addr=0, wr_data=1, wr_en=1, rd_addr_a=0,
                     rd_addr_b=0)]
        assert cache.key_for(netlist, stim, "packed") \
            != cache.key_for(netlist, stim, "sequence")

    def test_different_stimulus_different_key(self):
        cache = GoodTraceCache()
        netlist = buffer_netlist()
        assert cache.key_for(netlist, patterns(2), "packed") \
            != cache.key_for(netlist, [dict(a=0), dict(a=2)], "packed")


def test_global_cache_is_a_singleton():
    assert global_trace_cache() is global_trace_cache()
    assert isinstance(global_trace_cache(), GoodTraceCache)
